
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accel.cpp" "tests/CMakeFiles/vboost_tests.dir/test_accel.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_accel.cpp.o.d"
  "/root/repo/tests/test_booster.cpp" "tests/CMakeFiles/vboost_tests.dir/test_booster.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_booster.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/vboost_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/vboost_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/vboost_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dante_generic.cpp" "tests/CMakeFiles/vboost_tests.dir/test_dante_generic.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_dante_generic.cpp.o.d"
  "/root/repo/tests/test_dnn.cpp" "tests/CMakeFiles/vboost_tests.dir/test_dnn.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_dnn.cpp.o.d"
  "/root/repo/tests/test_ecc.cpp" "tests/CMakeFiles/vboost_tests.dir/test_ecc.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_ecc.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/vboost_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/vboost_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fi.cpp" "tests/CMakeFiles/vboost_tests.dir/test_fi.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_fi.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/vboost_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_layers.cpp" "tests/CMakeFiles/vboost_tests.dir/test_layers.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_layers.cpp.o.d"
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/vboost_tests.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_perf_model.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/vboost_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regulators.cpp" "tests/CMakeFiles/vboost_tests.dir/test_regulators.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_regulators.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/vboost_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sram.cpp" "tests/CMakeFiles/vboost_tests.dir/test_sram.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_sram.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/vboost_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_yield.cpp" "tests/CMakeFiles/vboost_tests.dir/test_yield.cpp.o" "gcc" "tests/CMakeFiles/vboost_tests.dir/test_yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vboost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/vboost_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vboost_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/vboost_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/vboost_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/vboost_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
