# Empty compiler generated dependencies file for vboost_tests.
# This may be replaced when dependencies are built.
