# Empty compiler generated dependencies file for dante_chip_demo.
# This may be replaced when dependencies are built.
