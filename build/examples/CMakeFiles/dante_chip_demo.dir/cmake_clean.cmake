file(REMOVE_RECURSE
  "CMakeFiles/dante_chip_demo.dir/dante_chip_demo.cpp.o"
  "CMakeFiles/dante_chip_demo.dir/dante_chip_demo.cpp.o.d"
  "dante_chip_demo"
  "dante_chip_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dante_chip_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
