# Empty dependencies file for canary_adaptive_chip.
# This may be replaced when dependencies are built.
