file(REMOVE_RECURSE
  "CMakeFiles/canary_adaptive_chip.dir/canary_adaptive_chip.cpp.o"
  "CMakeFiles/canary_adaptive_chip.dir/canary_adaptive_chip.cpp.o.d"
  "canary_adaptive_chip"
  "canary_adaptive_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canary_adaptive_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
