file(REMOVE_RECURSE
  "CMakeFiles/alexnet_iso_accuracy.dir/alexnet_iso_accuracy.cpp.o"
  "CMakeFiles/alexnet_iso_accuracy.dir/alexnet_iso_accuracy.cpp.o.d"
  "alexnet_iso_accuracy"
  "alexnet_iso_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_iso_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
