# Empty compiler generated dependencies file for alexnet_iso_accuracy.
# This may be replaced when dependencies are built.
