# Empty dependencies file for mnist_resilience.
# This may be replaced when dependencies are built.
