file(REMOVE_RECURSE
  "CMakeFiles/mnist_resilience.dir/mnist_resilience.cpp.o"
  "CMakeFiles/mnist_resilience.dir/mnist_resilience.cpp.o.d"
  "mnist_resilience"
  "mnist_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
