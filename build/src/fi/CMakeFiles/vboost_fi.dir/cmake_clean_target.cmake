file(REMOVE_RECURSE
  "libvboost_fi.a"
)
