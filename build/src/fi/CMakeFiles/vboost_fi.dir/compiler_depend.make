# Empty compiler generated dependencies file for vboost_fi.
# This may be replaced when dependencies are built.
