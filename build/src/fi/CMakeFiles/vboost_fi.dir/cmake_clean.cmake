file(REMOVE_RECURSE
  "CMakeFiles/vboost_fi.dir/accuracy_curve.cpp.o"
  "CMakeFiles/vboost_fi.dir/accuracy_curve.cpp.o.d"
  "CMakeFiles/vboost_fi.dir/experiment.cpp.o"
  "CMakeFiles/vboost_fi.dir/experiment.cpp.o.d"
  "CMakeFiles/vboost_fi.dir/fault_training.cpp.o"
  "CMakeFiles/vboost_fi.dir/fault_training.cpp.o.d"
  "CMakeFiles/vboost_fi.dir/injector.cpp.o"
  "CMakeFiles/vboost_fi.dir/injector.cpp.o.d"
  "libvboost_fi.a"
  "libvboost_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
