
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fi/accuracy_curve.cpp" "src/fi/CMakeFiles/vboost_fi.dir/accuracy_curve.cpp.o" "gcc" "src/fi/CMakeFiles/vboost_fi.dir/accuracy_curve.cpp.o.d"
  "/root/repo/src/fi/experiment.cpp" "src/fi/CMakeFiles/vboost_fi.dir/experiment.cpp.o" "gcc" "src/fi/CMakeFiles/vboost_fi.dir/experiment.cpp.o.d"
  "/root/repo/src/fi/fault_training.cpp" "src/fi/CMakeFiles/vboost_fi.dir/fault_training.cpp.o" "gcc" "src/fi/CMakeFiles/vboost_fi.dir/fault_training.cpp.o.d"
  "/root/repo/src/fi/injector.cpp" "src/fi/CMakeFiles/vboost_fi.dir/injector.cpp.o" "gcc" "src/fi/CMakeFiles/vboost_fi.dir/injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/vboost_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/vboost_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
