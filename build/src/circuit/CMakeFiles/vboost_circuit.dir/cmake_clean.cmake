file(REMOVE_RECURSE
  "CMakeFiles/vboost_circuit.dir/bic.cpp.o"
  "CMakeFiles/vboost_circuit.dir/bic.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/booster.cpp.o"
  "CMakeFiles/vboost_circuit.dir/booster.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/energy_model.cpp.o"
  "CMakeFiles/vboost_circuit.dir/energy_model.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/latency.cpp.o"
  "CMakeFiles/vboost_circuit.dir/latency.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/ldo.cpp.o"
  "CMakeFiles/vboost_circuit.dir/ldo.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/regulators.cpp.o"
  "CMakeFiles/vboost_circuit.dir/regulators.cpp.o.d"
  "CMakeFiles/vboost_circuit.dir/transient.cpp.o"
  "CMakeFiles/vboost_circuit.dir/transient.cpp.o.d"
  "libvboost_circuit.a"
  "libvboost_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
