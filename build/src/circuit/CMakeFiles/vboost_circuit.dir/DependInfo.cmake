
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bic.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/bic.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/bic.cpp.o.d"
  "/root/repo/src/circuit/booster.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/booster.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/booster.cpp.o.d"
  "/root/repo/src/circuit/energy_model.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/energy_model.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/energy_model.cpp.o.d"
  "/root/repo/src/circuit/latency.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/latency.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/latency.cpp.o.d"
  "/root/repo/src/circuit/ldo.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/ldo.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/ldo.cpp.o.d"
  "/root/repo/src/circuit/regulators.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/regulators.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/regulators.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/vboost_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/vboost_circuit.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
