file(REMOVE_RECURSE
  "libvboost_circuit.a"
)
