# Empty dependencies file for vboost_circuit.
# This may be replaced when dependencies are built.
