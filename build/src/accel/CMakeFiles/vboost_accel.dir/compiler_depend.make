# Empty compiler generated dependencies file for vboost_accel.
# This may be replaced when dependencies are built.
