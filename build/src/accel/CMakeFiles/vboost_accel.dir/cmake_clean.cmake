file(REMOVE_RECURSE
  "CMakeFiles/vboost_accel.dir/dante.cpp.o"
  "CMakeFiles/vboost_accel.dir/dante.cpp.o.d"
  "CMakeFiles/vboost_accel.dir/dataflow.cpp.o"
  "CMakeFiles/vboost_accel.dir/dataflow.cpp.o.d"
  "CMakeFiles/vboost_accel.dir/perf_model.cpp.o"
  "CMakeFiles/vboost_accel.dir/perf_model.cpp.o.d"
  "libvboost_accel.a"
  "libvboost_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
