file(REMOVE_RECURSE
  "libvboost_accel.a"
)
