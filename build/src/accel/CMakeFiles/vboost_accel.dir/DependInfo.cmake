
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/dante.cpp" "src/accel/CMakeFiles/vboost_accel.dir/dante.cpp.o" "gcc" "src/accel/CMakeFiles/vboost_accel.dir/dante.cpp.o.d"
  "/root/repo/src/accel/dataflow.cpp" "src/accel/CMakeFiles/vboost_accel.dir/dataflow.cpp.o" "gcc" "src/accel/CMakeFiles/vboost_accel.dir/dataflow.cpp.o.d"
  "/root/repo/src/accel/perf_model.cpp" "src/accel/CMakeFiles/vboost_accel.dir/perf_model.cpp.o" "gcc" "src/accel/CMakeFiles/vboost_accel.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/vboost_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/vboost_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vboost_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vboost_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
