# Empty compiler generated dependencies file for vboost_core.
# This may be replaced when dependencies are built.
