file(REMOVE_RECURSE
  "libvboost_core.a"
)
