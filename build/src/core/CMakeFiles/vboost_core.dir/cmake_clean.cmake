file(REMOVE_RECURSE
  "CMakeFiles/vboost_core.dir/canary.cpp.o"
  "CMakeFiles/vboost_core.dir/canary.cpp.o.d"
  "CMakeFiles/vboost_core.dir/context.cpp.o"
  "CMakeFiles/vboost_core.dir/context.cpp.o.d"
  "CMakeFiles/vboost_core.dir/tradeoff.cpp.o"
  "CMakeFiles/vboost_core.dir/tradeoff.cpp.o.d"
  "libvboost_core.a"
  "libvboost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
