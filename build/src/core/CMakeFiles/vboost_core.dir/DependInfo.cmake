
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/canary.cpp" "src/core/CMakeFiles/vboost_core.dir/canary.cpp.o" "gcc" "src/core/CMakeFiles/vboost_core.dir/canary.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/vboost_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/vboost_core.dir/context.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/core/CMakeFiles/vboost_core.dir/tradeoff.cpp.o" "gcc" "src/core/CMakeFiles/vboost_core.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/vboost_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vboost_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
