# Empty dependencies file for vboost_energy.
# This may be replaced when dependencies are built.
