file(REMOVE_RECURSE
  "libvboost_energy.a"
)
