file(REMOVE_RECURSE
  "CMakeFiles/vboost_energy.dir/supply_config.cpp.o"
  "CMakeFiles/vboost_energy.dir/supply_config.cpp.o.d"
  "libvboost_energy.a"
  "libvboost_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
