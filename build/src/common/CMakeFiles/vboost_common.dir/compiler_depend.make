# Empty compiler generated dependencies file for vboost_common.
# This may be replaced when dependencies are built.
