file(REMOVE_RECURSE
  "CMakeFiles/vboost_common.dir/fixed_point.cpp.o"
  "CMakeFiles/vboost_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/vboost_common.dir/logging.cpp.o"
  "CMakeFiles/vboost_common.dir/logging.cpp.o.d"
  "CMakeFiles/vboost_common.dir/rng.cpp.o"
  "CMakeFiles/vboost_common.dir/rng.cpp.o.d"
  "CMakeFiles/vboost_common.dir/stats.cpp.o"
  "CMakeFiles/vboost_common.dir/stats.cpp.o.d"
  "CMakeFiles/vboost_common.dir/table.cpp.o"
  "CMakeFiles/vboost_common.dir/table.cpp.o.d"
  "libvboost_common.a"
  "libvboost_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
