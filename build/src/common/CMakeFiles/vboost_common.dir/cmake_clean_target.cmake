file(REMOVE_RECURSE
  "libvboost_common.a"
)
