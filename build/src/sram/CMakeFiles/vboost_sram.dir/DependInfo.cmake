
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sram/banked_memory.cpp" "src/sram/CMakeFiles/vboost_sram.dir/banked_memory.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/banked_memory.cpp.o.d"
  "/root/repo/src/sram/ecc.cpp" "src/sram/CMakeFiles/vboost_sram.dir/ecc.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/ecc.cpp.o.d"
  "/root/repo/src/sram/failure_model.cpp" "src/sram/CMakeFiles/vboost_sram.dir/failure_model.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/failure_model.cpp.o.d"
  "/root/repo/src/sram/fault_map.cpp" "src/sram/CMakeFiles/vboost_sram.dir/fault_map.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/fault_map.cpp.o.d"
  "/root/repo/src/sram/sram_bank.cpp" "src/sram/CMakeFiles/vboost_sram.dir/sram_bank.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/sram_bank.cpp.o.d"
  "/root/repo/src/sram/sram_macro.cpp" "src/sram/CMakeFiles/vboost_sram.dir/sram_macro.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/sram_macro.cpp.o.d"
  "/root/repo/src/sram/yield.cpp" "src/sram/CMakeFiles/vboost_sram.dir/yield.cpp.o" "gcc" "src/sram/CMakeFiles/vboost_sram.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
