file(REMOVE_RECURSE
  "CMakeFiles/vboost_sram.dir/banked_memory.cpp.o"
  "CMakeFiles/vboost_sram.dir/banked_memory.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/ecc.cpp.o"
  "CMakeFiles/vboost_sram.dir/ecc.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/failure_model.cpp.o"
  "CMakeFiles/vboost_sram.dir/failure_model.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/fault_map.cpp.o"
  "CMakeFiles/vboost_sram.dir/fault_map.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/sram_bank.cpp.o"
  "CMakeFiles/vboost_sram.dir/sram_bank.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/sram_macro.cpp.o"
  "CMakeFiles/vboost_sram.dir/sram_macro.cpp.o.d"
  "CMakeFiles/vboost_sram.dir/yield.cpp.o"
  "CMakeFiles/vboost_sram.dir/yield.cpp.o.d"
  "libvboost_sram.a"
  "libvboost_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
