file(REMOVE_RECURSE
  "libvboost_sram.a"
)
