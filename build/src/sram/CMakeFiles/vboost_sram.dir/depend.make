# Empty dependencies file for vboost_sram.
# This may be replaced when dependencies are built.
