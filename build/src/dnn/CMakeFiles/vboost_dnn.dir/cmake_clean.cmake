file(REMOVE_RECURSE
  "CMakeFiles/vboost_dnn.dir/dataset.cpp.o"
  "CMakeFiles/vboost_dnn.dir/dataset.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/layers.cpp.o"
  "CMakeFiles/vboost_dnn.dir/layers.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/network.cpp.o"
  "CMakeFiles/vboost_dnn.dir/network.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/prune.cpp.o"
  "CMakeFiles/vboost_dnn.dir/prune.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/quantize.cpp.o"
  "CMakeFiles/vboost_dnn.dir/quantize.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/serialize.cpp.o"
  "CMakeFiles/vboost_dnn.dir/serialize.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/tensor.cpp.o"
  "CMakeFiles/vboost_dnn.dir/tensor.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/trainer.cpp.o"
  "CMakeFiles/vboost_dnn.dir/trainer.cpp.o.d"
  "CMakeFiles/vboost_dnn.dir/zoo.cpp.o"
  "CMakeFiles/vboost_dnn.dir/zoo.cpp.o.d"
  "libvboost_dnn.a"
  "libvboost_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
