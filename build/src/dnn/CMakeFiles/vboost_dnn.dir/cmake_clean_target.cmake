file(REMOVE_RECURSE
  "libvboost_dnn.a"
)
