
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/dataset.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/dataset.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/dataset.cpp.o.d"
  "/root/repo/src/dnn/layers.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/layers.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/layers.cpp.o.d"
  "/root/repo/src/dnn/network.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/network.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/network.cpp.o.d"
  "/root/repo/src/dnn/prune.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/prune.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/prune.cpp.o.d"
  "/root/repo/src/dnn/quantize.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/quantize.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/quantize.cpp.o.d"
  "/root/repo/src/dnn/serialize.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/serialize.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/serialize.cpp.o.d"
  "/root/repo/src/dnn/tensor.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/tensor.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/tensor.cpp.o.d"
  "/root/repo/src/dnn/trainer.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/trainer.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/trainer.cpp.o.d"
  "/root/repo/src/dnn/zoo.cpp" "src/dnn/CMakeFiles/vboost_dnn.dir/zoo.cpp.o" "gcc" "src/dnn/CMakeFiles/vboost_dnn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
