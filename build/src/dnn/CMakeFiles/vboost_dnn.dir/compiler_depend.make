# Empty compiler generated dependencies file for vboost_dnn.
# This may be replaced when dependencies are built.
