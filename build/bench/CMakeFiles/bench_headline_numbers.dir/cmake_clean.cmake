file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_numbers.dir/bench_headline_numbers.cpp.o"
  "CMakeFiles/bench_headline_numbers.dir/bench_headline_numbers.cpp.o.d"
  "bench_headline_numbers"
  "bench_headline_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
