# Empty dependencies file for bench_headline_numbers.
# This may be replaced when dependencies are built.
