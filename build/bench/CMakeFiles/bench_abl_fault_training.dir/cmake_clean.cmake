file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_fault_training.dir/bench_abl_fault_training.cpp.o"
  "CMakeFiles/bench_abl_fault_training.dir/bench_abl_fault_training.cpp.o.d"
  "bench_abl_fault_training"
  "bench_abl_fault_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fault_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
