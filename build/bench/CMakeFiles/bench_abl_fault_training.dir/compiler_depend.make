# Empty compiler generated dependencies file for bench_abl_fault_training.
# This may be replaced when dependencies are built.
