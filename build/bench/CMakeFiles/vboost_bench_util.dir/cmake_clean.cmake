file(REMOVE_RECURSE
  "CMakeFiles/vboost_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/vboost_bench_util.dir/bench_util.cpp.o.d"
  "libvboost_bench_util.a"
  "libvboost_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vboost_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
