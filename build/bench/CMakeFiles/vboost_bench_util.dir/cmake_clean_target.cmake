file(REMOVE_RECURSE
  "libvboost_bench_util.a"
)
