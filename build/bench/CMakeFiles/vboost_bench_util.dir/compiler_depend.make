# Empty compiler generated dependencies file for vboost_bench_util.
# This may be replaced when dependencies are built.
