# Empty compiler generated dependencies file for bench_abl_boost_levels.
# This may be replaced when dependencies are built.
