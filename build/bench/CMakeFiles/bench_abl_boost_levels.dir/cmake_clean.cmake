file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_boost_levels.dir/bench_abl_boost_levels.cpp.o"
  "CMakeFiles/bench_abl_boost_levels.dir/bench_abl_boost_levels.cpp.o.d"
  "bench_abl_boost_levels"
  "bench_abl_boost_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_boost_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
