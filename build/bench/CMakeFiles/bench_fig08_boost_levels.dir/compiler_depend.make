# Empty compiler generated dependencies file for bench_fig08_boost_levels.
# This may be replaced when dependencies are built.
