file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_canary.dir/bench_abl_canary.cpp.o"
  "CMakeFiles/bench_abl_canary.dir/bench_abl_canary.cpp.o.d"
  "bench_abl_canary"
  "bench_abl_canary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_canary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
