# Empty compiler generated dependencies file for bench_abl_canary.
# This may be replaced when dependencies are built.
