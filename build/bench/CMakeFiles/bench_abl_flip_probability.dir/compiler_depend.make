# Empty compiler generated dependencies file for bench_abl_flip_probability.
# This may be replaced when dependencies are built.
