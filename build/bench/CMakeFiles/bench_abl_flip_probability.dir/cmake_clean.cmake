file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_flip_probability.dir/bench_abl_flip_probability.cpp.o"
  "CMakeFiles/bench_abl_flip_probability.dir/bench_abl_flip_probability.cpp.o.d"
  "bench_abl_flip_probability"
  "bench_abl_flip_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_flip_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
