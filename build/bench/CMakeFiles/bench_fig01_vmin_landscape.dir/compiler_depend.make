# Empty compiler generated dependencies file for bench_fig01_vmin_landscape.
# This may be replaced when dependencies are built.
