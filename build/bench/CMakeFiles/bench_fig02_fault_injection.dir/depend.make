# Empty dependencies file for bench_fig02_fault_injection.
# This may be replaced when dependencies are built.
