file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_regulators.dir/bench_ext_regulators.cpp.o"
  "CMakeFiles/bench_ext_regulators.dir/bench_ext_regulators.cpp.o.d"
  "bench_ext_regulators"
  "bench_ext_regulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_regulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
