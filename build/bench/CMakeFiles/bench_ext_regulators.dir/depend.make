# Empty dependencies file for bench_ext_regulators.
# This may be replaced when dependencies are built.
