# Empty dependencies file for bench_ext_efficiency.
# This may be replaced when dependencies are built.
