file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_waveform.dir/bench_fig04_waveform.cpp.o"
  "CMakeFiles/bench_fig04_waveform.dir/bench_fig04_waveform.cpp.o.d"
  "bench_fig04_waveform"
  "bench_fig04_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
