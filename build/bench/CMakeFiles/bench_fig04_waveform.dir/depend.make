# Empty dependencies file for bench_fig04_waveform.
# This may be replaced when dependencies are built.
