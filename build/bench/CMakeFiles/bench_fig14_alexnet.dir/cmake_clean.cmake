file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_alexnet.dir/bench_fig14_alexnet.cpp.o"
  "CMakeFiles/bench_fig14_alexnet.dir/bench_fig14_alexnet.cpp.o.d"
  "bench_fig14_alexnet"
  "bench_fig14_alexnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
