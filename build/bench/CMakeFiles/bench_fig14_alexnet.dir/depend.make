# Empty dependencies file for bench_fig14_alexnet.
# This may be replaced when dependencies are built.
