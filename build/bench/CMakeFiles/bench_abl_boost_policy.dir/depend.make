# Empty dependencies file for bench_abl_boost_policy.
# This may be replaced when dependencies are built.
