file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_boost_policy.dir/bench_abl_boost_policy.cpp.o"
  "CMakeFiles/bench_abl_boost_policy.dir/bench_abl_boost_policy.cpp.o.d"
  "bench_abl_boost_policy"
  "bench_abl_boost_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_boost_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
