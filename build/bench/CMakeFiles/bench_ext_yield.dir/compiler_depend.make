# Empty compiler generated dependencies file for bench_ext_yield.
# This may be replaced when dependencies are built.
