file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_yield.dir/bench_ext_yield.cpp.o"
  "CMakeFiles/bench_ext_yield.dir/bench_ext_yield.cpp.o.d"
  "bench_ext_yield"
  "bench_ext_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
