file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fcdnn.dir/bench_fig13_fcdnn.cpp.o"
  "CMakeFiles/bench_fig13_fcdnn.dir/bench_fig13_fcdnn.cpp.o.d"
  "bench_fig13_fcdnn"
  "bench_fig13_fcdnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fcdnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
