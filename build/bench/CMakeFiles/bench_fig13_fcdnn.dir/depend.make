# Empty dependencies file for bench_fig13_fcdnn.
# This may be replaced when dependencies are built.
