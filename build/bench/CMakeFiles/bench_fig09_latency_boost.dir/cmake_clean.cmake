file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_latency_boost.dir/bench_fig09_latency_boost.cpp.o"
  "CMakeFiles/bench_fig09_latency_boost.dir/bench_fig09_latency_boost.cpp.o.d"
  "bench_fig09_latency_boost"
  "bench_fig09_latency_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_latency_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
