# Empty dependencies file for bench_fig09_latency_boost.
# This may be replaced when dependencies are built.
