
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_latency_boost.cpp" "bench/CMakeFiles/bench_fig09_latency_boost.dir/bench_fig09_latency_boost.cpp.o" "gcc" "bench/CMakeFiles/bench_fig09_latency_boost.dir/bench_fig09_latency_boost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vboost_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/vboost_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/vboost_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vboost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vboost_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/vboost_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/vboost_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vboost_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vboost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
