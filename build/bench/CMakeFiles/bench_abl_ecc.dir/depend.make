# Empty dependencies file for bench_abl_ecc.
# This may be replaced when dependencies are built.
