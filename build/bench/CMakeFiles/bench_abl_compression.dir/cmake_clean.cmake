file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_compression.dir/bench_abl_compression.cpp.o"
  "CMakeFiles/bench_abl_compression.dir/bench_abl_compression.cpp.o.d"
  "bench_abl_compression"
  "bench_abl_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
