# Empty dependencies file for bench_table1_chip_config.
# This may be replaced when dependencies are built.
