/**
 * @file
 * Tests for the supply-configuration energy equations (paper Eqs. 2-7)
 * and the qualitative claims of Sec. 6.1 (Fig. 12 design space).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"

namespace vboost::energy {
namespace {

class SupplyTest : public ::testing::Test
{
  protected:
    SupplyTest()
        : ctx_(core::SimContext::standard()),
          sc_(ctx_.tech, ctx_.design, 16)
    {
    }

    core::SimContext ctx_;
    SupplyConfigurator sc_;
};

TEST_F(SupplyTest, SingleSupplyImplementsEq2)
{
    const Workload w{1000, 5000};
    const auto e = sc_.singleSupplyDynamic(w, 0.5_V);
    const auto &em = sc_.energyModel();
    EXPECT_NEAR(e.sram.value(),
                1000 * em.sramAccessEnergy(0.5_V, 16).value(), 1e-18);
    EXPECT_NEAR(e.pe.value(), 5000 * em.peOpEnergy(0.5_V).value(), 1e-18);
    EXPECT_EQ(e.booster.value(), 0.0);
    EXPECT_EQ(e.ldoLoss.value(), 0.0);
    EXPECT_NEAR(e.total().value(), e.sram.value() + e.pe.value(), 1e-20);
}

TEST_F(SupplyTest, BoostedImplementsEq3)
{
    const Workload w{1000, 5000};
    const auto e = sc_.boostedDynamic(w, 0.4_V, 3);
    const Volt vddv = sc_.boostedVoltage(0.4_V, 3);
    const auto &em = sc_.energyModel();
    EXPECT_NEAR(e.sram.value(),
                1000 * em.sramAccessEnergy(vddv, 16).value(), 1e-18);
    EXPECT_NEAR(e.booster.value(),
                1000 * sc_.booster().boostEventEnergy(0.4_V, 3).value(),
                1e-18);
    EXPECT_NEAR(e.pe.value(), 5000 * em.peOpEnergy(0.4_V).value(), 1e-18);
}

TEST_F(SupplyTest, BoostedMultiPartitionsAccesses)
{
    // Eq. (3) general form: two regions at different levels must sum.
    const auto multi =
        sc_.boostedDynamicMulti({{600, 4}, {400, 1}}, 5000, 0.4_V);
    const auto a = sc_.boostedDynamic({600, 0}, 0.4_V, 4);
    const auto b = sc_.boostedDynamic({400, 5000}, 0.4_V, 1);
    EXPECT_NEAR(multi.total().value(), a.total().value() + b.total().value(),
                1e-18);
}

TEST_F(SupplyTest, DualSupplyImplementsEq6)
{
    const Workload w{1000, 5000};
    const auto e = sc_.dualSupplyDynamic(w, 0.6_V, 0.4_V);
    const auto &em = sc_.energyModel();
    const double eta = sc_.ldo().efficiency(0.4_V, 0.6_V);
    EXPECT_NEAR(e.sram.value(),
                1000 * em.sramAccessEnergy(0.6_V, 16).value(), 1e-18);
    const double pe_load = 5000 * em.peOpEnergy(0.4_V).value();
    EXPECT_NEAR(e.pe.value(), pe_load, 1e-18);
    EXPECT_NEAR(e.ldoLoss.value(), pe_load / eta - pe_load, 1e-18);
}

TEST_F(SupplyTest, LeakageEquations)
{
    const Hertz f = 50.0_MHz;
    // Eq. (4) boosted: everything idles at Vdd.
    const double boosted = sc_.boostedLeakagePerCycle(0.4_V, f).value();
    // Eq. (7) dual: SRAM at Vh + PE through the LDO.
    const double dual =
        sc_.dualSupplyLeakagePerCycle(0.6_V, 0.4_V, f).value();
    const double single = sc_.singleSupplyLeakagePerCycle(0.6_V, f).value();
    // Boosted leaks least: SRAM stays at the low rail (Sec. 6.2).
    EXPECT_LT(boosted, dual);
    EXPECT_LT(dual, single);
}

TEST_F(SupplyTest, BoosterLeakageOverheadIsSmall)
{
    // Sec. 6.2: "the booster circuit results in only 6% overhead".
    const Hertz f = 50.0_MHz;
    SupplyConfigurator sc18(ctx_.tech, ctx_.design, 18);
    const double with_bc = sc18.boostedLeakagePerCycle(0.4_V, f).value();
    const auto &em = sc18.energyModel();
    const double without_bc =
        em.leakagePerCycle(em.sramLeakage(0.4_V, 36) + em.peLeakage(0.4_V),
                           f)
            .value();
    const double overhead = with_bc / without_bc - 1.0;
    EXPECT_GT(overhead, 0.02);
    EXPECT_LT(overhead, 0.10);
}

TEST_F(SupplyTest, BoostBeatsDualForComputeDominatedWorkloads)
{
    // Fig. 12: boosting wins at low Ops_ratio (AlexNet-like).
    const Workload conv{17, 1000}; // 1.7% access ratio
    const auto boost = sc_.boostedDynamic(conv, 0.4_V, 4);
    const Volt vddv = sc_.boostedVoltage(0.4_V, 4);
    const auto dual = sc_.dualSupplyDynamic(conv, vddv, 0.4_V);
    EXPECT_LT(boost.total().value(), dual.total().value());
}

TEST_F(SupplyTest, DualCanWinAtVeryHighMemoryActivity)
{
    // Sec. 6.2: "dual supply can only be advantageous in cases where
    // the level of boost is low and the memory activity is very high".
    const Workload mem_bound{3000, 1000}; // 3 accesses per MAC
    const auto boost = sc_.boostedDynamic(mem_bound, 0.4_V, 4);
    const Volt vddv = sc_.boostedVoltage(0.4_V, 4);
    const auto dual = sc_.dualSupplyDynamic(mem_bound, vddv, 0.4_V);
    EXPECT_GT(boost.total().value(), dual.total().value() * 0.95);
}

TEST_F(SupplyTest, SingleSupplyAtVddvCostsMoreThanBoosting)
{
    // Fig. 13(a): most savings come from logic staying at Vdd.
    const Workload w{255000, 340000}; // MNIST-like
    const Volt vdd{0.4};
    for (int level = 1; level <= 4; ++level) {
        const Volt vddv = sc_.boostedVoltage(vdd, level);
        EXPECT_LT(sc_.boostedDynamic(w, vdd, level).total().value(),
                  sc_.singleSupplyDynamic(w, vddv).total().value())
            << "level " << level;
    }
}

TEST_F(SupplyTest, RejectsBadConstruction)
{
    EXPECT_THROW(SupplyConfigurator(ctx_.tech, ctx_.design, 0),
                 FatalError);
}

/**
 * Property (Fig. 12 surface): the boosted/dual energy ratio grows
 * with the memory-access share, crossing 1 somewhere in between.
 */
class DesignSpaceSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DesignSpaceSweep, RatioMonotoneInOpsRatio)
{
    auto ctx = core::SimContext::standard();
    SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    const double ops_ratio = GetParam();
    const auto mk = [&](double r) {
        return Workload{static_cast<std::uint64_t>(1e6 * r),
                        static_cast<std::uint64_t>(1e6)};
    };
    const Volt vdd{0.4};
    const Volt vddv = sc.boostedVoltage(vdd, 4);
    auto ratio = [&](const Workload &w) {
        return sc.boostedDynamic(w, vdd, 4).total().value() /
               sc.dualSupplyDynamic(w, vddv, vdd).total().value();
    };
    EXPECT_LT(ratio(mk(ops_ratio)), ratio(mk(ops_ratio * 2)));
}

INSTANTIATE_TEST_SUITE_P(OpsRatios, DesignSpaceSweep,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5, 1.0));

} // namespace
} // namespace vboost::energy
