/**
 * @file
 * Tests for the work-stealing thread pool: submit futures, dynamic
 * parallelFor scheduling, slot exclusivity, exception propagation and
 * deadlock-free nesting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace vboost {
namespace {

// -------------------------------------------------------------- basics

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware)
{
    const unsigned hw = ThreadPool::resolveThreads(0);
    EXPECT_GE(hw, 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(5), 5u);
}

TEST(ThreadPool, ConstructsRequestedWorkerCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    ThreadPool tiny(1);
    EXPECT_EQ(tiny.workerCount(), 1u);
}

TEST(ThreadPool, SubmittedTasksAllRunAndFuturesComplete)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 32);
}

// --------------------------------------------------------- parallelFor

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(),
                     [&](std::size_t i, unsigned) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingletonRanges)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallelFor(0, [&](std::size_t, unsigned) { ++count; });
    EXPECT_EQ(count.load(), 0);
    pool.parallelFor(1, [&](std::size_t, unsigned) { ++count; });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForSlotsAreExclusiveAndInRange)
{
    // Two iterations may only share a slot sequentially, never
    // concurrently: per-slot "busy" flags must never collide.
    ThreadPool pool(4);
    constexpr unsigned kSlots = 3;
    std::vector<std::atomic<int>> busy(kSlots);
    std::atomic<bool> collision{false};
    pool.parallelFor(
        200,
        [&](std::size_t, unsigned slot) {
            ASSERT_LT(slot, kSlots);
            if (busy[slot].fetch_add(1) != 0)
                collision = true;
            std::atomic<int> spin{0};
            while (spin.fetch_add(1) < 500) {
            }
            busy[slot].fetch_sub(1);
        },
        kSlots);
    EXPECT_FALSE(collision.load());
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i, unsigned) {
                                      ++ran;
                                      if (i == 7)
                                          throw std::runtime_error("it 7");
                                  }),
                 std::runtime_error);
    // Abort is best-effort, but no iteration runs twice and the pool
    // remains usable afterwards.
    std::atomic<int> after{0};
    pool.parallelFor(16, [&](std::size_t, unsigned) { ++after; });
    EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Inner regions run from inside pool workers while the outer
    // region holds every worker: join-by-stealing must keep all of
    // them progressing.
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t, unsigned) {
        pool.parallelFor(8, [&](std::size_t, unsigned) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FreeParallelForRunsInlineWithOneThread)
{
    // num_threads == 1 must execute on the calling thread, in order,
    // always with slot 0.
    std::vector<std::size_t> order;
    parallelFor(10, 1, [&](std::size_t i, unsigned slot) {
        EXPECT_EQ(slot, 0u);
        order.push_back(i);
    });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, FreeParallelForCoversRangeWithManyThreads)
{
    std::vector<std::atomic<int>> visits(100);
    parallelFor(visits.size(), 8,
                [&](std::size_t i, unsigned) { ++visits[i]; });
    int sum = 0;
    for (auto &v : visits)
        sum += v.load();
    EXPECT_EQ(sum, 100);
}

TEST(ThreadPool, GlobalPoolIsASingleton)
{
    EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
    EXPECT_GE(ThreadPool::global().workerCount(), 1u);
}

} // namespace
} // namespace vboost
