/**
 * @file
 * Tests for the fault-injection harness: injector targeting, flip
 * accounting, Monte-Carlo experiment statistics, the accuracy-curve
 * interpolator, and the core monotone degradation property.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/accuracy_curve.hpp"
#include "fi/experiment.hpp"

namespace vboost::fi {
namespace {

/** Small trainable network shared by the harness tests. */
dnn::Network
smallNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(16, 24, rng, "fc1");
    net.addLayer<dnn::Relu>("r1");
    net.addLayer<dnn::Dense>(24, 24, rng, "fc2");
    net.addLayer<dnn::Relu>("r2");
    net.addLayer<dnn::Dense>(24, 4, rng, "fc3");
    return net;
}

/** Tiny 4-class dataset of separable Gaussian blobs in 16-D. */
dnn::Dataset
blobs(int n, std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Dataset ds;
    ds.images = dnn::Tensor({n, 16});
    ds.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int cls = static_cast<int>(rng.uniformInt(4));
        ds.labels[static_cast<std::size_t>(i)] = cls;
        for (int j = 0; j < 16; ++j) {
            const double center = (j % 4 == cls) ? 1.0 : 0.0;
            ds.images.at(i, j) =
                static_cast<float>(rng.normal(center, 0.15));
        }
    }
    return ds;
}

class FiTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net_ = new dnn::Network(smallNet(1));
        train_ = new dnn::Dataset(blobs(600, 11));
        test_ = new dnn::Dataset(blobs(300, 12));
        dnn::TrainConfig cfg;
        cfg.epochs = 8;
        dnn::SgdTrainer trainer(cfg);
        Rng rng(2);
        trainer.train(*net_, *train_, rng);
        dnn::clipParameters(*net_, 0.5f);
    }

    static void
    TearDownTestSuite()
    {
        delete net_;
        delete train_;
        delete test_;
        net_ = nullptr;
        train_ = nullptr;
        test_ = nullptr;
    }

    static dnn::Network *net_;
    static dnn::Dataset *train_;
    static dnn::Dataset *test_;
};

dnn::Network *FiTest::net_ = nullptr;
dnn::Dataset *FiTest::train_ = nullptr;
dnn::Dataset *FiTest::test_ = nullptr;

TEST_F(FiTest, TrainedModelIsAccurate)
{
    EXPECT_GT(dnn::SgdTrainer::evaluate(*net_, *test_, 0), 0.95);
}

TEST_F(FiTest, CorruptNetworkZeroProbIsQuantizationOnly)
{
    auto scratch = smallNet(2);
    sram::VulnerabilityMap map(3, 0);
    Rng rng(4);
    const auto flips = corruptNetwork(scratch, *net_, map, 0.0,
                                      InjectionSpec::allWeights(),
                                      MemoryLayout{}, rng);
    EXPECT_EQ(flips, 0u);
    // Accuracy unchanged by quantization round trip on this model.
    EXPECT_GT(dnn::SgdTrainer::evaluate(scratch, *test_, 0), 0.95);
}

TEST_F(FiTest, FlipCountTracksFailProb)
{
    auto scratch = smallNet(2);
    sram::VulnerabilityMap map(3, 0);
    Rng rng(4);
    std::uint64_t bits = 0;
    for (auto &w : net_->weightParams())
        bits += w.value->numel() * 16;
    const double f = 0.02;
    const auto flips = corruptNetwork(scratch, *net_, map, f,
                                      InjectionSpec::allWeights(),
                                      MemoryLayout{}, rng);
    const double expected = static_cast<double>(bits) * f * 0.5;
    EXPECT_NEAR(static_cast<double>(flips), expected, expected * 0.25);
}

TEST_F(FiTest, SingleLayerInjectionOnlyTouchesThatLayer)
{
    auto scratch = smallNet(2);
    sram::VulnerabilityMap map(3, 0);
    Rng rng(4);
    corruptNetwork(scratch, *net_, map, 0.2,
                   InjectionSpec::singleLayer(1), MemoryLayout{}, rng);

    auto src_w = net_->weightParams();
    auto dst_w = scratch.weightParams();
    // Layer 1 corrupted...
    const auto clean1 = dnn::quantizeRoundTrip(*src_w[1].value);
    bool changed = false;
    for (std::size_t i = 0; i < dst_w[1].value->numel(); ++i)
        changed = changed || (*dst_w[1].value)[i] != clean1[i];
    EXPECT_TRUE(changed);
    // ...layers 0 and 2 exactly equal their quantized round trip.
    for (std::size_t l : {std::size_t{0}, std::size_t{2}}) {
        const auto clean = dnn::quantizeRoundTrip(*src_w[l].value);
        for (std::size_t i = 0; i < clean.numel(); ++i)
            ASSERT_EQ((*dst_w[l].value)[i], clean[i]) << "layer " << l;
    }
}

TEST_F(FiTest, LayerIndexValidated)
{
    auto scratch = smallNet(2);
    sram::VulnerabilityMap map(3, 0);
    Rng rng(4);
    EXPECT_THROW(corruptNetwork(scratch, *net_, map, 0.1,
                                InjectionSpec::singleLayer(3),
                                MemoryLayout{}, rng),
                 FatalError);
}

TEST_F(FiTest, CorruptInputsPreservesShape)
{
    sram::VulnerabilityMap map(5, 0);
    Rng rng(6);
    const auto corrupted =
        corruptInputs(test_->images, map, 0.05, 0.5, MemoryLayout{}, rng);
    EXPECT_EQ(corrupted.shape(), test_->images.shape());
    bool changed = false;
    for (std::size_t i = 0; i < corrupted.numel() && !changed; ++i)
        changed = corrupted[i] != test_->images[i];
    EXPECT_TRUE(changed);
}

TEST_F(FiTest, RunnerStatisticsAreConsistent)
{
    ExperimentConfig cfg;
    cfg.numMaps = 6;
    cfg.maxTestSamples = 200;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    const auto p = runner.run(0.02, InjectionSpec::allWeights());
    EXPECT_GE(p.maxAccuracy, p.meanAccuracy);
    EXPECT_LE(p.minAccuracy, p.meanAccuracy);
    EXPECT_GE(p.stddevAccuracy, 0.0);
    EXPECT_GT(p.meanBitFlips, 0.0);
    EXPECT_DOUBLE_EQ(p.failProb, 0.02);
}

TEST_F(FiTest, AccuracyDegradesMonotonically)
{
    // The central invariant behind Fig. 2: higher bit failure
    // probability can only hurt (up to Monte-Carlo noise).
    ExperimentConfig cfg;
    cfg.numMaps = 6;
    cfg.maxTestSamples = 200;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    const double a0 = runner.baselineAccuracy();
    const double a1 =
        runner.run(0.001, InjectionSpec::allWeights()).meanAccuracy;
    const double a2 =
        runner.run(0.03, InjectionSpec::allWeights()).meanAccuracy;
    const double a3 =
        runner.run(0.3, InjectionSpec::allWeights()).meanAccuracy;
    EXPECT_GE(a0 + 0.02, a1);
    EXPECT_GT(a1 + 0.05, a2);
    EXPECT_GT(a2 + 0.05, a3);
    EXPECT_LT(a3, 0.6); // heavy corruption ruins the model
}

TEST_F(FiTest, InputsAreMoreTolerantThanWeights)
{
    // Fig. 2: bit flips in inputs cost far less accuracy than the
    // same rate in weights.
    ExperimentConfig cfg;
    cfg.numMaps = 6;
    cfg.maxTestSamples = 200;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    const double f = 0.02;
    const double w =
        runner.run(f, InjectionSpec::allWeights()).meanAccuracy;
    const double in =
        runner.run(f, InjectionSpec::inputsOnly()).meanAccuracy;
    EXPECT_GT(in, w);
}

TEST_F(FiTest, VoltageSweepUsesFailureModel)
{
    ExperimentConfig cfg;
    cfg.numMaps = 4;
    cfg.maxTestSamples = 150;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    sram::FailureRateModel model;
    const auto points = runner.sweepVoltage({0.6_V, 0.44_V}, model,
                                            InjectionSpec::allWeights());
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].voltage.value(), 0.6);
    EXPECT_NEAR(points[1].failProb, model.rate(0.44_V), 1e-12);
    EXPECT_GE(points[0].meanAccuracy, points[1].meanAccuracy);
}

TEST_F(FiTest, RunnerValidatesConfig)
{
    ExperimentConfig cfg;
    cfg.numMaps = 0;
    EXPECT_THROW(FaultInjectionRunner(*net_, *test_, cfg),
                 FatalError);
    cfg.numMaps = 2;
    cfg.numThreads = -1;
    EXPECT_THROW(FaultInjectionRunner(*net_, *test_, cfg),
                 FatalError);
}

// ------------------------------------------------ parallel determinism

/** Two AccuracyPoints must agree bitwise (exact == on every field). */
void
expectBitwiseEqual(const AccuracyPoint &a, const AccuracyPoint &b)
{
    EXPECT_EQ(a.voltage.value(), b.voltage.value());
    EXPECT_EQ(a.failProb, b.failProb);
    EXPECT_EQ(a.meanAccuracy, b.meanAccuracy);
    EXPECT_EQ(a.stddevAccuracy, b.stddevAccuracy);
    EXPECT_EQ(a.minAccuracy, b.minAccuracy);
    EXPECT_EQ(a.maxAccuracy, b.maxAccuracy);
    EXPECT_EQ(a.meanBitFlips, b.meanBitFlips);
}

TEST_F(FiTest, ParallelRunIsBitwiseIdenticalToSerial)
{
    // The acceptance bar of the parallel engine: at a fixed seed,
    // numThreads = 1 and numThreads = 8 produce bitwise identical
    // Monte-Carlo statistics (maps own their seeds; reduction is in
    // map order).
    ExperimentConfig serial_cfg;
    serial_cfg.numMaps = 10;
    serial_cfg.maxTestSamples = 200;
    serial_cfg.numThreads = 1;
    ExperimentConfig parallel_cfg = serial_cfg;
    parallel_cfg.numThreads = 8;

    FaultInjectionRunner serial(*net_, *test_, serial_cfg);
    FaultInjectionRunner parallel(*net_, *test_, parallel_cfg);

    EXPECT_EQ(serial.baselineAccuracy(), parallel.baselineAccuracy());
    expectBitwiseEqual(serial.run(0.02, InjectionSpec::allWeights()),
                       parallel.run(0.02, InjectionSpec::allWeights()));
    expectBitwiseEqual(serial.run(0.02, InjectionSpec::inputsOnly()),
                       parallel.run(0.02, InjectionSpec::inputsOnly()));
    expectBitwiseEqual(serial.runPerLayer({0.01, 0.03, 0.002}),
                       parallel.runPerLayer({0.01, 0.03, 0.002}));

    sram::EccStats es, ep;
    expectBitwiseEqual(serial.runWithEcc(0.03, 0.5, &es),
                       parallel.runWithEcc(0.03, 0.5, &ep));
    EXPECT_EQ(es.words, ep.words);
    EXPECT_EQ(es.corrected, ep.corrected);
    EXPECT_EQ(es.detectedUncorrectable, ep.detectedUncorrectable);
}

TEST_F(FiTest, ParallelSweepMatchesPointwiseRuns)
{
    // The (voltage x map) grid parallelization must agree with
    // voltage-at-a-time evaluation, and with the serial sweep.
    sram::FailureRateModel model;
    const std::vector<Volt> grid{0.60_V, 0.46_V, 0.40_V};

    ExperimentConfig serial_cfg;
    serial_cfg.numMaps = 5;
    serial_cfg.maxTestSamples = 150;
    serial_cfg.numThreads = 1;
    ExperimentConfig parallel_cfg = serial_cfg;
    parallel_cfg.numThreads = 8;

    FaultInjectionRunner serial(*net_, *test_, serial_cfg);
    FaultInjectionRunner parallel(*net_, *test_, parallel_cfg);

    const auto spec = InjectionSpec::allWeights();
    const auto swept = parallel.sweepVoltage(grid, model, spec);
    const auto reference = serial.sweepVoltage(grid, model, spec);
    ASSERT_EQ(swept.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        expectBitwiseEqual(swept[i], reference[i]);
        expectBitwiseEqual(swept[i],
                           serial.runAtVoltage(grid[i], model, spec));
    }
}

TEST_F(FiTest, RunnerDoesNotMutateGoldenNetwork)
{
    // The runner clones scratch networks internally; the caller's
    // trained parameters must come back untouched.
    std::vector<float> before;
    for (auto &p : net_->params())
        for (std::size_t i = 0; i < p.value->numel(); ++i)
            before.push_back((*p.value)[i]);

    ExperimentConfig cfg;
    cfg.numMaps = 4;
    cfg.maxTestSamples = 100;
    cfg.numThreads = 4;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    runner.run(0.1, InjectionSpec::allWeights());

    std::size_t k = 0;
    for (auto &p : net_->params())
        for (std::size_t i = 0; i < p.value->numel(); ++i)
            ASSERT_EQ((*p.value)[i], before[k++]) << p.name;
}

// ------------------------------------------------------- accuracy curve

TEST(AccuracyCurve, InterpolatesLogLinearly)
{
    AccuracyCurve curve({1e-4, 1e-2}, {0.9, 0.5}, 0.95);
    EXPECT_DOUBLE_EQ(curve.at(1e-4), 0.9);
    EXPECT_DOUBLE_EQ(curve.at(1e-2), 0.5);
    EXPECT_NEAR(curve.at(1e-3), 0.7, 1e-9); // halfway in log space
    EXPECT_DOUBLE_EQ(curve.at(0.5), 0.5);   // clamps above
    EXPECT_DOUBLE_EQ(curve.at(0.0), 0.95);  // fault-free below
}

TEST(AccuracyCurve, ValidatesSamples)
{
    EXPECT_THROW(AccuracyCurve({1e-3}, {0.9}, 1.0), FatalError);
    EXPECT_THROW(AccuracyCurve({1e-3, 1e-4}, {0.9, 0.8}, 1.0),
                 FatalError);
    EXPECT_THROW(AccuracyCurve({0.0, 1e-3}, {0.9, 0.8}, 1.0), FatalError);
    EXPECT_THROW(AccuracyCurve({1e-3, 1e-2}, {0.9}, 1.0), FatalError);
}

TEST_F(FiTest, SampledCurveIsUsableForIsoAccuracy)
{
    ExperimentConfig cfg;
    cfg.numMaps = 4;
    cfg.maxTestSamples = 150;
    FaultInjectionRunner runner(*net_, *test_, cfg);
    const auto curve = AccuracyCurve::sample(
        runner, InjectionSpec::allWeights(), 1e-4, 0.2, 5);
    EXPECT_GT(curve.faultFree(), 0.9);
    // Query between samples without re-running Monte Carlo.
    EXPECT_GE(curve.at(1e-4), curve.at(0.2) - 1e-9);
}

} // namespace
} // namespace vboost::fi
