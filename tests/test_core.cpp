/**
 * @file
 * Tests for the core facade: SimContext, the Table-2 boost
 * configurations, and the iso-accuracy TradeoffExplorer behind
 * Fig. 15.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"

namespace vboost::core {
namespace {

TEST(SimContext, StandardBundleIsConsistent)
{
    const auto ctx = SimContext::standard();
    EXPECT_EQ(ctx.design.levels(), 4);
    EXPECT_NEAR(ctx.failure.rateAtAnchor, 1.4e-2, 1e-6);
    EXPECT_GT(ctx.tech.peOpCap.value(), 0.0);
}

TEST(BoostConfiguration, Table2HasUniformAndDifferentialRows)
{
    // Table 2: Boost_Vddv1..4 plus Boost_diff1 and Boost_diff2 for a
    // 4-layer network with 4 levels.
    const auto configs = BoostConfiguration::table2(4, 4);
    ASSERT_EQ(configs.size(), 6u);
    EXPECT_EQ(configs[0].name, "Boost_Vddv1");
    EXPECT_EQ(configs[0].layerLevels, (std::vector<int>{1, 1, 1, 1}));
    EXPECT_EQ(configs[3].name, "Boost_Vddv4");
    EXPECT_EQ(configs[3].layerLevels, (std::vector<int>{4, 4, 4, 4}));
    // diff1: deepest layer boosted highest.
    EXPECT_EQ(configs[4].name, "Boost_diff1");
    EXPECT_EQ(configs[4].layerLevels, (std::vector<int>{1, 2, 3, 4}));
    // diff2: first layer boosted highest.
    EXPECT_EQ(configs[5].name, "Boost_diff2");
    EXPECT_EQ(configs[5].layerLevels, (std::vector<int>{4, 3, 2, 1}));
    EXPECT_EQ(configs[5].maxLevel(), 4);
}

TEST(BoostConfiguration, Table2ClampsForDeepNetworks)
{
    const auto configs = BoostConfiguration::table2(6, 4);
    for (int level : configs[4].layerLevels) {
        EXPECT_GE(level, 1);
        EXPECT_LE(level, 4);
    }
    EXPECT_THROW(BoostConfiguration::table2(0, 4), FatalError);
}

class TradeoffTest : public ::testing::Test
{
  protected:
    TradeoffTest() : ctx_(SimContext::standard()), ex_(ctx_, 16) {}

    SimContext ctx_;
    TradeoffExplorer ex_;
};

TEST_F(TradeoffTest, MinimalLevelReachingTargetVoltage)
{
    // Table 2 footnote: inputs boosted to the minimum level with
    // Vddv > 0.44 V.
    const auto at_040 = ex_.minimalLevelReaching(0.40_V, 0.44_V);
    ASSERT_TRUE(at_040.has_value());
    EXPECT_GE(ex_.boostedVoltage(0.40_V, *at_040), 0.44_V);
    if (*at_040 > 0) {
        EXPECT_LT(ex_.boostedVoltage(0.40_V, *at_040 - 1), 0.44_V);
    }
    // Already above target: level 0 suffices.
    EXPECT_EQ(ex_.minimalLevelReaching(0.5_V, 0.44_V), 0);
    // Unreachable target.
    EXPECT_FALSE(ex_.minimalLevelReaching(0.34_V, 0.8_V).has_value());
}

TEST_F(TradeoffTest, MinimalLevelForAccuracyUsesOracle)
{
    // Synthetic oracle: accuracy 0.99 above 0.5 V, 0.5 below.
    const auto oracle = [](Volt vddv) {
        return vddv >= 0.5_V ? 0.99 : 0.5;
    };
    const auto level = ex_.minimalLevelForAccuracy(0.4_V, 0.97, oracle);
    ASSERT_TRUE(level.has_value());
    EXPECT_GE(ex_.boostedVoltage(0.4_V, *level), 0.5_V);
    // Impossible target.
    EXPECT_FALSE(
        ex_.minimalLevelForAccuracy(0.4_V, 1.01, oracle).has_value());
    EXPECT_THROW(ex_.minimalLevelForAccuracy(0.4_V, 0.9, nullptr),
                 FatalError);
}

TEST_F(TradeoffTest, IsoAccuracyPointComparesBoostAndDual)
{
    const auto oracle = [](Volt vddv) {
        return vddv >= 0.5_V ? 0.99 : 0.5;
    };
    const energy::Workload conv{17000, 1000000}; // compute-dominated
    const auto op = ex_.isoAccuracyPoint(0.4_V, 0.97, oracle, conv);
    ASSERT_TRUE(op.has_value());
    EXPECT_GE(op->accuracy, 0.97);
    EXPECT_GT(op->level, 0);
    EXPECT_GE(op->vddv, 0.5_V);
    // Fig. 15 headline: boosting beats the dual-rail equivalent for a
    // compute-dominated workload.
    EXPECT_LT(op->boostedEnergy.value(), op->dualEnergy.value());
}

TEST_F(TradeoffTest, HigherTargetNeedsHigherLevel)
{
    // Graded oracle: accuracy improves with boosted voltage.
    const auto oracle = [](Volt vddv) {
        return std::min(1.0, 0.5 + vddv.value());
    };
    const energy::Workload w{1000, 10000};
    const auto low = ex_.isoAccuracyPoint(0.4_V, 0.92, oracle, w);
    const auto high = ex_.isoAccuracyPoint(0.4_V, 1.0, oracle, w);
    ASSERT_TRUE(low.has_value());
    ASSERT_TRUE(high.has_value());
    EXPECT_LE(low->level, high->level);
    EXPECT_LE(low->boostedEnergy.value(), high->boostedEnergy.value());
}

} // namespace
} // namespace vboost::core
