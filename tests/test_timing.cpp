/**
 * @file
 * Tests for the timing-speculative datapath (DESIGN.md §13): the
 * alpha-power timing-error model (monotonicity, guardbanded worst-case
 * period, safe-voltage search), the replay policy validation, and the
 * Razor datapath itself — detect-and-replay bookkeeping, the EWMA
 * escalation ladder, worst-case clock stretch, §7 determinism of the
 * violation stream, and exact reconciliation between stats() and the
 * exported observability metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/tech.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "timing/replay_policy.hpp"
#include "timing/speculative_datapath.hpp"
#include "timing/timing_model.hpp"

namespace vboost::timing {
namespace {

const circuit::TechnologyParams tech =
    circuit::TechnologyParams::default14nm();

/** The VLV-mode 50 MHz clock the paper's Table 1 specifies. */
const Hertz kVlvClock{50e6};
const Second kVlvPeriod{1.0 / 50e6};

TimingErrorModel
model()
{
    return TimingErrorModel(tech, TimingParams{});
}

// ------------------------------------------------------ TimingParams

TEST(TimingParams, ValidateRejectsBadKnobs)
{
    TimingParams p;
    p.stageFractions = {};
    EXPECT_THROW(p.validate(), FatalError);

    p = TimingParams{};
    p.stageFractions = {1.0, 1.2}; // above the full datapath delay
    EXPECT_THROW(p.validate(), FatalError);

    p = TimingParams{};
    p.slackSigma = 0.0;
    EXPECT_THROW(p.validate(), FatalError);

    p = TimingParams{};
    p.pathsPerOp = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = TimingParams{};
    p.delayAtNominal = Second(0.0);
    EXPECT_THROW(p.validate(), FatalError);
}

// -------------------------------------------------- TimingErrorModel

TEST(TimingErrorModel, DelayAnchoredAtNominalClock)
{
    const auto m = model();
    // The datapath closes timing at the 330 MHz nominal logic clock
    // with zero margin: delay(0.8 V) == 1/330 MHz.
    EXPECT_NEAR(m.datapathDelay(tech.nominalVdd).value(),
                TimingParams{}.delayAtNominal.value(), 1e-15);
}

TEST(TimingErrorModel, DelayGrowsAsVoltageDrops)
{
    const auto m = model();
    EXPECT_GT(m.datapathDelay(0.34_V), m.datapathDelay(0.40_V));
    EXPECT_GT(m.datapathDelay(0.40_V), m.datapathDelay(0.80_V));
    EXPECT_THROW(m.datapathDelay(Volt(tech.thresholdVoltage.value())),
                 FatalError);
}

TEST(TimingErrorModel, ErrorProbMonotoneInVoltageAndPeriod)
{
    const auto m = model();
    // Decreasing in voltage at a fixed period...
    double prev = 1.1;
    for (double v : {0.31, 0.33, 0.35, 0.37, 0.40}) {
        const double p = m.opErrorProb(Volt(v), kVlvPeriod);
        EXPECT_LE(p, prev) << "not monotone at " << v << " V";
        prev = p;
    }
    // ...and decreasing in period at a fixed voltage (the replay
    // slowdown mechanism relies on this).
    const double fast = m.opErrorProb(0.33_V, kVlvPeriod);
    const double slow =
        m.opErrorProb(0.33_V, Second(2.0 * kVlvPeriod.value()));
    EXPECT_LT(slow, fast);
    EXPECT_GT(fast, 0.5); // 0.33 V is deep in the violation regime
}

TEST(TimingErrorModel, StageZeroIsTheDeepestStage)
{
    const auto m = model();
    const double s0 = m.stageErrorProb(0, 0.33_V, kVlvPeriod);
    for (int s = 1; s < TimingParams{}.numStages(); ++s)
        EXPECT_GE(s0, m.stageErrorProb(s, 0.33_V, kVlvPeriod));
}

TEST(TimingErrorModel, WorstCasePeriodCoversTheGuardband)
{
    const auto m = model();
    const Second delay = m.datapathDelay(0.34_V);
    const Second wc = m.worstCasePeriod(0.34_V, 4.0);
    EXPECT_GT(wc.value(), delay.value());
    // A clock at the worst-case period leaves only far-tail error
    // mass (stage 0 sits exactly guardband_sigmas out).
    EXPECT_LT(m.opErrorProb(0.34_V, wc), 1e-2);
    EXPECT_LT(m.opErrorProb(0.34_V, wc),
              m.opErrorProb(0.34_V, delay));
    // More guardband, longer period.
    EXPECT_GT(m.worstCasePeriod(0.34_V, 6.0), wc);
}

TEST(TimingErrorModel, SafeVoltageMeetsTheResidualBound)
{
    const auto m = model();
    const Volt safe = m.safeVoltage(kVlvPeriod, 1e-12);
    EXPECT_LE(m.opErrorProb(safe, kVlvPeriod), 1e-12);
    // One grid step below the safe rail must violate the bound
    // (otherwise the search did not return the smallest voltage).
    EXPECT_GT(m.opErrorProb(Volt(safe.value() - 1e-3), kVlvPeriod),
              1e-12);
}

// -------------------------------------------------------- ReplayPolicy

TEST(ReplayPolicy, ValidateRejectsBadKnobs)
{
    ReplayPolicy p;
    p.replayBudget = -1;
    EXPECT_THROW(p.validate(), FatalError);

    p = ReplayPolicy{};
    p.replayBudget = ReplayPolicy::kMaxIssues; // budget+1 issues > max
    EXPECT_THROW(p.validate(), FatalError);

    p = ReplayPolicy{};
    p.replaySlowdown = 0.5;
    EXPECT_THROW(p.validate(), FatalError);

    p = ReplayPolicy{};
    p.stepSize = Volt(0.0);
    EXPECT_THROW(p.validate(), FatalError);

    EXPECT_NO_THROW(ReplayPolicy::razor(0).validate()); // detect-only
    EXPECT_NO_THROW(ReplayPolicy::worstCase().validate());
}

TEST(ReplayPolicy, NamesAreStable)
{
    EXPECT_EQ(ReplayPolicy::worstCase().name(), "worstcase");
    EXPECT_EQ(ReplayPolicy::razor().name(), "razor/r3/stepup");
    EXPECT_EQ(ReplayPolicy::razor(1, TimingEscalation::MaxOut).name(),
              "razor/r1/maxout");
    EXPECT_EQ(ReplayPolicy::razor(0, TimingEscalation::Hold).name(),
              "razor/r0/hold");
}

// ------------------------------------------------ SpeculativeDatapath

SpeculativeDatapath
datapath(const ReplayPolicy &policy, Volt v)
{
    return SpeculativeDatapath(tech, TimingParams{}, policy, v,
                               kVlvClock);
}

TEST(SpeculativeDatapath, CleanAboveTheCliff)
{
    // 0.38 V closes timing at 50 MHz with margin: no violations, no
    // replays, and per-op energy only.
    auto dp = datapath(ReplayPolicy::razor(), 0.38_V);
    dp.reseed(42);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 5000, corrupted);
    EXPECT_TRUE(corrupted.empty());
    EXPECT_EQ(dp.stats().ops, 5000u);
    EXPECT_EQ(dp.stats().errors, 0u);
    EXPECT_EQ(dp.stats().replays, 0u);
    EXPECT_EQ(dp.stats().stepUps, 0u);
    EXPECT_GT(dp.stats().logicEnergy.value(), 0.0);
    EXPECT_EQ(dp.stats().replayEnergy.value(), 0.0);
}

TEST(SpeculativeDatapath, ReplaysAbsorbTheCliffAndLadderEscalates)
{
    // 0.32 V: every first issue violates (p0 ~ 1) but a 2x-slowdown
    // replay always closes (p1 ~ 0). Replays absorb the transient
    // until the EWMA monitors cross and the ladder steps the standing
    // voltage out of the violation regime.
    auto dp = datapath(ReplayPolicy::razor(), 0.32_V);
    dp.reseed(7);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 5000, corrupted);
    EXPECT_TRUE(corrupted.empty()); // replays always rescued the op
    EXPECT_GT(dp.stats().errors, 0u);
    EXPECT_GT(dp.stats().replays, 0u);
    EXPECT_GT(dp.stats().stepUps, 0u);
    EXPECT_GT(dp.standingVoltage(), 0.32_V);
    EXPECT_LE(dp.standingVoltage(), dp.safeVoltage());
    // Out of the violation regime: the climbed rung's residual
    // first-issue error is orders of magnitude below the cliff's
    // p ~ 1, and every survivor is still caught by replay (the
    // corrupted list above stayed empty).
    EXPECT_LT(dp.currentOpErrorProb(), 1e-4);
    EXPECT_GT(dp.stats().replayEnergy.value(), 0.0);
    EXPECT_GT(dp.stats().replayCycles, 0u);
    EXPECT_GT(dp.stats().bubbleCycles, 0u);
    // A speculative design runs at the target clock.
    EXPECT_DOUBLE_EQ(dp.cycleStretch(), 1.0);
}

TEST(SpeculativeDatapath, DetectOnlyCommitsCorruptedResults)
{
    // Budget 0 with Hold escalation: violations are detected but
    // never replayed and the rail never moves, so every violating op
    // commits a corrupted result.
    auto dp = datapath(ReplayPolicy::razor(0, TimingEscalation::Hold),
                       0.32_V);
    dp.reseed(9);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 500, corrupted);
    EXPECT_EQ(dp.stats().replays, 0u);
    EXPECT_GT(dp.stats().corrupted, 0u);
    EXPECT_EQ(dp.stats().corrupted, corrupted.size());
    EXPECT_EQ(dp.stats().corrupted, dp.stats().errors);
    EXPECT_EQ(dp.stats().stepUps, 0u);
    EXPECT_DOUBLE_EQ(dp.standingVoltage().value(), 0.32);
}

TEST(SpeculativeDatapath, MaxOutJumpsToTheSafeRail)
{
    auto dp = datapath(ReplayPolicy::razor(3, TimingEscalation::MaxOut),
                       0.32_V);
    dp.reseed(11);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 2000, corrupted);
    EXPECT_GE(dp.stats().fallbacks, 1u);
    EXPECT_DOUBLE_EQ(dp.standingVoltage().value(),
                     dp.safeVoltage().value());
    EXPECT_LE(dp.currentOpErrorProb(), 1e-12);
}

TEST(SpeculativeDatapath, WorstCaseStretchesTheClockAndNeverErrs)
{
    auto dp = datapath(ReplayPolicy::worstCase(), 0.32_V);
    dp.reseed(13);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 2000, corrupted);
    EXPECT_TRUE(corrupted.empty());
    EXPECT_EQ(dp.stats().errors, 0u);
    EXPECT_EQ(dp.stats().replays, 0u);
    // 0.32 V cannot close 50 MHz worst-case: the clock stretches.
    EXPECT_GT(dp.cycleStretch(), 1.0);
    EXPECT_GT(dp.effectivePeriod().value(), kVlvPeriod.value());
    // Above the cliff the guardbanded period fits and no stretch.
    auto fast = datapath(ReplayPolicy::worstCase(), 0.40_V);
    EXPECT_DOUBLE_EQ(fast.cycleStretch(), 1.0);
}

TEST(SpeculativeDatapath, ViolationStreamIsDeterministic)
{
    // Same stream key -> bitwise identical stats including the replay
    // digest; a different key decorrelates the violation pattern.
    // Hold the rung so the whole 3000-op Bernoulli stream (p ~ 0.89)
    // feeds the digest instead of a short pre-escalation prefix.
    const auto hold = ReplayPolicy::razor(3, TimingEscalation::Hold);
    std::vector<std::uint64_t> ca, cb, cc;
    auto a = datapath(hold, 0.33_V);
    auto b = datapath(hold, 0.33_V);
    auto c = datapath(hold, 0.33_V);
    a.reseed(1234);
    b.reseed(1234);
    c.reseed(4321);
    a.executeOps(0, 3000, ca);
    b.executeOps(0, 3000, cb);
    c.executeOps(0, 3000, cc);
    EXPECT_EQ(a.stats().errors, b.stats().errors);
    EXPECT_EQ(a.stats().replays, b.stats().replays);
    EXPECT_EQ(a.stats().replayDigest, b.stats().replayDigest);
    EXPECT_EQ(a.stats().logicEnergy.value(),
              b.stats().logicEnergy.value());
    EXPECT_EQ(ca, cb);
    EXPECT_NE(a.stats().replayDigest, c.stats().replayDigest);
}

TEST(SpeculativeDatapath, ReseedResetsRuntimeState)
{
    auto dp = datapath(ReplayPolicy::razor(), 0.32_V);
    dp.reseed(5);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 3000, corrupted);
    const auto first = dp.stats();
    EXPECT_GT(dp.standingVoltage(), 0.32_V);
    // reseed() drops the climbed rung, the monitors and the stats:
    // the second run reproduces the first bitwise.
    dp.reseed(5);
    EXPECT_EQ(dp.stats().ops, 0u);
    EXPECT_DOUBLE_EQ(dp.standingVoltage().value(), 0.32);
    corrupted.clear();
    dp.executeOps(0, 3000, corrupted);
    EXPECT_EQ(dp.stats().errors, first.errors);
    EXPECT_EQ(dp.stats().replayDigest, first.replayDigest);
}

TEST(TimingStats, MergeIsOrderSensitiveOnTheDigest)
{
    // Counters add commutatively; the digest chains in map order, so
    // a reordered merge is detectable — the §7 reduction contract.
    // Hold the rung so each run's digest reflects its own full
    // violation stream and the two operands genuinely differ.
    const auto hold = ReplayPolicy::razor(3, TimingEscalation::Hold);
    std::vector<std::uint64_t> c1, c2;
    auto a = datapath(hold, 0.33_V);
    auto b = datapath(hold, 0.33_V);
    a.reseed(100);
    b.reseed(200);
    a.executeOps(0, 1500, c1);
    b.executeOps(0, 1500, c2);

    TimingStats ab = a.stats();
    ab.merge(b.stats());
    TimingStats ba = b.stats();
    ba.merge(a.stats());
    EXPECT_EQ(ab.ops, ba.ops);
    EXPECT_EQ(ab.errors, ba.errors);
    EXPECT_EQ(ab.replays, ba.replays);
    EXPECT_NE(ab.replayDigest, ba.replayDigest);
}

TEST(SpeculativeDatapath, ExportedMetricsReconcileWithStats)
{
    auto dp = datapath(ReplayPolicy::razor(), 0.32_V);
    dp.reseed(77);
    std::vector<std::uint64_t> corrupted;
    dp.executeOps(0, 4000, corrupted);
    const auto &s = dp.stats();

    obs::MetricsRegistry reg;
    const obs::Labels labels{{"cell", "test"}};
    dp.exportMetrics(reg, labels);
    EXPECT_EQ(reg.counter("timing.ops", labels).value(), s.ops);
    EXPECT_EQ(reg.counter("timing.errors", labels).value(), s.errors);
    EXPECT_EQ(reg.counter("timing.replays", labels).value(), s.replays);
    EXPECT_EQ(reg.counter("timing.corrupted", labels).value(),
              s.corrupted);
    EXPECT_EQ(reg.counter("timing.step_ups", labels).value(), s.stepUps);
    EXPECT_EQ(reg.counter("timing.replay_cycles", labels).value(),
              s.replayCycles);
    EXPECT_EQ(reg.counter("timing.bubble_cycles", labels).value(),
              s.bubbleCycles);
    // Energy attribution reconciles exactly — the same doubles, not
    // an approximation (DESIGN.md §11 discipline).
    EXPECT_EQ(reg.sum("timing.energy.logic_j", labels).value(),
              s.logicEnergy.value());
    EXPECT_EQ(reg.sum("timing.energy.replay_j", labels).value(),
              s.replayEnergy.value());
    EXPECT_EQ(reg.gauge("timing.standing_v", labels).value(),
              dp.standingVoltage().value());
    // Replay energy is a strict subset of issue energy.
    EXPECT_LT(s.replayEnergy.value(), s.logicEnergy.value());
}

TEST(SpeculativeDatapath, EnergyScalesWithTheStandingRail)
{
    // An op at a higher standing voltage costs more issue energy
    // (CV^2): two clean runs at different rails order correctly.
    std::vector<std::uint64_t> c;
    auto lo = datapath(ReplayPolicy::razor(), 0.38_V);
    auto hi = datapath(ReplayPolicy::razor(), 0.50_V);
    lo.reseed(3);
    hi.reseed(3);
    lo.executeOps(0, 1000, c);
    hi.executeOps(0, 1000, c);
    EXPECT_EQ(lo.stats().errors, 0u);
    EXPECT_EQ(hi.stats().errors, 0u);
    EXPECT_LT(lo.stats().logicEnergy.value(),
              hi.stats().logicEnergy.value());
}

} // namespace
} // namespace vboost::timing
