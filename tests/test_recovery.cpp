/**
 * @file
 * Tests of the chip-adaptive accuracy-recovery subsystem (DESIGN.md
 * §15): configuration validation, the NeuralFuse input transform
 * (residual semantics, overhead accounting, serialization round trips
 * through both path and stream APIs), MATIC map-aware training
 * (per-chip hardening, clustered-map interaction, curriculum/refresh
 * bookkeeping), the §7 bitwise thread-count-invariance contract of
 * the ChipEvaluator (stats digests, trained-weight digests and obs
 * fingerprints), and the serving planner's recovery-mode dimension
 * (selection monotone in SLO strictness, overheads folded into the
 * energy objective).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "dnn/quantize.hpp"
#include "dnn/serialize.hpp"
#include "dnn/trainer.hpp"
#include "obs/observability.hpp"
#include "recovery/input_transform.hpp"
#include "recovery/map_aware_trainer.hpp"
#include "recovery/recovery.hpp"
#include "serve/planner.hpp"
#include "sram/fault_map.hpp"

namespace vboost::recovery {
namespace {

dnn::Network
makeSmallNet(std::uint64_t seed)
{
    Rng r(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 48, r, "fc1");
    net.addLayer<dnn::Relu>("relu");
    net.addLayer<dnn::Dense>(48, 10, r, "fc2");
    return net;
}

// ------------------------------------------------------ validation

TEST(RecoveryConfig, ChipEvalConfigValidates)
{
    ChipEvalConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.numReads = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.flipProb = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.numThreads = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(RecoveryConfig, MapAwareConfigValidates)
{
    MapAwareConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.refreshInterval = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.curriculumEpochs = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.curriculumStartScale = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.curriculumStartScale = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);
    // The shared FaultTrainConfig checks flow through the constructor.
    cfg = {};
    cfg.train.failProb = -0.1;
    EXPECT_THROW(MapAwareTrainer{cfg}, FatalError);
    cfg = {};
    cfg.train.flipProb = 1.5;
    EXPECT_THROW(MapAwareTrainer{cfg}, FatalError);
}

TEST(RecoveryConfig, TransformConfigsValidate)
{
    TransformConfig tc;
    EXPECT_NO_THROW(tc.validate());
    tc.inputDim = 0;
    EXPECT_THROW(tc.validate(), FatalError);
    tc = {};
    tc.hiddenDim = -1;
    EXPECT_THROW(tc.validate(), FatalError);
    tc = {};
    tc.alpha = 0.0;
    EXPECT_THROW(tc.validate(), FatalError);

    TransformTrainConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.failProb = 1.5;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.warmupEpochs = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.gradClip = -0.5;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(RecoveryConfig, PlannedRecoveryValidates)
{
    PlannedRecovery rec;
    EXPECT_NO_THROW(rec.validate()); // None needs no curve
    rec.mode = RecoveryMode::MapAware;
    EXPECT_THROW(rec.validate(), FatalError); // non-None needs a curve
    rec.accuracy = [](Volt) { return 0.9; };
    EXPECT_NO_THROW(rec.validate());
    rec.faultFreeAccuracy = 1.5;
    EXPECT_THROW(rec.validate(), FatalError);
}

TEST(RecoveryConfig, ModeNamesAreStable)
{
    EXPECT_STREQ(toString(RecoveryMode::None), "none");
    EXPECT_STREQ(toString(RecoveryMode::MapAware), "map_aware");
    EXPECT_STREQ(toString(RecoveryMode::InputTransform),
                 "input_transform");
    EXPECT_STREQ(toString(RecoveryMode::Combined), "combined");
}

// -------------------------------------------------- input transform

TEST(InputTransform, ResidualApplyStaysInUnitRange)
{
    TransformConfig cfg;
    cfg.inputDim = 16;
    cfg.hiddenDim = 8;
    InputTransform tf(cfg);

    dnn::Tensor x({4, 16});
    Rng rng(11);
    for (std::size_t e = 0; e < x.numel(); ++e)
        x[e] = static_cast<float>(rng.uniform());
    const auto y = tf.apply(x);
    ASSERT_EQ(y.numel(), x.numel());
    bool any_changed = false;
    for (std::size_t e = 0; e < y.numel(); ++e) {
        EXPECT_GE(y[e], 0.0f);
        EXPECT_LE(y[e], 1.0f);
        any_changed = any_changed || y[e] != x[e];
    }
    EXPECT_TRUE(any_changed);

    EXPECT_EQ(tf.macsPerSample(), 2ull * 16 * 8);
    EXPECT_GT(tf.accessesPerSample(), 0ull);
    EXPECT_GT(tf.parameterCount(), 0u);
}

TEST(InputTransform, SerializationRoundTripsPathsAndStreams)
{
    TransformConfig cfg;
    cfg.inputDim = 16;
    cfg.hiddenDim = 8;
    cfg.initSeed = 1;
    InputTransform a(cfg);
    cfg.initSeed = 2;
    InputTransform b(cfg);
    ASSERT_NE(weightsDigest(a.network()), weightsDigest(b.network()));

    // Stream round trip (the serialize overloads the transform's
    // save/load build on).
    std::stringstream buf;
    dnn::saveParameters(a.network(), buf);
    dnn::loadParameters(b.network(), buf);
    EXPECT_EQ(weightsDigest(a.network()), weightsDigest(b.network()));

    // Path round trip through the transform's own API.
    cfg.initSeed = 3;
    InputTransform c(cfg);
    ASSERT_NE(weightsDigest(a.network()), weightsDigest(c.network()));
    const std::string path =
        ::testing::TempDir() + "vboost_tf_params.bin";
    a.save(path);
    ASSERT_TRUE(c.load(path));
    EXPECT_EQ(weightsDigest(a.network()), weightsDigest(c.network()));
    std::remove(path.c_str());
    EXPECT_FALSE(c.load("/nonexistent/tf_params.bin"));

    // A structurally different transform rejects the stream.
    cfg.hiddenDim = 4;
    InputTransform d(cfg);
    std::stringstream buf2;
    dnn::saveParameters(a.network(), buf2);
    EXPECT_THROW(dnn::loadParameters(d.network(), buf2), FatalError);
}

TEST(InputTransform, TrainingProtectsFrozenBase)
{
    auto train = dnn::makeSyntheticMnist(1200, 41);
    auto test = dnn::makeSyntheticMnist(300, 42);

    auto base = makeSmallNet(1);
    Rng rng(7);
    dnn::TrainConfig tcfg;
    tcfg.epochs = 4;
    dnn::SgdTrainer trainer(tcfg);
    trainer.train(base, train, rng);
    dnn::clipParameters(base, 0.5f);
    const std::uint64_t base_digest = weightsDigest(base);

    TransformConfig tfc;
    tfc.hiddenDim = 16;
    InputTransform tf(tfc);

    TransformTrainConfig cfg;
    cfg.base.epochs = 3;
    cfg.base.learningRate = 0.05;
    cfg.failProb = 0.02;
    TransformTrainer tt(cfg);
    auto scratch = makeSmallNet(2);
    Rng trng(5);
    const auto stats = tt.train(tf, base, scratch, train, trng);
    EXPECT_EQ(stats.epochs.size(), 3u);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.bitFlips, 0u);

    // Access-limited: the base model is never touched.
    EXPECT_EQ(weightsDigest(base), base_digest);

    // On the trained chip-agnostic distribution, the transform
    // recovers accuracy under weight faults.
    ChipEvalConfig ecfg;
    ecfg.numReads = 6;
    ecfg.maxTestSamples = 300;
    sram::VulnerabilityMap map(123, 0);
    ChipEvaluator eval(base, test, map, ecfg);
    const double bare = eval.evaluate(cfg.failProb).meanAccuracy;
    const double fused =
        eval.evaluateWithTransform(cfg.failProb, tf).meanAccuracy;
    EXPECT_GT(fused, bare - 0.02)
        << "transform must not hurt: fused " << fused << " vs bare "
        << bare;
}

// ------------------------------------------------ map-aware trainer

TEST(MapAwareTrainer, HardensForItsOwnChip)
{
    auto train = dnn::makeSyntheticMnist(1500, 31);
    auto test = dnn::makeSyntheticMnist(400, 32);

    // Chip-agnostic baseline.
    auto baseline = makeSmallNet(1);
    Rng rng(7);
    dnn::TrainConfig tcfg;
    tcfg.epochs = 4;
    dnn::SgdTrainer trainer(tcfg);
    trainer.train(baseline, train, rng);
    dnn::clipParameters(baseline, 0.5f);

    // Map-aware training against one frozen chip.
    MapAwareConfig cfg;
    cfg.train.base.epochs = 6;
    cfg.train.failProb = 0.03;
    cfg.train.warmupEpochs = 1;
    cfg.curriculumEpochs = 2;
    cfg.refreshInterval = 8;
    auto hardened = makeSmallNet(1);
    auto scratch = makeSmallNet(2);
    MapAwareTrainer mat(cfg);
    Rng trng(7);
    const auto stats = mat.train(hardened, scratch, train, trng);
    dnn::clipParameters(hardened, 0.5f);

    EXPECT_EQ(stats.epochs.size(), 6u);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.mapRefreshes, 1u);
    EXPECT_GT(stats.bitFlips, 0u);
    // Warmup + curriculum completed: the last batch injected the full
    // deployment rate.
    EXPECT_DOUBLE_EQ(stats.finalInjectedProb, cfg.train.failProb);

    // On ITS chip at the trained rate, the map-aware model beats the
    // chip-agnostic baseline.
    ChipEvalConfig ecfg;
    ecfg.numReads = 6;
    ecfg.maxTestSamples = 300;
    ChipEvaluator eval_base(baseline, test, mat.chipMap(), ecfg);
    ChipEvaluator eval_hard(hardened, test, mat.chipMap(), ecfg);
    const double base_acc =
        eval_base.evaluate(cfg.train.failProb).meanAccuracy;
    const double hard_acc =
        eval_hard.evaluate(cfg.train.failProb).meanAccuracy;
    EXPECT_GT(hard_acc, base_acc + 0.03)
        << "map-aware " << hard_acc << " vs baseline " << base_acc;
}

TEST(MapAwareTrainer, ClusteredMapsTrainAndDiffer)
{
    auto train = dnn::makeSyntheticMnist(600, 33);

    MapAwareConfig cfg;
    cfg.train.base.epochs = 2;
    cfg.train.failProb = 0.02;
    cfg.train.warmupEpochs = 0;
    cfg.curriculumEpochs = 0;

    auto run = [&](sram::MapModel mm) {
        MapAwareConfig c = cfg;
        c.mapModel = mm;
        auto net = makeSmallNet(1);
        auto scratch = makeSmallNet(2);
        MapAwareTrainer mat(c);
        Rng trng(7);
        const auto stats = mat.train(net, scratch, train, trng);
        return std::make_pair(stats.digest(), weightsDigest(net));
    };

    const auto iid = run(sram::MapModel::Iid);
    const auto clustered = run(sram::MapModel::Clustered);
    // Different spatial structure -> different flips -> different
    // trained weights; both runs are individually reproducible.
    EXPECT_NE(iid.second, clustered.second);
    EXPECT_EQ(run(sram::MapModel::Iid), iid);
    EXPECT_EQ(run(sram::MapModel::Clustered), clustered);
}

TEST(ChipEvaluator, ClusteredChipMapEvaluates)
{
    auto test = dnn::makeSyntheticMnist(200, 42);
    auto net = makeSmallNet(1);
    ChipEvalConfig ecfg;
    ecfg.numReads = 4;
    ecfg.maxTestSamples = 200;
    sram::VulnerabilityMap iid(77, 0, sram::MapModel::Iid, {});
    sram::VulnerabilityMap clustered(77, 0, sram::MapModel::Clustered,
                                     {});
    ChipEvaluator ev_i(net, test, iid, ecfg);
    ChipEvaluator ev_c(net, test, clustered, ecfg);
    const auto ai = ev_i.evaluate(0.02);
    const auto ac = ev_c.evaluate(0.02);
    EXPECT_GT(ai.meanBitFlips, 0.0);
    EXPECT_GT(ac.meanBitFlips, 0.0);
    // Same aggregate rate, different spatial structure.
    EXPECT_NE(ai.digest, ac.digest);
}

// ------------------------------------------- determinism contract

TEST(RecoveryDeterminism, TrainersAreBitwiseReproducible)
{
    auto train = dnn::makeSyntheticMnist(600, 34);

    auto run_matic = [&]() {
        MapAwareConfig cfg;
        cfg.train.base.epochs = 2;
        cfg.train.failProb = 0.02;
        cfg.train.warmupEpochs = 0;
        cfg.refreshInterval = 4;
        auto net = makeSmallNet(1);
        auto scratch = makeSmallNet(2);
        MapAwareTrainer mat(cfg);
        Rng trng(7);
        const auto stats = mat.train(net, scratch, train, trng);
        return std::make_pair(stats.digest(), weightsDigest(net));
    };
    EXPECT_EQ(run_matic(), run_matic());

    auto run_fuse = [&]() {
        auto base = makeSmallNet(1);
        auto scratch = makeSmallNet(2);
        TransformConfig tfc;
        tfc.hiddenDim = 8;
        InputTransform tf(tfc);
        TransformTrainConfig cfg;
        cfg.base.epochs = 2;
        cfg.failProb = 0.02;
        TransformTrainer tt(cfg);
        Rng trng(5);
        const auto stats = tt.train(tf, base, scratch, train, trng);
        return std::make_pair(stats.digest(),
                              weightsDigest(tf.network()));
    };
    EXPECT_EQ(run_fuse(), run_fuse());
}

TEST(RecoveryDeterminism, EvaluatorIsThreadCountInvariant)
{
    auto test = dnn::makeSyntheticMnist(300, 35);
    auto net = makeSmallNet(1);
    TransformConfig tfc;
    tfc.hiddenDim = 8;
    InputTransform tf(tfc);

    auto run = [&](int threads) {
        ChipEvalConfig ecfg;
        ecfg.numReads = 8;
        ecfg.maxTestSamples = 300;
        ecfg.numThreads = threads;
        sram::VulnerabilityMap map(55, 0);
        ChipEvaluator eval(net, test, map, ecfg);
        obs::Observability o;
        eval.attachObservability(&o, {{"test", "det"}});
        const auto plain = eval.evaluate(0.01);
        const auto fused = eval.evaluateWithTransform(0.01, tf);
        return std::make_tuple(plain.digest, plain.meanAccuracy,
                               plain.meanBitFlips, fused.digest,
                               fused.meanAccuracy,
                               o.metrics.fingerprint());
    };

    const auto serial = run(1);
    const auto parallel = run(8);
    EXPECT_EQ(serial, parallel)
        << "ChipEvaluator must be bitwise thread-count invariant";
}

// ------------------------------------------------ planner dimension

class PlannerRecoveryTest : public ::testing::Test
{
  protected:
    PlannerRecoveryTest() : ctx_(core::SimContext::standard()) {}

    /** Step curve: accuracy a above threshold vddv, floor below. */
    static core::TradeoffExplorer::AccuracyFn
    stepCurve(double v97, double v85)
    {
        return [v97, v85](Volt vddv) {
            if (vddv.value() >= v97)
                return 0.99;
            if (vddv.value() >= v85)
                return 0.90;
            return 0.50;
        };
    }

    serve::PlannerConfig
    baseConfig() const
    {
        serve::PlannerConfig cfg;
        cfg.vddGrid = {Volt(0.38), Volt(0.42), Volt(0.46)};
        return cfg;
    }

    core::SimContext ctx_;
    serve::InferenceFootprint footprint_{340000, 85000, 85000, 340000};
};

TEST_F(PlannerRecoveryTest, RejectsNoneModeOptions)
{
    serve::PlannerConfig cfg = baseConfig();
    PlannedRecovery rec;
    rec.mode = RecoveryMode::None;
    rec.accuracy = [](Volt) { return 0.99; };
    cfg.recoveryOptions.push_back(rec);
    EXPECT_THROW(serve::OperatingPointPlanner(
                     ctx_, 16, stepCurve(0.44, 0.40), 1.0, footprint_,
                     cfg),
                 FatalError);
}

TEST_F(PlannerRecoveryTest, SelectionIsMonotoneInSloStrictness)
{
    // Base model: gold-grade accuracy only from 0.52 V up, bronze
    // grade from 0.40 V. The map-aware option reaches gold grade
    // already at 0.44 V but shares the bronze-grade threshold, so
    // recovery pays off exactly where the SLO is strict.
    serve::PlannerConfig cfg = baseConfig();
    PlannedRecovery matic;
    matic.mode = RecoveryMode::MapAware;
    matic.accuracy = stepCurve(0.44, 0.40);
    matic.faultFreeAccuracy = 0.99;
    cfg.recoveryOptions.push_back(matic);

    serve::OperatingPointPlanner with(ctx_, 16, stepCurve(0.52, 0.40),
                                      1.0, footprint_, cfg);
    serve::PlannerConfig boost_cfg = baseConfig();
    serve::OperatingPointPlanner without(ctx_, 16,
                                         stepCurve(0.52, 0.40), 1.0,
                                         footprint_, boost_cfg);

    const auto &gold = with.planFor("t", serve::SloClass::Gold);
    const auto &silver = with.planFor("t", serve::SloClass::Silver);
    const auto &bronze = with.planFor("t", serve::SloClass::Bronze);

    // The strict classes need the recovery option; the loose class
    // holds its target with boost alone (ties break to boost-only).
    EXPECT_EQ(gold.recoveryMode, RecoveryMode::MapAware);
    EXPECT_EQ(silver.recoveryMode, RecoveryMode::MapAware);
    EXPECT_EQ(bronze.recoveryMode, RecoveryMode::None);

    // Planned energy is monotone in SLO strictness.
    EXPECT_GE(gold.energyPerInference.value(),
              silver.energyPerInference.value());
    EXPECT_GE(silver.energyPerInference.value(),
              bronze.energyPerInference.value());

    // Adding recovery options never makes a class worse.
    for (int c = 0; c < serve::kNumSloClasses; ++c) {
        const auto slo = static_cast<serve::SloClass>(c);
        EXPECT_LE(with.planFor("t", slo).energyPerInference.value(),
                  without.planFor("t", slo).energyPerInference.value())
            << "class " << serve::toString(slo);
    }
    // And for the strict class it is strictly cheaper.
    EXPECT_LT(
        gold.energyPerInference.value(),
        without.planFor("t", serve::SloClass::Gold)
            .energyPerInference.value());
}

TEST_F(PlannerRecoveryTest, TransformOverheadsFoldIntoEnergy)
{
    serve::PlannerConfig cfg = baseConfig();
    serve::OperatingPointPlanner planner(ctx_, 16,
                                         stepCurve(0.44, 0.40), 1.0,
                                         footprint_, cfg);

    PlannedRecovery fuse;
    fuse.mode = RecoveryMode::InputTransform;
    fuse.accuracy = stepCurve(0.44, 0.40); // same curve: same levels
    fuse.faultFreeAccuracy = 0.99;
    fuse.extraComputeOps = 50000;
    fuse.extraInputAccesses = 13000;

    const auto plain =
        planner.planAt(serve::SloClass::Gold, Volt(0.42), Volt(0.0));
    const auto with = planner.planAt(serve::SloClass::Gold, Volt(0.42),
                                     Volt(0.0), fuse);
    ASSERT_TRUE(plain.has_value());
    ASSERT_TRUE(with.has_value());
    EXPECT_EQ(with->recoveryMode, RecoveryMode::InputTransform);
    EXPECT_EQ(with->recoveryComputeOps, fuse.extraComputeOps);
    EXPECT_EQ(with->recoveryInputAccesses, fuse.extraInputAccesses);
    EXPECT_EQ(with->weightLevel, plain->weightLevel);
    // The overheads cost real planned energy, and recoveryEnergy is
    // exactly the marginal cost of the extra streams.
    EXPECT_GT(with->recoveryEnergy.value(), 0.0);
    EXPECT_NEAR(with->energyPerInference.value(),
                plain->energyPerInference.value() +
                    with->recoveryEnergy.value(),
                1e-18);
}

} // namespace
} // namespace vboost::recovery
