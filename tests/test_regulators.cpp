/**
 * @file
 * Tests for the buck and switched-capacitor regulator models used by
 * the regulator-landscape bench.
 */

#include <gtest/gtest.h>

#include "circuit/ldo.hpp"
#include "circuit/regulators.hpp"
#include "common/logging.hpp"

namespace vboost::circuit {
namespace {

TEST(Buck, EfficiencyNearPeakAndBounded)
{
    BuckConverter buck;
    const double e = buck.efficiency(0.5_V, 1.0_V);
    EXPECT_GT(e, 0.80);
    EXPECT_LE(e, 0.90);
    EXPECT_TRUE(buck.requiresOffChip());
    // Higher ratios are slightly more efficient.
    EXPECT_GT(buck.efficiency(0.9_V, 1.0_V),
              buck.efficiency(0.4_V, 1.0_V));
}

TEST(Buck, ValidatesOperatingPoint)
{
    BuckConverter buck;
    EXPECT_THROW(buck.efficiency(1.1_V, 1.0_V), FatalError);
    EXPECT_THROW(buck.efficiency(Volt(0.0), 1.0_V), FatalError);
    EXPECT_THROW(BuckConverter(0.0), FatalError);
    EXPECT_THROW(BuckConverter(1.5), FatalError);
}

TEST(SwitchedCap, PeaksAtSupportedRatios)
{
    SwitchedCapacitorConverter sc;
    // Exactly at the 1/2 ratio: peak efficiency.
    EXPECT_NEAR(sc.efficiency(0.5_V, 1.0_V), 0.78, 1e-9);
    EXPECT_NEAR(sc.efficiency(Volt(2.0 / 3.0), 1.0_V), 0.78, 1e-9);
    // Between ratios the charge-sharing loss bites: the 0.55 point is
    // served from the 2/3 ratio at eta = 0.55/(2/3) * peak.
    EXPECT_NEAR(sc.efficiency(0.55_V, 1.0_V), 0.55 / (2.0 / 3.0) * 0.78,
                1e-9);
    EXPECT_LT(sc.efficiency(0.55_V, 1.0_V), 0.78);
    EXPECT_FALSE(sc.requiresOffChip());
}

TEST(SwitchedCap, NeverExceedsCapAndValidates)
{
    SwitchedCapacitorConverter sc;
    for (double d = 0.35; d < 1.0; d += 0.05)
        EXPECT_LE(sc.efficiency(Volt(d), 1.0_V), 0.78 + 1e-12);
    EXPECT_THROW(SwitchedCapacitorConverter(0.78, {}), FatalError);
    EXPECT_THROW(SwitchedCapacitorConverter(0.78, {1.5}), FatalError);
    EXPECT_THROW(SwitchedCapacitorConverter(1.2), FatalError);
}

TEST(RegulatorComparison, LdoWinsOnlyAtSmallGaps)
{
    // The paper's survey in one assertion: at a small voltage gap the
    // LDO beats the SC converter, but at the VLV boost gap (~2/3
    // ratio) the SC at its ratio and the buck both beat the LDO.
    LdoRegulator ldo;
    SwitchedCapacitorConverter sc;
    BuckConverter buck;
    EXPECT_GT(ldo.efficiency(0.95_V, 1.0_V),
              sc.efficiency(0.95_V, 1.0_V));
    EXPECT_GT(buck.efficiency(Volt(2.0 / 3.0), 1.0_V),
              ldo.efficiency(Volt(2.0 / 3.0), 1.0_V));
}

TEST(RegulatorComparison, InputEnergyScalesInversely)
{
    BuckConverter buck;
    const Joule in = buck.inputEnergy(1.0_pJ, 0.5_V, 1.0_V);
    EXPECT_NEAR(in.value(),
                1e-12 / buck.efficiency(0.5_V, 1.0_V), 1e-18);
}

} // namespace
} // namespace vboost::circuit
