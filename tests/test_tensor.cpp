/**
 * @file
 * Tests for the tensor container and the three GEMM kernels, checked
 * against a naive reference implementation.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "dnn/tensor.hpp"

namespace vboost::dnn {
namespace {

TEST(Tensor, ConstructionAndShape)
{
    Tensor t({3, 4});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_EQ(t.dim(1), 4);
    EXPECT_EQ(t.numel(), 12u);
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
    EXPECT_EQ(t.shapeString(), "[3, 4]");
}

TEST(Tensor, RejectsBadShapes)
{
    EXPECT_THROW(Tensor(std::vector<int>{}), FatalError);
    EXPECT_THROW(Tensor({2, 0}), FatalError);
    EXPECT_THROW(Tensor({-1}), FatalError);
    EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), FatalError);
    Tensor t({2, 2});
    EXPECT_THROW(t.dim(2), FatalError);
}

TEST(Tensor, At2dAndAt4dAreRowMajor)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);

    Tensor u({2, 3, 4, 5});
    u.at(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(u[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    for (std::size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(i);
    const Tensor u = t.reshaped({3, 4});
    for (std::size_t i = 0; i < u.numel(); ++i)
        EXPECT_EQ(u[i], static_cast<float>(i));
    EXPECT_THROW(t.reshaped({5, 5}), FatalError);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(3);
    const Tensor t = Tensor::randn({100, 100}, rng, 0.5);
    double sum = 0, sq = 0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
        sum += t[i];
        sq += t[i] * t[i];
    }
    EXPECT_NEAR(sum / t.numel(), 0.0, 0.02);
    EXPECT_NEAR(sq / t.numel(), 0.25, 0.02);
}

TEST(Tensor, FillAndMaxAbs)
{
    Tensor t({4});
    t.fill(-2.5f);
    EXPECT_EQ(t.maxAbs(), 2.5f);
    t[2] = 7.0f;
    EXPECT_EQ(t.maxAbs(), 7.0f);
}

// ----------------------------------------------------------------- GEMM

void
naiveGemm(const std::vector<float> &a, const std::vector<float> &b,
          std::vector<float> &c, int m, int k, int n)
{
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j) {
            float acc = 0;
            for (int kk = 0; kk < k; ++kk)
                acc += a[static_cast<std::size_t>(i) * k + kk] *
                       b[static_cast<std::size_t>(kk) * n + j];
            c[static_cast<std::size_t>(i) * n + j] = acc;
        }
}

std::vector<float>
randomVec(std::size_t n, Rng &rng)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmSizes, MatchesNaiveReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(1);
    const auto a = randomVec(static_cast<std::size_t>(m) * k, rng);
    const auto b = randomVec(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n),
        ref(static_cast<std::size_t>(m) * n);
    gemm(a.data(), b.data(), c.data(), m, k, n);
    naiveGemm(a, b, ref, m, k, n);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-4f * k);
}

TEST_P(GemmSizes, TransposedVariantsMatch)
{
    const auto [m, k, n] = GetParam();
    Rng rng(2);
    const auto a = randomVec(static_cast<std::size_t>(m) * k, rng);
    const auto b = randomVec(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> ref(static_cast<std::size_t>(m) * n);
    naiveGemm(a, b, ref, m, k, n);

    // gemmTransA with A stored transposed [k x m].
    std::vector<float> at(static_cast<std::size_t>(k) * m);
    for (int i = 0; i < m; ++i)
        for (int kk = 0; kk < k; ++kk)
            at[static_cast<std::size_t>(kk) * m + i] =
                a[static_cast<std::size_t>(i) * k + kk];
    std::vector<float> c1(static_cast<std::size_t>(m) * n);
    gemmTransA(at.data(), b.data(), c1.data(), m, k, n);
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], ref[i], 1e-4f * k);

    // gemmTransB with B stored transposed [n x k].
    std::vector<float> bt(static_cast<std::size_t>(n) * k);
    for (int kk = 0; kk < k; ++kk)
        for (int j = 0; j < n; ++j)
            bt[static_cast<std::size_t>(j) * k + kk] =
                b[static_cast<std::size_t>(kk) * n + j];
    std::vector<float> c2(static_cast<std::size_t>(m) * n);
    gemmTransB(a.data(), bt.data(), c2.data(), m, k, n);
    for (std::size_t i = 0; i < c2.size(); ++i)
        EXPECT_NEAR(c2[i], ref[i], 1e-4f * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{8, 1, 9},
                      std::tuple{1, 32, 1}, std::tuple{17, 23, 29}));

TEST(Gemm, AccumulateAddsToExisting)
{
    const float a[2] = {1, 2};
    const float b[2] = {3, 4};
    float c[1] = {10};
    gemm(a, b, c, 1, 2, 1, /*accumulate=*/true);
    EXPECT_FLOAT_EQ(c[0], 10 + 11);
    gemm(a, b, c, 1, 2, 1, /*accumulate=*/false);
    EXPECT_FLOAT_EQ(c[0], 11);
}

} // namespace
} // namespace vboost::dnn
