/**
 * @file
 * Tests for the SRAM substrate: failure-rate model, vulnerability /
 * fault maps (including the paper's inclusivity property), macro,
 * bank and banked memory, with fault statistics checked against the
 * analytic failure probabilities.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "circuit/booster.hpp"
#include "common/logging.hpp"
#include "sram/banked_memory.hpp"
#include "sram/failure_model.hpp"
#include "sram/fault_map.hpp"
#include "sram/sram_bank.hpp"
#include "sram/sram_macro.hpp"

namespace vboost::sram {
namespace {

circuit::TechnologyParams tech =
    circuit::TechnologyParams::default14nm();

// -------------------------------------------------------- failure model

TEST(FailureModel, AnchorAndMonotonicity)
{
    FailureRateModel m;
    EXPECT_NEAR(m.rate(0.44_V), 1.4e-2, 1e-6);
    // Exponential increase as voltage decreases (Fig. 7).
    EXPECT_GT(m.rate(0.40_V), m.rate(0.44_V));
    EXPECT_GT(m.rate(0.44_V), m.rate(0.50_V));
    EXPECT_GT(m.rate(0.50_V), m.rate(0.60_V));
}

TEST(FailureModel, NegligibleAtScreeningVoltage)
{
    // Macros are screened for zero fails at 0.6 V.
    FailureRateModel m;
    EXPECT_LT(m.rate(0.60_V), 1e-6);
}

TEST(FailureModel, SaturatesBelowDataRetention)
{
    FailureRateModel m;
    EXPECT_DOUBLE_EQ(m.rate(0.25_V), m.params().maxRate);
    EXPECT_DOUBLE_EQ(m.rate(m.dataRetentionVoltage() - 0.01_V),
                     m.params().maxRate);
}

TEST(FailureModel, VoltageForRateInvertsRate)
{
    FailureRateModel m;
    for (double target : {1e-5, 1e-4, 1e-3, 1e-2, 0.1}) {
        const Volt v = m.voltageForRate(target);
        EXPECT_NEAR(m.rate(v), target, target * 1e-6);
    }
    EXPECT_THROW(m.voltageForRate(0.0), FatalError);
    EXPECT_THROW(m.voltageForRate(0.9), FatalError);
}

TEST(FailureModel, FirstErrorVoltageScalesWithArraySize)
{
    FailureRateModel m;
    // Bigger arrays see their first error at higher voltage (Fig. 1).
    const Volt small = m.firstErrorVoltage(32 * 1024);
    const Volt big = m.firstErrorVoltage(4ull * 1024 * 1024);
    EXPECT_GT(big, small);
    EXPECT_THROW(m.firstErrorVoltage(0), FatalError);
}

TEST(FailureModel, RejectsBadCalibration)
{
    FailureRateParams p;
    p.rateAtAnchor = 0.0;
    EXPECT_THROW(FailureRateModel{p}, FatalError);
    p = FailureRateParams{};
    p.slopePerVolt = -1;
    EXPECT_THROW(FailureRateModel{p}, FatalError);
}

// ----------------------------------------------------------- fault maps

TEST(VulnerabilityMap, DeterministicPerSeedAndMap)
{
    VulnerabilityMap a(1, 0), a2(1, 0), b(1, 1), c(2, 0);
    int same_b = 0, same_c = 0;
    for (std::uint64_t cell = 0; cell < 2000; ++cell) {
        EXPECT_EQ(a.isFaulty(cell, 0.1), a2.isFaulty(cell, 0.1));
        same_b += a.isFaulty(cell, 0.1) == b.isFaulty(cell, 0.1);
        same_c += a.isFaulty(cell, 0.1) == c.isFaulty(cell, 0.1);
    }
    // Different maps/seeds must not be identical.
    EXPECT_LT(same_b, 2000);
    EXPECT_LT(same_c, 2000);
}

TEST(VulnerabilityMap, FaultFractionMatchesProbability)
{
    VulnerabilityMap map(42, 0);
    const std::uint64_t n = 200000;
    for (double f : {0.001, 0.01, 0.1}) {
        const auto count = map.countFaulty(n, f);
        EXPECT_NEAR(static_cast<double>(count) / n, f, 3 * f);
        EXPECT_NEAR(static_cast<double>(count) / n, f,
                    5 * std::sqrt(f / n) + f * 0.2);
    }
}

TEST(VulnerabilityMap, InclusivityAcrossVoltages)
{
    // Paper Sec. 5.1: "failures present in a fault map at voltage V1
    // will also include failures present at voltage V2, where V1 < V2"
    // — i.e. the faulty set grows monotonically with fail probability.
    VulnerabilityMap map(7, 3);
    for (std::uint64_t cell = 0; cell < 50000; ++cell) {
        if (map.isFaulty(cell, 0.01)) {
            EXPECT_TRUE(map.isFaulty(cell, 0.05));
        }
        if (map.isFaulty(cell, 0.05)) {
            EXPECT_TRUE(map.isFaulty(cell, 0.3));
        }
    }
}

TEST(VulnerabilityMap, EdgeProbabilities)
{
    VulnerabilityMap map(9, 0);
    EXPECT_FALSE(map.isFaulty(123, 0.0));
    EXPECT_TRUE(map.isFaulty(123, 1.0));
}

TEST(VulnerabilityMap, VulnerabilityConsistentWithFaultiness)
{
    // Cell faulty at fail prob F iff vulnerability >= Phi^-1(1-F).
    VulnerabilityMap map(11, 2);
    const double f = 0.02;
    const double threshold = inverseNormalCdf(1.0 - f);
    for (std::uint64_t cell = 0; cell < 20000; ++cell) {
        EXPECT_EQ(map.isFaulty(cell, f),
                  map.vulnerability(cell) >= threshold)
            << "cell " << cell;
    }
}

TEST(VulnerabilityMap, VulnerabilityIsStandardNormal)
{
    VulnerabilityMap map(13, 0);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = map.vulnerability(static_cast<std::uint64_t>(i));
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

// ------------------------------------------------ clustered fault maps

TEST(ClusteredMap, ValidateRejectsBadKnobs)
{
    ClusterParams p;
    EXPECT_NO_THROW(p.validate());

    p = ClusterParams{};
    p.rowCells = 0;
    EXPECT_THROW(p.validate(), FatalError);

    p = ClusterParams{};
    p.rowDefectProb = 1.2;
    EXPECT_THROW(p.validate(), FatalError);

    p = ClusterParams{};
    p.rowDefectProb = 0.0;
    p.colDefectProb = 0.0; // no defect process at all
    EXPECT_THROW(p.validate(), FatalError);

    p = ClusterParams{};
    p.defectBoost = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ClusteredMap, IidMapHasNoClusterStructure)
{
    const VulnerabilityMap map(21, 0);
    EXPECT_EQ(map.model(), MapModel::Iid);
    for (std::uint64_t cell = 0; cell < 5000; cell += 37) {
        EXPECT_FALSE(map.inDefectCluster(cell));
        EXPECT_DOUBLE_EQ(map.effectiveFailProb(cell, 0.01), 0.01);
    }
}

TEST(ClusteredMap, DeterministicAndDistinctFromIid)
{
    const ClusterParams p;
    const VulnerabilityMap a(21, 3, MapModel::Clustered, p);
    const VulnerabilityMap b(21, 3, MapModel::Clustered, p);
    const VulnerabilityMap iid(21, 3);
    int differs = 0;
    for (std::uint64_t cell = 0; cell < 20000; ++cell) {
        EXPECT_EQ(a.isFaulty(cell, 0.01), b.isFaulty(cell, 0.01));
        differs += a.isFaulty(cell, 0.01) != iid.isFaulty(cell, 0.01);
    }
    EXPECT_GT(differs, 0);
}

TEST(ClusteredMap, StratumCalibrationPreservesAggregateExactly)
{
    // MoRS-lite calibration: cov*hi + (1-cov)*lo == F(v) exactly, so
    // the clustered model changes the spatial structure of faults,
    // never the aggregate budget the failure model dictates.
    const ClusterParams p;
    const VulnerabilityMap map(31, 1, MapModel::Clustered, p);
    // Find one in-cluster and one out-of-cluster cell.
    std::uint64_t in = 0, out = 0;
    bool have_in = false, have_out = false;
    for (std::uint64_t cell = 0; cell < 200000 && !(have_in && have_out);
         ++cell) {
        if (map.inDefectCluster(cell)) {
            in = cell;
            have_in = true;
        } else {
            out = cell;
            have_out = true;
        }
    }
    ASSERT_TRUE(have_in && have_out);
    for (double f : {0.001, 0.01, 0.05}) {
        const double hi = map.effectiveFailProb(in, f);
        const double lo = map.effectiveFailProb(out, f);
        EXPECT_GT(hi, f);
        EXPECT_LT(lo, f);
        const double cov = p.coverage();
        EXPECT_NEAR(cov * hi + (1.0 - cov) * lo, f, 1e-12);
    }
}

TEST(ClusteredMap, AggregateFaultFractionMatchesProbability)
{
    // Averaged over maps, the clustered model produces the same fault
    // fraction as the i.i.d. baseline (per-map variance is larger by
    // design — whole rows fail together).
    const ClusterParams p;
    const std::uint64_t n = 200000;
    const double f = 0.01;
    double total = 0.0;
    const int maps = 20;
    for (int m = 0; m < maps; ++m) {
        const VulnerabilityMap map(42, static_cast<std::uint64_t>(m),
                                   MapModel::Clustered, p);
        total += static_cast<double>(map.countFaulty(n, f));
    }
    const double mean_fraction = total / (maps * static_cast<double>(n));
    EXPECT_NEAR(mean_fraction, f, 0.15 * f);
}

TEST(ClusteredMap, FaultsConcentrateInDefectClusters)
{
    const ClusterParams p;
    const VulnerabilityMap map(7, 2, MapModel::Clustered, p);
    const double f = 0.01;
    std::uint64_t in_cells = 0, in_faulty = 0;
    std::uint64_t out_cells = 0, out_faulty = 0;
    for (std::uint64_t cell = 0; cell < 400000; ++cell) {
        if (map.inDefectCluster(cell)) {
            ++in_cells;
            in_faulty += map.isFaulty(cell, f);
        } else {
            ++out_cells;
            out_faulty += map.isFaulty(cell, f);
        }
    }
    ASSERT_GT(in_cells, 0u);
    ASSERT_GT(out_cells, 0u);
    const double in_rate =
        static_cast<double>(in_faulty) / static_cast<double>(in_cells);
    const double out_rate =
        static_cast<double>(out_faulty) / static_cast<double>(out_cells);
    // Defective rows/columns fail an order of magnitude more often.
    EXPECT_GT(in_rate, 5.0 * out_rate);
}

TEST(ClusteredMap, InclusivityAcrossVoltages)
{
    // The §5.1 inclusivity contract survives the spatial model: the
    // defect structure is fixed per map, only the per-stratum
    // thresholds move with fail probability.
    const ClusterParams p;
    const VulnerabilityMap map(7, 3, MapModel::Clustered, p);
    for (std::uint64_t cell = 0; cell < 50000; ++cell) {
        if (map.isFaulty(cell, 0.01)) {
            EXPECT_TRUE(map.isFaulty(cell, 0.05));
        }
        if (map.isFaulty(cell, 0.05)) {
            EXPECT_TRUE(map.isFaulty(cell, 0.3));
        }
    }
}

TEST(CorruptWords, FlipRateMatchesFailTimesFlipProb)
{
    VulnerabilityMap map(3, 1);
    Rng rng(5);
    std::vector<std::int16_t> words(20000, 0x5555);
    const double fail = 0.05, flip = 0.5;
    const auto flips =
        corruptWords(words, map, 0, {fail, flip}, rng);
    const double expected = 20000.0 * 16 * fail * flip;
    EXPECT_NEAR(static_cast<double>(flips), expected, expected * 0.1);
}

TEST(CorruptWords, NoOpAtZeroProbability)
{
    VulnerabilityMap map(3, 1);
    Rng rng(5);
    std::vector<std::int16_t> words(100, 0x1234);
    EXPECT_EQ(corruptWords(words, map, 0, {0.0, 0.5}, rng), 0u);
    EXPECT_EQ(corruptWords(words, map, 0, {0.5, 0.0}, rng), 0u);
    for (auto w : words)
        EXPECT_EQ(w, 0x1234);
}

TEST(CorruptWords, RejectsBadProbabilities)
{
    VulnerabilityMap map(3, 1);
    Rng rng(5);
    std::vector<std::int16_t> words(4, 0);
    EXPECT_THROW(corruptWords(words, map, 0, {1.5, 0.5}, rng),
                 FatalError);
    EXPECT_THROW(corruptWords(words, map, 0, {0.5, -0.1}, rng),
                 FatalError);
}

TEST(CorruptWords64, FlipsTrackFaultyCells)
{
    VulnerabilityMap map(17, 4);
    Rng rng(6);
    std::vector<std::uint64_t> words(2000, 0);
    const auto flips = corruptWords64(words, map, 0, {0.02, 1.0}, rng);
    // With flip prob 1, every faulty cell flips: count set bits.
    std::uint64_t set = 0;
    for (auto w : words)
        set += static_cast<std::uint64_t>(std::popcount(w));
    EXPECT_EQ(set, flips);
    EXPECT_EQ(flips, map.countFaulty(2000 * 64, 0.02));
}

// ---------------------------------------------------------------- macro

TEST(SramMacro, WritePeekRoundTrip)
{
    SramMacro macro(0);
    macro.write(0, 0xdeadbeefcafef00dull);
    macro.write(511, 42);
    EXPECT_EQ(macro.peek(0), 0xdeadbeefcafef00dull);
    EXPECT_EQ(macro.peek(511), 42u);
    EXPECT_THROW(macro.write(512, 0), FatalError);
    EXPECT_THROW(macro.peek(512), FatalError);
}

TEST(SramMacro, FaultFreeReadIsExact)
{
    SramMacro macro(0);
    macro.write(7, 0x123456789abcdef0ull);
    VulnerabilityMap map(1, 0);
    Rng rng(1);
    EXPECT_EQ(macro.read(7, map, {0.0, 0.5}, rng),
              0x123456789abcdef0ull);
}

TEST(SramMacro, FaultyReadFlipsOnlyFaultyCells)
{
    SramMacro macro(0);
    macro.write(3, 0);
    VulnerabilityMap map(1, 0);
    Rng rng(1);
    const std::uint64_t got = macro.read(3, map, {0.3, 1.0}, rng);
    for (std::uint32_t b = 0; b < 64; ++b) {
        const bool flipped = (got >> b) & 1;
        EXPECT_EQ(flipped, map.isFaulty(macro.cellIndex(3, b), 0.3));
    }
}

TEST(SramMacro, ReadIsNonDeterministicWithHalfFlipProb)
{
    // Paper Sec. 5.1: "When the faulty bitcell is read, the output is
    // non-deterministic". Two reads of the same word should differ
    // with a strong fault density.
    SramMacro macro(0);
    macro.write(0, 0);
    VulnerabilityMap map(1, 0);
    Rng rng(1);
    int distinct = 0;
    std::uint64_t prev = macro.read(0, map, {0.5, 0.5}, rng);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t cur = macro.read(0, map, {0.5, 0.5}, rng);
        distinct += cur != prev;
        prev = cur;
    }
    EXPECT_GT(distinct, 0);
}

TEST(SramMacro, CellIndexRespectsBase)
{
    SramMacro macro(1000);
    EXPECT_EQ(macro.cellIndex(0, 0), 1000u);
    EXPECT_EQ(macro.cellIndex(1, 3), 1000u + 64 + 3);
    EXPECT_THROW(macro.cellIndex(0, 64), FatalError);
}

// ----------------------------------------------------------------- bank

class SramBankTest : public ::testing::Test
{
  protected:
    SramBankTest()
        : bank_(0, circuit::BoosterDesign::standardConfig(), tech,
                FailureRateModel{}, 16)
    {
    }

    SramBank bank_;
    VulnerabilityMap map_{1, 0};
    Rng rng_{1};
};

TEST_F(SramBankTest, BoostLevelChangesEffectiveVoltage)
{
    bank_.setBoostLevel(0);
    EXPECT_DOUBLE_EQ(bank_.effectiveVoltage(0.4_V).value(), 0.4);
    bank_.setBoostLevel(4);
    EXPECT_GT(bank_.effectiveVoltage(0.4_V).value(), 0.55);
    // Boosting lowers the failure probability.
    bank_.setBoostLevel(0);
    const double f0 = bank_.failProbAt(0.4_V);
    bank_.setBoostLevel(4);
    EXPECT_LT(bank_.failProbAt(0.4_V), f0 / 10);
}

TEST_F(SramBankTest, CountersTrackAccessesAndBoosts)
{
    bank_.setBoostLevel(2);
    bank_.write(0, 77, 0.4_V);
    bank_.read(0, 0.4_V, map_, rng_);
    bank_.read(0, 0.4_V, map_, rng_);
    const auto &c = bank_.counters();
    EXPECT_EQ(c.writes, 1u);
    EXPECT_EQ(c.reads, 2u);
    EXPECT_EQ(c.boostEvents, 3u);
    EXPECT_GT(c.accessEnergy.value(), 0.0);
    EXPECT_GT(c.boostEnergy.value(), 0.0);

    bank_.setBoostLevel(0);
    bank_.resetCounters();
    bank_.read(0, 0.4_V, map_, rng_);
    EXPECT_EQ(bank_.counters().boostEvents, 0u);
    EXPECT_EQ(bank_.counters().boostEnergy.value(), 0.0);
}

TEST_F(SramBankTest, BoostedAccessCostsMoreEnergy)
{
    bank_.setBoostLevel(0);
    bank_.write(0, 1, 0.4_V);
    const double unboosted = bank_.counters().accessEnergy.value();
    bank_.resetCounters();
    bank_.setBoostLevel(4);
    bank_.write(0, 1, 0.4_V);
    const auto &c = bank_.counters();
    EXPECT_GT(c.accessEnergy.value(), unboosted);
}

TEST_F(SramBankTest, HighVoltageReadsAreClean)
{
    bank_.setBoostLevel(4);
    for (std::uint32_t a = 0; a < 64; ++a)
        bank_.write(a, a * 0x0101010101010101ull, 0.6_V);
    for (std::uint32_t a = 0; a < 64; ++a)
        EXPECT_EQ(bank_.read(a, 0.6_V, map_, rng_),
                  a * 0x0101010101010101ull);
}

TEST_F(SramBankTest, SpansTwoMacros)
{
    bank_.write(SramMacro::kWords, 123, 0.6_V); // first word of macro 2
    EXPECT_EQ(bank_.peek(SramMacro::kWords), 123u);
    EXPECT_THROW(bank_.peek(SramBank::kWords), FatalError);
    // Macro cells are disjoint.
    EXPECT_EQ(bank_.cellIndex(SramMacro::kWords), SramMacro::kBits);
}

TEST_F(SramBankTest, FlipProbValidation)
{
    EXPECT_THROW(bank_.setFlipProb(1.5), FatalError);
    bank_.setFlipProb(0.25);
    EXPECT_DOUBLE_EQ(bank_.flipProb(), 0.25);
}

TEST_F(SramBankTest, LeakageEvaluatedAtUnboostedSupply)
{
    // Leakage is independent of the boost level: idle SRAM stays at
    // Vdd (the paper's key leakage saving).
    bank_.setBoostLevel(0);
    const double l0 = bank_.leakagePower(0.4_V).value();
    bank_.setBoostLevel(4);
    EXPECT_DOUBLE_EQ(bank_.leakagePower(0.4_V).value(), l0);
}

// -------------------------------------------------------- banked memory

class BankedMemoryTest : public ::testing::Test
{
  protected:
    BankedMemoryTest()
        : mem_("weights", 16, circuit::BoosterDesign::standardConfig(),
               tech, FailureRateModel{}, 0)
    {
    }

    BankedMemory mem_;
    VulnerabilityMap map_{1, 0};
    Rng rng_{1};
};

TEST_F(BankedMemoryTest, GeometryMatchesDante)
{
    EXPECT_EQ(mem_.banks(), 16);
    EXPECT_EQ(mem_.bytes(), 128u * 1024);
    EXPECT_EQ(mem_.words(), 16u * 1024);
}

TEST_F(BankedMemoryTest, FlatAddressingRoutesToBanks)
{
    EXPECT_EQ(mem_.bankOf(0), 0);
    EXPECT_EQ(mem_.bankOf(1023), 0);
    EXPECT_EQ(mem_.bankOf(1024), 1);
    EXPECT_EQ(mem_.bankOf(16 * 1024 - 1), 15);
    EXPECT_THROW(mem_.bankOf(16 * 1024), FatalError);
}

TEST_F(BankedMemoryTest, PerBankBoostConfig)
{
    // Sec. 3.2: "different regions/banks of the SRAM can be boosted to
    // target voltages independent of the other".
    mem_.setBoostLevel(0, 4);
    mem_.setBoostLevel(1, 1);
    EXPECT_EQ(mem_.boostLevel(0), 4);
    EXPECT_EQ(mem_.boostLevel(1), 1);
    EXPECT_GT(mem_.bank(0).effectiveVoltage(0.4_V),
              mem_.bank(1).effectiveVoltage(0.4_V));
    mem_.setAllBoostLevels(2);
    for (int b = 0; b < mem_.banks(); ++b)
        EXPECT_EQ(mem_.boostLevel(b), 2);
}

TEST_F(BankedMemoryTest, Word16RoundTripCleanAtHighVoltage)
{
    mem_.setAllBoostLevels(0);
    std::vector<std::int16_t> vals;
    for (int i = 0; i < 1000; ++i)
        vals.push_back(static_cast<std::int16_t>(i * 7 - 300));
    mem_.writeWords16(13, vals, 0.6_V); // unaligned start
    const auto got = mem_.readWords16(13, 1000, 0.6_V, map_, rng_);
    EXPECT_EQ(got, vals);
}

TEST_F(BankedMemoryTest, Word16PartialWritePreservesNeighbors)
{
    mem_.setAllBoostLevels(0);
    mem_.write(0, 0x1111222233334444ull, 0.6_V);
    mem_.writeWords16(1, {std::int16_t(0x7777)}, 0.6_V);
    EXPECT_EQ(mem_.peek(0), 0x1111222277774444ull);
}

TEST_F(BankedMemoryTest, AggregateCountersSumBanks)
{
    mem_.setAllBoostLevels(1);
    mem_.write(0, 1, 0.4_V);        // bank 0
    mem_.write(2048, 2, 0.4_V);     // bank 2
    mem_.read(0, 0.4_V, map_, rng_);
    const auto total = mem_.totalCounters();
    EXPECT_EQ(total.writes, 2u);
    EXPECT_EQ(total.reads, 1u);
    EXPECT_EQ(total.boostEvents, 3u);
    EXPECT_EQ(mem_.bankCounters(0).writes, 1u);
    EXPECT_EQ(mem_.bankCounters(2).writes, 1u);
    mem_.resetCounters();
    EXPECT_EQ(mem_.totalCounters().writes, 0u);
}

TEST_F(BankedMemoryTest, CellRangesDisjointAcrossMemories)
{
    BankedMemory inputs("inputs", 2,
                        circuit::BoosterDesign::standardConfig(), tech,
                        FailureRateModel{},
                        16ull * SramBank::kBits);
    EXPECT_EQ(inputs.cellBase(), 16ull * SramBank::kBits);
    EXPECT_EQ(inputs.cellIndex(0), 16ull * SramBank::kBits);
    // Misaligned offset rejected.
    EXPECT_THROW(BankedMemory("x", 1,
                              circuit::BoosterDesign::standardConfig(),
                              tech, FailureRateModel{}, 13),
                 FatalError);
}

TEST_F(BankedMemoryTest, LeakageAndAreaAggregate)
{
    const double one_bank =
        mem_.bank(0).leakagePower(0.4_V).value();
    EXPECT_NEAR(mem_.leakagePower(0.4_V).value(), 16 * one_bank, 1e-12);
    EXPECT_GT(mem_.boosterArea().value(), 0.0);
}

/** Property: measured bit-error rate through a bank tracks F(Vddv). */
class BankErrorRateSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BankErrorRateSweep, ErrorRateTracksBoostedVoltage)
{
    const int level = GetParam();
    SramBank bank(0, circuit::BoosterDesign::standardConfig(), tech,
                  FailureRateModel{}, 1);
    bank.setBoostLevel(level);
    bank.setFlipProb(1.0); // deterministic manifestation for counting
    VulnerabilityMap map(99, 0);
    Rng rng(99);
    const Volt vdd{0.42};
    for (std::uint32_t a = 0; a < SramBank::kWords; ++a)
        bank.write(a, 0, vdd);
    std::uint64_t flipped = 0;
    for (std::uint32_t a = 0; a < SramBank::kWords; ++a)
        flipped += static_cast<std::uint64_t>(
            std::popcount(bank.read(a, vdd, map, rng)));
    const double measured =
        static_cast<double>(flipped) / static_cast<double>(SramBank::kBits);
    const double expected = bank.failProbAt(vdd);
    EXPECT_NEAR(measured, expected,
                5 * std::sqrt(expected / SramBank::kBits) + 0.1 * expected)
        << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, BankErrorRateSweep,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace vboost::sram
