/**
 * @file
 * Test-environment knobs. The CI ThreadSanitizer leg (see
 * .github/workflows/ci.yml) sets VBOOST_TSAN=1: TSan serializes and
 * instruments every memory access, so the heavyweight end-to-end
 * fixtures (per-test network training, 8-map Monte-Carlo sweeps) run
 * 10-20x slower than native. Tests scale their workload through
 * tsanScaled() so the race coverage stays full while the arithmetic
 * volume shrinks. The scaling must never change what a test asserts —
 * only how much data the assertion digests.
 */

#ifndef VBOOST_TESTS_TESTENV_HPP
#define VBOOST_TESTS_TESTENV_HPP

#include <cstdlib>

namespace vboost::testenv {

/** True when running under the TSan CI smoke profile. */
inline bool
tsanSmoke()
{
    const char *v = std::getenv("VBOOST_TSAN");
    return v != nullptr && *v != '\0' && *v != '0';
}

/** Pick the full-size workload normally, the smoke size under TSan. */
template <typename T>
inline T
tsanScaled(T full, T smoke)
{
    return tsanSmoke() ? smoke : full;
}

} // namespace vboost::testenv

#endif // VBOOST_TESTS_TESTENV_HPP
