/**
 * @file
 * Tests for the vblint static analyzer (DESIGN.md §10). Synthetic
 * snippets exercise each rule's positive and negative space through
 * the exact production code path (analyzeSource/analyzeAll from
 * vblint_core): the per-file rules VB001–VB005, the project rules
 * VB006–VB009 (include-graph layering, RNG-stream discipline,
 * fingerprint hygiene, shared-mutable pool captures) with their
 * symbol-index-driven fixtures, the lexer's edge cases (raw strings,
 * digit separators, spliced comments, directive-trailing waivers),
 * the suppression/baseline machinery including --update-baseline,
 * and the JSON report shape. Two self-checks run the analyzer over
 * the real src/ tree: one asserts the committed-baseline invariant
 * (zero build-failing diagnostics — what the `vblint` ctest entry
 * and the CI job enforce), one injects a layering back-edge and
 * asserts it fails.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "include_graph.hpp"
#include "report.hpp"
#include "rules.hpp"

namespace vboost::vblint {
namespace {

/** Diagnostics of `fa` that match `rule`, any status. */
std::vector<Diagnostic>
withRule(const FileAnalysis &fa, Rule rule)
{
    std::vector<Diagnostic> out;
    for (const auto &d : fa.diagnostics)
        if (d.rule == rule)
            out.push_back(d);
    return out;
}

int
activeCount(const FileAnalysis &fa)
{
    int n = 0;
    for (const auto &d : fa.diagnostics)
        if (d.status == DiagStatus::Active)
            ++n;
    return n;
}

/** Diagnostics of a whole-repo report that match `rule`, any status. */
std::vector<Diagnostic>
reportWithRule(const RepoReport &report, Rule rule)
{
    std::vector<Diagnostic> out;
    for (const auto &d : report.diagnostics)
        if (d.rule == rule)
            out.push_back(d);
    return out;
}

// ---------------------------------------------------------------- VB001

TEST(VblintVB001, FlagsRandCallInModelCode)
{
    const auto fa = analyzeSource("src/fi/x.cpp",
                                  "void f() {\n"
                                  "    int a = rand();\n"
                                  "    (void)a;\n"
                                  "}\n");
    const auto diags = withRule(fa, Rule::VB001);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
    EXPECT_NE(diags[0].message.find("rand"), std::string::npos);
}

TEST(VblintVB001, FlagsRandomDeviceType)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp", "void f() { std::random_device rd; (void)rd; }\n");
    ASSERT_EQ(withRule(fa, Rule::VB001).size(), 1u);
}

TEST(VblintVB001, FlagsWallClockTypes)
{
    const auto fa = analyzeSource(
        "src/serve/x.cpp",
        "void f() { auto t = std::chrono::system_clock::now(); (void)t; }\n");
    ASSERT_EQ(withRule(fa, Rule::VB001).size(), 1u);
}

TEST(VblintVB001, BenchAndToolLayersAreExempt)
{
    // Wall-clock timing is the whole point of bench/; VB001 scopes to
    // model code under src/ only.
    const std::string snippet = "void f() { int a = rand(); (void)a; }\n";
    EXPECT_TRUE(withRule(analyzeSource("bench/x.cpp", snippet), Rule::VB001)
                    .empty());
    EXPECT_TRUE(withRule(analyzeSource("tools/x.cpp", snippet), Rule::VB001)
                    .empty());
    EXPECT_EQ(withRule(analyzeSource("src/fi/x.cpp", snippet), Rule::VB001)
                  .size(),
              1u);
}

TEST(VblintVB001, MemberCallNamedTimeIsNotFlagged)
{
    // Only free calls are banned; obj.time() / ptr->time() are member
    // functions the repo owns.
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "int g(const Stats &s, Stats *p) { return s.time() + p->time(); }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB001).empty());
}

TEST(VblintVB001, AllowAnnotationSuppresses)
{
    const auto fa = analyzeSource(
        "src/common/x.cpp",
        "// vblint: allow(VB001, feeds only a log rate limiter)\n"
        "void f() { long t = time(nullptr); (void)t; }\n");
    const auto diags = withRule(fa, Rule::VB001);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
    EXPECT_EQ(activeCount(fa), 0);
}

// ---------------------------------------------------------------- VB002

TEST(VblintVB002, FlagsRangeForOverUnorderedMap)
{
    const auto fa =
        analyzeSource("src/serve/x.cpp",
                      "#include <unordered_map>\n"
                      "int f(const std::unordered_map<int, int> &m) {\n"
                      "    int s = 0;\n"
                      "    for (const auto &kv : m)\n"
                      "        s += kv.second;\n"
                      "    return s;\n"
                      "}\n");
    const auto diags = withRule(fa, Rule::VB002);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
}

TEST(VblintVB002, OrderedOkAnnotationSuppresses)
{
    const auto fa =
        analyzeSource("src/serve/x.cpp",
                      "int f(const std::unordered_map<int, int> &m) {\n"
                      "    int s = 0;\n"
                      "    // vblint: ordered-ok(commutative integer count)\n"
                      "    for (const auto &kv : m)\n"
                      "        s += kv.second;\n"
                      "    return s;\n"
                      "}\n");
    const auto diags = withRule(fa, Rule::VB002);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
}

TEST(VblintVB002, OrderedMapIterationIsFine)
{
    const auto fa = analyzeSource("src/serve/x.cpp",
                                  "int f(const std::map<int, int> &m) {\n"
                                  "    int s = 0;\n"
                                  "    for (const auto &kv : m)\n"
                                  "        s += kv.second;\n"
                                  "    return s;\n"
                                  "}\n");
    EXPECT_TRUE(withRule(fa, Rule::VB002).empty());
}

TEST(VblintVB002, SiblingHeaderSeedsTheTypeEnvironment)
{
    // The member is declared unordered in the header; the loop lives
    // in the .cpp. The paired-header environment must connect them.
    const std::string header =
        "#pragma once\n"
        "#include <unordered_map>\n"
        "class Registry {\n"
        "    std::unordered_map<int, int> slots_;\n"
        "    int total() const;\n"
        "};\n";
    const auto fa = analyzeSource("src/serve/registry.cpp",
                                  "int Registry::total() const {\n"
                                  "    int s = 0;\n"
                                  "    for (const auto &kv : slots_)\n"
                                  "        s += kv.second;\n"
                                  "    return s;\n"
                                  "}\n",
                                  header);
    ASSERT_EQ(withRule(fa, Rule::VB002).size(), 1u);
}

// ---------------------------------------------------------------- VB003

TEST(VblintVB003, FlagsFloatAccumulationInLoop)
{
    const auto fa = analyzeSource("src/fi/x.cpp",
                                  "double sum(const double *v, int n) {\n"
                                  "    double s = 0.0;\n"
                                  "    for (int i = 0; i < n; ++i)\n"
                                  "        s += v[i];\n"
                                  "    return s;\n"
                                  "}\n");
    const auto diags = withRule(fa, Rule::VB003);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
}

TEST(VblintVB003, FlagsUnitTypedAccumulation)
{
    // Joule is one of the units.hpp tagged doubles; the float-like
    // type set must include them or the energy reductions go dark.
    const auto fa = analyzeSource("src/resilience/x.cpp",
                                  "Joule total(const Joule *v, int n) {\n"
                                  "    Joule s{0.0};\n"
                                  "    for (int i = 0; i < n; ++i)\n"
                                  "        s += v[i];\n"
                                  "    return s;\n"
                                  "}\n");
    ASSERT_EQ(withRule(fa, Rule::VB003).size(), 1u);
}

TEST(VblintVB003, TrailingAssocOkSuppresses)
{
    const auto fa = analyzeSource(
        "src/fi/x.cpp",
        "double sum(const double *v, int n) {\n"
        "    double s = 0.0;\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        s += v[i]; // vblint: assoc-ok(fixed serial order)\n"
        "    return s;\n"
        "}\n");
    const auto diags = withRule(fa, Rule::VB003);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
    EXPECT_EQ(activeCount(fa), 0);
}

TEST(VblintVB003, IntegerAccumulationIsFine)
{
    const auto fa = analyzeSource("src/fi/x.cpp",
                                  "long sum(const int *v, int n) {\n"
                                  "    long s = 0;\n"
                                  "    for (int i = 0; i < n; ++i)\n"
                                  "        s += v[i];\n"
                                  "    return s;\n"
                                  "}\n");
    EXPECT_TRUE(withRule(fa, Rule::VB003).empty());
}

TEST(VblintVB003, AccumulationOutsideLoopIsFine)
{
    const auto fa = analyzeSource(
        "src/fi/x.cpp",
        "double f(double a, double b) { a += b; return a; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB003).empty());
}

TEST(VblintVB003, AppliesUniformlyAcrossSrc)
{
    // One scope for all of src/: the per-directory allowlists are
    // gone. A fixed-order series in circuit/ gets the same diagnostic
    // as a parallel reduction in serve/ — the difference is expressed
    // with an assoc-ok waiver at the site, not a scoping exemption.
    const std::string snippet = "double sum(const double *v, int n) {\n"
                                "    double s = 0.0;\n"
                                "    for (int i = 0; i < n; ++i)\n"
                                "        s += v[i];\n"
                                "    return s;\n"
                                "}\n";
    for (const char *path :
         {"src/circuit/x.cpp", "src/timing/x.cpp", "src/energy/x.cpp",
          "src/sram/x.cpp", "src/serve/x.cpp", "src/accel/x.cpp"}) {
        EXPECT_EQ(withRule(analyzeSource(path, snippet), Rule::VB003)
                      .size(),
                  1u)
            << path;
    }
    EXPECT_TRUE(
        withRule(analyzeSource("bench/x.cpp", snippet), Rule::VB003)
            .empty());
    EXPECT_TRUE(
        withRule(analyzeSource("tools/x.cpp", snippet), Rule::VB003)
            .empty());
}

TEST(VblintVB003, ObservabilityLayerIsInScope)
{
    // src/obs/ feeds the metrics fingerprint — itself a determinism
    // acceptance value (DESIGN.md §11) — so its float accumulations
    // are in VB003 scope like the fi/serve/resilience reductions.
    const auto fa = analyzeSource(
        "src/obs/x.cpp",
        "double total(const double *v, int n) {\n"
        "    double s = 0.0;\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        s += v[i];\n"
        "    return s;\n"
        "}\n");
    const auto diags = withRule(fa, Rule::VB003);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
}

TEST(VblintVB003, ComputeBackendsAreInScope)
{
    // src/dnn/backend/ kernels carry the bitwise cross-backend
    // equivalence contract (DESIGN.md §12): every float accumulation
    // there must pin its order. The rest of src/dnn/ is under the
    // same uniform scope.
    const std::string snippet =
        "void accum(const float *v, float *c, int n) {\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        *c += v[i];\n"
        "}\n";
    EXPECT_EQ(withRule(analyzeSource("src/dnn/backend/x.cpp", snippet),
                       Rule::VB003)
                  .size(),
              1u);
    EXPECT_EQ(
        withRule(analyzeSource("src/dnn/x.cpp", snippet), Rule::VB003)
            .size(),
        1u);
    // An assoc-ok waiver with a reason suppresses it, as elsewhere.
    const auto fa = analyzeSource(
        "src/dnn/backend/x.cpp",
        "void accum(const float *v, float *c, int n) {\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        *c += v[i]; // vblint: assoc-ok(ascending-i chain)\n"
        "}\n");
    const auto suppressed = withRule(fa, Rule::VB003);
    ASSERT_EQ(suppressed.size(), 1u);
    EXPECT_EQ(suppressed[0].status, DiagStatus::Suppressed);
}

TEST(VblintVB003, BracelessInnerLoopIsReportedOnce)
{
    // A braceless loop nested in a braced loop must not be flagged by
    // both the walk-time check and the braceless-body check.
    const auto fa = analyzeSource(
        "src/dnn/x.cpp",
        "double f(const double *v, int m, int n) {\n"
        "    double s = 0.0;\n"
        "    for (int i = 0; i < m; ++i)\n"
        "        for (int j = 0; j < n; ++j)\n"
        "            s += v[i * n + j];\n"
        "    return s;\n"
        "}\n");
    EXPECT_EQ(withRule(fa, Rule::VB003).size(), 1u);
}

TEST(VblintVB003, ClusterTierIsInScope)
{
    // src/cluster/ merges per-node stats and fingerprints across the
    // serving cluster (DESIGN.md §14): an unordered float accumulation
    // there would break the merged-fingerprint contract, so the
    // directory is in VB003 scope.
    const std::string snippet =
        "void accum(const float *v, float *c, int n) {\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        *c += v[i];\n"
        "}\n";
    EXPECT_EQ(withRule(analyzeSource("src/cluster/x.cpp", snippet),
                       Rule::VB003)
                  .size(),
              1u);
}

TEST(VblintVB002, ClusterTierUnorderedIterationIsFlagged)
{
    // Routing and aggregation in src/cluster/ run on §7 serial paths;
    // an unordered_map walk there would leak hash order into routes.
    const auto fa = analyzeSource(
        "src/cluster/x.cpp",
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m) {\n"
        "    int s = 0;\n"
        "    for (const auto &kv : m)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n");
    EXPECT_EQ(withRule(fa, Rule::VB002).size(), 1u);
}

TEST(VblintVB003, RecoveryTierIsInScope)
{
    // src/recovery/ reduces Monte-Carlo read results and training
    // statistics under the §7 bitwise contract (DESIGN.md §15): an
    // unordered float accumulation there would break the digest
    // acceptance values, so the directory is in VB003 scope.
    const std::string snippet =
        "void accum(const float *v, float *c, int n) {\n"
        "    for (int i = 0; i < n; ++i)\n"
        "        *c += v[i];\n"
        "}\n";
    EXPECT_EQ(withRule(analyzeSource("src/recovery/x.cpp", snippet),
                       Rule::VB003)
                  .size(),
              1u);
}

TEST(VblintVB002, RecoveryTierUnorderedIterationIsFlagged)
{
    // Recovery digests and obs exports iterate label maps; an
    // unordered_map walk there would leak hash order into the
    // fingerprints the determinism ctest compares.
    const auto fa = analyzeSource(
        "src/recovery/x.cpp",
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m) {\n"
        "    int s = 0;\n"
        "    for (const auto &kv : m)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n");
    EXPECT_EQ(withRule(fa, Rule::VB002).size(), 1u);
}

TEST(VblintVB002, ObservabilityLayerUnorderedIterationIsFlagged)
{
    // The registry promises key-ordered iteration; an unordered_map
    // walk in src/obs/ would silently break the fingerprint contract.
    const auto fa = analyzeSource(
        "src/obs/x.cpp",
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m) {\n"
        "    int s = 0;\n"
        "    for (const auto &kv : m)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n");
    const auto diags = withRule(fa, Rule::VB002);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
}

// ---------------------------------------------------------------- VB004

TEST(VblintVB004, FlagsMutableNamespaceScopeVariable)
{
    const auto fa =
        analyzeSource("src/core/x.cpp", "int counter = 0;\n");
    const auto diags = withRule(fa, Rule::VB004);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 1);
}

TEST(VblintVB004, FlagsFunctionLocalStatic)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "int next() { static int calls = 0; return ++calls; }\n");
    ASSERT_EQ(withRule(fa, Rule::VB004).size(), 1u);
}

TEST(VblintVB004, ConstantsAndFunctionsAreFine)
{
    const auto fa = analyzeSource("src/core/x.cpp",
                                  "const int kLimit = 3;\n"
                                  "constexpr double kEps = 1e-9;\n"
                                  "static constexpr int kBanks = 8;\n"
                                  "int add(int a, int b) { return a + b; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB004).empty());
}

TEST(VblintVB004, TestsAndBenchesMayHoldState)
{
    const auto fa =
        analyzeSource("tests/x.cpp", "int counter = 0;\n");
    EXPECT_TRUE(withRule(fa, Rule::VB004).empty());
}

// ---------------------------------------------------------------- VB005

TEST(VblintVB005, FlagsHeaderWithoutGuard)
{
    const auto fa = analyzeSource("src/core/x.hpp",
                                  "inline int one() { return 1; }\n");
    ASSERT_EQ(withRule(fa, Rule::VB005).size(), 1u);
}

TEST(VblintVB005, AcceptsPragmaOnce)
{
    const auto fa = analyzeSource("src/core/x.hpp",
                                  "#pragma once\n"
                                  "inline int one() { return 1; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB005).empty());
}

TEST(VblintVB005, AcceptsIfndefDefinePair)
{
    // The repo convention: classic guards (see any header in src/).
    const auto fa = analyzeSource("src/core/x.hpp",
                                  "#ifndef VBOOST_CORE_X_HPP\n"
                                  "#define VBOOST_CORE_X_HPP\n"
                                  "inline int one() { return 1; }\n"
                                  "#endif\n");
    EXPECT_TRUE(withRule(fa, Rule::VB005).empty());
}

TEST(VblintVB005, FlagsUsingNamespaceInHeader)
{
    const auto fa = analyzeSource("src/core/x.hpp",
                                  "#pragma once\n"
                                  "using namespace std;\n");
    const auto diags = withRule(fa, Rule::VB005);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
}

TEST(VblintVB005, UsingNamespaceInCppIsFine)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp", "using namespace std::chrono_literals;\n");
    EXPECT_TRUE(withRule(fa, Rule::VB005).empty());
}

// ------------------------------------------- project-rule fixtures

/** Stream-class fixture: discovered through its `split` member, never
 *  by name — the VB007 allowlist comes from the symbol index. */
SourceInput
rngFixture()
{
    return {"src/common/rng.hpp",
            "#ifndef VBOOST_TEST_RNG_HPP\n"
            "#define VBOOST_TEST_RNG_HPP\n"
            "#include <cstdint>\n"
            "class Rng {\n"
            "  public:\n"
            "    explicit Rng(std::uint64_t seed);\n"
            "    Rng split(std::uint64_t stream) const;\n"
            "};\n"
            "#endif\n",
            ""};
}

/** Hash-helper fixture: a free function returning uint64_t from
 *  scalar-only parameters is blessed for seed derivation. */
SourceInput
hashFixture()
{
    return {"src/sram/cell_hash.hpp",
            "#ifndef VBOOST_TEST_CELL_HASH_HPP\n"
            "#define VBOOST_TEST_CELL_HASH_HPP\n"
            "#include <cstdint>\n"
            "std::uint64_t mix64(std::uint64_t a, std::uint64_t b);\n"
            "#endif\n",
            ""};
}

/** Registry fixture: discovered through its excludeFromFingerprint
 *  member; `counter` becomes a registration method because its
 *  return type names a class declared in the same file. */
SourceInput
registryFixture()
{
    return {"src/obs/metrics.hpp",
            "#ifndef VBOOST_TEST_METRICS_HPP\n"
            "#define VBOOST_TEST_METRICS_HPP\n"
            "#include <string>\n"
            "class Counter {\n"
            "  public:\n"
            "    void add(double v);\n"
            "};\n"
            "class MetricsRegistry {\n"
            "  public:\n"
            "    Counter counter(const std::string &name);\n"
            "    void excludeFromFingerprint(const std::string &name);\n"
            "};\n"
            "#endif\n",
            ""};
}

/** Pool fixture: discovered through its std::thread member; public
 *  members and stem-sibling free functions taking std::function
 *  become pool entry points. */
SourceInput
poolFixture()
{
    return {"src/common/thread_pool.hpp",
            "#ifndef VBOOST_TEST_POOL_HPP\n"
            "#define VBOOST_TEST_POOL_HPP\n"
            "#include <functional>\n"
            "#include <thread>\n"
            "#include <vector>\n"
            "class ThreadPool {\n"
            "  public:\n"
            "    void submit(std::function<void()> fn);\n"
            "  private:\n"
            "    std::vector<std::thread> workers_;\n"
            "};\n"
            "void parallelFor(std::size_t n, int num_threads,\n"
            "                 const std::function<void(std::size_t, "
            "unsigned)> &body);\n"
            "#endif\n",
            ""};
}

/** Wall-clock-coupled helper: its file calls time(), so its non-void
 *  free functions propagate taint into VB008 consumers. */
SourceInput
telemetryFixture()
{
    return {"src/serve/telemetry.hpp",
            "#ifndef VBOOST_TEST_TELEMETRY_HPP\n"
            "#define VBOOST_TEST_TELEMETRY_HPP\n"
            "inline double\n"
            "nowSeconds()\n"
            "{\n"
            "    // vblint: allow(VB001, operator dashboard clock)\n"
            "    return static_cast<double>(time(nullptr));\n"
            "}\n"
            "#endif\n",
            ""};
}

// ---------------------------------------------------------------- VB006

TEST(VblintVB006, FlagsLayeringBackEdge)
{
    const auto fa = analyzeSource("src/common/x.cpp",
                                  "#include \"serve/server.hpp\"\n"
                                  "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 1);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
    EXPECT_NE(diags[0].message.find("back-edge"), std::string::npos);
}

TEST(VblintVB006, ForwardAndSameModuleIncludesAreClean)
{
    EXPECT_TRUE(withRule(analyzeSource("src/serve/x.cpp",
                                       "#include \"common/rng.hpp\"\n"
                                       "int f() { return 1; }\n"),
                         Rule::VB006)
                    .empty());
    EXPECT_TRUE(withRule(analyzeSource("src/serve/x.cpp",
                                       "#include \"serve/batching.hpp\"\n"
                                       "int f() { return 1; }\n"),
                         Rule::VB006)
                    .empty());
}

TEST(VblintVB006, RecoveryTierSitsBetweenFiAndServe)
{
    // DESIGN.md §15: recovery consumes fi's injection machinery and
    // feeds serve's planner, so the DAG must admit recovery -> fi and
    // serve -> recovery while rejecting the reverse edges.
    EXPECT_EQ(moduleTier("fi"), 5);
    EXPECT_EQ(moduleTier("recovery"), 6);
    EXPECT_EQ(moduleTier("serve"), 7);
    EXPECT_EQ(moduleTier("cluster"), 8);

    EXPECT_TRUE(withRule(analyzeSource("src/recovery/x.cpp",
                                       "#include \"fi/injector.hpp\"\n"
                                       "int f() { return 1; }\n"),
                         Rule::VB006)
                    .empty());
    EXPECT_TRUE(withRule(analyzeSource(
                             "src/serve/x.cpp",
                             "#include \"recovery/recovery.hpp\"\n"
                             "int f() { return 1; }\n"),
                         Rule::VB006)
                    .empty());

    const auto back = withRule(
        analyzeSource("src/fi/x.cpp",
                      "#include \"recovery/recovery.hpp\"\n"
                      "int f() { return 1; }\n"),
        Rule::VB006);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_NE(back[0].message.find("back-edge"), std::string::npos);

    const auto up = withRule(
        analyzeSource("src/recovery/x.cpp",
                      "#include \"serve/planner.hpp\"\n"
                      "int f() { return 1; }\n"),
        Rule::VB006);
    ASSERT_EQ(up.size(), 1u);
    EXPECT_NE(up[0].message.find("back-edge"), std::string::npos);
}

TEST(VblintVB006, FlagsSameTierCrossModuleInclude)
{
    // circuit and obs share a tier; neither may depend on the other.
    const auto fa = analyzeSource("src/circuit/x.cpp",
                                  "#include \"obs/metrics.hpp\"\n"
                                  "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("same-tier"), std::string::npos);
}

TEST(VblintVB006, FlagsComputedInclude)
{
    const auto fa = analyzeSource("src/core/x.cpp",
                                  "#include VBOOST_CONFIG_HEADER\n"
                                  "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("computed"), std::string::npos);
}

TEST(VblintVB006, AngledIncludesAreExempt)
{
    const auto fa = analyzeSource("src/core/x.cpp",
                                  "#include <vector>\n"
                                  "#include <unordered_map>\n"
                                  "int f() { return 1; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB006).empty());
}

TEST(VblintVB006, FlagsQuotedIncludeOutsideModuleTree)
{
    const auto fa = analyzeSource("src/core/x.cpp",
                                  "#include \"x_detail.hpp\"\n"
                                  "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("does not land"), std::string::npos);
}

TEST(VblintVB006, FlagsModuleMissingFromTierTable)
{
    const auto fa = analyzeSource("src/newmod/x.cpp",
                                  "#include \"common/rng.hpp\"\n"
                                  "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("tier table"), std::string::npos);
}

TEST(VblintVB006, DetectsIncludeCycle)
{
    std::vector<SourceInput> inputs{
        {"src/serve/a.hpp",
         "#ifndef VBOOST_TEST_A_HPP\n"
         "#define VBOOST_TEST_A_HPP\n"
         "#include \"serve/b.hpp\"\n"
         "#endif\n",
         ""},
        {"src/serve/b.hpp",
         "#ifndef VBOOST_TEST_B_HPP\n"
         "#define VBOOST_TEST_B_HPP\n"
         "#include \"serve/a.hpp\"\n"
         "#endif\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("include cycle"), std::string::npos);
}

TEST(VblintVB006, TrailingWaiverOnIncludeLineSuppresses)
{
    const auto fa = analyzeSource(
        "src/common/x.cpp",
        "#include \"serve/server.hpp\" "
        "// vblint: allow(VB006, legacy shim until the split lands)\n"
        "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
    EXPECT_EQ(activeCount(fa), 0);
}

TEST(VblintVB006, ToolsAndBenchLayersAreExempt)
{
    // Layering binds src/<module>/ files only; harness code may
    // reach into any layer.
    const auto fa = analyzeSource("tools/x.cpp",
                                  "#include \"serve/server.hpp\"\n"
                                  "int f() { return 1; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB006).empty());
}

// ---------------------------------------------------------------- VB007

TEST(VblintVB007, FlagsStdEngine)
{
    const auto fa = analyzeSource(
        "src/fi/x.cpp", "void f() { std::mt19937 gen(42); (void)gen; }\n");
    const auto diags = withRule(fa, Rule::VB007);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
    EXPECT_NE(diags[0].message.find("mt19937"), std::string::npos);
}

TEST(VblintVB007, FlagsStdDistribution)
{
    const auto fa = analyzeSource(
        "src/fi/x.cpp",
        "void f() {\n"
        "    std::uniform_real_distribution<double> d(0.0, 1.0);\n"
        "    (void)d;\n"
        "}\n");
    ASSERT_EQ(withRule(fa, Rule::VB007).size(), 1u);
}

TEST(VblintVB007, FlagsAdHocSeedArithmetic)
{
    std::vector<SourceInput> inputs{
        rngFixture(),
        {"src/fi/x.cpp",
         "#include \"common/rng.hpp\"\n"
         "Rng forJob(std::uint64_t seed, std::uint64_t j) {\n"
         "    return Rng(seed * 31 + j);\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB007);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/fi/x.cpp");
    EXPECT_NE(diags[0].message.find("ad-hoc seed arithmetic"),
              std::string::npos);
}

TEST(VblintVB007, HashHelperArithmeticIsBlessed)
{
    // Arithmetic inside a discovered hash helper's argument list is
    // that helper's job; the construction stays clean.
    std::vector<SourceInput> inputs{
        rngFixture(), hashFixture(),
        {"src/fi/x.cpp",
         "#include \"common/rng.hpp\"\n"
         "#include \"sram/cell_hash.hpp\"\n"
         "Rng forCell(std::uint64_t seed, std::uint64_t row) {\n"
         "    return Rng(mix64(seed + 1, row));\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB007).empty());
}

TEST(VblintVB007, SplitCounterIsClean)
{
    std::vector<SourceInput> inputs{
        rngFixture(),
        {"src/fi/x.cpp",
         "#include \"common/rng.hpp\"\n"
         "Rng forJob(const Rng &root, std::uint64_t j) {\n"
         "    return root.split(j);\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB007).empty());
}

TEST(VblintVB007, ProviderFileIsExempt)
{
    // The stream class's own files may host std engines; the
    // exemption keys off the symbol index, not a hardcoded path list.
    std::vector<SourceInput> inputs{
        rngFixture(),
        {"src/common/rng.cpp",
         "#include \"common/rng.hpp\"\n"
         "void seedHelper() { std::mt19937 gen(7); (void)gen; }\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB007).empty());
}

TEST(VblintVB007, AllowAnnotationSuppresses)
{
    const auto fa = analyzeSource(
        "src/fi/x.cpp",
        "// vblint: allow(VB007, reference oracle for the stream tests)\n"
        "void f() { std::mt19937 gen(42); (void)gen; }\n");
    const auto diags = withRule(fa, Rule::VB007);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
}

// ---------------------------------------------------------------- VB008

TEST(VblintVB008, FlagsWallClockMetricWithoutExclusion)
{
    std::vector<SourceInput> inputs{
        registryFixture(), telemetryFixture(),
        {"src/serve/x.cpp",
         "#include \"obs/metrics.hpp\"\n"
         "#include \"serve/telemetry.hpp\"\n"
         "void setup(MetricsRegistry &reg) {\n"
         "    const double t0 = nowSeconds();\n"
         "    (void)t0;\n"
         "    reg.counter(\"serve.elapsed_seconds\");\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB008);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/serve/x.cpp");
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
    EXPECT_NE(diags[0].message.find("serve.elapsed_seconds"),
              std::string::npos);
    EXPECT_NE(diags[0].message.find("nowSeconds"), std::string::npos);
}

TEST(VblintVB008, ExcludeFromFingerprintClearsTheFinding)
{
    std::vector<SourceInput> inputs{
        registryFixture(), telemetryFixture(),
        {"src/serve/x.cpp",
         "#include \"obs/metrics.hpp\"\n"
         "#include \"serve/telemetry.hpp\"\n"
         "void setup(MetricsRegistry &reg) {\n"
         "    const double t0 = nowSeconds();\n"
         "    (void)t0;\n"
         "    reg.counter(\"serve.elapsed_seconds\");\n"
         "    reg.excludeFromFingerprint(\"serve.elapsed_seconds\");\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB008).empty());
}

TEST(VblintVB008, CleanFunctionsMayRegisterMetrics)
{
    // No wall-clock taint in scope: registration is fine without an
    // exclusion.
    std::vector<SourceInput> inputs{
        registryFixture(),
        {"src/serve/x.cpp",
         "#include \"obs/metrics.hpp\"\n"
         "void setup(MetricsRegistry &reg) {\n"
         "    reg.counter(\"serve.batches_formed\");\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB008).empty());
}

TEST(VblintVB008, FlagsRegistrationInsidePoolLambda)
{
    std::vector<SourceInput> inputs{
        registryFixture(), poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "#include \"obs/metrics.hpp\"\n"
         "void run(ThreadPool &pool, MetricsRegistry &reg) {\n"
         "    pool.submit([&reg] { reg.counter(\"fi.inner\"); });\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB008);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("inside a thread-pool lambda"),
              std::string::npos);
}

TEST(VblintVB008, AllowAnnotationSuppresses)
{
    std::vector<SourceInput> inputs{
        registryFixture(), telemetryFixture(),
        {"src/serve/x.cpp",
         "#include \"obs/metrics.hpp\"\n"
         "#include \"serve/telemetry.hpp\"\n"
         "void setup(MetricsRegistry &reg) {\n"
         "    const double t0 = nowSeconds();\n"
         "    (void)t0;\n"
         "    // vblint: allow(VB008, excluded at the call site in main)\n"
         "    reg.counter(\"serve.elapsed_seconds\");\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB008);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
}

// ---------------------------------------------------------------- VB009

TEST(VblintVB009, FlagsDefaultRefCapture)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "void run(ThreadPool &pool, double *out) {\n"
         "    pool.submit([&] { out[0] = 1.0; });\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB009);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
    EXPECT_NE(diags[0].message.find("[&]"), std::string::npos);
}

TEST(VblintVB009, FreeParallelForIsAnEntryPoint)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "#include <vector>\n"
         "void run(std::vector<double> &out) {\n"
         "    parallelFor(out.size(), 4,\n"
         "                [&](std::size_t j, unsigned slot) {\n"
         "                    out[j] = static_cast<double>(slot);\n"
         "                });\n"
         "}\n",
         ""}};
    ASSERT_EQ(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB009).size(), 1u);
}

TEST(VblintVB009, FlagsUnguardedNamedRefCapture)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "void run(ThreadPool &pool) {\n"
         "    double total = 0.0;\n"
         "    pool.submit([&total] { total += 1.0; });\n"
         "}\n",
         ""}};
    const auto diags =
        reportWithRule(analyzeAll(inputs, {}), Rule::VB009);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("total"), std::string::npos);
}

TEST(VblintVB009, AtomicGuardedCaptureIsClean)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "#include <atomic>\n"
         "void run(ThreadPool &pool) {\n"
         "    std::atomic<long> hits{0};\n"
         "    pool.submit([&hits] { ++hits; });\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB009).empty());
}

TEST(VblintVB009, ValueCaptureIsClean)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "void run(ThreadPool &pool) {\n"
         "    const double scale = 2.0;\n"
         "    pool.submit([scale] { (void)scale; });\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB009).empty());
}

TEST(VblintVB009, NonPoolCallIsClean)
{
    // [&] into a plain callback-taking function is not a pool hand-off.
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "#include <functional>\n"
         "void apply(const std::function<void()> &fn);\n"
         "void run(double *out) {\n"
         "    apply([&] { out[0] = 1.0; });\n"
         "}\n",
         ""}};
    EXPECT_TRUE(
        reportWithRule(analyzeAll(inputs, {}), Rule::VB009).empty());
}

TEST(VblintVB009, AllowAnnotationSuppresses)
{
    std::vector<SourceInput> inputs{
        poolFixture(),
        {"src/fi/x.cpp",
         "#include \"common/thread_pool.hpp\"\n"
         "void run(ThreadPool &pool, double *out) {\n"
         "    pool.submit(\n"
         "        // vblint: allow(VB009, job writes a disjoint slot)\n"
         "        [&] { out[0] = 1.0; });\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const auto diags = reportWithRule(report, Rule::VB009);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
}

// ----------------------------------------------------------------- lexer

TEST(VblintLexer, RawStringContentIsOpaque)
{
    // rand()/time() inside raw strings are text, not calls; a raw
    // string with a delimiter must terminate at its matching )x".
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "const char *kDoc = R\"(call rand() or time(0) here)\";\n"
        "const char *kDelim = R\"x(also rand();)x\";\n"
        "int f() { return 1; }\n");
    EXPECT_TRUE(withRule(fa, Rule::VB001).empty());
}

TEST(VblintLexer, DigitSeparatorsLexAsOneNumber)
{
    // 1'000'000 must not open a character literal; if it did, the
    // rest of the file would lex as garbage and the rand() call on
    // the next line would be missed or misplaced.
    const auto fa = analyzeSource("src/core/x.cpp",
                                  "void f() {\n"
                                  "    const long n = 1'000'000; (void)n;\n"
                                  "    int a = rand(); (void)a;\n"
                                  "}\n");
    const auto diags = withRule(fa, Rule::VB001);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 3);
}

TEST(VblintLexer, SplicedLineCommentSwallowsNextLine)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "void f() {\n"
        "    // a spliced comment hides the next line \\\n"
        "    int a = rand();\n"
        "    int b = rand(); (void)b;\n"
        "}\n");
    const auto diags = withRule(fa, Rule::VB001);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
}

TEST(VblintLexer, AnnotationAboveDirectiveTargetsTheDirective)
{
    // An own-line waiver binds to a following #include even though
    // directives live outside the token stream.
    const auto fa = analyzeSource(
        "src/common/x.cpp",
        "// vblint: allow(VB006, bootstrap shim until the split lands)\n"
        "#include \"serve/server.hpp\"\n"
        "int f() { return 1; }\n");
    const auto diags = withRule(fa, Rule::VB006);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
}

// ------------------------------------------------- suppression machinery

TEST(VblintSuppression, OwnLineAnnotationTargetsNextCodeLine)
{
    // Blank lines and further comments between the annotation and the
    // code it waives are fine; the annotation binds to the next
    // statement, not the next physical line.
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "// vblint: allow(VB004, scratch counter for a debug build)\n"
        "\n"
        "// Regular comment in between.\n"
        "int counter = 0;\n");
    const auto diags = withRule(fa, Rule::VB004);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Suppressed);
    ASSERT_EQ(fa.suppressions.size(), 1u);
    EXPECT_TRUE(fa.suppressions[0].used);
    EXPECT_EQ(fa.suppressions[0].targetLine, 4);
}

TEST(VblintSuppression, ReasonIsRecordedInTheInventory)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "// vblint: allow(VB004, scratch counter for a debug build)\n"
        "int counter = 0;\n");
    ASSERT_EQ(fa.suppressions.size(), 1u);
    EXPECT_EQ(fa.suppressions[0].rule, Rule::VB004);
    EXPECT_EQ(fa.suppressions[0].reason,
              "scratch counter for a debug build");
}

TEST(VblintSuppression, UnusedSuppressionRaisesVB900)
{
    // A waiver with nothing to waive is itself a defect: it either
    // outlived the code it covered or was pasted in the wrong place.
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "// vblint: allow(VB001, nothing nondeterministic below)\n"
        "int add(int a, int b) { return a + b; }\n");
    const auto diags = withRule(fa, Rule::VB900);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].status, DiagStatus::Active);
}

TEST(VblintSuppression, MalformedAnnotationRaisesVB901)
{
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "// vblint: frobnicate(VB001)\n"
        "int add(int a, int b) { return a + b; }\n");
    ASSERT_EQ(withRule(fa, Rule::VB901).size(), 1u);
}

TEST(VblintSuppression, WrongRuleDoesNotSuppress)
{
    // An allow(VB002) sitting on a VB004 site must not eat the VB004
    // — and must itself be reported unused.
    const auto fa = analyzeSource(
        "src/core/x.cpp",
        "// vblint: allow(VB002, wrong rule on purpose)\n"
        "int counter = 0;\n");
    const auto vb004 = withRule(fa, Rule::VB004);
    ASSERT_EQ(vb004.size(), 1u);
    EXPECT_EQ(vb004[0].status, DiagStatus::Active);
    EXPECT_EQ(withRule(fa, Rule::VB900).size(), 1u);
}

// --------------------------------------------------------------- baseline

TEST(VblintBaseline, ParserSkipsCommentsAndReportsMalformedLines)
{
    std::vector<std::string> errors;
    const auto entries = parseBaseline("# comment\n"
                                       "\n"
                                       "src/fi/x.cpp|VB003|s += v[i];\n"
                                       "not a baseline line\n",
                                       errors);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].file, "src/fi/x.cpp");
    EXPECT_EQ(entries[0].rule, "VB003");
    EXPECT_EQ(entries[0].sourceLine, "s += v[i];");
    EXPECT_EQ(errors.size(), 1u);
}

TEST(VblintBaseline, MatchingEntryMarksDiagnosticBaselined)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i];\n"
         "    return s;\n"
         "}\n",
         ""}};
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline("src/fi/x.cpp|VB003|s += v[i];\n", errors);
    const auto report = analyzeAll(inputs, baseline);
    EXPECT_EQ(report.activeCount(), 0);
    EXPECT_EQ(report.countWithStatus(DiagStatus::Baselined), 1);
    EXPECT_TRUE(report.staleBaseline.empty());
}

TEST(VblintBaseline, ContentMatchSurvivesLineNumberChurn)
{
    // Same flagged statement, shifted down by new code above it: the
    // content-keyed baseline still matches (this is the whole reason
    // the format carries source text instead of line numbers).
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "int unrelatedNewFunction() { return 42; }\n"
         "\n"
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i];\n"
         "    return s;\n"
         "}\n",
         ""}};
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline("src/fi/x.cpp|VB003|s += v[i];\n", errors);
    const auto report = analyzeAll(inputs, baseline);
    EXPECT_EQ(report.activeCount(), 0);
    EXPECT_EQ(report.countWithStatus(DiagStatus::Baselined), 1);
}

TEST(VblintBaseline, StaleEntryIsReported)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp", "int add(int a, int b) { return a + b; }\n", ""}};
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline("src/fi/x.cpp|VB003|s += v[i];\n", errors);
    const auto report = analyzeAll(inputs, baseline);
    ASSERT_EQ(report.staleBaseline.size(), 1u);
    EXPECT_EQ(report.staleBaseline[0].sourceLine, "s += v[i];");
}

TEST(VblintBaseline, FormatRoundTrips)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i];\n"
         "    return s;\n"
         "}\n",
         ""}};
    const auto first = analyzeAll(inputs, {});
    ASSERT_EQ(first.activeCount(), 1);

    // Feed the generated baseline straight back in: everything that
    // was active must come out baselined.
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline(formatBaseline(first.diagnostics), errors);
    EXPECT_TRUE(errors.empty());
    const auto second = analyzeAll(inputs, baseline);
    EXPECT_EQ(second.activeCount(), 0);
    EXPECT_EQ(second.countWithStatus(DiagStatus::Baselined), 1);
}

TEST(VblintBaseline, UpdateAddsActiveFindings)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i];\n"
         "    return s;\n"
         "}\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    const BaselineUpdate up = updateBaseline(report);
    EXPECT_EQ(up.added, 1);
    EXPECT_EQ(up.kept, 0);
    EXPECT_EQ(up.pruned, 0);
    EXPECT_NE(up.content.find("src/fi/x.cpp|VB003|s += v[i];"),
              std::string::npos);

    // Feeding the updated baseline straight back leaves nothing active.
    std::vector<std::string> errors;
    const auto second = analyzeAll(inputs, parseBaseline(up.content, errors));
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(second.activeCount(), 0);
}

TEST(VblintBaseline, UpdateKeepsMatchingEntries)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i];\n"
         "    return s;\n"
         "}\n",
         ""}};
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline("src/fi/x.cpp|VB003|s += v[i];\n", errors);
    const BaselineUpdate up = updateBaseline(analyzeAll(inputs, baseline));
    EXPECT_EQ(up.added, 0);
    EXPECT_EQ(up.kept, 1);
    EXPECT_EQ(up.pruned, 0);
    EXPECT_NE(up.content.find("src/fi/x.cpp|VB003|s += v[i];"),
              std::string::npos);
}

TEST(VblintBaseline, UpdatePrunesStaleEntriesAndReportsThem)
{
    // The fixed file no longer produces the finding: the rewrite drops
    // the entry and reports the pruning (the CLI exits 1 on it so
    // silent baseline shrinkage cannot slip through review).
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp", "int add(int a, int b) { return a + b; }\n", ""}};
    std::vector<std::string> errors;
    const auto baseline =
        parseBaseline("src/fi/x.cpp|VB003|s += v[i];\n", errors);
    const BaselineUpdate up = updateBaseline(analyzeAll(inputs, baseline));
    EXPECT_EQ(up.added, 0);
    EXPECT_EQ(up.kept, 0);
    EXPECT_EQ(up.pruned, 1);
    ASSERT_EQ(up.prunedEntries.size(), 1u);
    EXPECT_EQ(up.prunedEntries[0].sourceLine, "s += v[i];");
    EXPECT_EQ(up.content.find("s += v[i];"), std::string::npos);
}

TEST(VblintBaseline, UpdateDoesNotAbsorbInlineSuppressedFindings)
{
    // An inline waiver documents its reason at the site; hoisting it
    // into the baseline would lose that, so suppressed findings are
    // never written out.
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "double sum(const double *v, int n) {\n"
         "    double s = 0.0;\n"
         "    for (int i = 0; i < n; ++i)\n"
         "        s += v[i]; // vblint: assoc-ok(fixed serial order)\n"
         "    return s;\n"
         "}\n",
         ""}};
    const BaselineUpdate up = updateBaseline(analyzeAll(inputs, {}));
    EXPECT_EQ(up.added, 0);
    EXPECT_EQ(up.content.find("s += v[i]"), std::string::npos);
}

// ------------------------------------------------------------------- JSON

TEST(VblintJson, ReportHasExpectedShape)
{
    std::vector<SourceInput> inputs{
        {"src/fi/x.cpp",
         "void f() { int a = rand(); (void)a; }\n"
         "// vblint: allow(VB004, test fixture state)\n"
         "int counter = 0;\n",
         ""}};
    const auto report = analyzeAll(inputs, {});
    std::ostringstream os;
    writeJson(os, report, "/repo");
    const std::string json = os.str();

    EXPECT_NE(json.find("\"tool\": \"vblint\""), std::string::npos);
    EXPECT_NE(json.find("\"formatVersion\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"root\": \"/repo\""), std::string::npos);
    EXPECT_NE(json.find("\"filesScanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"active\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"id\": \"VB001\""), std::string::npos);
    EXPECT_NE(json.find("\"file\": \"src/fi/x.cpp\""), std::string::npos);
    EXPECT_NE(json.find("\"suppressions\""), std::string::npos);
    EXPECT_NE(json.find("\"staleBaseline\""), std::string::npos);

    // The writer must emit parseable JSON: crude but effective brace
    // balance check on the final artifact.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(VblintJson, EveryRuleHasAnExplanation)
{
    for (const Rule r : allRules()) {
        EXPECT_FALSE(ruleName(r).empty());
        EXPECT_FALSE(ruleSummary(r).empty());
        EXPECT_FALSE(ruleExplanation(r).empty());
        EXPECT_EQ(ruleFromName(ruleName(r)), r);
    }
}

// -------------------------------------------------------------- self-check

/** Mirror the CLI's file collection: every C++ source under src/,
 *  sorted, with the paired header attached to each .cpp. */
std::vector<SourceInput>
loadRealSrcTree(const std::filesystem::path &root)
{
    namespace fs = std::filesystem;
    auto slurp = [](const fs::path &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::vector<fs::path> files;
    for (const auto &entry : fs::recursive_directory_iterator(root / "src")) {
        if (!entry.is_regular_file())
            continue;
        const auto ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" ||
            ext == ".hh")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());

    std::vector<SourceInput> inputs;
    for (const auto &p : files) {
        SourceInput in;
        in.path = fs::relative(p, root).generic_string();
        in.content = slurp(p);
        if (p.extension() == ".cpp" || p.extension() == ".cc") {
            for (const char *hext : {".hpp", ".h"}) {
                fs::path header = p;
                header.replace_extension(hext);
                if (fs::exists(header)) {
                    in.siblingHeader = slurp(header);
                    break;
                }
            }
        }
        inputs.push_back(std::move(in));
    }
    return inputs;
}

TEST(VblintSelfCheck, SrcTreeIsCleanUnderCommittedBaseline)
{
    namespace fs = std::filesystem;
    const fs::path root = VBLINT_SOURCE_ROOT;
    ASSERT_TRUE(fs::exists(root / "src"))
        << "source root not found: " << root;

    const auto inputs = loadRealSrcTree(root);
    ASSERT_GT(inputs.size(), 50u)
        << "suspiciously few files; collection is broken";

    std::ifstream bf(root / "tools" / "vblint" / "baseline.txt");
    ASSERT_TRUE(bf.good()) << "committed baseline missing";
    std::ostringstream ss;
    ss << bf.rdbuf();
    std::vector<std::string> errors;
    const auto baseline = parseBaseline(ss.str(), errors);
    EXPECT_TRUE(errors.empty())
        << "malformed baseline line: " << errors.front();

    const auto report = analyzeAll(inputs, baseline);

    // The tier-1 invariant: no unwaived diagnostics in src/, no stale
    // baseline entries, no dead suppressions. Print offenders so a
    // failure names file and line without rerunning the CLI.
    for (const auto &d : report.diagnostics)
        if (d.status == DiagStatus::Active)
            ADD_FAILURE() << d.file << ":" << d.line << ": "
                          << ruleName(d.rule) << ": " << d.message;
    EXPECT_EQ(report.activeCount(), 0);
    for (const auto &e : report.staleBaseline)
        ADD_FAILURE() << "stale baseline entry: " << e.file << "|" << e.rule
                      << "|" << e.sourceLine;

    // Every committed waiver must carry a reason — the inventory is
    // only auditable if the "why" rides with the "where".
    for (const auto &s : report.suppressions)
        EXPECT_FALSE(s.reason.empty())
            << s.file << ":" << s.line << " waives " << ruleName(s.rule)
            << " without a reason";
}

TEST(VblintSelfCheck, InjectedBackEdgeFailsTheRealTree)
{
    // The VB006 acceptance criterion: dropping a single file with an
    // upward include into the otherwise-clean tree must flip the
    // build-failing count to nonzero.
    namespace fs = std::filesystem;
    const fs::path root = VBLINT_SOURCE_ROOT;
    ASSERT_TRUE(fs::exists(root / "src"))
        << "source root not found: " << root;

    auto inputs = loadRealSrcTree(root);
    inputs.push_back({"src/common/vblint_injected_backedge.cpp",
                      "#include \"serve/server.hpp\"\n"
                      "int injected() { return 1; }\n",
                      ""});

    std::ifstream bf(root / "tools" / "vblint" / "baseline.txt");
    ASSERT_TRUE(bf.good());
    std::ostringstream ss;
    ss << bf.rdbuf();
    std::vector<std::string> errors;
    const auto baseline = parseBaseline(ss.str(), errors);
    ASSERT_TRUE(errors.empty());

    const auto report = analyzeAll(inputs, baseline);
    bool found = false;
    for (const auto &d : report.diagnostics) {
        if (d.rule == Rule::VB006 && d.status == DiagStatus::Active &&
            d.file == "src/common/vblint_injected_backedge.cpp") {
            found = true;
            EXPECT_NE(d.message.find("back-edge"), std::string::npos);
        }
    }
    EXPECT_TRUE(found) << "injected common -> serve include not flagged";
    EXPECT_GE(report.activeCount(), 1);
}

} // namespace
} // namespace vboost::vblint
