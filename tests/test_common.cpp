/**
 * @file
 * Tests for logging, units, stats, tables and the fixed-point codec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/fixed_point.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace vboost {
namespace {

// ------------------------------------------------------------- logging

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 1.5), FatalError);
}

TEST(Logging, MessagesAreConcatenated)
{
    try {
        fatal("x=", 3, " y=", 4.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "x=3 y=4.5");
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(TokenBucket, GrantsFullBurstThenBlocks)
{
    TokenBucket bucket(1.0, 3.0);
    EXPECT_TRUE(bucket.allow(10.0));
    EXPECT_TRUE(bucket.allow(10.0));
    EXPECT_TRUE(bucket.allow(10.0));
    EXPECT_FALSE(bucket.allow(10.0)); // burst spent, no time elapsed
}

TEST(TokenBucket, RefillsAtTheConfiguredRate)
{
    TokenBucket bucket(2.0, 2.0); // 2 tokens/sec, burst 2
    EXPECT_TRUE(bucket.allow(0.0));
    EXPECT_TRUE(bucket.allow(0.0));
    EXPECT_FALSE(bucket.allow(0.0));
    EXPECT_FALSE(bucket.allow(0.4)); // 0.8 tokens: still short
    EXPECT_TRUE(bucket.allow(0.5));  // 1.0 token accrued
    EXPECT_FALSE(bucket.allow(0.5));
}

TEST(TokenBucket, RefillCapsAtBurst)
{
    TokenBucket bucket(10.0, 2.0);
    EXPECT_TRUE(bucket.allow(0.0));
    EXPECT_TRUE(bucket.allow(0.0));
    // A long idle stretch refills to the cap, not beyond it.
    EXPECT_TRUE(bucket.allow(100.0));
    EXPECT_TRUE(bucket.allow(100.0));
    EXPECT_FALSE(bucket.allow(100.0));
}

TEST(TokenBucket, TimeNeverMovesBackwards)
{
    TokenBucket bucket(1.0, 1.0);
    EXPECT_TRUE(bucket.allow(50.0));
    // An earlier timestamp must not manufacture tokens.
    EXPECT_FALSE(bucket.allow(0.0));
    EXPECT_TRUE(bucket.allow(51.0));
}

TEST(TokenBucket, RejectsBadConfig)
{
    EXPECT_THROW(TokenBucket(0.0, 1.0), FatalError);
    EXPECT_THROW(TokenBucket(-1.0, 1.0), FatalError);
    EXPECT_THROW(TokenBucket(1.0, 0.5), FatalError);
}

TEST(Logging, WarnRateLimitedSuppressesFloods)
{
    // Tiny budget: the first message passes, the flood is dropped.
    setWarnRateLimit(0.001, 1.0);
    setQuiet(false);
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 50; ++i)
        warnRateLimited("flood message ", i);
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("flood message 0"), std::string::npos);
    EXPECT_EQ(out.find("flood message 1"), std::string::npos);
    // Restore the default budget for other tests.
    setWarnRateLimit(5.0, 10.0);
}

// --------------------------------------------------------------- units

TEST(Units, LiteralsProduceBaseSiValues)
{
    EXPECT_DOUBLE_EQ((0.4_V).value(), 0.4);
    EXPECT_DOUBLE_EQ((10.0_pF).value(), 10e-12);
    EXPECT_DOUBLE_EQ((50.0_MHz).value(), 50e6);
    EXPECT_DOUBLE_EQ((1.5_pJ).value(), 1.5e-12);
    EXPECT_DOUBLE_EQ((2.0_uW).value(), 2e-6);
    EXPECT_DOUBLE_EQ((1.0_mm2).value(), 1e6);
}

TEST(Units, ArithmeticAndComparison)
{
    const Volt a = 0.3_V, b = 0.2_V;
    EXPECT_DOUBLE_EQ((a + b).value(), 0.5);
    EXPECT_DOUBLE_EQ((a - b).value(), 0.1);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 0.6);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 0.6);
    EXPECT_DOUBLE_EQ(a / b, 1.5);
    EXPECT_LT(b, a);
    EXPECT_GT(a, b);
}

TEST(Units, SwitchingEnergyIsCV2)
{
    const Joule e = switchingEnergy(2.0_pF, 0.5_V);
    EXPECT_DOUBLE_EQ(e.value(), 2e-12 * 0.25);
}

TEST(Units, PowerEnergyPeriodRelations)
{
    EXPECT_DOUBLE_EQ(period(50.0_MHz).value(), 2e-8);
    EXPECT_DOUBLE_EQ(power(1.0_pJ, period(50.0_MHz)).value(), 5e-5);
    EXPECT_DOUBLE_EQ(energyFromPower(2.0_uW, 1.0_ns).value(), 2e-15);
}

// --------------------------------------------------------------- stats

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAccessorsPanic)
{
    RunningStats s;
    EXPECT_THROW(s.mean(), PanicError);
    EXPECT_THROW(s.min(), PanicError);
    EXPECT_THROW(s.max(), PanicError);
}

TEST(RunningStats, SingleSampleHasZeroVariance)
{
    RunningStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i * 0.7) * 3 + i * 0.01;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesOrderStatistics)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50), FatalError);
    EXPECT_THROW(percentile({1.0}, 101), FatalError);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-3.0); // clamps into bin 0
    h.add(42.0); // clamps into last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.0);
}

TEST(Histogram, RejectsDegenerateRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

// --------------------------------------------------------------- table

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"a", "long_header"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("long_header"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RejectsRaggedRows)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"x"});
    t.addRow({"hello, \"world\""});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(Table::sci(0.00123, 2), "1.23e-03");
}

// --------------------------------------------------------- fixed point

TEST(FixedPoint, EncodeDecodeRoundTrip)
{
    FixedPointCodec codec(13); // Q2.13
    for (float x : {0.0f, 0.5f, -0.5f, 1.25f, -3.99f, 3.99f}) {
        EXPECT_NEAR(codec.decode(codec.encode(x)), x, codec.resolution());
    }
}

TEST(FixedPoint, SaturatesAtRangeEdges)
{
    FixedPointCodec codec(13);
    EXPECT_EQ(codec.encode(100.0f), 32767);
    EXPECT_EQ(codec.encode(-100.0f), -32768);
    EXPECT_NEAR(codec.maxValue(), 4.0f, 0.001f);
    EXPECT_NEAR(codec.minValue(), -4.0f, 0.001f);
}

TEST(FixedPoint, ResolutionMatchesFracBits)
{
    EXPECT_FLOAT_EQ(FixedPointCodec(15).resolution(), 1.0f / 32768.0f);
    EXPECT_FLOAT_EQ(FixedPointCodec(0).resolution(), 1.0f);
}

TEST(FixedPoint, RejectsBadFracBits)
{
    EXPECT_THROW(FixedPointCodec(-1), FatalError);
    EXPECT_THROW(FixedPointCodec(16), FatalError);
}

TEST(FixedPoint, FlipBitTogglesExactlyOneBit)
{
    const std::int16_t raw = 0x1234;
    for (int b = 0; b < 16; ++b) {
        const std::int16_t flipped = FixedPointCodec::flipBit(raw, b);
        EXPECT_EQ(static_cast<std::uint16_t>(raw ^ flipped), 1u << b);
        // Double flip restores.
        EXPECT_EQ(FixedPointCodec::flipBit(flipped, b), raw);
    }
    EXPECT_THROW(FixedPointCodec::flipBit(raw, 16), PanicError);
}

TEST(FixedPoint, SignBitFlipIsLargePerturbation)
{
    FixedPointCodec codec(15);
    const std::int16_t half = codec.encode(0.5f);
    const float flipped = codec.decode(FixedPointCodec::flipBit(half, 15));
    EXPECT_NEAR(flipped, -0.5f, 0.001f);
}

} // namespace
} // namespace vboost
