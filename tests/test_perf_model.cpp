/**
 * @file
 * Tests for the throughput / energy-efficiency model: clock ceilings
 * (logic- vs memory-limited), cycle accounting, energy composition,
 * and the qualitative efficiency claims (boosting beats single and
 * dual rails in GOPS/W at iso-reliability; boosting raises the
 * high-voltage clock ceiling).
 */

#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "common/logging.hpp"

namespace vboost::accel {
namespace {

class PerfTest : public ::testing::Test
{
  protected:
    PerfTest()
        : ctx_(core::SimContext::standard()), model_(ctx_, 16)
    {
    }

    core::SimContext ctx_;
    PerformanceModel model_;
    /** AlexNet-like: compute dominated. */
    LayerActivity conv_{1000000, 6000, 4000, 7000};
    /** FC-like: memory heavy. */
    LayerActivity fc_{340000, 85000, 85000, 85000};
};

TEST_F(PerfTest, CycleAccountingUsesTheSlowerStream)
{
    // Compute-dominated: cycles = macs / numPes (default 8 PEs).
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_EQ(r.cycles, 1000000u / 8);
    // Memory-heavy: 255000 accesses / 2 ports > 340000 / 8 MACs.
    const auto rf = model_.evaluate(fc_, 0.40_V, 4,
                                    SupplyMode::Boosted);
    EXPECT_EQ(rf.cycles, 255000u / 2);
}

TEST_F(PerfTest, EnergyCompositionIsConsistent)
{
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_GT(r.dynamicEnergy.value(), 0.0);
    EXPECT_GT(r.leakageEnergy.value(), 0.0);
    EXPECT_NEAR(r.totalEnergy.value(),
                r.dynamicEnergy.value() + r.leakageEnergy.value(),
                1e-18);
    EXPECT_NEAR(r.power.value(),
                r.totalEnergy.value() / r.runtime.value(), 1e-9);
    EXPECT_GT(r.gopsPerWatt, 0.0);
    EXPECT_GT(r.gmacsPerSecond, 0.0);
}

TEST_F(PerfTest, VlvClockIsLogicLimited)
{
    // At 0.4 V the logic runs at the 50 MHz floor; SRAM access (~3 ns)
    // is far faster than the 20 ns cycle.
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_FALSE(r.memoryLimited);
    EXPECT_NEAR(r.clock.value(), 50e6, 1.0);
}

TEST_F(PerfTest, PipelinedLogicIsMemoryLimitedUntilBoosted)
{
    // Sec. 3.3.2: "logic in a chip can be pipelined to drive up the
    // operating frequency. However, SRAM access latencies do not
    // scale proportionally." With a deeply pipelined logic target the
    // unboosted SRAM caps the clock, and boosting lifts the ceiling.
    PerfConfig pipelined;
    pipelined.logicFreqAtNominal = Hertz(1.5e9);
    PerformanceModel deep(ctx_, 16, pipelined);
    const Hertz unboosted =
        deep.maxClock(0.80_V, 0, SupplyMode::Boosted);
    const Hertz boosted = deep.maxClock(0.80_V, 4, SupplyMode::Boosted);
    EXPECT_LT(unboosted.value(), 1.5e9); // memory-limited
    EXPECT_GT(boosted.value(), unboosted.value());
}

TEST_F(PerfTest, BoostedModeIsMostEfficientAtIsoReliability)
{
    // At iso memory voltage (Vddv4 from 0.4 V), boosted GOPS/W beats
    // both alternatives for the compute-dominated workload.
    const auto b = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    const auto s = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Single);
    const auto d = model_.evaluate(conv_, 0.40_V, 4, SupplyMode::Dual);
    EXPECT_GT(b.gopsPerWatt, s.gopsPerWatt);
    EXPECT_GT(b.gopsPerWatt, d.gopsPerWatt);
}

TEST_F(PerfTest, ValidatesInputs)
{
    EXPECT_THROW(model_.evaluate(conv_, 0.40_V, 9, SupplyMode::Boosted),
                 FatalError);
    LayerActivity empty;
    EXPECT_THROW(model_.evaluate(empty, 0.40_V, 1, SupplyMode::Boosted),
                 FatalError);
    EXPECT_THROW(PerformanceModel(ctx_, 16, PerfConfig{0, 2}),
                 FatalError);
}

/** Property: efficiency falls as the single-rail voltage rises. */
class EfficiencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(EfficiencySweep, SingleRailEfficiencyDropsWithVoltage)
{
    auto ctx = core::SimContext::standard();
    PerformanceModel model(ctx, 16);
    LayerActivity act{1000000, 6000, 4000, 7000};
    const Volt v{GetParam()};
    const auto low = model.evaluate(act, v, 0, SupplyMode::Single);
    const auto high =
        model.evaluate(act, v + 0.1_V, 0, SupplyMode::Single);
    EXPECT_GT(low.gopsPerWatt, high.gopsPerWatt);
}

INSTANTIATE_TEST_SUITE_P(Voltages, EfficiencySweep,
                         ::testing::Values(0.45, 0.5, 0.55, 0.6, 0.65));

} // namespace
} // namespace vboost::accel
