/**
 * @file
 * Tests for the throughput / energy-efficiency model: clock ceilings
 * (logic- vs memory-limited), cycle accounting, energy composition,
 * and the qualitative efficiency claims (boosting beats single and
 * dual rails in GOPS/W at iso-reliability; boosting raises the
 * high-voltage clock ceiling).
 */

#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "common/logging.hpp"

namespace vboost::accel {
namespace {

class PerfTest : public ::testing::Test
{
  protected:
    PerfTest()
        : ctx_(core::SimContext::standard()), model_(ctx_, 16)
    {
    }

    core::SimContext ctx_;
    PerformanceModel model_;
    /** AlexNet-like: compute dominated. */
    LayerActivity conv_{1000000, 6000, 4000, 7000};
    /** FC-like: memory heavy. */
    LayerActivity fc_{340000, 85000, 85000, 85000};
};

TEST_F(PerfTest, CycleAccountingUsesTheSlowerStream)
{
    // Compute-dominated: cycles = macs / numPes (default 8 PEs).
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_EQ(r.cycles, 1000000u / 8);
    // Memory-heavy: 255000 accesses / 2 ports > 340000 / 8 MACs.
    const auto rf = model_.evaluate(fc_, 0.40_V, 4,
                                    SupplyMode::Boosted);
    EXPECT_EQ(rf.cycles, 255000u / 2);
}

TEST_F(PerfTest, EnergyCompositionIsConsistent)
{
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_GT(r.dynamicEnergy.value(), 0.0);
    EXPECT_GT(r.leakageEnergy.value(), 0.0);
    EXPECT_NEAR(r.totalEnergy.value(),
                r.dynamicEnergy.value() + r.leakageEnergy.value(),
                1e-18);
    EXPECT_NEAR(r.power.value(),
                r.totalEnergy.value() / r.runtime.value(), 1e-9);
    EXPECT_GT(r.gopsPerWatt, 0.0);
    EXPECT_GT(r.gmacsPerSecond, 0.0);
}

TEST_F(PerfTest, VlvClockIsLogicLimited)
{
    // At 0.4 V the logic runs at the 50 MHz floor; SRAM access (~3 ns)
    // is far faster than the 20 ns cycle.
    const auto r = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    EXPECT_FALSE(r.memoryLimited);
    EXPECT_NEAR(r.clock.value(), 50e6, 1.0);
}

TEST_F(PerfTest, PipelinedLogicIsMemoryLimitedUntilBoosted)
{
    // Sec. 3.3.2: "logic in a chip can be pipelined to drive up the
    // operating frequency. However, SRAM access latencies do not
    // scale proportionally." With a deeply pipelined logic target the
    // unboosted SRAM caps the clock, and boosting lifts the ceiling.
    PerfConfig pipelined;
    pipelined.logicFreqAtNominal = Hertz(1.5e9);
    PerformanceModel deep(ctx_, 16, pipelined);
    const Hertz unboosted =
        deep.maxClock(0.80_V, 0, SupplyMode::Boosted);
    const Hertz boosted = deep.maxClock(0.80_V, 4, SupplyMode::Boosted);
    EXPECT_LT(unboosted.value(), 1.5e9); // memory-limited
    EXPECT_GT(boosted.value(), unboosted.value());
}

TEST_F(PerfTest, BoostedModeIsMostEfficientAtIsoReliability)
{
    // At iso memory voltage (Vddv4 from 0.4 V), boosted GOPS/W beats
    // both alternatives for the compute-dominated workload.
    const auto b = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Boosted);
    const auto s = model_.evaluate(conv_, 0.40_V, 4,
                                   SupplyMode::Single);
    const auto d = model_.evaluate(conv_, 0.40_V, 4, SupplyMode::Dual);
    EXPECT_GT(b.gopsPerWatt, s.gopsPerWatt);
    EXPECT_GT(b.gopsPerWatt, d.gopsPerWatt);
}

TEST_F(PerfTest, ValidatesInputs)
{
    EXPECT_THROW(model_.evaluate(conv_, 0.40_V, 9, SupplyMode::Boosted),
                 FatalError);
    LayerActivity empty;
    EXPECT_THROW(model_.evaluate(empty, 0.40_V, 1, SupplyMode::Boosted),
                 FatalError);
    EXPECT_THROW(PerformanceModel(ctx_, 16, PerfConfig{0, 2}),
                 FatalError);
}

TEST_F(PerfTest, ZeroRetryRateMatchesOverheadFreeEvaluate)
{
    // A closed loop that never retried must price exactly like the
    // open loop: the RetryOverhead path with retryRate = 0 and no
    // escalated slice is the identity.
    RetryOverhead idle;
    idle.escalatedLevel = 3; // irrelevant while the slice is empty
    const auto plain = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted);
    const auto looped = model_.evaluate(fc_, 0.40_V, 2,
                                        SupplyMode::Boosted, idle);
    EXPECT_EQ(looped.cycles, plain.cycles);
    EXPECT_DOUBLE_EQ(looped.dynamicEnergy.value(),
                     plain.dynamicEnergy.value());
    EXPECT_DOUBLE_EQ(looped.totalEnergy.value(),
                     plain.totalEnergy.value());
    EXPECT_DOUBLE_EQ(looped.clock.value(), plain.clock.value());
}

TEST_F(PerfTest, RetryRatesAtAndAboveOneAreAcceptedAndClamped)
{
    // Rates >= 1.0 are physical (several retries per access on
    // average) and must inflate the access stream, not be rejected.
    RetryOverhead heavy;
    heavy.retryRate = 1.5;
    const auto plain = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted);
    const auto inflated = model_.evaluate(fc_, 0.40_V, 2,
                                          SupplyMode::Boosted, heavy);
    EXPECT_GT(inflated.cycles, plain.cycles);
    EXPECT_GT(inflated.dynamicEnergy.value(),
              plain.dynamicEnergy.value());

    // Beyond the pipeline's attempt ceiling (kMaxAttempts - 1 retries
    // per access) the rate clamps: a nonsense rate prices identically
    // to the ceiling.
    RetryOverhead ceiling;
    ceiling.retryRate = RetryOverhead::kMaxRetryRate;
    RetryOverhead nonsense;
    nonsense.retryRate = 20.0;
    const auto at_max = model_.evaluate(fc_, 0.40_V, 2,
                                        SupplyMode::Boosted, ceiling);
    const auto clamped = model_.evaluate(fc_, 0.40_V, 2,
                                         SupplyMode::Boosted, nonsense);
    EXPECT_EQ(clamped.cycles, at_max.cycles);
    EXPECT_DOUBLE_EQ(clamped.dynamicEnergy.value(),
                     at_max.dynamicEnergy.value());
    EXPECT_DOUBLE_EQ(clamped.totalEnergy.value(),
                     at_max.totalEnergy.value());
}

TEST_F(PerfTest, EscalatedSliceEnergyIsMonotone)
{
    // Moving a larger fraction of the issued accesses to a higher
    // boost level can only cost more dynamic energy; so can raising
    // the escalated level itself.
    RetryOverhead oh;
    oh.retryRate = 0.25;
    oh.escalatedLevel = 4;
    double prev = -1.0;
    for (double frac : {0.0, 0.25, 0.5, 1.0}) {
        oh.escalatedFraction = frac;
        const auto r = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted, oh);
        EXPECT_GE(r.dynamicEnergy.value(), prev);
        prev = r.dynamicEnergy.value();
    }

    oh.escalatedFraction = 0.5;
    double prev_level = -1.0;
    for (int level = 2; level <= 4; ++level) {
        oh.escalatedLevel = level;
        const auto r = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted, oh);
        EXPECT_GE(r.dynamicEnergy.value(), prev_level);
        prev_level = r.dynamicEnergy.value();
    }
}

TEST_F(PerfTest, ValidatesRetryOverhead)
{
    RetryOverhead bad;
    bad.retryRate = -0.1;
    EXPECT_THROW(model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                 bad),
                 FatalError);
    bad = {};
    bad.escalatedFraction = 1.5;
    EXPECT_THROW(model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                 bad),
                 FatalError);
    bad = {};
    bad.escalatedLevel = 9;
    EXPECT_THROW(model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                 bad),
                 FatalError);
}

TEST_F(PerfTest, ZeroRecoveryOverheadMatchesTimingEvaluate)
{
    const auto plain = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted,
                                       RetryOverhead::none(),
                                       TimingOverhead::none());
    const auto with = model_.evaluate(fc_, 0.40_V, 2,
                                      SupplyMode::Boosted,
                                      RetryOverhead::none(),
                                      TimingOverhead::none(),
                                      RecoveryOverhead::none());
    EXPECT_EQ(plain.cycles, with.cycles);
    EXPECT_DOUBLE_EQ(plain.totalEnergy.value(),
                     with.totalEnergy.value());
    EXPECT_DOUBLE_EQ(plain.gopsPerWatt, with.gopsPerWatt);
}

TEST_F(PerfTest, RecoveryOverheadCostsEnergyButCountsUsefulWork)
{
    RecoveryOverhead rec;
    rec.computeOverhead = 0.10;
    rec.accessOverhead = 0.05;
    const auto plain = model_.evaluate(fc_, 0.40_V, 2,
                                       SupplyMode::Boosted);
    const auto with = model_.evaluate(fc_, 0.40_V, 2,
                                      SupplyMode::Boosted,
                                      RetryOverhead::none(),
                                      TimingOverhead::none(), rec);
    // The transform's extra work costs energy and cycles...
    EXPECT_GT(with.totalEnergy.value(), plain.totalEnergy.value());
    EXPECT_GE(with.cycles, plain.cycles);
    // ...but throughput/efficiency stay per useful base-model MAC, so
    // the recovery run is strictly less efficient per delivered op.
    EXPECT_LT(with.gopsPerWatt, plain.gopsPerWatt);
    EXPECT_LT(with.gmacsPerSecond, plain.gmacsPerSecond);
}

TEST_F(PerfTest, RecoveryOverheadIsClampedAndValidated)
{
    RecoveryOverhead huge;
    huge.computeOverhead = 100.0;
    huge.accessOverhead = 100.0;
    RecoveryOverhead capped;
    capped.computeOverhead = RecoveryOverhead::kMaxOverhead;
    capped.accessOverhead = RecoveryOverhead::kMaxOverhead;
    const auto a = model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                   RetryOverhead::none(),
                                   TimingOverhead::none(), huge);
    const auto b = model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                   RetryOverhead::none(),
                                   TimingOverhead::none(), capped);
    EXPECT_DOUBLE_EQ(a.totalEnergy.value(), b.totalEnergy.value());

    RecoveryOverhead bad;
    bad.computeOverhead = -0.1;
    EXPECT_THROW(model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                 RetryOverhead::none(),
                                 TimingOverhead::none(), bad),
                 FatalError);
    bad = {};
    bad.accessOverhead = -0.1;
    EXPECT_THROW(model_.evaluate(fc_, 0.40_V, 2, SupplyMode::Boosted,
                                 RetryOverhead::none(),
                                 TimingOverhead::none(), bad),
                 FatalError);
}

/** Property: efficiency falls as the single-rail voltage rises. */
class EfficiencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(EfficiencySweep, SingleRailEfficiencyDropsWithVoltage)
{
    auto ctx = core::SimContext::standard();
    PerformanceModel model(ctx, 16);
    LayerActivity act{1000000, 6000, 4000, 7000};
    const Volt v{GetParam()};
    const auto low = model.evaluate(act, v, 0, SupplyMode::Single);
    const auto high =
        model.evaluate(act, v + 0.1_V, 0, SupplyMode::Single);
    EXPECT_GT(low.gopsPerWatt, high.gopsPerWatt);
}

INSTANTIATE_TEST_SUITE_P(Voltages, EfficiencySweep,
                         ::testing::Values(0.45, 0.5, 0.55, 0.6, 0.65));

} // namespace
} // namespace vboost::accel
