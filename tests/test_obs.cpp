/**
 * @file
 * Tests for the deterministic observability layer (DESIGN.md §11):
 * registry semantics (creation, kind/bounds aliasing errors, label
 * canonicalization), merge under the §7 job-order contract including
 * partition invariance, fingerprint stability and the exclusion
 * mechanism, tracer span recording and Chrome/text export shape, and
 * the ScopeTimer / EnergyScope attribution helpers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

namespace vboost::obs {
namespace {

// ------------------------------------------------------------- registry

TEST(ObsMetrics, CounterSumGaugeBasics)
{
    MetricsRegistry reg;
    reg.counter("fi.trials").add(3);
    reg.counter("fi.trials").add(2);
    EXPECT_EQ(reg.counter("fi.trials").value(), 5u);

    reg.sum("serve.energy_j").add(0.5);
    reg.sum("serve.energy_j").add(0.25);
    EXPECT_DOUBLE_EQ(reg.sum("serve.energy_j").value(), 0.75);

    reg.gauge("serve.queue.final_depth").set(7.0);
    reg.gauge("serve.queue.final_depth").set(3.0);
    EXPECT_DOUBLE_EQ(reg.gauge("serve.queue.final_depth").value(), 3.0);

    EXPECT_EQ(reg.size(), 3u);
}

TEST(ObsMetrics, LabelsDistinguishInstancesAndRenderInKeyOrder)
{
    MetricsRegistry reg;
    reg.counter("resil.retry.count", {{"bank", "3"}}).add(1);
    reg.counter("resil.retry.count", {{"bank", "7"}}).add(2);
    reg.counter("resil.retry.count").add(4);
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.counter("resil.retry.count", {{"bank", "3"}}).value(),
              1u);

    // Rendering is canonical: labels in key order, insertion order of
    // the initializer list irrelevant.
    MetricKey key{"x", {{"b", "2"}, {"a", "1"}}};
    EXPECT_EQ(key.render(), "x{a=1,b=2}");
    const MetricKey plain{"plain", {}};
    EXPECT_EQ(plain.render(), "plain");
}

TEST(ObsMetrics, InvalidNamesAreFatal)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.counter(""), FatalError);
    EXPECT_THROW(reg.counter("has space"), FatalError);
    EXPECT_THROW(reg.counter("tab\tname"), FatalError);
}

TEST(ObsMetrics, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("serve.requests").add(1);
    EXPECT_THROW(reg.sum("serve.requests"), FatalError);
    EXPECT_THROW(reg.gauge("serve.requests"), FatalError);
    EXPECT_THROW(
        reg.histogram("serve.requests", linearBounds(0.0, 1.0, 2)),
        FatalError);
    // Same name, different labels: a distinct instance, so a
    // different kind is fine.
    EXPECT_NO_THROW(reg.sum("serve.requests", {{"unit", "j"}}));
}

TEST(ObsMetrics, HistogramBucketsAndBoundsValidation)
{
    MetricsRegistry reg;
    auto h = reg.histogram("lat", linearBounds(10.0, 30.0, 3));
    // Bounds 10, 20, 30 + overflow bucket.
    h.observe(5.0);   // <= 10
    h.observe(10.0);  // <= 10 (bounds are upper-inclusive)
    h.observe(15.0);  // <= 20
    h.observe(31.0);  // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 61.0);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 1u);

    // Re-access with identical bounds is the same instance; different
    // bounds are a configuration error.
    EXPECT_NO_THROW(reg.histogram("lat", linearBounds(10.0, 30.0, 3)));
    EXPECT_THROW(reg.histogram("lat", linearBounds(10.0, 40.0, 3)),
                 FatalError);
    EXPECT_THROW(reg.histogram("empty", {}), FatalError);
    EXPECT_THROW(reg.histogram("dec", {2.0, 1.0}), FatalError);
}

TEST(ObsMetrics, BoundsHelpers)
{
    const auto lin = linearBounds(0.0, 1.0, 5);
    ASSERT_EQ(lin.size(), 5u);
    EXPECT_DOUBLE_EQ(lin.front(), 0.0);
    EXPECT_DOUBLE_EQ(lin[1], 0.25);
    EXPECT_DOUBLE_EQ(lin.back(), 1.0);

    const auto exp = exponentialBounds(1.0, 2.0, 4);
    ASSERT_EQ(exp.size(), 4u);
    EXPECT_DOUBLE_EQ(exp[0], 1.0);
    EXPECT_DOUBLE_EQ(exp[3], 8.0);

    EXPECT_THROW(linearBounds(1.0, 0.0, 3), FatalError);
    EXPECT_THROW(linearBounds(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(exponentialBounds(0.0, 2.0, 3), FatalError);
    EXPECT_THROW(exponentialBounds(1.0, 1.0, 3), FatalError);
}

// ---------------------------------------------------------------- merge

TEST(ObsMetrics, MergeAddsCountersSumsHistogramsAndTakesSetGauges)
{
    MetricsRegistry a, b;
    a.counter("c").add(2);
    b.counter("c").add(3);
    a.sum("s").add(1.5);
    b.sum("s").add(0.25);
    a.gauge("g").set(1.0);
    b.gauge("g").set(9.0);
    a.histogram("h", linearBounds(0.0, 1.0, 2)).observe(0.4);
    b.histogram("h", linearBounds(0.0, 1.0, 2)).observe(0.9);
    b.counter("only_b").add(7);

    a.merge(b);
    EXPECT_EQ(a.counter("c").value(), 5u);
    EXPECT_DOUBLE_EQ(a.sum("s").value(), 1.75);
    // Merge takes set gauges: the incoming sample wins (last writer).
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
    EXPECT_EQ(a.histogram("h", linearBounds(0.0, 1.0, 2)).count(), 2u);
    EXPECT_EQ(a.counter("only_b").value(), 7u);
}

TEST(ObsMetrics, MergeKindMismatchIsFatal)
{
    MetricsRegistry a, b;
    a.counter("x").add(1);
    b.sum("x").add(1.0);
    EXPECT_THROW(a.merge(b), FatalError);
}

TEST(ObsMetrics, MergeIsPartitionInvariant)
{
    // The §7 contract: merging per-job registries in job order yields
    // the same fingerprint regardless of how jobs were partitioned
    // across workers — the property the serve_obs_determinism ctest
    // checks end to end.
    const auto record = [](MetricsRegistry &reg, int job) {
        reg.counter("jobs").add(1);
        reg.sum("work", {{"kind", job % 2 ? "odd" : "even"}})
            .add(0.1 * job);
        reg.histogram("acc", linearBounds(0.0, 1.0, 4))
            .observe(job / 8.0);
    };

    MetricsRegistry serial;
    for (int j = 0; j < 8; ++j)
        record(serial, j);

    std::vector<MetricsRegistry> per_job(8);
    for (int j = 0; j < 8; ++j)
        record(per_job[j], j);
    MetricsRegistry merged;
    for (const auto &r : per_job)
        merged.merge(r);

    EXPECT_EQ(serial.fingerprint(), merged.fingerprint());
}

// ---------------------------------------------------------- fingerprint

TEST(ObsMetrics, FingerprintDetectsValueAndLabelChanges)
{
    MetricsRegistry a, b, c;
    a.counter("x", {{"k", "1"}}).add(1);
    b.counter("x", {{"k", "1"}}).add(1);
    c.counter("x", {{"k", "2"}}).add(1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    b.counter("x", {{"k", "1"}}).add(1);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ObsMetrics, ExcludedMetricsStayVisibleButOutsideTheFingerprint)
{
    MetricsRegistry a, b;
    a.counter("det").add(1);
    b.counter("det").add(1);
    a.gauge("wallclock").set(123.0);
    b.gauge("wallclock").set(456.0);
    a.excludeFromFingerprint("wallclock");
    b.excludeFromFingerprint("wallclock");
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.size(), 2u);
    ASSERT_EQ(a.fingerprintExclusions().size(), 1u);

    // The exclusion set rides along through merge().
    MetricsRegistry c;
    c.merge(a);
    EXPECT_EQ(c.fingerprintExclusions().count("wallclock"), 1u);
}

TEST(ObsMetrics, WriteTextIsDeterministicAndMarksUnfingerprinted)
{
    MetricsRegistry reg;
    reg.counter("b.count", {{"z", "9"}, {"a", "1"}}).add(2);
    reg.gauge("a.gauge").set(1.5);
    reg.excludeFromFingerprint("a.gauge");
    std::ostringstream os;
    reg.writeText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("b.count{a=1,z=9}"), std::string::npos);
    EXPECT_NE(text.find("(unfingerprinted)"), std::string::npos);
    // Key order: a.gauge before b.count.
    EXPECT_LT(text.find("a.gauge"), text.find("b.count"));
}

// --------------------------------------------------------------- logging

TEST(ObsLogging, RateLimiterTotalsSurfaceAsExcludedGauges)
{
    // Tiny refill rate, burst of 5: exactly 5 of the 8 back-to-back
    // messages pass. Also resets the cumulative totals.
    setWarnRateLimit(0.001, 5.0);
    for (int i = 0; i < 8; ++i)
        warnRateLimited("test-obs-logging message ", i);
    MetricsRegistry reg;
    recordLoggingMetrics(reg);
    EXPECT_DOUBLE_EQ(reg.gauge("log.warn.rate_limited.emitted").value(),
                     5.0);
    EXPECT_DOUBLE_EQ(
        reg.gauge("log.warn.rate_limited.suppressed").value(), 3.0);
    // Wall-clock-coupled: must not participate in the fingerprint.
    EXPECT_EQ(reg.fingerprintExclusions().count(
                  "log.warn.rate_limited.emitted"),
              1u);
    EXPECT_EQ(reg.fingerprintExclusions().count(
                  "log.warn.rate_limited.suppressed"),
              1u);
    setWarnRateLimit(5.0, 10.0); // restore the default bucket
}

// ---------------------------------------------------------------- tracer

TEST(ObsTrace, BeginEndAndCompleteRecordSpans)
{
    Tracer tr;
    const auto id = tr.begin(1, 2, "phase", 10);
    EXPECT_EQ(tr.openSpans(), 1u);
    tr.setNumArg(id, "items", 4.0);
    tr.end(id, 25);
    EXPECT_EQ(tr.openSpans(), 0u);
    tr.complete(1, 3, "batch", 30, 5, {{"requests", 8.0}},
                {{"tenant", "acme"}});
    tr.instant(1, 2, "shed", 40);

    ASSERT_EQ(tr.eventCount(), 3u);
    EXPECT_EQ(tr.events()[0].name, "phase");
    EXPECT_EQ(tr.events()[0].ts, 10u);
    EXPECT_EQ(tr.events()[0].dur, 15u);
    EXPECT_DOUBLE_EQ(tr.events()[0].numArgs.at("items"), 4.0);
    EXPECT_EQ(tr.events()[1].strArgs.at("tenant"), "acme");
    EXPECT_EQ(tr.events()[2].phase, 'i');
}

TEST(ObsTrace, EndMisuseIsAnError)
{
    Tracer tr;
    const auto id = tr.begin(0, 0, "s", 10);
    EXPECT_THROW(tr.end(id + 1, 20), PanicError); // bad id
    EXPECT_THROW(tr.end(id, 5), PanicError);      // ends before begin
    tr.end(id, 20);
    EXPECT_THROW(tr.end(id, 30), PanicError); // double close
}

TEST(ObsTrace, ScopedSpanClosesWithTheClock)
{
    Tracer tr;
    VirtualClock clock;
    {
        ScopedSpan span(tr, 0, 1, "work", clock);
        clock.advance(7);
        span.setNumArg("n", 3.0);
    }
    ASSERT_EQ(tr.eventCount(), 1u);
    EXPECT_EQ(tr.events()[0].ts, 0u);
    EXPECT_EQ(tr.events()[0].dur, 7u);
    EXPECT_FALSE(tr.events()[0].open);
    EXPECT_DOUBLE_EQ(tr.events()[0].numArgs.at("n"), 3.0);
}

TEST(ObsTrace, ChromeExportShapeAndDeterminism)
{
    const auto build = [] {
        Tracer tr;
        tr.setProcessName(0, "sweep \"point\" 0");
        tr.setThreadName(0, 1, "slot 1");
        tr.complete(0, 1, "batch", 5, 10, {{"x", 1.5}});
        tr.instant(0, 1, "marker", 8, {}, {{"why", "line1\nline2"}});
        return tr;
    };
    const Tracer tr = build();
    std::ostringstream os;
    tr.writeChromeTrace(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Escaping: the quote and the newline must be JSON-encoded.
    EXPECT_NE(json.find("\\\"point\\\""), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);

    // Deterministic: an identically built tracer exports identical
    // bytes and an identical fingerprint.
    std::ostringstream os2;
    build().writeChromeTrace(os2);
    EXPECT_EQ(json, os2.str());
    EXPECT_EQ(tr.fingerprint(), build().fingerprint());
}

TEST(ObsTrace, MergeAppendsInJobOrderAndFoldsNames)
{
    // The §7 job-order contract, mirrored from MetricsRegistry::merge:
    // merging per-job tracers in job order yields the same event
    // sequence (and fingerprint) as recording serially.
    const auto record = [](Tracer &tr, std::uint64_t pid) {
        tr.setProcessName(pid, "job " + std::to_string(pid));
        tr.complete(pid, 0, "work", 10 * pid, 5);
        tr.instant(pid, 0, "mark", 10 * pid + 5);
    };
    Tracer serial;
    record(serial, 0);
    record(serial, 1);

    Tracer merged, job1;
    record(merged, 0);
    record(job1, 1);
    merged.merge(job1);

    ASSERT_EQ(merged.eventCount(), serial.eventCount());
    EXPECT_EQ(merged.fingerprint(), serial.fingerprint());
    std::ostringstream a, b;
    serial.writeChromeTrace(a);
    merged.writeChromeTrace(b);
    EXPECT_EQ(a.str(), b.str());

    // A name collision resolves to the merged-in tracer's name, and
    // self-merge is rejected.
    Tracer other;
    other.setProcessName(0, "job zero renamed");
    merged.merge(other);
    std::ostringstream c;
    merged.writeChromeTrace(c);
    EXPECT_NE(c.str().find("job zero renamed"), std::string::npos);
    EXPECT_THROW(merged.merge(merged), PanicError);
}

TEST(ObsTrace, TextSummaryAggregatesPerName)
{
    Tracer tr;
    tr.complete(0, 0, "b", 0, 4);
    tr.complete(0, 0, "a", 0, 2);
    tr.complete(0, 0, "b", 10, 6);
    std::ostringstream os;
    tr.writeTextSummary(os);
    const std::string text = os.str();
    // Name order, with per-name count and total.
    EXPECT_LT(text.find("a"), text.find("b"));
    EXPECT_NE(text.find("2"), std::string::npos);
    EXPECT_NE(text.find("10"), std::string::npos);
}

// ------------------------------------------------------------ attribution

TEST(ObsScope, ScopeTimerPublishesTicksCallsAndSpan)
{
    MetricsRegistry reg;
    Tracer tr;
    VirtualClock clock;
    for (int i = 0; i < 2; ++i) {
        ScopeTimer timer(reg, "fi.run", clock, {{"kind", "ecc"}}, &tr, 3,
                         0);
        clock.advance(5);
        EXPECT_EQ(timer.elapsed(), 5u);
    }
    EXPECT_DOUBLE_EQ(reg.sum("fi.run.ticks", {{"kind", "ecc"}}).value(),
                     10.0);
    EXPECT_EQ(reg.counter("fi.run.calls", {{"kind", "ecc"}}).value(), 2u);
    ASSERT_EQ(tr.eventCount(), 2u);
    EXPECT_EQ(tr.events()[0].pid, 3u);
    EXPECT_EQ(tr.events()[1].ts, 5u);
    EXPECT_EQ(tr.events()[1].dur, 5u);
}

TEST(ObsScope, EnergyScopePublishesOnceAtExit)
{
    MetricsRegistry reg;
    {
        EnergyScope scope(reg, "serve.sram.energy_j");
        scope.add(Joule(1e-9));
        scope.addJoules(2e-9);
        EXPECT_DOUBLE_EQ(scope.total().value(), 3e-9);
        // Nothing published while the scope is open.
        EXPECT_DOUBLE_EQ(reg.sum("serve.sram.energy_j").value(), 0.0);
    }
    EXPECT_DOUBLE_EQ(reg.sum("serve.sram.energy_j").value(), 3e-9);
}

} // namespace
} // namespace vboost::obs
