/**
 * @file
 * Tests for the SECDED Hamming(72, 64) codec and its integration with
 * the fault-injection harness: exhaustive single-bit correction,
 * double-bit detection, check-bit self-protection, statistical decode
 * rates against the analytic binomial expectation, and the
 * accuracy-protection property at moderate failure rates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/experiment.hpp"
#include "sram/ecc.hpp"

namespace vboost::sram {
namespace {

TEST(Secded, CleanRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t data = rng.next();
        const auto check = SecdedCodec::encode(data);
        const auto r = SecdedCodec::decode(data, check);
        EXPECT_EQ(r.data, data);
        EXPECT_EQ(r.outcome, EccOutcome::Clean);
    }
}

TEST(Secded, CorrectsEverySingleDataBitError)
{
    Rng rng(2);
    const std::uint64_t data = rng.next();
    const auto check = SecdedCodec::encode(data);
    for (int b = 0; b < 64; ++b) {
        const auto r = SecdedCodec::decode(data ^ (1ull << b), check);
        EXPECT_EQ(r.data, data) << "bit " << b;
        EXPECT_EQ(r.outcome, EccOutcome::Corrected) << "bit " << b;
    }
}

TEST(Secded, CorrectsEverySingleCheckBitError)
{
    Rng rng(3);
    const std::uint64_t data = rng.next();
    const auto check = SecdedCodec::encode(data);
    for (int b = 0; b < 8; ++b) {
        const auto flipped =
            static_cast<std::uint8_t>(check ^ (1u << b));
        const auto r = SecdedCodec::decode(data, flipped);
        EXPECT_EQ(r.data, data) << "check bit " << b;
        EXPECT_EQ(r.outcome, EccOutcome::Corrected) << "check bit " << b;
    }
}

TEST(Secded, DetectsEveryDoubleBitErrorExhaustively)
{
    // The SECDED guarantee the resilient pipeline's retry loop relies
    // on: every one of the C(72,2) = 2556 two-bit corruptions of the
    // codeword is reported DetectedUncorrectable — never Clean, never
    // miscorrected into a "Corrected" word the consumer would trust.
    Rng rng(4);
    const std::uint64_t patterns[] = {0ull, ~0ull,
                                      0xaaaaaaaaaaaaaaaaull,
                                      rng.next(), rng.next()};
    for (const std::uint64_t data : patterns) {
        const auto check = SecdedCodec::encode(data);
        // Flip codeword bits i < j; bits 0..63 hit the data word,
        // bits 64..71 hit the check byte.
        for (int i = 0; i < 71; ++i) {
            for (int j = i + 1; j < 72; ++j) {
                std::uint64_t d = data;
                std::uint8_t c = check;
                if (i < 64)
                    d ^= 1ull << i;
                else
                    c = static_cast<std::uint8_t>(c ^ (1u << (i - 64)));
                if (j < 64)
                    d ^= 1ull << j;
                else
                    c = static_cast<std::uint8_t>(c ^ (1u << (j - 64)));
                const auto r = SecdedCodec::decode(d, c);
                ASSERT_EQ(r.outcome, EccOutcome::DetectedUncorrectable)
                    << "bits " << i << "," << j << " data " << data;
            }
        }
    }
}

TEST(Secded, StorageOverheadIsOneEighth)
{
    EXPECT_DOUBLE_EQ(SecdedCodec::storageOverhead(), 0.125);
    EXPECT_EQ(SecdedCodec::kCodewordBits, 72);
}

TEST(Secded, StatsAccumulate)
{
    EccStats stats;
    stats.record(EccOutcome::Clean);
    stats.record(EccOutcome::Corrected);
    stats.record(EccOutcome::Corrected);
    stats.record(EccOutcome::DetectedUncorrectable);
    EXPECT_EQ(stats.words, 4u);
    EXPECT_EQ(stats.corrected, 2u);
    EXPECT_EQ(stats.detectedUncorrectable, 1u);
}

/** Property: decode correction rate matches the binomial model. */
class SecdedRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SecdedRateSweep, CorrectionRateMatchesBinomial)
{
    const double per_bit = GetParam();
    Rng rng(7);
    EccStats stats;
    const int words = 20000;
    for (int i = 0; i < words; ++i) {
        const std::uint64_t data = rng.next();
        auto check = SecdedCodec::encode(data);
        std::uint64_t corrupted = data;
        for (int b = 0; b < 64; ++b) {
            if (rng.bernoulli(per_bit))
                corrupted ^= 1ull << b;
        }
        for (int b = 0; b < 8; ++b) {
            if (rng.bernoulli(per_bit))
                check = static_cast<std::uint8_t>(check ^ (1u << b));
        }
        stats.record(SecdedCodec::decode(corrupted, check).outcome);
    }
    // The decoder reports Corrected for every odd error count (a
    // single error is truly corrected; 3+ odd counts miscorrect --
    // an inherent SECDED property): P(odd) = (1 - (1-2p)^72) / 2.
    const double p_odd =
        (1.0 - std::pow(1.0 - 2.0 * per_bit, 72.0)) / 2.0;
    const double measured =
        static_cast<double>(stats.corrected) / words;
    EXPECT_NEAR(measured, p_odd,
                5 * std::sqrt(p_odd / words) + 0.05 * p_odd);
    // Detected-uncorrectable covers even counts >= 2.
    const double p_even2 =
        (1.0 + std::pow(1.0 - 2.0 * per_bit, 72.0)) / 2.0 -
        std::pow(1.0 - per_bit, 72.0);
    const double measured_du =
        static_cast<double>(stats.detectedUncorrectable) / words;
    EXPECT_NEAR(measured_du, p_even2,
                5 * std::sqrt(p_even2 / words) + 0.05 * p_even2 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(PerBitRates, SecdedRateSweep,
                         ::testing::Values(1e-4, 1e-3, 5e-3, 2e-2));

} // namespace
} // namespace vboost::sram

namespace vboost::fi {
namespace {

/** Small trained network for the ECC protection test. */
class EccProtection : public ::testing::Test
{
  protected:
    static dnn::Network
    makeNet(std::uint64_t seed)
    {
        Rng rng(seed);
        dnn::Network net;
        net.addLayer<dnn::Dense>(16, 32, rng, "fc1");
        net.addLayer<dnn::Relu>("r");
        net.addLayer<dnn::Dense>(32, 4, rng, "fc2");
        return net;
    }

    static dnn::Dataset
    blobs(int n, std::uint64_t seed)
    {
        Rng rng(seed);
        dnn::Dataset ds;
        ds.images = dnn::Tensor({n, 16});
        ds.labels.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const int cls = static_cast<int>(rng.uniformInt(4));
            ds.labels[static_cast<std::size_t>(i)] = cls;
            for (int j = 0; j < 16; ++j)
                ds.images.at(i, j) = static_cast<float>(
                    rng.normal(j % 4 == cls ? 1.0 : 0.0, 0.15));
        }
        return ds;
    }
};

TEST_F(EccProtection, EccRecoversAccuracyAtModerateRates)
{
    auto net = makeNet(1);
    auto train = blobs(500, 11);
    auto test = blobs(250, 12);
    dnn::TrainConfig cfg;
    cfg.epochs = 8;
    dnn::SgdTrainer trainer(cfg);
    Rng rng(2);
    trainer.train(net, train, rng);
    dnn::clipParameters(net, 0.5f);

    ExperimentConfig ecfg;
    ecfg.numMaps = 6;
    ecfg.maxTestSamples = 250;
    FaultInjectionRunner runner(net, test, ecfg);

    // At a moderate failure rate ECC never hurts and its decoder is
    // visibly working (this tiny model may saturate at 100% for both).
    const double f = 0.04;
    sram::EccStats stats;
    const double raw =
        runner.run(f, InjectionSpec::allWeights()).meanAccuracy;
    const double ecc = runner.runWithEcc(f, 0.5, &stats).meanAccuracy;
    EXPECT_GE(ecc + 0.02, raw);
    EXPECT_GT(stats.corrected, 0u);

    // At VLV-scale failure rates, multi-bit errors defeat SECDED:
    // accuracy degrades badly even with ECC (the paper's argument for
    // boosting over static mitigation).
    const double ecc_hi = runner.runWithEcc(0.2, 0.5).meanAccuracy;
    EXPECT_LT(ecc_hi, 0.9);
}

TEST_F(EccProtection, ZeroRateIsCleanThroughEcc)
{
    auto net = makeNet(1);
    auto test = blobs(100, 12);
    ExperimentConfig ecfg;
    ecfg.numMaps = 2;
    ecfg.maxTestSamples = 100;
    FaultInjectionRunner runner(net, test, ecfg);
    sram::EccStats stats;
    runner.runWithEcc(0.0, 0.5, &stats);
    EXPECT_EQ(stats.corrected, 0u);
    EXPECT_EQ(stats.detectedUncorrectable, 0u);
    EXPECT_GT(stats.words, 0u);
}

} // namespace
} // namespace vboost::fi
