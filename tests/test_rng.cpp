/**
 * @file
 * Unit and statistical tests for the deterministic RNG and the
 * inverse-normal CDF used by the fault model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace vboost {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(5);
    std::array<int, 8> counts{};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.uniformInt(8)];
    for (int c : counts)
        EXPECT_GT(c, 800); // each bucket near 1000
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(0), PanicError);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible)
{
    Rng base(42);
    Rng s1 = base.split(1);
    Rng s2 = base.split(2);
    Rng s1b = Rng(42).split(1);
    EXPECT_EQ(s1.next(), s1b.next());
    EXPECT_NE(s1.next(), s2.next());
}

TEST(InverseNormalCdf, MatchesKnownQuantiles)
{
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.841344746), 1.0, 1e-5);
}

TEST(InverseNormalCdf, RoundTripsThroughCdf)
{
    for (double p : {1e-6, 1e-3, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-6})
        EXPECT_NEAR(normalCdf(inverseNormalCdf(p)), p, 1e-7);
}

TEST(InverseNormalCdf, RejectsEndpoints)
{
    EXPECT_THROW(inverseNormalCdf(0.0), FatalError);
    EXPECT_THROW(inverseNormalCdf(1.0), FatalError);
    EXPECT_THROW(inverseNormalCdf(-0.1), FatalError);
}

/** Property sweep: CDF/quantile consistency across magnitudes. */
class InverseCdfSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(InverseCdfSweep, TailSymmetry)
{
    const double p = GetParam();
    EXPECT_NEAR(inverseNormalCdf(p), -inverseNormalCdf(1.0 - p), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Tails, InverseCdfSweep,
                         ::testing::Values(1e-9, 1e-7, 1e-5, 1e-3, 0.01,
                                           0.1, 0.3, 0.49));

} // namespace
} // namespace vboost
