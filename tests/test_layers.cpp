/**
 * @file
 * Layer tests: shape handling, analytic cases, and numerical gradient
 * checks for every trainable layer (central differences against the
 * backprop gradients).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/logging.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"

namespace vboost::dnn {
namespace {

/**
 * Numerical gradient check: perturb every input element and every
 * parameter element, compare central differences of a scalar loss
 * (sum of outputs weighted by fixed coefficients) with backprop.
 */
void
checkGradients(Layer &layer, const Tensor &input, double tol = 2e-2)
{
    Rng rng(12345);
    Tensor x = input;

    auto loss_of = [&](Layer &l, const Tensor &in,
                       std::vector<float> &coeffs) {
        Tensor out = l.forward(in, /*train=*/true);
        if (coeffs.empty()) {
            coeffs.resize(out.numel());
            Rng crng(77);
            for (auto &c : coeffs)
                c = static_cast<float>(crng.normal());
        }
        double loss = 0;
        for (std::size_t i = 0; i < out.numel(); ++i)
            loss += coeffs[i] * out[i];
        return loss;
    };

    std::vector<float> coeffs;
    loss_of(layer, x, coeffs);

    // Backprop gradients.
    layer.zeroGrads();
    Tensor out = layer.forward(x, true);
    Tensor grad_out(out.shape());
    for (std::size_t i = 0; i < out.numel(); ++i)
        grad_out[i] = coeffs[i];
    Tensor dx = layer.backward(grad_out);

    const float eps = 1e-2f;
    // Check a sample of input gradients.
    for (std::size_t i = 0; i < x.numel();
         i += std::max<std::size_t>(1, x.numel() / 37)) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double up = loss_of(layer, x, coeffs);
        x[i] = orig - eps;
        const double dn = loss_of(layer, x, coeffs);
        x[i] = orig;
        const double numeric = (up - dn) / (2 * eps);
        EXPECT_NEAR(dx[i], numeric, tol * (1 + std::fabs(numeric)))
            << "input grad " << i;
    }

    // Check a sample of parameter gradients.
    for (auto &p : layer.params()) {
        Tensor &w = *p.value;
        const Tensor &g = *p.grad;
        for (std::size_t i = 0; i < w.numel();
             i += std::max<std::size_t>(1, w.numel() / 23)) {
            const float orig = w[i];
            w[i] = orig + eps;
            const double up = loss_of(layer, x, coeffs);
            w[i] = orig - eps;
            const double dn = loss_of(layer, x, coeffs);
            w[i] = orig;
            const double numeric = (up - dn) / (2 * eps);
            EXPECT_NEAR(g[i], numeric, tol * (1 + std::fabs(numeric)))
                << p.name << " grad " << i;
        }
    }
}

TEST(Dense, ForwardMatchesManualComputation)
{
    Rng rng(1);
    Dense d(2, 3, rng, "fc");
    d.weight().at(0, 0) = 1;
    d.weight().at(0, 1) = 2;
    d.weight().at(0, 2) = 3;
    d.weight().at(1, 0) = 4;
    d.weight().at(1, 1) = 5;
    d.weight().at(1, 2) = 6;
    d.bias()[0] = 0.5f;
    d.bias()[1] = -0.5f;
    d.bias()[2] = 0.0f;
    Tensor x({1, 2});
    x.at(0, 0) = 1;
    x.at(0, 1) = 2;
    Tensor y = d.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 1 + 2 * 4 + 0.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 1 * 2 + 2 * 5 - 0.5f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 1 * 3 + 2 * 6);
}

TEST(Dense, ShapeValidationAndNames)
{
    Rng rng(1);
    Dense d(4, 2, rng, "fc1");
    EXPECT_THROW(d.forward(Tensor({2, 3}), false), FatalError);
    EXPECT_THROW(Dense(0, 2, rng, "bad"), FatalError);
    auto params = d.params();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0].name, "fc1.weight");
    EXPECT_TRUE(params[0].isWeight);
    EXPECT_EQ(params[1].name, "fc1.bias");
    EXPECT_FALSE(params[1].isWeight);
}

TEST(Dense, BackwardWithoutForwardPanics)
{
    Rng rng(1);
    Dense d(2, 2, rng, "fc");
    EXPECT_THROW(d.backward(Tensor({1, 2})), PanicError);
}

TEST(Dense, GradientCheck)
{
    Rng rng(3);
    Dense d(5, 4, rng, "fc");
    const Tensor x = Tensor::randn({3, 5}, rng, 1.0);
    checkGradients(d, x);
}

TEST(Conv2d, IdentityKernelPassesThrough)
{
    Rng rng(1);
    Conv2d conv(1, 1, 3, 1, rng, "conv");
    conv.weight().fill(0.0f);
    // Center tap of the 3x3 kernel = 1: identity convolution.
    conv.weight().at(0, 4) = 1.0f;
    Tensor x = Tensor::randn({2, 1, 5, 5}, rng, 1.0);
    Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.shape(), x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-6);
}

TEST(Conv2d, OutputShapeFollowsGeometry)
{
    Rng rng(1);
    Conv2d conv(3, 8, 5, 2, rng, "conv");
    Tensor x({2, 3, 32, 32});
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 32, 32}));

    Conv2d valid(1, 1, 3, 0, rng, "v");
    Tensor x2({1, 1, 8, 8});
    EXPECT_EQ(valid.forward(x2, false).shape(),
              (std::vector<int>{1, 1, 6, 6}));
    EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false), FatalError);
}

TEST(Conv2d, GradientCheck)
{
    Rng rng(5);
    Conv2d conv(2, 3, 3, 1, rng, "conv");
    const Tensor x = Tensor::randn({2, 2, 6, 6}, rng, 1.0);
    checkGradients(conv, x);
}

TEST(MaxPool2d, SelectsWindowMaxima)
{
    MaxPool2d pool("pool");
    Tensor x({1, 1, 4, 4});
    for (int i = 0; i < 16; ++i)
        x[static_cast<std::size_t>(i)] = static_cast<float>(i);
    Tensor y = pool.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 5);
    EXPECT_FLOAT_EQ(y[1], 7);
    EXPECT_FLOAT_EQ(y[2], 13);
    EXPECT_FLOAT_EQ(y[3], 15);
    EXPECT_THROW(pool.forward(Tensor({1, 1, 5, 4}), false), FatalError);
}

TEST(MaxPool2d, BackwardRoutesToArgmax)
{
    MaxPool2d pool("pool");
    Tensor x({1, 1, 2, 2});
    x[0] = 1;
    x[1] = 9;
    x[2] = 3;
    x[3] = 2;
    pool.forward(x, true);
    Tensor g({1, 1, 1, 1});
    g[0] = 5;
    Tensor dx = pool.backward(g);
    EXPECT_FLOAT_EQ(dx[0], 0);
    EXPECT_FLOAT_EQ(dx[1], 5);
    EXPECT_FLOAT_EQ(dx[2], 0);
    EXPECT_FLOAT_EQ(dx[3], 0);
}

TEST(Relu, ClampsAndMasksGradient)
{
    Relu relu("relu");
    Tensor x({1, 4});
    x[0] = -1;
    x[1] = 2;
    x[2] = 0;
    x[3] = 0.5f;
    Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0);
    EXPECT_FLOAT_EQ(y[1], 2);
    EXPECT_FLOAT_EQ(y[2], 0);
    EXPECT_FLOAT_EQ(y[3], 0.5f);
    Tensor g({1, 4});
    g.fill(1.0f);
    Tensor dx = relu.backward(g);
    EXPECT_FLOAT_EQ(dx[0], 0);
    EXPECT_FLOAT_EQ(dx[1], 1);
    EXPECT_FLOAT_EQ(dx[2], 0);
    EXPECT_FLOAT_EQ(dx[3], 1);
}

TEST(Flatten, RoundTripsShape)
{
    Flatten f("flat");
    Rng rng(1);
    Tensor x = Tensor::randn({2, 3, 4, 5}, rng, 1.0);
    Tensor y = f.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
    Tensor dx = f.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_EQ(dx[i], x[i]);
}

TEST(SoftmaxCrossEntropyLoss, UniformLogitsGiveLogC)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({2, 4});
    Tensor grad;
    const double l = loss.lossAndGrad(logits, {0, 3}, grad);
    EXPECT_NEAR(l, std::log(4.0), 1e-6);
    // Gradient rows sum to zero.
    for (int i = 0; i < 2; ++i) {
        float sum = 0;
        for (int j = 0; j < 4; ++j)
            sum += grad.at(i, j);
        EXPECT_NEAR(sum, 0.0f, 1e-6f);
    }
}

TEST(SoftmaxCrossEntropyLoss, ConfidentCorrectHasLowLoss)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 3});
    logits.at(0, 1) = 10.0f;
    Tensor grad;
    EXPECT_LT(loss.lossAndGrad(logits, {1}, grad), 1e-3);
    EXPECT_GT(loss.lossAndGrad(logits, {0}, grad), 5.0);
}

TEST(SoftmaxCrossEntropyLoss, ValidatesLabels)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 3});
    Tensor grad;
    EXPECT_THROW(loss.lossAndGrad(logits, {3}, grad), FatalError);
    EXPECT_THROW(loss.lossAndGrad(logits, {-1}, grad), FatalError);
    EXPECT_THROW(loss.lossAndGrad(logits, {0, 1}, grad), FatalError);
}

TEST(SoftmaxCrossEntropyLoss, GradientMatchesNumerical)
{
    SoftmaxCrossEntropy loss;
    Rng rng(9);
    Tensor logits = Tensor::randn({2, 5}, rng, 2.0);
    const std::vector<int> labels{1, 4};
    Tensor grad;
    loss.lossAndGrad(logits, labels, grad);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.numel(); ++i) {
        Tensor up = logits, dn = logits;
        up[i] += eps;
        dn[i] -= eps;
        Tensor tmp;
        const double numeric = (loss.lossAndGrad(up, labels, tmp) -
                                loss.lossAndGrad(dn, labels, tmp)) /
                               (2 * eps);
        EXPECT_NEAR(grad[i], numeric, 1e-3);
    }
}

} // namespace
} // namespace vboost::dnn
