/**
 * @file
 * Backend equivalence suite (ctest `backend_equivalence`): the §12
 * bitwise contract. Every kernel of the vectorized backend must
 * produce byte-identical results to the scalar reference backend —
 * GEMM across awkward shapes, im2col/conv geometries on and off the
 * SIMD fast paths, pooling and relu on signed zeros and NaNs, the
 * fault kernels' flip patterns AND their RNG consumption order, packed
 * fault-map bits, whole-network logits, and Monte-Carlo experiment
 * digests plus observability fingerprints at 1 vs 8 threads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "dnn/backend/backend.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "fi/experiment.hpp"
#include "obs/observability.hpp"
#include "sram/fault_map.hpp"
#include "sram/packed_fault_map.hpp"

namespace vboost::dnn {
namespace {

/** Bitwise equality for float buffers (NaN-safe, -0.0 != +0.0). */
::testing::AssertionResult
bitsEqual(const float *a, const float *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
            std::uint32_t ba, bb;
            std::memcpy(&ba, &a[i], 4);
            std::memcpy(&bb, &b[i], 4);
            return ::testing::AssertionFailure()
                   << "bit mismatch at [" << i << "]: " << a[i] << " (0x"
                   << std::hex << ba << ") vs " << b[i] << " (0x" << bb
                   << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

/** Mixed-magnitude fill: negatives, zeros of both signs, tiny values. */
void
fillMixed(std::vector<float> &v, Rng &rng)
{
    for (std::size_t i = 0; i < v.size(); ++i) {
        switch (rng.uniformInt(8)) {
        case 0: v[i] = 0.0f; break;
        case 1: v[i] = -0.0f; break;
        case 2: v[i] = static_cast<float>(rng.normal(0.0, 1e-30)); break;
        default:
            v[i] = static_cast<float>(rng.normal(0.0, 1.0));
        }
    }
}

class BackendEquivalence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ref_ = &referenceBackend();
        vec_ = findBackend("vectorized");
        if (vec_ == nullptr)
            GTEST_SKIP() << "vectorized backend unavailable on this host";
    }

    const Backend *ref_ = nullptr;
    const Backend *vec_ = nullptr;
};

// ------------------------------------------------------------- gemm

TEST_F(BackendEquivalence, GemmBitwiseAcrossShapes)
{
    // Primes and tails around the 8x32 micro-kernel, the masked
    // remainder kernel, the packing threshold (n >= 512) and the
    // cache-blocking boundaries (nc=512, kc=256).
    const int shapes[][3] = {{1, 1, 1},     {3, 7, 5},    {8, 32, 32},
                             {7, 13, 31},   {17, 31, 33}, {16, 25, 1024},
                             {64, 64, 64},  {5, 13, 513}, {16, 257, 544},
                             {33, 300, 70}, {2, 400, 36}, {16, 75, 1024}};
    Rng rng(101);
    for (const auto &s : shapes) {
        const int m = s[0], k = s[1], n = s[2];
        std::vector<float> a(static_cast<std::size_t>(m) * k);
        std::vector<float> b(static_cast<std::size_t>(k) * n);
        fillMixed(a, rng);
        fillMixed(b, rng);
        for (bool accumulate : {false, true}) {
            std::vector<float> c0(static_cast<std::size_t>(m) * n);
            fillMixed(c0, rng);
            std::vector<float> c1 = c0;
            ref_->gemm(a.data(), b.data(), c0.data(), m, k, n, accumulate);
            vec_->gemm(a.data(), b.data(), c1.data(), m, k, n, accumulate);
            EXPECT_TRUE(bitsEqual(c0.data(), c1.data(), c0.size()))
                << "gemm m=" << m << " k=" << k << " n=" << n
                << " accumulate=" << accumulate;
        }
    }
}

// --------------------------------------------------- im2col and conv

TEST_F(BackendEquivalence, Im2colAndConvBitwise)
{
    // Geometries on the stride-matched bulk path (w in {8, 16, 32}),
    // the per-row masked path (w = 12, w = 9), 1x1 no-pad, a kernel
    // wider than the image's valid span, and non-square images.
    const ConvGeom geoms[] = {
        {3, 8, 5, 2, 32, 32}, {16, 8, 5, 2, 16, 16}, {8, 4, 3, 1, 8, 8},
        {2, 3, 5, 2, 10, 12}, {4, 4, 3, 1, 7, 9},    {1, 2, 1, 0, 4, 4},
        {2, 2, 7, 3, 8, 8},   {3, 3, 3, 1, 16, 8},
    };
    Rng rng(202);
    for (const auto &g : geoms) {
        std::vector<float> image(
            static_cast<std::size_t>(g.inCh) * g.h * g.w);
        std::vector<float> weights(static_cast<std::size_t>(g.outCh) *
                                   g.patch());
        std::vector<float> bias(static_cast<std::size_t>(g.outCh));
        fillMixed(image, rng);
        fillMixed(weights, rng);
        fillMixed(bias, rng);

        std::vector<float> cols0, cols1;
        ref_->im2col(image.data(), g, cols0);
        vec_->im2col(image.data(), g, cols1);
        ASSERT_EQ(cols0.size(), cols1.size());
        EXPECT_TRUE(bitsEqual(cols0.data(), cols1.data(), cols0.size()))
            << "im2col k=" << g.kernel << " h=" << g.h << " w=" << g.w;

        std::vector<float> out0(static_cast<std::size_t>(g.outCh) *
                                g.spatial());
        std::vector<float> out1(out0.size());
        std::vector<float> scratch0, scratch1;
        ref_->im2colConv(image.data(), weights.data(), bias.data(),
                         out0.data(), g, scratch0);
        vec_->im2colConv(image.data(), weights.data(), bias.data(),
                         out1.data(), g, scratch1);
        EXPECT_TRUE(bitsEqual(out0.data(), out1.data(), out0.size()))
            << "im2colConv k=" << g.kernel << " h=" << g.h
            << " w=" << g.w;
    }
}

// ----------------------------------------------------- pool and relu

TEST_F(BackendEquivalence, MaxPoolSignedZeroTiesAndNaN)
{
    // Windows full of -0.0/+0.0 probe the tie rule (first element in
    // scan order wins, so MAXPS's "b unless a > b" must be paired in
    // the same order); NaN lanes probe the unordered-compare path.
    const int batch = 2, c = 3, h = 8, w = 16;
    std::vector<float> x(static_cast<std::size_t>(batch) * c * h * w);
    Rng rng(303);
    fillMixed(x, rng);
    for (std::size_t i = 0; i < x.size(); i += 17)
        x[i] = std::numeric_limits<float>::quiet_NaN();
    for (std::size_t i = 0; i < x.size(); i += 5)
        x[i] = (i % 2) ? 0.0f : -0.0f;
    std::vector<float> y0(x.size() / 4), y1(x.size() / 4);
    ref_->maxPool2x2(x.data(), y0.data(), batch, c, h, w);
    vec_->maxPool2x2(x.data(), y1.data(), batch, c, h, w);
    EXPECT_TRUE(bitsEqual(y0.data(), y1.data(), y0.size()));
}

TEST_F(BackendEquivalence, ReluSignedZeroAndNaN)
{
    std::vector<float> x = {1.5f,
                            -2.0f,
                            0.0f,
                            -0.0f,
                            std::numeric_limits<float>::quiet_NaN(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::infinity(),
                            1e-40f};
    Rng rng(404);
    for (int i = 0; i < 100; ++i)
        x.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
    std::vector<float> y0(x.size()), y1(x.size());
    ref_->relu(x.data(), y0.data(), x.size());
    vec_->relu(x.data(), y1.data(), x.size());
    EXPECT_TRUE(bitsEqual(y0.data(), y1.data(), y0.size()));
    // The contract maps -0.0 and NaN to +0.0 exactly.
    EXPECT_EQ(std::memcmp(&y1[3], &y1[2], 4), 0);
    EXPECT_FALSE(std::signbit(y1[3]));
    EXPECT_EQ(y1[4], 0.0f);
    // In-place operation is allowed.
    std::vector<float> z = x;
    vec_->relu(z.data(), z.data(), z.size());
    EXPECT_TRUE(bitsEqual(z.data(), y0.data(), z.size()));
}

// ----------------------------------------------------- fault kernels

TEST_F(BackendEquivalence, FaultMapWordsFlipsAndRngOrder)
{
    const sram::VulnerabilityMap map(7, 3);
    const std::size_t kWords = 700; // not a multiple of 4 or 64
    const struct
    {
        FaultWindow win;
        double fail;
    } cases[] = {
        {{0, kWords * 16, 0}, 0.02},
        {{256, kWords * 16, 4096}, 0.05},
        // Wrapping walk: region smaller than the staged buffer.
        {{0, 4096, 4000}, 0.02},
        {{0, kWords * 16, 0}, 0.0},  // no faults at all
        {{0, kWords * 16, 0}, 1.0},  // every cell faulty
    };
    Rng fill(505);
    for (const auto &tc : cases) {
        std::vector<std::int16_t> w0(kWords), w1(kWords);
        for (auto &v : w0)
            v = static_cast<std::int16_t>(fill.uniformInt(65536) - 32768);
        w1 = w0;
        Rng r0(99), r1(99);
        const auto f0 = ref_->applyFaultMap(w0, map, tc.win,
                                            {tc.fail, 0.5}, r0);
        const auto f1 = vec_->applyFaultMap(w1, map, tc.win,
                                            {tc.fail, 0.5}, r1);
        EXPECT_EQ(f0, f1) << "fail_prob=" << tc.fail;
        EXPECT_EQ(std::memcmp(w0.data(), w1.data(),
                              kWords * sizeof(std::int16_t)),
                  0)
            << "fail_prob=" << tc.fail;
        // Identical RNG consumption: the next draws must agree.
        EXPECT_EQ(r0.next(), r1.next()) << "fail_prob=" << tc.fail;
    }
}

TEST_F(BackendEquivalence, FusedDequantMatchesReference)
{
    const sram::VulnerabilityMap map(11, 1);
    const std::size_t kWords = 513;
    const FixedPointCodec codec(12);
    Rng fill(606);
    for (double fail : {0.0, 0.03, 0.5}) {
        std::vector<std::int16_t> w0(kWords), w1(kWords);
        for (auto &v : w0)
            v = static_cast<std::int16_t>(fill.uniformInt(65536) - 32768);
        w1 = w0;
        std::vector<float> out0(kWords), out1(kWords);
        const FaultWindow win{128, kWords * 16 + 64, 32};
        Rng r0(7), r1(7);
        const auto f0 = ref_->applyFaultMapDequant(
            w0, codec, out0.data(), map, win, {fail, 0.5}, r0);
        const auto f1 = vec_->applyFaultMapDequant(
            w1, codec, out1.data(), map, win, {fail, 0.5}, r1);
        EXPECT_EQ(f0, f1);
        EXPECT_EQ(std::memcmp(w0.data(), w1.data(),
                              kWords * sizeof(std::int16_t)),
                  0);
        EXPECT_TRUE(bitsEqual(out0.data(), out1.data(), kWords))
            << "fail_prob=" << fail;
        EXPECT_EQ(r0.next(), r1.next());
    }
}

TEST_F(BackendEquivalence, FaultMapBitsInterleavedWindows)
{
    // The ECC path draws alternately from a data window and a check
    // window; equivalence must hold under that interleaving too.
    const sram::VulnerabilityMap map(13, 2);
    const FaultWindow data{0, 1 << 14, 100};
    const FaultWindow check{1 << 14, 1 << 12, 9};
    Rng r0(3), r1(3), fill(707);
    for (int i = 0; i < 64; ++i) {
        std::uint64_t b0 = fill.next();
        std::uint64_t b1 = b0;
        const int nbits = 1 + static_cast<int>(fill.uniformInt(64));
        const FaultWindow &winr = (i % 2) ? check : data;
        FaultWindow w0 = winr, w1 = winr;
        w0.startBit += static_cast<std::uint64_t>(i) * 64;
        w1.startBit = w0.startBit;
        const auto f0 =
            ref_->applyFaultMapBits(b0, nbits, map, w0, {0.04, 0.5}, r0);
        const auto f1 =
            vec_->applyFaultMapBits(b1, nbits, map, w1, {0.04, 0.5}, r1);
        EXPECT_EQ(f0, f1) << "i=" << i << " nbits=" << nbits;
        EXPECT_EQ(b0, b1) << "i=" << i << " nbits=" << nbits;
    }
    EXPECT_EQ(r0.next(), r1.next());
}

// ------------------------------------------------- packed fault maps

TEST(PackedFaultMapEdgeCases, MatchesPerCellQueries)
{
    const sram::VulnerabilityMap map(17, 5);
    const struct
    {
        std::uint64_t base, region, start, nbits;
        double fail;
    } cases[] = {
        {0, 1000, 0, 1000, 0.05},    // non-multiple-of-64 count
        {64, 512, 500, 600, 0.05},   // wraps and revisits cells
        {0, 4096, 4090, 100, 0.05},  // starts at the wrap point
        {0, 256, 0, 256, 0.0},       // no faulty cells
        {0, 256, 0, 256, 1.0},       // every cell faulty
        {7, 130, 129, 3, 0.5},       // tiny map, word-tail bits
    };
    for (const auto &tc : cases) {
        const sram::PackedFaultMap packed(map, tc.base, tc.region,
                                          tc.start, tc.nbits, tc.fail);
        ASSERT_EQ(packed.numBits(), tc.nbits);
        std::uint64_t expect_count = 0;
        for (std::uint64_t j = 0; j < tc.nbits; ++j) {
            const std::uint64_t cell =
                tc.base + (tc.start + j) % tc.region;
            const bool faulty = map.isFaulty(cell, tc.fail);
            EXPECT_EQ(packed.test(j), faulty)
                << "visit " << j << " cell " << cell;
            expect_count += faulty;
        }
        EXPECT_EQ(packed.countFaulty(), expect_count);
        // mask() straddling 64-bit word boundaries, and reading past
        // numBits() (must read as zero).
        for (std::uint64_t j : {std::uint64_t{0}, std::uint64_t{60},
                                std::uint64_t{127},
                                tc.nbits > 5 ? tc.nbits - 5
                                             : std::uint64_t{0}}) {
            if (j >= tc.nbits)
                continue;
            const unsigned nb = 64;
            const std::uint64_t m = packed.mask(j, nb);
            for (unsigned b = 0; b < nb; ++b) {
                const bool expect =
                    j + b < tc.nbits && packed.test(j + b);
                EXPECT_EQ(((m >> b) & 1u) != 0, expect)
                    << "mask(" << j << ") bit " << b;
            }
        }
    }
}

// --------------------------------------- whole-network and MC digests

/** Small conv net exercising every backend kernel in one forward. */
Network
convNet(std::uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.addLayer<Conv2d>(3, 8, 5, 2, rng, "c1");
    net.addLayer<Relu>("r1");
    net.addLayer<MaxPool2d>("p1");
    net.addLayer<Conv2d>(8, 8, 3, 1, rng, "c2");
    net.addLayer<Relu>("r2");
    net.addLayer<MaxPool2d>("p2");
    net.addLayer<Flatten>("fl");
    net.addLayer<Dense>(8 * 4 * 4, 10, rng, "fc");
    return net;
}

/** Tiny CIFAR-shaped dataset (random pixels; determinism is what is
 *  under test, not accuracy). */
Dataset
tinyImages(int n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds;
    ds.images = Tensor({n, 3, 16, 16});
    ds.labels.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < ds.images.numel(); ++i)
        ds.images[i] = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto &l : ds.labels)
        l = static_cast<int>(rng.uniformInt(10));
    return ds;
}

TEST_F(BackendEquivalence, NetworkLogitsBitwiseIdentical)
{
    Network net = convNet(31);
    const Dataset ds = tinyImages(12, 32);

    ASSERT_TRUE(setActiveBackend("reference"));
    const Tensor ref_logits = net.forward(ds.images, /*train=*/false);
    ASSERT_TRUE(setActiveBackend("vectorized"));
    const Tensor vec_logits = net.forward(ds.images, /*train=*/false);
    setActiveBackend("auto");

    ASSERT_EQ(ref_logits.numel(), vec_logits.numel());
    EXPECT_TRUE(bitsEqual(ref_logits.data(), vec_logits.data(),
                          ref_logits.numel()));
}

TEST_F(BackendEquivalence, ExperimentDigestAndObsFingerprint)
{
    // The full Monte-Carlo pipeline — staging, fused corrupt +
    // dequantize, inference, map-order reduction — must produce
    // bit-identical statistics and observability fingerprints for
    // every (backend, thread count) combination.
    Network net = convNet(41);
    const Dataset ds = tinyImages(24, 42);

    struct Digest
    {
        fi::AccuracyPoint p;
        std::uint64_t fp;
    };
    std::vector<Digest> digests;
    for (const char *backend : {"reference", "vectorized"}) {
        for (int threads : {1, 8}) {
            ASSERT_TRUE(setActiveBackend(backend));
            fi::ExperimentConfig cfg;
            cfg.numMaps = 3;
            cfg.maxTestSamples = 16;
            cfg.numThreads = threads;
            fi::FaultInjectionRunner runner(net, ds, cfg);
            obs::Observability o;
            runner.attachObservability(&o);
            Digest d;
            d.p = runner.run(1e-4, fi::InjectionSpec::allWeights());
            runner.attachObservability(nullptr);
            d.fp = o.metrics.fingerprint();
            digests.push_back(d);
        }
    }
    setActiveBackend("auto");
    const auto &base = digests.front();
    for (std::size_t i = 1; i < digests.size(); ++i) {
        EXPECT_EQ(std::memcmp(&digests[i].p.meanAccuracy,
                              &base.p.meanAccuracy, sizeof(double)),
                  0)
            << "config " << i;
        EXPECT_EQ(std::memcmp(&digests[i].p.stddevAccuracy,
                              &base.p.stddevAccuracy, sizeof(double)),
                  0)
            << "config " << i;
        EXPECT_EQ(digests[i].p.minAccuracy, base.p.minAccuracy);
        EXPECT_EQ(digests[i].p.maxAccuracy, base.p.maxAccuracy);
        EXPECT_EQ(digests[i].p.meanBitFlips, base.p.meanBitFlips);
        EXPECT_EQ(digests[i].fp, base.fp) << "config " << i;
    }
}

} // namespace
} // namespace vboost::dnn
