/**
 * @file
 * Tests for the multi-tenant inference serving runtime (DESIGN.md §9):
 * bounded-queue admission control, the deterministic dynamic batcher,
 * the Poisson trace generator, the SLO -> operating-point planner with
 * error-rate feedback, and the three acceptance properties of the
 * InferenceServer — bitwise-identical results at any worker count,
 * deterministic typed shedding at the queue bound, and lower-SLO
 * classes never costing more energy per inference than higher ones at
 * the same supply voltage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "serve/batcher.hpp"
#include "serve/planner.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace vboost::serve {
namespace {

constexpr double kFaultFree = 0.9;

/** Monotone accuracy-vs-Vddv stub: 0 below 0.30 V, the fault-free
 *  ceiling above 0.58 V, linear in between. Cheap, deterministic, and
 *  feasible for all three SLO classes at the top of the Vdd grid. */
double
stubAccuracy(Volt vddv)
{
    const double t =
        std::clamp((vddv.value() - 0.30) / 0.28, 0.0, 1.0);
    return kFaultFree * t;
}

InferenceRequest
makeRequest(std::uint64_t id, const std::string &tenant, SloClass slo,
            Tick arrival, std::size_t sample = 0)
{
    InferenceRequest req;
    req.id = id;
    req.tenant = tenant;
    req.slo = slo;
    req.sample = sample;
    req.arrivalTick = arrival;
    return req;
}

// ---------------------------------------------------------------------
// BoundedRequestQueue
// ---------------------------------------------------------------------

TEST(BoundedRequestQueue, ShedsWithTypedReasonsAtTheBounds)
{
    BoundedRequestQueue q(2, 1);
    EXPECT_TRUE(
        q.tryAdmit(makeRequest(0, "a", SloClass::Gold, 0)).admitted);

    // Second "a" request trips the per-tenant quota, not the global
    // bound.
    const auto quota = q.tryAdmit(makeRequest(1, "a", SloClass::Gold, 1));
    EXPECT_FALSE(quota.admitted);
    EXPECT_EQ(quota.reason, ShedReason::TenantQuotaExceeded);

    EXPECT_TRUE(
        q.tryAdmit(makeRequest(2, "b", SloClass::Bronze, 2)).admitted);

    // Queue is now globally full; even a fresh tenant is shed.
    const auto full = q.tryAdmit(makeRequest(3, "c", SloClass::Gold, 3));
    EXPECT_FALSE(full.admitted);
    EXPECT_EQ(full.reason, ShedReason::QueueFull);

    EXPECT_EQ(q.occupancy(), 2u);
    EXPECT_EQ(q.admitted(), 2u);
    EXPECT_EQ(q.shedQueueFull(), 1u);
    EXPECT_EQ(q.shedTenantQuota(), 1u);

    // Closing "a"'s batch frees its slot for admission again.
    q.release("a", 1);
    EXPECT_EQ(q.occupancy(), 1u);
    EXPECT_EQ(q.tenantOccupancy("a"), 0u);
    EXPECT_TRUE(
        q.tryAdmit(makeRequest(4, "a", SloClass::Gold, 4)).admitted);
}

TEST(BoundedRequestQueue, ValidatesConstruction)
{
    EXPECT_THROW(BoundedRequestQueue(0), FatalError);
}

// ---------------------------------------------------------------------
// DynamicBatcher
// ---------------------------------------------------------------------

TEST(DynamicBatcher, ClosesWhenAGroupReachesMaxSize)
{
    DynamicBatcher b({2, 1000});
    EXPECT_FALSE(b.add(makeRequest(0, "a", SloClass::Gold, 10)));
    EXPECT_EQ(b.pendingCount(), 1u);
    const auto batch = b.add(makeRequest(1, "a", SloClass::Gold, 17));
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->seq, 0u);
    EXPECT_EQ(batch->tenant, "a");
    EXPECT_EQ(batch->requests.size(), 2u);
    // A size-close stamps the closing request's arrival instant.
    EXPECT_EQ(batch->formedTick, 17u);
    EXPECT_EQ(b.pendingCount(), 0u);
    EXPECT_FALSE(b.nextDeadline().has_value());
}

TEST(DynamicBatcher, SameTenantDifferentSloNeverShareABatch)
{
    DynamicBatcher b({2, 1000});
    EXPECT_FALSE(b.add(makeRequest(0, "a", SloClass::Gold, 0)));
    // Same tenant, different accuracy contract: separate group.
    EXPECT_FALSE(b.add(makeRequest(1, "a", SloClass::Bronze, 1)));
    EXPECT_EQ(b.pendingCount(), 2u);
    const auto flushed = b.closeDue(DynamicBatcher::kNever);
    ASSERT_EQ(flushed.size(), 2u);
    EXPECT_EQ(flushed[0].requests.size(), 1u);
    EXPECT_EQ(flushed[1].requests.size(), 1u);
}

TEST(DynamicBatcher, DeadlineCloseHappensInDeadlineOrder)
{
    DynamicBatcher b({8, 100});
    b.add(makeRequest(0, "late", SloClass::Gold, 50));
    b.add(makeRequest(1, "early", SloClass::Gold, 10));
    // Nothing is due before the earliest deadline.
    EXPECT_TRUE(b.closeDue(100).empty());
    ASSERT_TRUE(b.nextDeadline().has_value());
    EXPECT_EQ(*b.nextDeadline(), 110u);

    // A late sweep closes both, in (deadline, key) order, and each
    // batch is stamped with its own deadline, not the sweep instant.
    const auto due = b.closeDue(1000);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].tenant, "early");
    EXPECT_EQ(due[0].formedTick, 110u);
    EXPECT_EQ(due[1].tenant, "late");
    EXPECT_EQ(due[1].formedTick, 150u);
    EXPECT_EQ(due[0].seq, 0u);
    EXPECT_EQ(due[1].seq, 1u);
}

TEST(DynamicBatcher, ValidatesConfig)
{
    EXPECT_THROW(DynamicBatcher({0, 100}), FatalError);
}

// ---------------------------------------------------------------------
// Poisson trace generator
// ---------------------------------------------------------------------

TEST(PoissonTrace, IsDeterministicAndWellFormed)
{
    TraceConfig cfg;
    cfg.requestsPerTick = 0.002;
    cfg.numRequests = 64;
    cfg.seed = 7;
    cfg.tenants = {{"a", SloClass::Gold, 0.5},
                   {"b", SloClass::Bronze, 0.5}};
    cfg.samplePoolSize = 16;

    const auto t1 = generatePoissonTrace(cfg);
    const auto t2 = generatePoissonTrace(cfg);
    ASSERT_EQ(t1.size(), 64u);
    EXPECT_EQ(t1, t2);

    std::set<std::string> tenants;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].id, i);
        EXPECT_LT(t1[i].sample, cfg.samplePoolSize);
        if (i > 0) {
            EXPECT_GE(t1[i].arrivalTick, t1[i - 1].arrivalTick);
        }
        tenants.insert(t1[i].tenant);
    }
    // Both 50% tenants appear in 64 draws.
    EXPECT_EQ(tenants.size(), 2u);

    // A different seed moves the arrivals.
    cfg.seed = 8;
    EXPECT_NE(generatePoissonTrace(cfg), t1);
}

TEST(PoissonTrace, ValidatesConfig)
{
    TraceConfig cfg;
    cfg.tenants = {{"a", SloClass::Gold, 1.0}};
    cfg.requestsPerTick = 0.0;
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
    cfg.requestsPerTick = 0.001;
    cfg.tenants.clear();
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
    cfg.tenants = {{"a", SloClass::Gold, -1.0}};
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
}

// ---------------------------------------------------------------------
// OperatingPointPlanner
// ---------------------------------------------------------------------

class PlannerTest : public ::testing::Test
{
  protected:
    PlannerTest() : ctx_(core::SimContext::standard()) {}

    OperatingPointPlanner makePlanner() const
    {
        InferenceFootprint fp;
        fp.weightAccesses = 6352;
        fp.inputAccesses = 204;
        fp.psumAccesses = 64;
        fp.computeOps = 25408;
        return OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                     kFaultFree, fp);
    }

    core::SimContext ctx_;
};

TEST_F(PlannerTest, BasePlanMeetsTheClassTarget)
{
    auto planner = makePlanner();
    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        const auto &plan = planner.planFor("tenant", slo);
        EXPECT_GE(plan.plannedAccuracy, plan.targetAccuracy);
        EXPECT_GT(plan.energyPerInference.value(), 0.0);
        EXPECT_EQ(plan.vddStep, 0);
        EXPECT_GE(planner.ladderSize(slo), 1u);
    }
    // Looser contracts have lower absolute targets.
    EXPECT_GT(planner.targetAccuracy(SloClass::Gold),
              planner.targetAccuracy(SloClass::Silver));
    EXPECT_GT(planner.targetAccuracy(SloClass::Silver),
              planner.targetAccuracy(SloClass::Bronze));
}

TEST_F(PlannerTest, LowerSloNeverCostsMoreAtTheSameVdd)
{
    // Acceptance (c): at every supply voltage where the Gold contract
    // is servable at all, the looser contracts are servable too and
    // their planned energy per inference is no higher.
    auto planner = makePlanner();
    int compared = 0;
    for (Volt vdd : planner.config().vddGrid) {
        const auto gold = planner.planAtVdd(SloClass::Gold, vdd);
        if (!gold)
            continue;
        const auto silver = planner.planAtVdd(SloClass::Silver, vdd);
        const auto bronze = planner.planAtVdd(SloClass::Bronze, vdd);
        ASSERT_TRUE(silver.has_value());
        ASSERT_TRUE(bronze.has_value());
        EXPECT_LE(bronze->weightLevel, silver->weightLevel);
        EXPECT_LE(silver->weightLevel, gold->weightLevel);
        EXPECT_LE(bronze->energyPerInference.value(),
                  silver->energyPerInference.value());
        EXPECT_LE(silver->energyPerInference.value(),
                  gold->energyPerInference.value());
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

TEST_F(PlannerTest, ErrorFeedbackStepsUpTheLadderAndBackDown)
{
    auto planner = makePlanner();
    ASSERT_GE(planner.ladderSize(SloClass::Bronze), 2u);
    const Volt base_vdd =
        planner.planFor("t", SloClass::Bronze).vdd;

    // A noisy epoch: the EWMA seeds above the step-up threshold and
    // the tenant moves one rung toward higher Vdd.
    planner.observeErrorRate("t", 0.5);
    EXPECT_EQ(planner.tenantStep("t"), 1);
    const auto &raised = planner.planFor("t", SloClass::Bronze);
    EXPECT_EQ(raised.vddStep, 1);
    EXPECT_GT(raised.vdd.value(), base_vdd.value());

    // Quiet epochs decay the EWMA below the step-down threshold and
    // the tenant returns to the cheap base rung.
    planner.observeErrorRate("t", 0.0);
    EXPECT_EQ(planner.tenantStep("t"), 0);
    EXPECT_EQ(planner.planFor("t", SloClass::Bronze).vddStep, 0);

    // Tenants are independent.
    EXPECT_EQ(planner.tenantStep("other"), 0);

    EXPECT_THROW(planner.observeErrorRate("t", -0.1), FatalError);
}

// ---------------------------------------------------------------------
// InferenceServer acceptance
// ---------------------------------------------------------------------

class ServeTest : public ::testing::Test
{
  protected:
    ServeTest()
        : ctx_(core::SimContext::standard()),
          pool_(dnn::makeSyntheticMnist(32, 3))
    {
        // A small FC net keeps the per-batch weight staging through
        // the resilient memory cheap; untrained is fine — the server
        // only needs deterministic predictions.
        Rng rng(7);
        net_.addLayer<dnn::Dense>(784, 32, rng, "fc1");
        net_.addLayer<dnn::Relu>("fc1.relu");
        net_.addLayer<dnn::Dense>(32, 10, rng, "fc2");

        act_.macs = 25408;
        act_.weightAccesses = 6352;
        act_.inputAccesses = 204;
        act_.psumAccesses = 64;
    }

    OperatingPointPlanner makePlanner() const
    {
        InferenceFootprint fp;
        fp.weightAccesses = act_.weightAccesses;
        fp.inputAccesses = act_.inputAccesses;
        fp.psumAccesses = act_.psumAccesses;
        fp.computeOps = act_.macs;
        return OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                     kFaultFree, fp);
    }

    InferenceServer makeServer(ServerConfig cfg)
    {
        return InferenceServer(ctx_, net_, pool_, act_, makePlanner(),
                               cfg);
    }

    std::vector<InferenceRequest> makeTrace(std::size_t n,
                                            double rate) const
    {
        TraceConfig cfg;
        cfg.requestsPerTick = rate;
        cfg.numRequests = n;
        cfg.seed = 42;
        cfg.tenants = {{"acme", SloClass::Gold, 0.5},
                       {"batchco", SloClass::Bronze, 0.5}};
        cfg.samplePoolSize = pool_.size();
        return generatePoissonTrace(cfg);
    }

    static ServerConfig smallConfig()
    {
        ServerConfig cfg;
        cfg.queueCapacity = 16;
        cfg.batcher.maxBatchSize = 4;
        cfg.batcher.maxWaitTicks = 2000;
        cfg.workerSlots = 2;
        cfg.feedbackInterval = 2;
        return cfg;
    }

    core::SimContext ctx_;
    dnn::Network net_;
    dnn::Dataset pool_;
    accel::LayerActivity act_;
};

TEST_F(ServeTest, ResultsAreBitwiseIdenticalAtAnyWorkerCount)
{
    // Acceptance (a): the worker count is an execution detail; every
    // outcome, every stat and the stats fingerprint are bitwise
    // identical between a serial and an 8-thread server.
    const auto trace = makeTrace(24, 0.002);

    auto serial_cfg = smallConfig();
    serial_cfg.numThreads = 1;
    auto serial = makeServer(serial_cfg);
    const auto r1 = serial.run(trace);

    auto wide_cfg = smallConfig();
    wide_cfg.numThreads = 8;
    auto wide = makeServer(wide_cfg);
    const auto r8 = wide.run(trace);

    ASSERT_EQ(r1.outcomes.size(), trace.size());
    EXPECT_EQ(r1.outcomes, r8.outcomes);
    EXPECT_EQ(r1.stats, r8.stats);
    EXPECT_EQ(r1.stats.fingerprint(), r8.stats.fingerprint());

    // Batch-level records agree too (same plans, same timing, same
    // resilience counters).
    ASSERT_EQ(r1.batches.size(), r8.batches.size());
    for (std::size_t i = 0; i < r1.batches.size(); ++i) {
        EXPECT_EQ(r1.batches[i].startTick, r8.batches[i].startTick);
        EXPECT_EQ(r1.batches[i].completionTick,
                  r8.batches[i].completionTick);
        EXPECT_EQ(r1.batches[i].predictions, r8.batches[i].predictions);
        EXPECT_DOUBLE_EQ(r1.batches[i].modeledEnergy.value(),
                         r8.batches[i].modeledEnergy.value());
        EXPECT_EQ(r1.batches[i].resilience.retries,
                  r8.batches[i].resilience.retries);
    }
}

TEST_F(ServeTest, AccountingIsConsistent)
{
    const auto trace = makeTrace(24, 0.002);
    auto server = makeServer(smallConfig());
    const auto r = server.run(trace);
    const auto &s = r.stats;

    EXPECT_EQ(s.total.requests, trace.size());
    EXPECT_EQ(s.total.admitted + s.total.shedQueueFull +
                  s.total.shedTenantQuota,
              s.total.requests);
    EXPECT_EQ(s.total.inferences, s.total.admitted);

    // Per-tenant rows sum to the totals.
    std::uint64_t requests = 0, admitted = 0, inferences = 0;
    double energy = 0.0;
    for (const auto &[name, t] : s.perTenant) {
        requests += t.requests;
        admitted += t.admitted;
        inferences += t.inferences;
        energy += t.energyPj;
    }
    EXPECT_EQ(requests, s.total.requests);
    EXPECT_EQ(admitted, s.total.admitted);
    EXPECT_EQ(inferences, s.total.inferences);
    EXPECT_NEAR(energy, s.total.energyPj, 1e-6 * (1.0 + energy));

    // Batches cover exactly the admitted requests, in seq order.
    std::uint64_t batched = 0;
    for (std::size_t i = 0; i < r.batches.size(); ++i) {
        EXPECT_EQ(r.batches[i].seq, i);
        EXPECT_EQ(r.batches[i].predictions.size(), r.batches[i].size);
        EXPECT_GE(r.batches[i].completionTick, r.batches[i].startTick);
        EXPECT_GE(r.batches[i].startTick, r.batches[i].formedTick);
        batched += r.batches[i].size;
    }
    EXPECT_EQ(batched, s.total.admitted);
    EXPECT_GT(s.meanBatchSize, 0.0);
    EXPECT_GE(s.p95LatencyTicks, s.p50LatencyTicks);
    EXPECT_GT(s.total.energyPj, 0.0);
    EXPECT_NE(s.fingerprint(), 0u);
}

TEST_F(ServeTest, SheddingAtTheQueueBoundIsDeterministicAndTyped)
{
    // Acceptance (b): a burst against a tiny queue sheds the same
    // requests with the same typed reasons on every run. The burst is
    // crafted so both bounds trip: "acme" floods past its quota while
    // the queue still has room, then "batchco" fills the last slot and
    // everything after hits the global bound.
    std::vector<InferenceRequest> trace = {
        makeRequest(0, "acme", SloClass::Gold, 0, 0),
        makeRequest(1, "acme", SloClass::Gold, 1, 1),
        makeRequest(2, "acme", SloClass::Gold, 2, 2),    // quota
        makeRequest(3, "batchco", SloClass::Bronze, 3, 3),
        makeRequest(4, "batchco", SloClass::Bronze, 4, 4), // full
        makeRequest(5, "acme", SloClass::Gold, 5, 5),      // full
        makeRequest(6, "batchco", SloClass::Bronze, 6, 6), // full
    };
    auto cfg = smallConfig();
    cfg.queueCapacity = 3;
    cfg.perTenantQueueCap = 2;
    cfg.batcher.maxBatchSize = 8;
    cfg.batcher.maxWaitTicks = 10000;

    auto collectSheds = [&](const ServeResult &r) {
        std::vector<std::pair<std::uint64_t, ShedReason>> sheds;
        for (const auto &o : r.outcomes) {
            if (!o.admitted)
                sheds.emplace_back(o.id, o.shedReason);
        }
        return sheds;
    };

    auto s1 = makeServer(cfg);
    const auto r1 = s1.run(trace);
    auto s2 = makeServer(cfg);
    const auto r2 = s2.run(trace);

    const auto sheds1 = collectSheds(r1);
    EXPECT_EQ(sheds1, collectSheds(r2));
    EXPECT_EQ(r1.stats.fingerprint(), r2.stats.fingerprint());

    // The exact shed set is part of the contract, not a statistic.
    const std::vector<std::pair<std::uint64_t, ShedReason>> expected = {
        {2, ShedReason::TenantQuotaExceeded},
        {4, ShedReason::QueueFull},
        {5, ShedReason::QueueFull},
        {6, ShedReason::QueueFull},
    };
    EXPECT_EQ(sheds1, expected);
    EXPECT_EQ(r1.stats.total.shedQueueFull, 3u);
    EXPECT_EQ(r1.stats.total.shedTenantQuota, 1u);
    EXPECT_EQ(r1.stats.total.admitted, 3u);
    EXPECT_EQ(r1.stats.total.admitted + sheds1.size(), trace.size());
}

TEST_F(ServeTest, ServedRequestsCarryPlanAndTiming)
{
    const auto trace = makeTrace(16, 0.002);
    auto server = makeServer(smallConfig());
    const auto r = server.run(trace);
    for (const auto &o : r.outcomes) {
        if (!o.admitted)
            continue;
        EXPECT_GE(o.formedTick, o.arrivalTick);
        EXPECT_GE(o.startTick, o.formedTick);
        EXPECT_GT(o.completionTick, o.startTick);
        EXPECT_GE(o.predictedClass, 0);
        EXPECT_GT(o.energyPj, 0.0);
        ASSERT_LT(o.batchSeq, r.batches.size());
        const auto &batch = r.batches[o.batchSeq];
        EXPECT_EQ(batch.tenant, o.tenant);
        EXPECT_EQ(batch.slo, o.slo);
        // The batch ran at a plan meeting the request's contract.
        EXPECT_GE(batch.plan.plannedAccuracy,
                  batch.plan.targetAccuracy);
    }
}

TEST_F(ServeTest, ValidatesTraces)
{
    auto server = makeServer(smallConfig());

    std::vector<InferenceRequest> decreasing = {
        makeRequest(0, "a", SloClass::Gold, 100),
        makeRequest(1, "a", SloClass::Gold, 50),
    };
    EXPECT_THROW(server.run(decreasing), FatalError);

    std::vector<InferenceRequest> bad_sample = {
        makeRequest(0, "a", SloClass::Gold, 0, pool_.size()),
    };
    EXPECT_THROW(server.run(bad_sample), FatalError);

    std::vector<InferenceRequest> duplicate = {
        makeRequest(3, "a", SloClass::Gold, 0),
        makeRequest(3, "a", SloClass::Gold, 1),
    };
    EXPECT_THROW(server.run(duplicate), FatalError);
}

} // namespace
} // namespace vboost::serve
