/**
 * @file
 * Tests for the multi-tenant inference serving runtime (DESIGN.md §9):
 * bounded-queue admission control, the deterministic dynamic batcher,
 * the Poisson trace generator, the SLO -> operating-point planner with
 * error-rate feedback, and the three acceptance properties of the
 * InferenceServer — bitwise-identical results at any worker count,
 * deterministic typed shedding at the queue bound, and lower-SLO
 * classes never costing more energy per inference than higher ones at
 * the same supply voltage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "serve/batcher.hpp"
#include "serve/planner.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace vboost::serve {
namespace {

constexpr double kFaultFree = 0.9;

/** Monotone accuracy-vs-Vddv stub: 0 below 0.30 V, the fault-free
 *  ceiling above 0.58 V, linear in between. Cheap, deterministic, and
 *  feasible for all three SLO classes at the top of the Vdd grid. */
double
stubAccuracy(Volt vddv)
{
    const double t =
        std::clamp((vddv.value() - 0.30) / 0.28, 0.0, 1.0);
    return kFaultFree * t;
}

InferenceRequest
makeRequest(std::uint64_t id, const std::string &tenant, SloClass slo,
            Tick arrival, std::size_t sample = 0)
{
    InferenceRequest req;
    req.id = id;
    req.tenant = tenant;
    req.slo = slo;
    req.sample = sample;
    req.arrivalTick = arrival;
    return req;
}

// ---------------------------------------------------------------------
// BoundedRequestQueue
// ---------------------------------------------------------------------

TEST(BoundedRequestQueue, ShedsWithTypedReasonsAtTheBounds)
{
    BoundedRequestQueue q(2, 1);
    EXPECT_TRUE(
        q.tryAdmit(makeRequest(0, "a", SloClass::Gold, 0)).admitted);

    // Second "a" request trips the per-tenant quota, not the global
    // bound.
    const auto quota = q.tryAdmit(makeRequest(1, "a", SloClass::Gold, 1));
    EXPECT_FALSE(quota.admitted);
    EXPECT_EQ(quota.reason, ShedReason::TenantQuotaExceeded);

    EXPECT_TRUE(
        q.tryAdmit(makeRequest(2, "b", SloClass::Bronze, 2)).admitted);

    // Queue is now globally full; even a fresh tenant is shed.
    const auto full = q.tryAdmit(makeRequest(3, "c", SloClass::Gold, 3));
    EXPECT_FALSE(full.admitted);
    EXPECT_EQ(full.reason, ShedReason::QueueFull);

    EXPECT_EQ(q.occupancy(), 2u);
    EXPECT_EQ(q.admitted(), 2u);
    EXPECT_EQ(q.shedQueueFull(), 1u);
    EXPECT_EQ(q.shedTenantQuota(), 1u);

    // Closing "a"'s batch frees its slot for admission again.
    q.release("a", 1);
    EXPECT_EQ(q.occupancy(), 1u);
    EXPECT_EQ(q.tenantOccupancy("a"), 0u);
    EXPECT_TRUE(
        q.tryAdmit(makeRequest(4, "a", SloClass::Gold, 4)).admitted);
}

TEST(BoundedRequestQueue, ValidatesConstruction)
{
    EXPECT_THROW(BoundedRequestQueue(0), FatalError);
}

// ---------------------------------------------------------------------
// DynamicBatcher
// ---------------------------------------------------------------------

TEST(DynamicBatcher, ClosesWhenAGroupReachesMaxSize)
{
    DynamicBatcher b({2, 1000});
    EXPECT_FALSE(b.add(makeRequest(0, "a", SloClass::Gold, 10)));
    EXPECT_EQ(b.pendingCount(), 1u);
    const auto batch = b.add(makeRequest(1, "a", SloClass::Gold, 17));
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->seq, 0u);
    EXPECT_EQ(batch->tenant, "a");
    EXPECT_EQ(batch->requests.size(), 2u);
    // A size-close stamps the closing request's arrival instant.
    EXPECT_EQ(batch->formedTick, 17u);
    EXPECT_EQ(b.pendingCount(), 0u);
    EXPECT_FALSE(b.nextDeadline().has_value());
}

TEST(DynamicBatcher, SameTenantDifferentSloNeverShareABatch)
{
    DynamicBatcher b({2, 1000});
    EXPECT_FALSE(b.add(makeRequest(0, "a", SloClass::Gold, 0)));
    // Same tenant, different accuracy contract: separate group.
    EXPECT_FALSE(b.add(makeRequest(1, "a", SloClass::Bronze, 1)));
    EXPECT_EQ(b.pendingCount(), 2u);
    const auto flushed = b.closeDue(DynamicBatcher::kNever);
    ASSERT_EQ(flushed.size(), 2u);
    EXPECT_EQ(flushed[0].requests.size(), 1u);
    EXPECT_EQ(flushed[1].requests.size(), 1u);
}

TEST(DynamicBatcher, DeadlineCloseHappensInDeadlineOrder)
{
    DynamicBatcher b({8, 100});
    b.add(makeRequest(0, "late", SloClass::Gold, 50));
    b.add(makeRequest(1, "early", SloClass::Gold, 10));
    // Nothing is due before the earliest deadline.
    EXPECT_TRUE(b.closeDue(100).empty());
    ASSERT_TRUE(b.nextDeadline().has_value());
    EXPECT_EQ(*b.nextDeadline(), 110u);

    // A late sweep closes both, in (deadline, key) order, and each
    // batch is stamped with its own deadline, not the sweep instant.
    const auto due = b.closeDue(1000);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].tenant, "early");
    EXPECT_EQ(due[0].formedTick, 110u);
    EXPECT_EQ(due[1].tenant, "late");
    EXPECT_EQ(due[1].formedTick, 150u);
    EXPECT_EQ(due[0].seq, 0u);
    EXPECT_EQ(due[1].seq, 1u);
}

TEST(DynamicBatcher, ValidatesConfig)
{
    EXPECT_THROW(DynamicBatcher({0, 100}), FatalError);
}

// ---------------------------------------------------------------------
// Poisson trace generator
// ---------------------------------------------------------------------

TEST(PoissonTrace, IsDeterministicAndWellFormed)
{
    TraceConfig cfg;
    cfg.requestsPerTick = 0.002;
    cfg.numRequests = 64;
    cfg.seed = 7;
    cfg.tenants = {{"a", SloClass::Gold, 0.5},
                   {"b", SloClass::Bronze, 0.5}};
    cfg.samplePoolSize = 16;

    const auto t1 = generatePoissonTrace(cfg);
    const auto t2 = generatePoissonTrace(cfg);
    ASSERT_EQ(t1.size(), 64u);
    EXPECT_EQ(t1, t2);

    std::set<std::string> tenants;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].id, i);
        EXPECT_LT(t1[i].sample, cfg.samplePoolSize);
        if (i > 0) {
            EXPECT_GE(t1[i].arrivalTick, t1[i - 1].arrivalTick);
        }
        tenants.insert(t1[i].tenant);
    }
    // Both 50% tenants appear in 64 draws.
    EXPECT_EQ(tenants.size(), 2u);

    // A different seed moves the arrivals.
    cfg.seed = 8;
    EXPECT_NE(generatePoissonTrace(cfg), t1);
}

/** FNV-1a digest over every field of a trace, in trace order. */
std::uint64_t
traceDigest(const std::vector<InferenceRequest> &trace)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const auto &req : trace) {
        mix(req.id);
        for (const char c : req.tenant)
            mix(static_cast<unsigned char>(c));
        mix(static_cast<std::uint64_t>(req.slo));
        mix(req.sample);
        mix(req.arrivalTick);
    }
    return h;
}

TEST(PoissonTrace, EmptyTenantMixIsRejected)
{
    TraceConfig cfg;
    cfg.tenants = {};
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
}

TEST(PoissonTrace, SharesAreNormalized)
{
    // Only the relative shares matter: scaling the whole mix changes
    // nothing about the generated trace.
    TraceConfig cfg;
    cfg.requestsPerTick = 0.002;
    cfg.numRequests = 48;
    cfg.seed = 11;
    cfg.samplePoolSize = 8;
    cfg.tenants = {{"a", SloClass::Gold, 3.0},
                   {"b", SloClass::Bronze, 1.0}};
    const auto base = generatePoissonTrace(cfg);

    cfg.tenants = {{"a", SloClass::Gold, 0.75},
                   {"b", SloClass::Bronze, 0.25}};
    EXPECT_EQ(generatePoissonTrace(cfg), base);

    cfg.tenants = {{"a", SloClass::Gold, 300.0},
                   {"b", SloClass::Bronze, 100.0}};
    EXPECT_EQ(generatePoissonTrace(cfg), base);
}

TEST(PoissonTrace, SingleRequestTraceIsWellFormed)
{
    TraceConfig cfg;
    cfg.requestsPerTick = 0.001;
    cfg.numRequests = 1;
    cfg.seed = 3;
    cfg.tenants = {{"solo", SloClass::Silver, 1.0}};
    cfg.samplePoolSize = 4;
    const auto trace = generatePoissonTrace(cfg);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].id, 0u);
    EXPECT_EQ(trace[0].tenant, "solo");
    EXPECT_EQ(trace[0].slo, SloClass::Silver);
    EXPECT_LT(trace[0].sample, cfg.samplePoolSize);
}

TEST(PoissonTrace, DigestIsSeedStable)
{
    // The digest of a trace is a pure function of the config: equal
    // for repeated generations (no hidden global state), different
    // across seeds.
    TraceConfig cfg;
    cfg.requestsPerTick = 0.002;
    cfg.numRequests = 96;
    cfg.seed = 21;
    cfg.tenants = {{"a", SloClass::Gold, 0.5},
                   {"b", SloClass::Bronze, 0.5}};
    cfg.samplePoolSize = 16;
    const auto d1 = traceDigest(generatePoissonTrace(cfg));
    const auto d2 = traceDigest(generatePoissonTrace(cfg));
    EXPECT_EQ(d1, d2);

    TraceConfig other = cfg;
    other.seed = 22;
    EXPECT_NE(traceDigest(generatePoissonTrace(other)), d1);
}

TEST(PoissonTrace, ValidatesConfig)
{
    TraceConfig cfg;
    cfg.tenants = {{"a", SloClass::Gold, 1.0}};
    cfg.requestsPerTick = 0.0;
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
    cfg.requestsPerTick = 0.001;
    cfg.tenants.clear();
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
    cfg.tenants = {{"a", SloClass::Gold, -1.0}};
    EXPECT_THROW(generatePoissonTrace(cfg), FatalError);
}

// ---------------------------------------------------------------------
// OperatingPointPlanner
// ---------------------------------------------------------------------

class PlannerTest : public ::testing::Test
{
  protected:
    PlannerTest() : ctx_(core::SimContext::standard()) {}

    OperatingPointPlanner makePlanner() const
    {
        InferenceFootprint fp;
        fp.weightAccesses = 6352;
        fp.inputAccesses = 204;
        fp.psumAccesses = 64;
        fp.computeOps = 25408;
        return OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                     kFaultFree, fp);
    }

    core::SimContext ctx_;
};

TEST_F(PlannerTest, BasePlanMeetsTheClassTarget)
{
    auto planner = makePlanner();
    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        const auto &plan = planner.planFor("tenant", slo);
        EXPECT_GE(plan.plannedAccuracy, plan.targetAccuracy);
        EXPECT_GT(plan.energyPerInference.value(), 0.0);
        EXPECT_EQ(plan.vddStep, 0);
        EXPECT_GE(planner.ladderSize(slo), 1u);
    }
    // Looser contracts have lower absolute targets.
    EXPECT_GT(planner.targetAccuracy(SloClass::Gold),
              planner.targetAccuracy(SloClass::Silver));
    EXPECT_GT(planner.targetAccuracy(SloClass::Silver),
              planner.targetAccuracy(SloClass::Bronze));
}

TEST_F(PlannerTest, LowerSloNeverCostsMoreAtTheSameVdd)
{
    // Acceptance (c): at every supply voltage where the Gold contract
    // is servable at all, the looser contracts are servable too and
    // their planned energy per inference is no higher.
    auto planner = makePlanner();
    int compared = 0;
    for (Volt vdd : planner.config().vddGrid) {
        const auto gold = planner.planAtVdd(SloClass::Gold, vdd);
        if (!gold)
            continue;
        const auto silver = planner.planAtVdd(SloClass::Silver, vdd);
        const auto bronze = planner.planAtVdd(SloClass::Bronze, vdd);
        ASSERT_TRUE(silver.has_value());
        ASSERT_TRUE(bronze.has_value());
        EXPECT_LE(bronze->weightLevel, silver->weightLevel);
        EXPECT_LE(silver->weightLevel, gold->weightLevel);
        EXPECT_LE(bronze->energyPerInference.value(),
                  silver->energyPerInference.value());
        EXPECT_LE(silver->energyPerInference.value(),
                  gold->energyPerInference.value());
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

TEST_F(PlannerTest, ErrorFeedbackStepsUpTheLadderAndBackDown)
{
    auto planner = makePlanner();
    ASSERT_GE(planner.ladderSize(SloClass::Bronze), 2u);
    const Volt base_vdd =
        planner.planFor("t", SloClass::Bronze).vdd;

    // A noisy epoch: the EWMA seeds above the step-up threshold and
    // the tenant moves one rung toward higher Vdd.
    planner.observeErrorRate("t", 0.5);
    EXPECT_EQ(planner.tenantStep("t"), 1);
    const auto &raised = planner.planFor("t", SloClass::Bronze);
    EXPECT_EQ(raised.vddStep, 1);
    EXPECT_GT(raised.vdd.value(), base_vdd.value());

    // Quiet epochs decay the EWMA below the step-down threshold and
    // the tenant returns to the cheap base rung.
    planner.observeErrorRate("t", 0.0);
    EXPECT_EQ(planner.tenantStep("t"), 0);
    EXPECT_EQ(planner.planFor("t", SloClass::Bronze).vddStep, 0);

    // Tenants are independent.
    EXPECT_EQ(planner.tenantStep("other"), 0);

    EXPECT_THROW(planner.observeErrorRate("t", -0.1), FatalError);
}

// ---------------------------------------------------------------------
// 2-D (V_logic, V_sram) joint planning (DESIGN.md §13)
// ---------------------------------------------------------------------

class JointPlannerTest : public PlannerTest
{
  protected:
    OperatingPointPlanner
    makeJointPlanner(std::vector<Volt> v_logic_grid) const
    {
        InferenceFootprint fp;
        fp.weightAccesses = 6352;
        fp.inputAccesses = 204;
        fp.psumAccesses = 64;
        fp.computeOps = 25408;
        PlannerConfig cfg;
        cfg.vLogicGrid = std::move(v_logic_grid);
        return OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                     kFaultFree, fp, cfg);
    }
};

TEST_F(JointPlannerTest, NoUnderscaleFallbackMatchesLegacyBitwise)
{
    // planAt(slo, vdd, 0) of a 2-D planner is the legacy 1-D plan:
    // same levels, same energy, down to the last bit.
    auto legacy = makePlanner();
    auto joint = makeJointPlanner({Volt(0.32), Volt(0.34), Volt(0.36)});
    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        for (Volt vdd : joint.config().vddGrid) {
            const auto base = legacy.planAtVdd(slo, vdd);
            const auto fallback = joint.planAt(slo, vdd, Volt(0.0));
            ASSERT_EQ(base.has_value(), fallback.has_value());
            if (!base)
                continue;
            EXPECT_EQ(fallback->weightLevel, base->weightLevel);
            EXPECT_EQ(fallback->inputLevel, base->inputLevel);
            EXPECT_EQ(fallback->energyPerInference.value(),
                      base->energyPerInference.value());
            EXPECT_EQ(fallback->vLogic.value(), 0.0);
            EXPECT_EQ(fallback->replayRate, 0.0);
            EXPECT_EQ(fallback->clockStretch, 1.0);
        }
    }
}

TEST_F(JointPlannerTest, JointPlanningNeverLosesFeasibilityOrEnergy)
{
    // The no-underscale candidate is always in the joint pool, so 2-D
    // planning can only match or beat the 1-D plan at every rung.
    auto legacy = makePlanner();
    auto joint = makeJointPlanner({Volt(0.32), Volt(0.34), Volt(0.36)});
    int underscaled_rungs = 0;
    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        for (Volt vdd : joint.config().vddGrid) {
            const auto base = legacy.planAtVdd(slo, vdd);
            const auto best = joint.planAtVdd(slo, vdd);
            ASSERT_EQ(base.has_value(), best.has_value());
            if (!base)
                continue;
            EXPECT_LE(best->energyPerInference.value(),
                      base->energyPerInference.value());
            EXPECT_LE(best->vLogic.value(), vdd.value());
            EXPECT_LE(best->corruptedRate,
                      joint.config().maxCorruptedRate);
            underscaled_rungs += best->vLogic.value() > 0.0;
        }
    }
    // The grid reaches rails where underscaling pays: at least one
    // rung must actually pick a V_logic below Vdd.
    EXPECT_GT(underscaled_rungs, 0);
}

TEST_F(JointPlannerTest, CorruptionBoundGatesDeepUnderscaling)
{
    auto joint = makeJointPlanner({Volt(0.32), Volt(0.34), Volt(0.36)});
    const Volt vdd(0.46);
    // 0.30 V at 50 MHz: replay at 2x slowdown still fails, so the
    // planned corrupted-commit rate blows through the 1e-9 bound and
    // the rail is rejected outright.
    EXPECT_FALSE(joint.planAt(SloClass::Bronze, vdd, Volt(0.30))
                     .has_value());
    // 0.36 V closes timing: feasible, negligible predicted replays.
    const auto ok = joint.planAt(SloClass::Bronze, vdd, Volt(0.36));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->vLogic.value(), 0.36);
    EXPECT_LE(ok->corruptedRate, joint.config().maxCorruptedRate);
    EXPECT_GE(ok->replayRate, 0.0);
    EXPECT_GT(ok->energyPerInference.value(), 0.0);
    // A rail above Vdd is not an underscale candidate.
    EXPECT_FALSE(joint.planAt(SloClass::Bronze, Volt(0.34), Volt(0.36))
                     .has_value());
}

TEST_F(JointPlannerTest, ServedPlansCarryTheJointPoint)
{
    auto joint = makeJointPlanner({Volt(0.34), Volt(0.36)});
    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        const auto &plan = joint.planFor("tenant", slo);
        EXPECT_GE(plan.plannedAccuracy, plan.targetAccuracy);
        EXPECT_LE(plan.vLogic.value(), plan.vdd.value());
        EXPECT_LE(plan.corruptedRate, joint.config().maxCorruptedRate);
        EXPECT_DOUBLE_EQ(plan.clockStretch, 1.0); // razor, not worst-case
    }
}

TEST_F(JointPlannerTest, ValidatesJointConfig)
{
    InferenceFootprint fp;
    fp.weightAccesses = 100;
    fp.computeOps = 1000;

    // A worst-case-clocked policy has no underscaled candidates.
    PlannerConfig cfg;
    cfg.vLogicGrid = {Volt(0.34)};
    cfg.replayPolicy = timing::ReplayPolicy::worstCase();
    EXPECT_THROW(OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                       kFaultFree, fp, cfg),
                 FatalError);

    // The rail grid must be sorted ascending.
    cfg = PlannerConfig{};
    cfg.vLogicGrid = {Volt(0.36), Volt(0.34)};
    EXPECT_THROW(OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                       kFaultFree, fp, cfg),
                 FatalError);

    cfg = PlannerConfig{};
    cfg.vLogicGrid = {Volt(0.34)};
    cfg.datapathClock = Hertz(0.0);
    EXPECT_THROW(OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                       kFaultFree, fp, cfg),
                 FatalError);
}

// ---------------------------------------------------------------------
// InferenceServer acceptance
// ---------------------------------------------------------------------

class ServeTest : public ::testing::Test
{
  protected:
    ServeTest()
        : ctx_(core::SimContext::standard()),
          pool_(dnn::makeSyntheticMnist(32, 3))
    {
        // A small FC net keeps the per-batch weight staging through
        // the resilient memory cheap; untrained is fine — the server
        // only needs deterministic predictions.
        Rng rng(7);
        net_.addLayer<dnn::Dense>(784, 32, rng, "fc1");
        net_.addLayer<dnn::Relu>("fc1.relu");
        net_.addLayer<dnn::Dense>(32, 10, rng, "fc2");

        act_.macs = 25408;
        act_.weightAccesses = 6352;
        act_.inputAccesses = 204;
        act_.psumAccesses = 64;
    }

    OperatingPointPlanner makePlanner() const
    {
        InferenceFootprint fp;
        fp.weightAccesses = act_.weightAccesses;
        fp.inputAccesses = act_.inputAccesses;
        fp.psumAccesses = act_.psumAccesses;
        fp.computeOps = act_.macs;
        return OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                     kFaultFree, fp);
    }

    InferenceServer makeServer(ServerConfig cfg)
    {
        return InferenceServer(ctx_, net_, pool_, act_, makePlanner(),
                               cfg);
    }

    std::vector<InferenceRequest> makeTrace(std::size_t n,
                                            double rate) const
    {
        TraceConfig cfg;
        cfg.requestsPerTick = rate;
        cfg.numRequests = n;
        cfg.seed = 42;
        cfg.tenants = {{"acme", SloClass::Gold, 0.5},
                       {"batchco", SloClass::Bronze, 0.5}};
        cfg.samplePoolSize = pool_.size();
        return generatePoissonTrace(cfg);
    }

    static ServerConfig smallConfig()
    {
        ServerConfig cfg;
        cfg.queueCapacity = 16;
        cfg.batcher.maxBatchSize = 4;
        cfg.batcher.maxWaitTicks = 2000;
        cfg.workerSlots = 2;
        cfg.feedbackInterval = 2;
        return cfg;
    }

    core::SimContext ctx_;
    dnn::Network net_;
    dnn::Dataset pool_;
    accel::LayerActivity act_;
};

TEST_F(ServeTest, ResultsAreBitwiseIdenticalAtAnyWorkerCount)
{
    // Acceptance (a): the worker count is an execution detail; every
    // outcome, every stat and the stats fingerprint are bitwise
    // identical between a serial and an 8-thread server.
    const auto trace = makeTrace(24, 0.002);

    auto serial_cfg = smallConfig();
    serial_cfg.numThreads = 1;
    auto serial = makeServer(serial_cfg);
    const auto r1 = serial.run(trace);

    auto wide_cfg = smallConfig();
    wide_cfg.numThreads = 8;
    auto wide = makeServer(wide_cfg);
    const auto r8 = wide.run(trace);

    ASSERT_EQ(r1.outcomes.size(), trace.size());
    EXPECT_EQ(r1.outcomes, r8.outcomes);
    EXPECT_EQ(r1.stats, r8.stats);
    EXPECT_EQ(r1.stats.fingerprint(), r8.stats.fingerprint());

    // Batch-level records agree too (same plans, same timing, same
    // resilience counters).
    ASSERT_EQ(r1.batches.size(), r8.batches.size());
    for (std::size_t i = 0; i < r1.batches.size(); ++i) {
        EXPECT_EQ(r1.batches[i].startTick, r8.batches[i].startTick);
        EXPECT_EQ(r1.batches[i].completionTick,
                  r8.batches[i].completionTick);
        EXPECT_EQ(r1.batches[i].predictions, r8.batches[i].predictions);
        EXPECT_DOUBLE_EQ(r1.batches[i].modeledEnergy.value(),
                         r8.batches[i].modeledEnergy.value());
        EXPECT_EQ(r1.batches[i].resilience.retries,
                  r8.batches[i].resilience.retries);
    }
}

TEST_F(ServeTest, AccountingIsConsistent)
{
    const auto trace = makeTrace(24, 0.002);
    auto server = makeServer(smallConfig());
    const auto r = server.run(trace);
    const auto &s = r.stats;

    EXPECT_EQ(s.total.requests, trace.size());
    EXPECT_EQ(s.total.admitted + s.total.shedQueueFull +
                  s.total.shedTenantQuota,
              s.total.requests);
    EXPECT_EQ(s.total.inferences, s.total.admitted);

    // Per-tenant rows sum to the totals.
    std::uint64_t requests = 0, admitted = 0, inferences = 0;
    double energy = 0.0;
    for (const auto &[name, t] : s.perTenant) {
        requests += t.requests;
        admitted += t.admitted;
        inferences += t.inferences;
        energy += t.energyPj;
    }
    EXPECT_EQ(requests, s.total.requests);
    EXPECT_EQ(admitted, s.total.admitted);
    EXPECT_EQ(inferences, s.total.inferences);
    EXPECT_NEAR(energy, s.total.energyPj, 1e-6 * (1.0 + energy));

    // Batches cover exactly the admitted requests, in seq order.
    std::uint64_t batched = 0;
    for (std::size_t i = 0; i < r.batches.size(); ++i) {
        EXPECT_EQ(r.batches[i].seq, i);
        EXPECT_EQ(r.batches[i].predictions.size(), r.batches[i].size);
        EXPECT_GE(r.batches[i].completionTick, r.batches[i].startTick);
        EXPECT_GE(r.batches[i].startTick, r.batches[i].formedTick);
        batched += r.batches[i].size;
    }
    EXPECT_EQ(batched, s.total.admitted);
    EXPECT_GT(s.meanBatchSize, 0.0);
    EXPECT_GE(s.p95LatencyTicks, s.p50LatencyTicks);
    EXPECT_GT(s.total.energyPj, 0.0);
    EXPECT_NE(s.fingerprint(), 0u);
}

TEST_F(ServeTest, SheddingAtTheQueueBoundIsDeterministicAndTyped)
{
    // Acceptance (b): a burst against a tiny queue sheds the same
    // requests with the same typed reasons on every run. The burst is
    // crafted so both bounds trip: "acme" floods past its quota while
    // the queue still has room, then "batchco" fills the last slot and
    // everything after hits the global bound.
    std::vector<InferenceRequest> trace = {
        makeRequest(0, "acme", SloClass::Gold, 0, 0),
        makeRequest(1, "acme", SloClass::Gold, 1, 1),
        makeRequest(2, "acme", SloClass::Gold, 2, 2),    // quota
        makeRequest(3, "batchco", SloClass::Bronze, 3, 3),
        makeRequest(4, "batchco", SloClass::Bronze, 4, 4), // full
        makeRequest(5, "acme", SloClass::Gold, 5, 5),      // full
        makeRequest(6, "batchco", SloClass::Bronze, 6, 6), // full
    };
    auto cfg = smallConfig();
    cfg.queueCapacity = 3;
    cfg.perTenantQueueCap = 2;
    cfg.batcher.maxBatchSize = 8;
    cfg.batcher.maxWaitTicks = 10000;

    auto collectSheds = [&](const ServeResult &r) {
        std::vector<std::pair<std::uint64_t, ShedReason>> sheds;
        for (const auto &o : r.outcomes) {
            if (!o.admitted)
                sheds.emplace_back(o.id, o.shedReason);
        }
        return sheds;
    };

    auto s1 = makeServer(cfg);
    const auto r1 = s1.run(trace);
    auto s2 = makeServer(cfg);
    const auto r2 = s2.run(trace);

    const auto sheds1 = collectSheds(r1);
    EXPECT_EQ(sheds1, collectSheds(r2));
    EXPECT_EQ(r1.stats.fingerprint(), r2.stats.fingerprint());

    // The exact shed set is part of the contract, not a statistic.
    const std::vector<std::pair<std::uint64_t, ShedReason>> expected = {
        {2, ShedReason::TenantQuotaExceeded},
        {4, ShedReason::QueueFull},
        {5, ShedReason::QueueFull},
        {6, ShedReason::QueueFull},
    };
    EXPECT_EQ(sheds1, expected);
    EXPECT_EQ(r1.stats.total.shedQueueFull, 3u);
    EXPECT_EQ(r1.stats.total.shedTenantQuota, 1u);
    EXPECT_EQ(r1.stats.total.admitted, 3u);
    EXPECT_EQ(r1.stats.total.admitted + sheds1.size(), trace.size());
}

TEST_F(ServeTest, ServedRequestsCarryPlanAndTiming)
{
    const auto trace = makeTrace(16, 0.002);
    auto server = makeServer(smallConfig());
    const auto r = server.run(trace);
    for (const auto &o : r.outcomes) {
        if (!o.admitted)
            continue;
        EXPECT_GE(o.formedTick, o.arrivalTick);
        EXPECT_GE(o.startTick, o.formedTick);
        EXPECT_GT(o.completionTick, o.startTick);
        EXPECT_GE(o.predictedClass, 0);
        EXPECT_GT(o.energyPj, 0.0);
        ASSERT_LT(o.batchSeq, r.batches.size());
        const auto &batch = r.batches[o.batchSeq];
        EXPECT_EQ(batch.tenant, o.tenant);
        EXPECT_EQ(batch.slo, o.slo);
        // The batch ran at a plan meeting the request's contract.
        EXPECT_GE(batch.plan.plannedAccuracy,
                  batch.plan.targetAccuracy);
    }
}

TEST_F(ServeTest, ValidatesTraces)
{
    auto server = makeServer(smallConfig());

    std::vector<InferenceRequest> decreasing = {
        makeRequest(0, "a", SloClass::Gold, 100),
        makeRequest(1, "a", SloClass::Gold, 50),
    };
    EXPECT_THROW(server.run(decreasing), FatalError);

    std::vector<InferenceRequest> bad_sample = {
        makeRequest(0, "a", SloClass::Gold, 0, pool_.size()),
    };
    EXPECT_THROW(server.run(bad_sample), FatalError);

    std::vector<InferenceRequest> duplicate = {
        makeRequest(3, "a", SloClass::Gold, 0),
        makeRequest(3, "a", SloClass::Gold, 1),
    };
    EXPECT_THROW(server.run(duplicate), FatalError);
}

// ---------------------------------------------------------------------
// Observability (DESIGN.md §11)
// ---------------------------------------------------------------------

/** Look up a metric instance without creating it. */
const obs::Metric *
findMetric(const obs::MetricsRegistry &reg, const std::string &name,
           const obs::Labels &labels)
{
    const auto it = reg.metrics().find(obs::MetricKey{name, labels});
    return it == reg.metrics().end() ? nullptr : &it->second;
}

TEST_F(ServeTest, ObservabilityReconcilesWithServerStats)
{
    const auto trace = makeTrace(24, 0.002);
    auto server = makeServer(smallConfig());
    obs::Observability o;
    const obs::Labels base{{"mix", "test"}};
    server.attachObservability(&o, 0, base);
    const auto r = server.run(trace);
    const auto &s = r.stats;
    const obs::MetricsRegistry &reg = o.metrics;

    // Admission counters match the aggregate snapshot exactly.
    const auto *requests = findMetric(reg, "serve.requests", base);
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->count, s.total.requests);
    const auto *admitted = findMetric(reg, "serve.admitted", base);
    ASSERT_NE(admitted, nullptr);
    EXPECT_EQ(admitted->count, s.total.admitted);

    // Resilience counters reconcile with the per-tenant totals.
    const auto *retries = findMetric(reg, "resil.retry.count", base);
    ASSERT_NE(retries, nullptr);
    EXPECT_EQ(retries->count, s.total.retries);
    const auto *escalations =
        findMetric(reg, "resil.escalation.count", base);
    ASSERT_NE(escalations, nullptr);
    EXPECT_EQ(escalations->count, s.total.escalations);
    const auto *uncorrected =
        findMetric(reg, "resil.uncorrected.count", base);
    ASSERT_NE(uncorrected, nullptr);
    EXPECT_EQ(uncorrected->count, s.total.uncorrected);

    // Every request passed through the queue-depth histogram; every
    // admitted one landed in exactly one per-SLO latency histogram,
    // and every batch in the occupancy histogram.
    const auto *depth = findMetric(reg, "serve.queue.depth", base);
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->count, s.total.requests);
    std::uint64_t latency_count = 0;
    double slo_energy_j = 0.0;
    for (int c = 0; c < kNumSloClasses; ++c) {
        obs::Labels slo_labels = base;
        slo_labels["slo"] = toString(static_cast<SloClass>(c));
        if (const auto *h =
                findMetric(reg, "serve.latency.ticks", slo_labels))
            latency_count += h->count;
        if (const auto *e = findMetric(reg, "serve.energy_j", slo_labels))
            slo_energy_j += e->sum;
    }
    EXPECT_EQ(latency_count, s.total.admitted);
    const auto *batch_size = findMetric(reg, "serve.batch.size", base);
    ASSERT_NE(batch_size, nullptr);
    EXPECT_EQ(batch_size->count, s.total.batches);

    // Modeled energy: the per-SLO sums (joules) add up to the stats
    // total (picojoules).
    EXPECT_NEAR(slo_energy_j * 1e12, s.total.energyPj,
                1e-6 * (1.0 + s.total.energyPj));

    // Run-level gauges mirror the printed percentiles.
    const auto *p95 = findMetric(reg, "serve.latency.p95_ticks", base);
    ASSERT_NE(p95, nullptr);
    EXPECT_DOUBLE_EQ(p95->sum, s.p95LatencyTicks);

    // The trace carries one execution span per batch.
    std::uint64_t batch_spans = 0;
    for (const auto &ev : o.trace.events())
        if (ev.phase == 'X' && ev.numArgs.count("batch") > 0)
            ++batch_spans;
    EXPECT_EQ(batch_spans, s.total.batches);
}

TEST_F(ServeTest, ObservabilityIsThreadCountInvariant)
{
    // The §11 acceptance property at unit scale: metrics fingerprint
    // and the exported Chrome trace are bitwise identical between a
    // serial and an 8-thread server (the serve_obs_determinism ctest
    // checks the same property on the full bench sweep).
    const auto trace = makeTrace(24, 0.002);

    const auto capture = [&](int threads) {
        auto cfg = smallConfig();
        cfg.numThreads = threads;
        auto server = makeServer(cfg);
        obs::Observability o;
        server.attachObservability(&o, 0, {{"threads", "x"}});
        server.run(trace);
        std::ostringstream chrome, text;
        o.trace.writeChromeTrace(chrome);
        o.metrics.writeText(text);
        return std::make_tuple(o.metrics.fingerprint(), chrome.str(),
                               text.str());
    };

    const auto serial = capture(1);
    const auto wide = capture(8);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(wide));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(wide));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(wide));
}

} // namespace
} // namespace vboost::serve
