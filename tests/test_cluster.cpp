/**
 * @file
 * Tests for the sharded serving cluster (DESIGN.md §14): consistent-
 * hash ring balance/monotonicity/construction determinism, the node
 * health monitor's drain/rejoin state machine, cluster configuration
 * validation, and the §7 acceptance property of the cluster tier —
 * bitwise-identical routes, outcomes and fingerprints at any thread
 * count, including a run with an injected node loss.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/failover.hpp"
#include "cluster/hash_ring.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "serve/planner.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace vboost::cluster {
namespace {

// ---------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------

std::vector<std::string>
testKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("tenant-" + std::to_string(i));
    return keys;
}

TEST(HashRing, BalanceStaysWithinBoundedSkew)
{
    // With enough virtual nodes, no node owns more than a small
    // multiple of the fair share of a large key population.
    HashRingConfig cfg;
    cfg.virtualNodes = 64;
    HashRing ring(cfg);
    const int nodes = 4;
    for (int i = 0; i < nodes; ++i)
        ring.addNode("node-" + std::to_string(i));

    std::map<std::string, int> owned;
    const auto keys = testKeys(2000);
    for (const auto &key : keys)
        ++owned[ring.nodeFor(key)];

    const double fair = static_cast<double>(keys.size()) / nodes;
    for (const auto &[node, count] : owned) {
        EXPECT_GT(count, 0) << node << " owns nothing";
        EXPECT_LT(count, 2.0 * fair)
            << node << " owns " << count << " of " << keys.size();
    }
}

TEST(HashRing, RemovalOnlyRemapsTheRemovedNodesKeys)
{
    // Consistent-hashing monotonicity: removing a node must not move
    // any key whose owner survives.
    HashRing ring;
    for (int i = 0; i < 5; ++i)
        ring.addNode("node-" + std::to_string(i));

    const auto keys = testKeys(500);
    std::map<std::string, std::string> before;
    for (const auto &key : keys)
        before[key] = ring.nodeFor(key);

    ring.removeNode("node-2");
    for (const auto &key : keys) {
        const std::string &now = ring.nodeFor(key);
        EXPECT_NE(now, "node-2");
        if (before[key] != "node-2") {
            EXPECT_EQ(now, before[key]) << key << " moved needlessly";
        }
    }
}

TEST(HashRing, AdditionOnlyStealsKeysForTheNewNode)
{
    HashRing ring;
    for (int i = 0; i < 4; ++i)
        ring.addNode("node-" + std::to_string(i));

    const auto keys = testKeys(500);
    std::map<std::string, std::string> before;
    for (const auto &key : keys)
        before[key] = ring.nodeFor(key);

    ring.addNode("node-4");
    int stolen = 0;
    for (const auto &key : keys) {
        const std::string &now = ring.nodeFor(key);
        if (now != before[key]) {
            EXPECT_EQ(now, "node-4") << key << " moved to a veteran";
            ++stolen;
        }
    }
    EXPECT_GT(stolen, 0) << "the new node took no keys";
}

TEST(HashRing, ConstructionIsInsertionOrderIndependent)
{
    std::vector<std::string> names = {"alpha", "beta", "gamma", "delta"};
    HashRing forward;
    for (const auto &n : names)
        forward.addNode(n);
    HashRing backward;
    for (auto it = names.rbegin(); it != names.rend(); ++it)
        backward.addNode(*it);

    EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
    for (const auto &key : testKeys(200)) {
        EXPECT_EQ(forward.nodeFor(key), backward.nodeFor(key));
        EXPECT_EQ(forward.replicasFor(key, 3), backward.replicasFor(key, 3));
    }
}

TEST(HashRing, ReplicaGroupsAreDistinctAndBounded)
{
    HashRing ring;
    for (int i = 0; i < 3; ++i)
        ring.addNode("node-" + std::to_string(i));
    for (const auto &key : testKeys(50)) {
        const auto group = ring.replicasFor(key, 2);
        ASSERT_EQ(group.size(), 2u);
        EXPECT_NE(group[0], group[1]);
        EXPECT_EQ(group[0], ring.nodeFor(key));
        // Asking for more replicas than members clamps to the ring.
        EXPECT_EQ(ring.replicasFor(key, 10).size(), 3u);
    }
}

TEST(HashRing, ValidatesMembershipOperations)
{
    HashRing ring;
    EXPECT_THROW(ring.nodeFor("k"), FatalError);
    ring.addNode("a");
    EXPECT_THROW(ring.addNode("a"), FatalError);
    EXPECT_THROW(ring.addNode(""), FatalError);
    EXPECT_THROW(ring.removeNode("b"), FatalError);
    EXPECT_TRUE(ring.hasNode("a"));
    HashRingConfig bad;
    bad.virtualNodes = 0;
    EXPECT_THROW(HashRing{bad}, FatalError);
}

// ---------------------------------------------------------------------
// NodeHealthMonitor
// ---------------------------------------------------------------------

TEST(NodeHealthMonitor, DegradedNodeWalksTheFullLifecycle)
{
    FailoverConfig cfg;
    cfg.drainThreshold = 0.35;
    cfg.drainEpochs = 1;
    cfg.downEpochs = 1;
    cfg.rejoinEpochs = 1;
    NodeHealthMonitor mon(2, cfg);

    // A chronically noisy node drains; its healthy peer stays Active.
    mon.observeEpoch(0, 0, 0.9, true);
    mon.observeEpoch(0, 1, 0.0, true);
    EXPECT_EQ(mon.state(0), NodeState::Draining);
    EXPECT_FALSE(mon.accepting(0));
    EXPECT_EQ(mon.state(1), NodeState::Active);

    // Drain elapses -> Down; cooldown elapses -> Rejoining (accepting
    // again, on probation); a clean probation epoch -> Active.
    mon.observeEpoch(1, 0, 0.0, false);
    EXPECT_EQ(mon.state(0), NodeState::Down);
    mon.observeEpoch(2, 0, 0.0, false);
    EXPECT_EQ(mon.state(0), NodeState::Rejoining);
    EXPECT_TRUE(mon.accepting(0));
    mon.observeEpoch(3, 0, 0.0, true);
    EXPECT_EQ(mon.state(0), NodeState::Active);

    // The log recorded every hop, in order.
    std::vector<NodeState> path;
    for (const NodeTransition &tr : mon.transitions()) {
        EXPECT_EQ(tr.node, 0);
        path.push_back(tr.to);
    }
    EXPECT_EQ(path,
              (std::vector<NodeState>{
                  NodeState::Draining, NodeState::Down,
                  NodeState::Rejoining, NodeState::Active}));
}

TEST(NodeHealthMonitor, BadProbationEpochGoesStraightBackDown)
{
    FailoverConfig cfg;
    cfg.drainEpochs = 1;
    cfg.downEpochs = 1;
    cfg.rejoinEpochs = 2;
    NodeHealthMonitor mon(1, cfg);
    mon.injectLoss(0, 0);
    EXPECT_EQ(mon.state(0), NodeState::Down);
    mon.observeEpoch(0, 0, 0.0, false);
    EXPECT_EQ(mon.state(0), NodeState::Rejoining);
    // EWMA was reset on the transition: the bad epoch seeds it fresh
    // above the threshold and probation fails immediately.
    mon.observeEpoch(1, 0, 0.9, true);
    EXPECT_EQ(mon.state(0), NodeState::Down);
}

TEST(NodeHealthMonitor, InjectLossForcesDownFromAnyState)
{
    NodeHealthMonitor mon(2);
    EXPECT_EQ(mon.state(1), NodeState::Active);
    mon.injectLoss(3, 1);
    EXPECT_EQ(mon.state(1), NodeState::Down);
    ASSERT_EQ(mon.transitions().size(), 1u);
    EXPECT_EQ(mon.transitions()[0].cause, FailoverCause::InjectedLoss);
    EXPECT_EQ(mon.transitions()[0].epoch, 3u);
    // Losing an already-lost node is a no-op, not a second transition.
    mon.injectLoss(4, 1);
    EXPECT_EQ(mon.transitions().size(), 1u);
}

TEST(NodeHealthMonitor, ValidatesConfigAndArguments)
{
    FailoverConfig bad;
    bad.ewmaAlpha = 0.0;
    EXPECT_THROW(NodeHealthMonitor(1, bad), FatalError);
    bad = FailoverConfig{};
    bad.drainThreshold = -0.1;
    EXPECT_THROW(NodeHealthMonitor(1, bad), FatalError);
    bad = FailoverConfig{};
    bad.downEpochs = 0;
    EXPECT_THROW(NodeHealthMonitor(1, bad), FatalError);

    NodeHealthMonitor mon(1);
    EXPECT_THROW(mon.observeEpoch(0, 5, 0.0, true), FatalError);
    EXPECT_THROW(mon.observeEpoch(0, 0, -0.1, true), FatalError);
}

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

TEST(ClusterConfigValidate, RejectsInconsistentKnobs)
{
    ClusterConfig cfg;
    cfg.shards = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ClusterConfig{};
    cfg.replicas = cfg.shards + 1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ClusterConfig{};
    cfg.epochRequests = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ClusterConfig{};
    cfg.lossEvents = {{0, cfg.shards}};
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ClusterConfig{};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ServerConfigValidate, RejectsDegenerateServerKnobs)
{
    serve::ServerConfig cfg;
    cfg.queueCapacity = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = serve::ServerConfig{};
    cfg.workerSlots = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = serve::ServerConfig{};
    cfg.feedbackInterval = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = serve::ServerConfig{};
    cfg.ticksPerSecond = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = serve::ServerConfig{};
    EXPECT_NO_THROW(cfg.validate());
}

// ---------------------------------------------------------------------
// ServingCluster acceptance
// ---------------------------------------------------------------------

constexpr double kFaultFree = 0.9;

double
stubAccuracy(Volt vddv)
{
    const double t =
        std::clamp((vddv.value() - 0.30) / 0.28, 0.0, 1.0);
    return kFaultFree * t;
}

class ClusterTest : public ::testing::Test
{
  protected:
    ClusterTest()
        : ctx_(core::SimContext::standard()),
          pool_(dnn::makeSyntheticMnist(32, 3))
    {
        Rng rng(7);
        net_.addLayer<dnn::Dense>(784, 32, rng, "fc1");
        net_.addLayer<dnn::Relu>("fc1.relu");
        net_.addLayer<dnn::Dense>(32, 10, rng, "fc2");

        act_.macs = 25408;
        act_.weightAccesses = 6352;
        act_.inputAccesses = 204;
        act_.psumAccesses = 64;
    }

    serve::OperatingPointPlanner makePlanner() const
    {
        serve::InferenceFootprint fp;
        fp.weightAccesses = act_.weightAccesses;
        fp.inputAccesses = act_.inputAccesses;
        fp.psumAccesses = act_.psumAccesses;
        fp.computeOps = act_.macs;
        return serve::OperatingPointPlanner(ctx_, 16, &stubAccuracy,
                                            kFaultFree, fp);
    }

    ClusterConfig smallConfig(int threads) const
    {
        ClusterConfig cfg;
        cfg.shards = 3;
        cfg.replicas = 2;
        cfg.epochRequests = 12;
        cfg.shardQueueCapacity = 6;
        cfg.node.queueCapacity = 16;
        cfg.node.batcher.maxBatchSize = 4;
        cfg.node.workerSlots = 2;
        cfg.node.feedbackInterval = 2;
        cfg.node.numThreads = threads;
        // Crash node 0 at the second epoch: the determinism contract
        // must hold through failover, not just in steady state.
        cfg.lossEvents = {{1, 0}};
        return cfg;
    }

    ServingCluster makeCluster(const ClusterConfig &cfg)
    {
        return ServingCluster(ctx_, net_, pool_, act_, makePlanner(),
                              cfg);
    }

    std::vector<serve::InferenceRequest> makeTrace(std::size_t n) const
    {
        serve::TraceConfig cfg;
        cfg.requestsPerTick = 0.004;
        cfg.numRequests = n;
        cfg.seed = 42;
        cfg.tenants = serve::scaledTenantMix(6).tenants;
        cfg.samplePoolSize = pool_.size();
        return serve::generatePoissonTrace(cfg);
    }

    core::SimContext ctx_;
    dnn::Network net_;
    dnn::Dataset pool_;
    accel::LayerActivity act_;
};

TEST_F(ClusterTest, OutcomesAreBitwiseIdenticalAtAnyThreadCount)
{
    // The cluster-tier §7 acceptance: a node-loss/failover run is
    // bitwise identical between serial and 8-thread execution — every
    // route, every outcome, the failover log and the fingerprint.
    const auto trace = makeTrace(48);
    auto serial = makeCluster(smallConfig(1));
    auto wide = makeCluster(smallConfig(8));
    const auto r1 = serial.run(trace);
    const auto r8 = wide.run(trace);

    EXPECT_EQ(r1.routes, r8.routes);
    EXPECT_EQ(r1.outcomes, r8.outcomes);
    EXPECT_EQ(r1.transitions, r8.transitions);
    EXPECT_EQ(r1.stats, r8.stats);
    EXPECT_EQ(r1.stats.fingerprint(), r8.stats.fingerprint());
    // The loss event actually produced transitions to gate on.
    EXPECT_GE(r1.stats.transitions, 1u);
}

TEST_F(ClusterTest, RoutingHonorsHealthCapacityAndReplicaGroups)
{
    const auto trace = makeTrace(48);
    auto cl = makeCluster(smallConfig(4));
    const auto r = cl.run(trace);

    ASSERT_EQ(r.routes.size(), trace.size());
    ASSERT_EQ(r.outcomes.size(), trace.size());
    std::map<std::pair<std::uint64_t, int>, std::size_t> epoch_load;
    for (std::size_t i = 0; i < r.routes.size(); ++i) {
        const RouteRecord &rec = r.routes[i];
        EXPECT_EQ(rec.id, trace[i].id);
        if (rec.status == RouteStatus::ShedCluster) {
            EXPECT_EQ(rec.node, -1);
            EXPECT_FALSE(r.outcomes[i].admitted);
            EXPECT_EQ(r.outcomes[i].shedReason,
                      serve::ShedReason::QueueFull);
            continue;
        }
        ASSERT_GE(rec.node, 0);
        ASSERT_LT(rec.node, cl.config().shards);
        ++epoch_load[{rec.epoch, rec.node}];
        if (rec.status == RouteStatus::Primary)
            EXPECT_EQ(rec.node, rec.primary);
        else
            EXPECT_NE(rec.node, rec.primary);
    }
    // No (epoch, node) cell ever exceeded the stretched admission
    // bound: at worst ceil(cap * shards / accepting) with one node out.
    const std::size_t cap = cl.config().shardQueueCapacity;
    const auto stretched =
        (cap * 3 + 1) / 2; // 3 shards, >= 2 accepting
    for (const auto &[cell, load] : epoch_load)
        EXPECT_LE(load, stretched);

    // Accounting is consistent with the route records.
    EXPECT_EQ(r.stats.requests, trace.size());
    EXPECT_EQ(r.stats.routedPrimary + r.stats.routedSpill +
                  r.stats.routedFailover + r.stats.shedCluster,
              trace.size());
}

TEST_F(ClusterTest, LostNodeStopsServingUntilItRejoins)
{
    const auto trace = makeTrace(48);
    auto cl = makeCluster(smallConfig(4));
    const auto r = cl.run(trace);

    // Epoch 1 injected the loss: nothing routes to node 0 during the
    // outage epochs, and traffic for its tenants fails over.
    bool node0_served_during_outage = false;
    std::uint64_t failed_over = 0;
    for (const RouteRecord &rec : r.routes) {
        if (rec.epoch == 1 && rec.node == 0)
            node0_served_during_outage = true;
        if (rec.status == RouteStatus::FailedOver)
            ++failed_over;
    }
    EXPECT_FALSE(node0_served_during_outage);
    EXPECT_GT(failed_over, 0u);

    // The injected loss is in the log with its cause.
    const auto &log = r.transitions;
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log[0].node, 0);
    EXPECT_EQ(log[0].to, NodeState::Down);
    EXPECT_EQ(log[0].cause, FailoverCause::InjectedLoss);
}

TEST_F(ClusterTest, ValidatesTracePreconditions)
{
    auto cl = makeCluster(smallConfig(1));
    auto trace = makeTrace(8);
    std::swap(trace[0], trace[7]); // arrival ticks out of order
    EXPECT_THROW(cl.run(trace), FatalError);

    trace = makeTrace(8);
    trace[3].id = trace[2].id; // duplicate id
    EXPECT_THROW(cl.run(trace), FatalError);
}

} // namespace
} // namespace vboost::cluster
