/**
 * @file
 * Tests for the closed-loop resilient SRAM access pipeline: policy
 * ladder arithmetic, the EWMA bank monitor, the spare-row table, the
 * ResilientMemory read path (clean round trips, retry recovery,
 * quarantine and graceful spare exhaustion) and the determinism
 * contract — closed-loop Monte-Carlo fault injection is bitwise
 * identical at any thread count, down to the spare-row table digests.
 */

#include <gtest/gtest.h>

#include "testenv.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/experiment.hpp"
#include "obs/observability.hpp"
#include "resilience/monitor.hpp"
#include "resilience/policy.hpp"
#include "resilience/resilient_memory.hpp"
#include "resilience/spare_table.hpp"
#include "sram/banked_memory.hpp"

namespace vboost::resilience {
namespace {

TEST(ResiliencePolicy, OpenLoopNeverEscalates)
{
    const auto p = ResiliencePolicy::openLoop(2);
    EXPECT_EQ(p.mode, AccessPolicyMode::OpenLoop);
    EXPECT_EQ(p.retryBudget, 0);
    EXPECT_EQ(p.startLevel, 2);
    for (int attempt = 0; attempt < 4; ++attempt)
        EXPECT_EQ(p.attemptLevel(2, attempt, 4), 2);
}

TEST(ResiliencePolicy, StepUpClimbsOneLevelPerAttempt)
{
    auto p = ResiliencePolicy::closedLoop(3, EscalationPolicy::StepUp);
    EXPECT_EQ(p.attemptLevel(0, 0, 4), 0);
    EXPECT_EQ(p.attemptLevel(0, 1, 4), 1);
    EXPECT_EQ(p.attemptLevel(0, 3, 4), 3);
    EXPECT_EQ(p.attemptLevel(2, 3, 4), 4); // clamped at the top
    EXPECT_EQ(p.attemptLevel(4, 1, 4), 4);
}

TEST(ResiliencePolicy, MaxOutJumpsToTopOnFirstRetry)
{
    auto p = ResiliencePolicy::closedLoop(2, EscalationPolicy::MaxOut);
    EXPECT_EQ(p.attemptLevel(0, 0, 4), 0);
    EXPECT_EQ(p.attemptLevel(0, 1, 4), 4);
    EXPECT_EQ(p.attemptLevel(1, 2, 4), 4);
}

TEST(ResiliencePolicy, HoldRetriesAtStandingLevel)
{
    auto p = ResiliencePolicy::closedLoop(2, EscalationPolicy::Hold);
    EXPECT_EQ(p.attemptLevel(1, 0, 4), 1);
    EXPECT_EQ(p.attemptLevel(1, 2, 4), 1);
}

TEST(ResiliencePolicy, ValidateRejectsBadKnobs)
{
    auto p = ResiliencePolicy::closedLoop();
    p.retryBudget = ResiliencePolicy::kMaxAttempts;
    EXPECT_THROW(p.validate(4), FatalError);
    p = ResiliencePolicy::closedLoop();
    p.startLevel = 5;
    EXPECT_THROW(p.validate(4), FatalError);
    p = ResiliencePolicy::closedLoop();
    p.ewmaAlpha = 0.0;
    EXPECT_THROW(p.validate(4), FatalError);
    p = ResiliencePolicy::closedLoop();
    p.spareRows = -1;
    EXPECT_THROW(p.validate(4), FatalError);
    EXPECT_NO_THROW(ResiliencePolicy::closedLoop().validate(4));
}

TEST(ResiliencePolicy, NamesAreStable)
{
    EXPECT_EQ(ResiliencePolicy::openLoop(1).name(), "open/L1");
    EXPECT_EQ(ResiliencePolicy::closedLoop(3, EscalationPolicy::StepUp, 8)
                  .name(),
              "closed/r3/stepup/s8");
}

TEST(BankErrorMonitor, ErrorsRaiseAndResetEwma)
{
    BankErrorMonitor mon(2, 0.5, 0.6);
    EXPECT_FALSE(mon.recordAccess(0, true)); // 0.5
    EXPECT_TRUE(mon.recordAccess(0, true));  // 0.75 > 0.6 -> raise
    EXPECT_DOUBLE_EQ(mon.rate(0), 0.0);      // reset after the raise
    EXPECT_EQ(mon.raises(), 1u);
    EXPECT_EQ(mon.accesses(), 2u);
    // The other bank is untouched.
    EXPECT_DOUBLE_EQ(mon.rate(1), 0.0);
}

TEST(BankErrorMonitor, CleanAccessesDecayTheRate)
{
    BankErrorMonitor mon(1, 0.5, 0.9);
    mon.recordAccess(0, true);
    const double after_error = mon.rate(0);
    mon.recordAccess(0, false);
    EXPECT_LT(mon.rate(0), after_error);
}

TEST(BankErrorMonitor, RejectsBadConfig)
{
    EXPECT_THROW(BankErrorMonitor(0, 0.5, 0.5), FatalError);
    EXPECT_THROW(BankErrorMonitor(1, 0.0, 0.5), FatalError);
    EXPECT_THROW(BankErrorMonitor(1, 0.5, 0.0), FatalError);
}

TEST(SpareRowTable, RemapFindAndCapacity)
{
    SpareRowTable t(2);
    EXPECT_EQ(t.find(7), -1);
    EXPECT_EQ(t.remap(7, 0xabcull, 0x12), 0);
    EXPECT_EQ(t.remap(9, 0xdefull, 0x34), 1);
    EXPECT_TRUE(t.full());
    EXPECT_EQ(t.remap(11, 0ull, 0), -1);  // full
    EXPECT_EQ(t.remap(7, 1ull, 1), -1);   // already mapped
    EXPECT_EQ(t.find(7), 0);
    EXPECT_EQ(t.row(0).data, 0xabcull);
    EXPECT_EQ(t.find(9), 1);
}

TEST(SpareRowTable, DigestReflectsContentAndOrder)
{
    SpareRowTable a(4), b(4), c(4);
    a.remap(1, 10, 1);
    a.remap(2, 20, 2);
    b.remap(1, 10, 1);
    b.remap(2, 20, 2);
    c.remap(2, 20, 2);
    c.remap(1, 10, 1);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest()); // quarantine order matters
    EXPECT_NE(a.digest(), SpareRowTable(4).digest());
}

/** ResilientMemory over a small 2-bank memory. */
class ResilientMemoryTest : public ::testing::Test
{
  protected:
    ResilientMemoryTest()
        : ctx_(core::SimContext::standard()),
          failure_(ctx_.failure),
          mem_("test_mem", 2, ctx_.design, ctx_.tech, failure_)
    {
    }

    ResilientMemory
    wrap(const ResiliencePolicy &policy)
    {
        ResilientMemory rmem(mem_, ctx_, policy);
        rmem.reseed(Rng(99));
        return rmem;
    }

    core::SimContext ctx_;
    sram::FailureRateModel failure_;
    sram::BankedMemory mem_;
};

TEST_F(ResilientMemoryTest, CleanRoundTripAtSafeVoltage)
{
    auto rmem = wrap(ResiliencePolicy::closedLoop());
    const sram::VulnerabilityMap map(5, 0);
    Rng rng(1);
    for (std::uint32_t addr = 0; addr < 64; ++addr) {
        const std::uint64_t data = rng.next();
        rmem.writeWord(addr, data, 0.8_V);
        const auto out = rmem.readWord(addr, 0.8_V, map);
        EXPECT_EQ(out.data, data) << addr;
        EXPECT_EQ(out.outcome, sram::EccOutcome::Clean);
        EXPECT_EQ(out.attempts, 1);
        EXPECT_FALSE(out.fromSpare);
    }
    const auto s = rmem.snapshot();
    EXPECT_EQ(s.reads, 64u);
    EXPECT_EQ(s.cleanReads, 64u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.quarantines, 0u);
    EXPECT_GT(rmem.totalAccessEnergy().value(), 0.0);
}

TEST_F(ResilientMemoryTest, Words16RoundTrip)
{
    auto rmem = wrap(ResiliencePolicy::closedLoop());
    const sram::VulnerabilityMap map(5, 0);
    const std::vector<std::int16_t> values = {-3, 7, 12345, -32768,
                                              32767, 0, 1, -1, 9};
    rmem.writeWords16(3, values, 0.8_V); // unaligned start on purpose
    const auto got = rmem.readWords16(
        3, static_cast<std::uint32_t>(values.size()), 0.8_V, map);
    EXPECT_EQ(got, values);
}

TEST_F(ResilientMemoryTest, OpenLoopStartLevelProgramsBanks)
{
    auto rmem = wrap(ResiliencePolicy::openLoop(2));
    EXPECT_EQ(rmem.standingLevel(0), 2);
    EXPECT_EQ(rmem.standingLevel(1), 2);
    EXPECT_EQ(mem_.boostLevel(0), 2);
}

TEST_F(ResilientMemoryTest, ClosedLoopRecoversWhatOpenLoopDrops)
{
    // At 0.44 V (BER ~1.4e-2) double-bit codeword errors are common
    // enough that the open loop leaks uncorrectable reads, while the
    // closed loop clears them by retrying at escalated levels.
    const Volt vdd{0.44};
    const sram::VulnerabilityMap map(17, 0);
    Rng data_rng(3);

    auto open = wrap(ResiliencePolicy::openLoop(0));
    std::uint64_t open_uncorrected = 0;
    for (std::uint32_t addr = 0; addr < 1024; ++addr) {
        open.writeWord(addr, data_rng.next(), vdd);
        if (open.readWord(addr, vdd, map).outcome ==
            sram::EccOutcome::DetectedUncorrectable)
            ++open_uncorrected;
    }
    EXPECT_GT(open_uncorrected, 0u);
    EXPECT_EQ(open.snapshot().retries, 0u);

    mem_.resetCounters();
    auto closed = wrap(
        ResiliencePolicy::closedLoop(3, EscalationPolicy::StepUp, 8));
    Rng data_rng2(3);
    std::uint64_t closed_uncorrected = 0;
    for (std::uint32_t addr = 0; addr < 1024; ++addr) {
        closed.writeWord(addr, data_rng2.next(), vdd);
        if (closed.readWord(addr, vdd, map).outcome ==
            sram::EccOutcome::DetectedUncorrectable)
            ++closed_uncorrected;
    }
    const auto s = closed.snapshot();
    EXPECT_LT(closed_uncorrected, open_uncorrected);
    EXPECT_GT(s.retries, 0u);
    EXPECT_GT(s.retryEnergy.value(), 0.0);
    EXPECT_GT(s.retryLatency.value(), 0.0);
}

TEST_F(ResilientMemoryTest, QuarantineMovesRowsToSpares)
{
    // Brutal conditions (0.40 V, BER ~0.28) with instant quarantine:
    // rows fail repeatedly, get remapped, and the table fills up to
    // graceful spare exhaustion.
    auto policy =
        ResiliencePolicy::closedLoop(0, EscalationPolicy::Hold, 2);
    policy.quarantineThreshold = 1;
    auto rmem = wrap(policy);
    const Volt vdd{0.40};
    const sram::VulnerabilityMap map(23, 0);
    Rng data_rng(4);
    for (std::uint32_t addr = 0; addr < 128; ++addr)
        rmem.writeWord(addr, data_rng.next(), vdd);
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint32_t addr = 0; addr < 128; ++addr)
            rmem.readWord(addr, vdd, map);

    const auto s = rmem.snapshot();
    EXPECT_EQ(s.quarantines, 2u);
    EXPECT_TRUE(rmem.spares().full());
    EXPECT_GT(s.spareReads, 0u);
    EXPECT_GT(s.spareExhausted, 0u);
    EXPECT_GT(s.spareEnergy.value(), 0.0);
    EXPECT_NE(s.spareTableDigest, SpareRowTable(2).digest());

    // A spared row reads through the spare path.
    const std::uint32_t spared = rmem.spares().row(0).addr;
    EXPECT_TRUE(rmem.readWord(spared, vdd, map).fromSpare);

    // A write to a spared row keeps the spare image coherent.
    rmem.writeWord(spared, 0xfeedull, vdd);
    EXPECT_EQ(rmem.spares().row(0).data, 0xfeedull);
}

TEST_F(ResilientMemoryTest, ClusteredMapsDriveSecdedDoubleBitFailures)
{
    // MoRS-lite same-row clustering vs SECDED (DESIGN.md §13): at an
    // aggregate BER low enough that i.i.d. faults almost never land
    // two bits in one 72-bit codeword, a defective wordline row
    // concentrates its fault budget into whole codewords and defeats
    // single-error correction. Same aggregate F(v) on both sides —
    // only the spatial structure differs.
    const Volt vdd = failure_.voltageForRate(1e-3);
    const auto policy =
        ResiliencePolicy::closedLoop(0, EscalationPolicy::Hold, 0);
    const sram::ClusterParams cluster; // 576-cell codeword-aligned rows

    std::uint64_t iid_uncorrected = 0, clustered_uncorrected = 0;
    for (std::uint64_t m = 0; m < 3; ++m) {
        for (int clustered = 0; clustered < 2; ++clustered) {
            mem_.resetCounters();
            auto rmem = wrap(policy);
            const sram::VulnerabilityMap map =
                clustered ? sram::VulnerabilityMap(
                                5, m, sram::MapModel::Clustered, cluster)
                          : sram::VulnerabilityMap(5, m);
            Rng data_rng(3);
            for (std::uint32_t addr = 0; addr < 2048; ++addr)
                rmem.writeWord(addr, data_rng.next(), vdd);
            for (std::uint32_t addr = 0; addr < 2048; ++addr)
                rmem.readWord(addr, vdd, map);
            (clustered ? clustered_uncorrected : iid_uncorrected) +=
                rmem.snapshot().uncorrected;
        }
    }
    // Clustering turns a correctable trickle into double-bit escapes.
    EXPECT_GT(clustered_uncorrected, 2 * iid_uncorrected);
    EXPECT_GT(clustered_uncorrected, 0u);
}

TEST_F(ResilientMemoryTest, ClusteredSameRowMapsExhaustSpares)
{
    // Spare-row quarantine under same-row clustering: defective rows
    // fail chronically, quarantine fills the 2-entry spare table, and
    // further chronic rows degrade gracefully (spareExhausted counts
    // them). The i.i.d. control at the same aggregate BER stays below
    // the table capacity and never overflows it.
    const Volt vdd = failure_.voltageForRate(1e-3);
    auto policy =
        ResiliencePolicy::closedLoop(0, EscalationPolicy::Hold, 2);
    policy.quarantineThreshold = 2;
    const sram::ClusterParams cluster;
    const sram::VulnerabilityMap clustered(
        29, 0, sram::MapModel::Clustered, cluster);
    const sram::VulnerabilityMap iid(29, 0);

    auto run = [&](const sram::VulnerabilityMap &map) {
        mem_.resetCounters();
        auto rmem = wrap(policy);
        Rng data_rng(8);
        for (std::uint32_t addr = 0; addr < 1024; ++addr)
            rmem.writeWord(addr, data_rng.next(), vdd);
        for (int pass = 0; pass < 4; ++pass)
            for (std::uint32_t addr = 0; addr < 1024; ++addr)
                rmem.readWord(addr, vdd, map);
        return rmem.snapshot();
    };

    const auto iid_s = run(iid);
    const auto clu_s = run(clustered);
    EXPECT_LT(iid_s.quarantines, clu_s.quarantines);
    EXPECT_EQ(iid_s.spareExhausted, 0u);
    EXPECT_EQ(clu_s.quarantines, 2u); // table full
    EXPECT_GT(clu_s.spareReads, 0u);
    EXPECT_GT(clu_s.spareExhausted, 0u);
    EXPECT_GT(clu_s.spareEnergy.value(), 0.0);
}

TEST_F(ResilientMemoryTest, ChronicErrorsRaiseStandingLevel)
{
    auto policy =
        ResiliencePolicy::closedLoop(1, EscalationPolicy::StepUp, 0);
    auto rmem = wrap(policy);
    const Volt vdd{0.40}; // per-access error rate near 1
    const sram::VulnerabilityMap map(31, 0);
    Rng data_rng(6);
    for (std::uint32_t addr = 0; addr < 256; ++addr)
        rmem.writeWord(addr, data_rng.next(), vdd);
    for (std::uint32_t addr = 0; addr < 256; ++addr)
        rmem.readWord(addr, vdd, map);
    const auto s = rmem.snapshot();
    EXPECT_GT(s.standingRaises, 0u);
    EXPECT_GT(rmem.standingLevel(0) + rmem.standingLevel(1), 0);
    // The memory's banks mirror the standing levels.
    EXPECT_EQ(mem_.boostLevel(0), rmem.standingLevel(0));
    EXPECT_EQ(mem_.boostLevel(1), rmem.standingLevel(1));
}

TEST_F(ResilientMemoryTest, ResetRuntimeStateClearsEverything)
{
    auto policy = ResiliencePolicy::closedLoop(0, EscalationPolicy::Hold, 2);
    policy.quarantineThreshold = 1;
    auto rmem = wrap(policy);
    const sram::VulnerabilityMap map(23, 0);
    Rng data_rng(4);
    for (std::uint32_t addr = 0; addr < 128; ++addr) {
        rmem.writeWord(addr, data_rng.next(), 0.40_V);
        rmem.readWord(addr, 0.40_V, map);
    }
    ASSERT_GT(rmem.snapshot().reads, 0u);
    rmem.resetRuntimeState();
    const auto s = rmem.snapshot();
    EXPECT_EQ(s.reads, 0u);
    EXPECT_EQ(s.quarantines, 0u);
    EXPECT_EQ(rmem.spares().used(), 0);
    EXPECT_EQ(rmem.standingLevel(0), policy.startLevel);
}

TEST_F(ResilientMemoryTest, SameSeedSameOutcome)
{
    // The per-access counter discipline: identical seeds and access
    // sequences produce identical outcomes, attempt by attempt.
    const Volt vdd{0.44};
    const sram::VulnerabilityMap map(41, 0);
    auto run = [&](sram::BankedMemory &mem) {
        ResilientMemory rmem(mem, ctx_,
                             ResiliencePolicy::closedLoop());
        rmem.reseed(Rng(7));
        Rng data_rng(8);
        std::uint64_t digest = 0;
        const auto addrs = testenv::tsanScaled<std::uint32_t>(512, 128);
        for (std::uint32_t addr = 0; addr < addrs; ++addr) {
            rmem.writeWord(addr, data_rng.next(), vdd);
            const auto out = rmem.readWord(addr, vdd, map);
            digest = digest * 1099511628211ull ^ out.data ^
                     static_cast<std::uint64_t>(out.attempts);
        }
        const auto s = rmem.snapshot();
        return std::tuple{digest, s.retries, s.spareTableDigest};
    };
    sram::BankedMemory m1("a", 2, ctx_.design, ctx_.tech, failure_);
    sram::BankedMemory m2("b", 2, ctx_.design, ctx_.tech, failure_);
    EXPECT_EQ(run(m1), run(m2));
}

} // namespace
} // namespace vboost::resilience

namespace vboost::fi {
namespace {

/** Small trained network for end-to-end closed-loop experiments. */
class ResilientExperiment : public ::testing::Test
{
  protected:
    static dnn::Network
    makeTrainedNet()
    {
        Rng rng(1);
        dnn::Network net;
        net.addLayer<dnn::Dense>(16, 32, rng, "fc1");
        net.addLayer<dnn::Relu>("r");
        net.addLayer<dnn::Dense>(32, 4, rng, "fc2");
        // TSan smoke: fewer samples/epochs keep the instrumented run
        // fast; the fixture only needs a net better than chance.
        auto train = blobs(testenv::tsanScaled(400, 160), 11);
        dnn::TrainConfig cfg;
        cfg.epochs = testenv::tsanScaled(6, 3);
        dnn::SgdTrainer trainer(cfg);
        Rng train_rng(2);
        trainer.train(net, train, train_rng);
        dnn::clipParameters(net, 0.5f);
        return net;
    }

    static dnn::Dataset
    blobs(int n, std::uint64_t seed)
    {
        Rng rng(seed);
        dnn::Dataset ds;
        ds.images = dnn::Tensor({n, 16});
        ds.labels.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const int cls = static_cast<int>(rng.uniformInt(4));
            ds.labels[static_cast<std::size_t>(i)] = cls;
            for (int j = 0; j < 16; ++j)
                ds.images.at(i, j) = static_cast<float>(
                    rng.normal(j % 4 == cls ? 1.0 : 0.0, 0.15));
        }
        return ds;
    }
};

TEST_F(ResilientExperiment, ClosedLoopBeatsOpenLoopAccuracyAtVlv)
{
    auto net = makeTrainedNet();
    auto test = blobs(200, 12);
    ExperimentConfig cfg;
    cfg.numMaps = 4;
    cfg.maxTestSamples = 200;
    FaultInjectionRunner runner(net, test, cfg);
    const auto ctx = core::SimContext::standard();

    const Volt vdd{0.38}; // BER 0.5: open loop at L0 reads noise
    const auto open = runner.runResilient(
        vdd, ctx, resilience::ResiliencePolicy::openLoop(0));
    const auto closed = runner.runResilient(
        vdd, ctx, resilience::ResiliencePolicy::closedLoop());
    EXPECT_GT(closed.point.meanAccuracy, open.point.meanAccuracy);
    EXPECT_LT(closed.point.meanBitFlips, open.point.meanBitFlips);
    EXPECT_GT(closed.stats.retries, 0u);
    EXPECT_EQ(open.stats.retries, 0u);
    EXPECT_GT(closed.meanAccessEnergy.value(), 0.0);
}

TEST_F(ResilientExperiment, DeterministicAcrossThreadCounts)
{
    // The determinism contract of DESIGN.md §7 extended to the
    // resilient pipeline: accuracy, retry counters and the spare-row
    // tables are bitwise identical at 1 and 8 threads.
    auto net = makeTrainedNet();
    auto test = blobs(200, 12);
    const auto ctx = core::SimContext::standard();
    auto policy = resilience::ResiliencePolicy::closedLoop(
        2, resilience::EscalationPolicy::StepUp, 4);
    policy.quarantineThreshold = 1; // make quarantines likely

    auto run_at = [&](int threads) {
        ExperimentConfig cfg;
        cfg.numMaps = testenv::tsanScaled(8, 4);
        cfg.maxTestSamples = 200;
        cfg.numThreads = threads;
        FaultInjectionRunner runner(net, test, cfg);
        return runner.runResilient(Volt{0.42}, ctx, policy);
    };
    const auto serial = run_at(1);
    const auto parallel = run_at(8);

    EXPECT_EQ(serial.point.meanAccuracy, parallel.point.meanAccuracy);
    EXPECT_EQ(serial.point.stddevAccuracy,
              parallel.point.stddevAccuracy);
    EXPECT_EQ(serial.point.meanBitFlips, parallel.point.meanBitFlips);
    EXPECT_EQ(serial.stats.reads, parallel.stats.reads);
    EXPECT_EQ(serial.stats.retries, parallel.stats.retries);
    EXPECT_EQ(serial.stats.retriedReads, parallel.stats.retriedReads);
    EXPECT_EQ(serial.stats.escalations, parallel.stats.escalations);
    EXPECT_EQ(serial.stats.standingRaises,
              parallel.stats.standingRaises);
    EXPECT_EQ(serial.stats.quarantines, parallel.stats.quarantines);
    EXPECT_EQ(serial.stats.spareReads, parallel.stats.spareReads);
    EXPECT_EQ(serial.stats.uncorrected, parallel.stats.uncorrected);
    // Spare-row tables are compared through the order-sensitive
    // digest chain: identical remap contents in identical order.
    EXPECT_EQ(serial.stats.spareTableDigest,
              parallel.stats.spareTableDigest);
    EXPECT_EQ(serial.meanAccessEnergy.value(),
              parallel.meanAccessEnergy.value());
    EXPECT_EQ(serial.meanRetryLatency.value(),
              parallel.meanRetryLatency.value());
}

TEST_F(ResilientExperiment, TimingRunsAreBitwiseThreadInvariant)
{
    // §7 extended to the timing-speculative datapath: runTiming and
    // runCombined are bitwise identical at 1 and 8 threads, down to
    // the replay-count digests.
    auto net = makeTrainedNet();
    auto test = blobs(200, 12);
    const auto ctx = core::SimContext::standard();

    TimingInjection inj;
    inj.vLogic = Volt(0.33); // deep in the violation regime
    const auto policy = resilience::ResiliencePolicy::closedLoop();

    auto runner_at = [&](int threads) {
        ExperimentConfig cfg;
        cfg.numMaps = testenv::tsanScaled(6, 3);
        cfg.maxTestSamples = 200;
        cfg.numThreads = threads;
        return FaultInjectionRunner(net, test, cfg);
    };

    auto serial_runner = runner_at(1);
    auto parallel_runner = runner_at(8);
    const auto ts = serial_runner.runTiming(ctx, inj);
    const auto tp = parallel_runner.runTiming(ctx, inj);
    EXPECT_GT(ts.stats.errors, 0u); // the regime is live
    EXPECT_EQ(ts.point.meanAccuracy, tp.point.meanAccuracy);
    EXPECT_EQ(ts.point.stddevAccuracy, tp.point.stddevAccuracy);
    EXPECT_EQ(ts.point.meanBitFlips, tp.point.meanBitFlips);
    EXPECT_EQ(ts.stats.ops, tp.stats.ops);
    EXPECT_EQ(ts.stats.errors, tp.stats.errors);
    EXPECT_EQ(ts.stats.replays, tp.stats.replays);
    EXPECT_EQ(ts.stats.corrupted, tp.stats.corrupted);
    EXPECT_EQ(ts.stats.stepUps, tp.stats.stepUps);
    EXPECT_EQ(ts.stats.replayDigest, tp.stats.replayDigest);
    EXPECT_EQ(ts.meanLogicEnergy.value(), tp.meanLogicEnergy.value());
    EXPECT_EQ(ts.meanReplayLatency.value(),
              tp.meanReplayLatency.value());

    const auto cs = serial_runner.runCombined(Volt{0.44}, ctx, policy,
                                              inj);
    const auto cp = parallel_runner.runCombined(Volt{0.44}, ctx, policy,
                                                inj);
    EXPECT_EQ(cs.point.meanAccuracy, cp.point.meanAccuracy);
    EXPECT_EQ(cs.point.meanBitFlips, cp.point.meanBitFlips);
    EXPECT_EQ(cs.sram.retries, cp.sram.retries);
    EXPECT_EQ(cs.sram.uncorrected, cp.sram.uncorrected);
    EXPECT_EQ(cs.sram.spareTableDigest, cp.sram.spareTableDigest);
    EXPECT_EQ(cs.timing.errors, cp.timing.errors);
    EXPECT_EQ(cs.timing.replayDigest, cp.timing.replayDigest);
    EXPECT_EQ(cs.meanSramEnergy.value(), cp.meanSramEnergy.value());
    EXPECT_EQ(cs.meanLogicEnergy.value(), cp.meanLogicEnergy.value());
    EXPECT_EQ(cs.meanRetryLatency.value(), cp.meanRetryLatency.value());
    EXPECT_EQ(cs.meanReplayLatency.value(),
              cp.meanReplayLatency.value());
}

TEST_F(ResilientExperiment, TimingObsAttributionReconciles)
{
    // The §11 acceptance for the timing path: the metrics a runTiming
    // pass exports must reconcile exactly (counters) / to rounding
    // (energy means) with the returned TimingAccuracyPoint.
    auto net = makeTrainedNet();
    auto test = blobs(200, 12);
    const auto ctx = core::SimContext::standard();
    ExperimentConfig cfg;
    cfg.numMaps = 3;
    cfg.maxTestSamples = 200;
    FaultInjectionRunner runner(net, test, cfg);

    obs::Observability o;
    runner.attachObservability(&o);
    TimingInjection inj;
    inj.vLogic = Volt(0.33);
    const auto p = runner.runTiming(ctx, inj);
    runner.attachObservability(nullptr);

    EXPECT_EQ(o.metrics.counter("timing.ops").value(), p.stats.ops);
    EXPECT_EQ(o.metrics.counter("timing.errors").value(),
              p.stats.errors);
    EXPECT_EQ(o.metrics.counter("timing.replays").value(),
              p.stats.replays);
    EXPECT_EQ(o.metrics.counter("timing.corrupted").value(),
              p.stats.corrupted);
    EXPECT_EQ(o.metrics.counter("timing.replay_cycles").value(),
              p.stats.replayCycles);
    EXPECT_EQ(o.metrics.counter("timing.bubble_cycles").value(),
              p.stats.bubbleCycles);
    const double total = o.metrics.sum("timing.energy.logic_j").value();
    EXPECT_NEAR(total, p.meanLogicEnergy.value() * cfg.numMaps,
                1e-9 * total);
    EXPECT_EQ(total, p.stats.logicEnergy.value());
}

} // namespace
} // namespace vboost::fi
