/**
 * @file
 * Tests for the BIC block, transient waveform simulator, LDO, latency
 * model and the per-event energy/leakage models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bic.hpp"
#include "circuit/energy_model.hpp"
#include "circuit/latency.hpp"
#include "circuit/ldo.hpp"
#include "circuit/transient.hpp"
#include "common/logging.hpp"

namespace vboost::circuit {
namespace {

TechnologyParams tech = TechnologyParams::default14nm();

// ----------------------------------------------------------------- BIC

TEST(Bic, ConfigBitsEnableCells)
{
    BoostInputControl bic(4);
    bic.setConfig(0b1111);
    EXPECT_EQ(bic.enabledLevel(), 4);
    bic.setConfig(0b0101);
    EXPECT_EQ(bic.enabledLevel(), 2);
    bic.setConfig(0xFFFFFFFF); // bits above P masked off
    EXPECT_EQ(bic.config(), 0b1111u);
}

TEST(Bic, SetLevelEnablesPrefix)
{
    BoostInputControl bic(4);
    bic.setLevel(3);
    EXPECT_EQ(bic.config(), 0b0111u);
    bic.setLevel(0);
    EXPECT_EQ(bic.config(), 0u);
    EXPECT_THROW(bic.setLevel(5), FatalError);
}

TEST(Bic, DisabledCellInputStaysHigh)
{
    BoostInputControl bic(4);
    bic.setConfig(0b0011);
    const auto idle = bic.boostInputs(/*cen=*/true, /*boost_clk=*/true);
    // Enabled cells rest low at idle; disabled cells rest high.
    EXPECT_FALSE(idle[0]);
    EXPECT_FALSE(idle[1]);
    EXPECT_TRUE(idle[2]);
    EXPECT_TRUE(idle[3]);
}

TEST(Bic, BoostRequiresAccessAndClockHigh)
{
    BoostInputControl bic(4);
    bic.setLevel(4);
    EXPECT_FALSE(bic.boostActive(/*cen=*/true, /*boost_clk=*/true));
    EXPECT_FALSE(bic.boostActive(/*cen=*/false, /*boost_clk=*/false));
    EXPECT_TRUE(bic.boostActive(/*cen=*/false, /*boost_clk=*/true));
    const auto active = bic.boostInputs(false, true);
    for (bool b : active)
        EXPECT_TRUE(b); // all enabled inputs swing high: boost event
}

TEST(Bic, NoBoostWhenAllDisabled)
{
    BoostInputControl bic(4);
    bic.setLevel(0);
    EXPECT_FALSE(bic.boostActive(false, true));
}

TEST(Bic, RejectsBadCellCount)
{
    EXPECT_THROW(BoostInputControl(0), FatalError);
    EXPECT_THROW(BoostInputControl(33), FatalError);
}

// ------------------------------------------------------------ transient

TEST(Transient, BoostRisesTowardTargetWithinCycle)
{
    BoosterBank booster(BoosterDesign::standardConfig(),
                        tech.macroArrayCap + tech.fixedParasiticCap, tech);
    TransientSim sim(booster, 0.4_V);
    sim.setLevel(4);
    // One access cycle at 50 MHz: half period of 10 ns >> boost tau.
    sim.runAccessCycles(1, 50.0_MHz);
    const Volt target = booster.boostedVoltage(0.4_V, 4);
    // After the full cycle (boost then restore) the node is back at Vdd.
    EXPECT_NEAR(sim.vddv().value(), 0.4, 0.01);
    // Mid-cycle the waveform must have reached near the boosted target.
    double peak = 0.0;
    for (const auto &s : sim.waveform())
        peak = std::max(peak, s.vddv.value());
    EXPECT_NEAR(peak, target.value(), 0.01);
    EXPECT_EQ(sim.boostEvents(), 1);
}

TEST(Transient, FourProgrammableLevelsProduceFourPlateaus)
{
    // Fig. 4: four distinct Vddv plateaus as config bits change.
    BoosterBank booster(BoosterDesign::standardConfig(),
                        tech.macroArrayCap + tech.fixedParasiticCap, tech);
    TransientSim sim(booster, 0.4_V);
    std::vector<double> peaks;
    for (int level = 1; level <= 4; ++level) {
        sim.setLevel(level);
        const std::size_t before = sim.waveform().size();
        sim.runAccessCycles(1, 50.0_MHz);
        double peak = 0.0;
        for (std::size_t i = before; i < sim.waveform().size(); ++i)
            peak = std::max(peak, sim.waveform()[i].vddv.value());
        peaks.push_back(peak);
    }
    for (std::size_t i = 1; i < peaks.size(); ++i)
        EXPECT_GT(peaks[i], peaks[i - 1] + 0.01);
    EXPECT_EQ(sim.boostEvents(), 4);
}

TEST(Transient, NoBoostWithoutAccess)
{
    BoosterBank booster(BoosterDesign::standardConfig(),
                        tech.macroArrayCap + tech.fixedParasiticCap, tech);
    TransientSim sim(booster, 0.4_V);
    sim.setLevel(4);
    sim.run(/*cen=*/true, /*boost_clk=*/true, Second(50e-9));
    for (const auto &s : sim.waveform())
        EXPECT_NEAR(s.vddv.value(), 0.4, 1e-6);
    EXPECT_EQ(sim.boostEvents(), 0);
}

TEST(Transient, RejectsBadParameters)
{
    BoosterBank booster(BoosterDesign::standardConfig(),
                        tech.macroArrayCap + tech.fixedParasiticCap, tech);
    EXPECT_THROW(TransientSim(booster, Volt(0.0)), FatalError);
    EXPECT_THROW(TransientSim(booster, 0.4_V, Second(0.0)), FatalError);
}

// ----------------------------------------------------------------- LDO

TEST(Ldo, EfficiencyIsVoltageRatioTimesEtaI)
{
    LdoRegulator ldo(0.99);
    // Paper Eq. (5).
    EXPECT_NEAR(ldo.efficiency(0.4_V, 0.6_V), 0.4 / 0.6 * 0.99, 1e-12);
    EXPECT_NEAR(ldo.efficiency(0.5_V, 0.5_V), 0.99, 1e-12);
}

TEST(Ldo, InputEnergyInflatedByEfficiency)
{
    LdoRegulator ldo;
    const Joule in = ldo.inputEnergy(1.0_pJ, 0.4_V, 0.6_V);
    EXPECT_NEAR(in.value(), 1e-12 / (0.4 / 0.6 * 0.99), 1e-18);
    EXPECT_GT(in.value(), 1e-12);
}

TEST(Ldo, RejectsInvalidOperatingPoints)
{
    LdoRegulator ldo;
    EXPECT_THROW(ldo.efficiency(0.7_V, 0.6_V), FatalError);
    EXPECT_THROW(ldo.efficiency(Volt(0.0), 0.6_V), FatalError);
    EXPECT_THROW(LdoRegulator(0.0), FatalError);
    EXPECT_THROW(LdoRegulator(1.1), FatalError);
}

TEST(Ldo, EfficiencyDropsWithLargerVoltageGap)
{
    // Sec. 2: "LDOs ... suffer from decreasing efficiency when the
    // difference between SRAM and logic voltage increases".
    LdoRegulator ldo;
    EXPECT_GT(ldo.efficiency(0.5_V, 0.6_V), ldo.efficiency(0.4_V, 0.6_V));
}

// -------------------------------------------------------------- latency

TEST(Latency, AnchoredAtNominal)
{
    LatencyModel lat(tech);
    EXPECT_NEAR(lat.accessTime(tech.nominalVdd).value(),
                tech.accessTimeAtNominal.value(), 1e-15);
    EXPECT_DOUBLE_EQ(lat.normalized(tech.nominalVdd, tech.nominalVdd), 1.0);
}

TEST(Latency, DelayGrowsAsVoltageDrops)
{
    LatencyModel lat(tech);
    EXPECT_GT(lat.accessTime(0.4_V), lat.accessTime(0.5_V));
    EXPECT_GT(lat.accessTime(0.5_V), lat.accessTime(0.8_V));
}

TEST(Latency, BoostingReducesAccessTime)
{
    LatencyModel lat(tech);
    // Array-only boosting speeds up only the array fraction.
    const double array_only = lat.normalized(0.7_V, 0.5_V, 0.5_V);
    // Macro-level boosting speeds up the whole path.
    const double macro = lat.normalized(0.7_V, 0.5_V);
    EXPECT_LT(macro, array_only);
    EXPECT_LT(array_only, 1.0);
}

TEST(Latency, RejectsSubThresholdSupply)
{
    LatencyModel lat(tech);
    EXPECT_THROW(lat.accessTime(0.28_V), FatalError);
    EXPECT_THROW(LatencyModel(tech, 0.0), FatalError);
    EXPECT_THROW(LatencyModel(tech, 1.0), FatalError);
}

TEST(Latency, ClampsOutsideTheCalibratedDomain)
{
    // Regression: queries outside the calibrated window used to
    // extrapolate the alpha-power law silently. They now clamp to the
    // domain edge (with a rate-limited diagnostic); sub-threshold
    // queries still fail hard (covered above).
    LatencyModel lat(tech);
    const Volt lo = lat.minCalibrated();
    const Volt hi = lat.maxCalibrated();
    EXPECT_DOUBLE_EQ(lo.value(),
                     tech.thresholdVoltage.value() +
                         LatencyModel::kMinMargin);
    EXPECT_DOUBLE_EQ(hi.value(), LatencyModel::kMaxCalibrated);

    // Just above threshold but below the calibrated edge: identical
    // to the edge, not the (much larger) extrapolated value.
    const Volt below(lo.value() - 0.01);
    EXPECT_DOUBLE_EQ(lat.accessTime(below).value(),
                     lat.accessTime(lo).value());
    // Above the ceiling: clamped to the ceiling.
    EXPECT_DOUBLE_EQ(lat.accessTime(1.5_V).value(),
                     lat.accessTime(hi).value());
    // The split-rail path clamps each segment independently.
    EXPECT_DOUBLE_EQ(lat.accessTime(below, 1.5_V).value(),
                     lat.accessTime(lo, hi).value());
    // Inside the domain the model is untouched by the clamp.
    EXPECT_LT(lat.accessTime(0.5_V).value(),
              lat.accessTime(lo).value());
}

// --------------------------------------------------------------- energy

TEST(EnergyModel, AccessEnergyIsCV2WithMuxCost)
{
    EnergyModel em(tech);
    const double single = em.sramAccessEnergy(0.5_V, 1).value();
    EXPECT_NEAR(single, tech.bankAccessCap.value() * 0.25, 1e-18);
    // Sec. 5.2: banked access includes the multiplexer cost.
    EXPECT_GT(em.sramAccessEnergy(0.5_V, 16), em.sramAccessEnergy(0.5_V, 1));
}

TEST(EnergyModel, EnergyQuadraticInVoltage)
{
    EnergyModel em(tech);
    const double e1 = em.peOpEnergy(0.4_V).value();
    const double e2 = em.peOpEnergy(0.8_V).value();
    EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST(EnergyModel, LeakageExponentialInVoltage)
{
    EnergyModel em(tech);
    const double s1 = em.leakageScale(0.4_V);
    const double s2 = em.leakageScale(0.4_V + tech.leakageSlope);
    EXPECT_NEAR(s2 / s1, std::exp(1.0), 1e-9);
    EXPECT_DOUBLE_EQ(em.leakageScale(tech.leakageVref), 1.0);
}

TEST(EnergyModel, LeakagePerCycleDividesByFrequency)
{
    EnergyModel em(tech);
    const Watt p = em.peLeakage(0.4_V);
    EXPECT_NEAR(em.leakagePerCycle(p, 50.0_MHz).value(),
                p.value() / 50e6, 1e-24);
    EXPECT_THROW(em.leakagePerCycle(p, Hertz(0.0)), FatalError);
}

TEST(EnergyModel, SramLeakageScalesWithMacroCount)
{
    EnergyModel em(tech);
    EXPECT_NEAR(em.sramLeakage(0.5_V, 36).value(),
                36 * tech.sramLeakPerMacroAtVref.value(), 1e-12);
    EXPECT_THROW(em.sramLeakage(0.5_V, -1), FatalError);
}

TEST(EnergyModel, RejectsNonPositiveVoltage)
{
    EnergyModel em(tech);
    EXPECT_THROW(em.sramAccessEnergy(Volt(0.0), 1), FatalError);
    EXPECT_THROW(em.peOpEnergy(Volt(-0.1)), FatalError);
    EXPECT_THROW(em.sramAccessEnergy(0.5_V, 0), FatalError);
}

} // namespace
} // namespace vboost::circuit
