/**
 * @file
 * Tests for the programmable booster: design composition, the Eq.-1
 * boosted-voltage solver, per-event energy, leakage and area, plus
 * property sweeps for monotonicity in level and supply voltage.
 */

#include <gtest/gtest.h>

#include "circuit/booster.hpp"
#include "common/logging.hpp"

namespace vboost::circuit {
namespace {

TechnologyParams tech = TechnologyParams::default14nm();

Farad
macroLoad()
{
    return tech.macroArrayCap + tech.fixedParasiticCap;
}

TEST(BoosterDesign, StandardConfigMatchesPaper)
{
    const auto d = BoosterDesign::standardConfig();
    EXPECT_EQ(d.levels(), 4);
    EXPECT_EQ(d.totalInverters(), 256);
    // Table 1: 40 pF of MIM capacitance per macro.
    EXPECT_NEAR(d.enabledMim(4).value(), 40e-12, 1e-15);
}

TEST(BoosterDesign, BoostCapGrowsWithLevel)
{
    const auto d = BoosterDesign::standardConfig();
    Farad prev{0.0};
    for (int level = 1; level <= 4; ++level) {
        const Farad cb = d.boostCap(level, tech);
        EXPECT_GT(cb, prev);
        prev = cb;
    }
    EXPECT_EQ(d.boostCap(0, tech).value(), 0.0);
}

TEST(BoosterDesign, ScaledMultipliesCapsAndInverters)
{
    const auto d = BoosterDesign::standardConfig().scaled(2);
    EXPECT_EQ(d.levels(), 4);
    EXPECT_EQ(d.totalInverters(), 512);
    EXPECT_NEAR(d.enabledMim(4).value(), 80e-12, 1e-15);
}

TEST(BoosterDesign, InverterOnlyHasNoMim)
{
    const auto d = BoosterDesign::inverterOnly(1024);
    EXPECT_EQ(d.levels(), 1);
    EXPECT_EQ(d.enabledMim(1).value(), 0.0);
    EXPECT_EQ(d.totalInverters(), 1024);
}

TEST(BoosterDesign, RejectsInvalidConstruction)
{
    EXPECT_THROW(BoosterDesign({}), FatalError);
    EXPECT_THROW(BoosterDesign::uniform(0, 64, Farad(1e-12)), FatalError);
    EXPECT_THROW(BoosterDesign::inverterOnly(100, 3), FatalError);
    EXPECT_THROW(BoosterDesign::standardConfig().scaled(0), FatalError);
}

TEST(BoosterDesign, AreaCountsSharedMimBufferOnce)
{
    // Fig. 6 anchor: MIMBoost-A (256 inv + MIM buffers) has the same
    // area as noMIMBoost-A (1024 inverters).
    const auto mim_a = BoosterDesign::standardConfig();
    const auto nomim_a = BoosterDesign::inverterOnly(1024);
    EXPECT_NEAR(mim_a.area(tech).value(), nomim_a.area(tech).value(),
                1e-9);
}

TEST(BoosterBank, Level0IsUnboosted)
{
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    EXPECT_EQ(bank.boostDelta(0.4_V, 0).value(), 0.0);
    EXPECT_EQ(bank.boostedVoltage(0.4_V, 0).value(), 0.4);
    EXPECT_EQ(bank.boostEventEnergy(0.4_V, 0).value(), 0.0);
}

TEST(BoosterBank, PeakBoostNearFiftyPercent)
{
    // Paper: "capable of achieving up to 50% peak boost".
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    const double ratio = bank.boostDelta(0.8_V, 4).value() / 0.8;
    EXPECT_GT(ratio, 0.42);
    EXPECT_LT(ratio, 0.52);
}

TEST(BoosterBank, LevelStepsNearFiftyMillivolts)
{
    // Fig. 4: "increments of the order of 50 mV" near 0.4 V.
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    for (int level = 1; level <= 4; ++level) {
        const double step = (bank.boostedVoltage(0.4_V, level) -
                             bank.boostedVoltage(0.4_V, level - 1))
                                .value();
        EXPECT_GT(step, 0.02);
        EXPECT_LT(step, 0.09);
    }
}

TEST(BoosterBank, RejectsOutOfRangeLevels)
{
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    EXPECT_THROW(bank.boostDelta(0.4_V, -1), FatalError);
    EXPECT_THROW(bank.boostDelta(0.4_V, 5), FatalError);
    EXPECT_THROW(bank.boostEventEnergy(0.4_V, 5), FatalError);
}

TEST(BoosterBank, RejectsNonPositiveLoad)
{
    EXPECT_THROW(
        BoosterBank(BoosterDesign::standardConfig(), Farad(0.0), tech),
        FatalError);
}

TEST(BoosterBank, HigherLoadReducesBoost)
{
    // Sec. 3.3.2: boosting the peripherals (extra load) reduces Vb.
    BoosterBank array_only(BoosterDesign::standardConfig(), macroLoad(),
                           tech);
    BoosterBank macro(BoosterDesign::standardConfig(),
                      macroLoad() + tech.macroPeriphCap, tech);
    EXPECT_GT(array_only.boostDelta(0.5_V, 4), macro.boostDelta(0.5_V, 4));
}

TEST(BoosterBank, EnergyGrowsWithLevelAndVoltage)
{
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    for (int level = 1; level < 4; ++level) {
        EXPECT_LT(bank.boostEventEnergy(0.4_V, level),
                  bank.boostEventEnergy(0.4_V, level + 1));
    }
    EXPECT_LT(bank.boostEventEnergy(0.34_V, 4),
              bank.boostEventEnergy(0.46_V, 4));
}

TEST(BoosterBank, LeakageScalesWithVoltageAndSize)
{
    BoosterBank small(BoosterDesign::standardConfig(), macroLoad(), tech);
    BoosterBank big(BoosterDesign::standardConfig().scaled(2),
                    macroLoad() * 2, tech);
    EXPECT_LT(small.leakagePower(0.4_V), small.leakagePower(0.5_V));
    EXPECT_NEAR(big.leakagePower(0.4_V).value(),
                2 * small.leakagePower(0.4_V).value(), 1e-12);
}

TEST(BoosterBank, AreaMatchesTable1PerMacro)
{
    // Table 1: booster area 0.0039 mm^2 per SRAM macro. The deployed
    // unit is one bank column spanning two macros (with one shared MIM
    // buffer chain and one BIC), so the per-macro figure is half of a
    // bank column's area.
    BoosterBank bank_column(BoosterDesign::standardConfig().scaled(2),
                            macroLoad() * 2, tech);
    const double mm2 = bank_column.area().value() / 1e6 / 2.0;
    EXPECT_GT(mm2, 0.0030);
    EXPECT_LT(mm2, 0.0050);
}

/** Property: boosted voltage is monotone in level at any supply. */
class BoostMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(BoostMonotonicity, MonotoneInLevel)
{
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    const Volt vdd{GetParam()};
    for (int level = 0; level < 4; ++level) {
        EXPECT_LT(bank.boostedVoltage(vdd, level),
                  bank.boostedVoltage(vdd, level + 1))
            << "vdd=" << vdd.value() << " level=" << level;
    }
}

TEST_P(BoostMonotonicity, PeakBoostGrowsWithVdd)
{
    // Fig. 8: "the peak boosted voltage increases monotonically with
    // increasing supply voltage".
    BoosterBank bank(BoosterDesign::standardConfig(), macroLoad(), tech);
    const Volt vdd{GetParam()};
    const Volt higher = vdd + 0.02_V;
    EXPECT_LT(bank.boostDelta(vdd, 4), bank.boostDelta(higher, 4));
}

INSTANTIATE_TEST_SUITE_P(SupplySweep, BoostMonotonicity,
                         ::testing::Values(0.34, 0.38, 0.42, 0.46, 0.5,
                                           0.6, 0.7, 0.8));

} // namespace
} // namespace vboost::circuit
