/**
 * @file
 * Cross-module property sweeps (TEST_P): invariants that must hold at
 * every operating point, tying the circuit, SRAM, energy and core
 * layers together — the relationships the paper's argument rests on,
 * checked over the whole (Vdd, level) grid rather than at single
 * points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "accel/dataflow.hpp"
#include "common/fixed_point.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/quantize.hpp"
#include "energy/supply_config.hpp"
#include "sram/failure_model.hpp"
#include "sram/fault_map.hpp"

namespace vboost {
namespace {

/** Grid of (Vdd, level) operating points. */
class OperatingPointSweep
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
  protected:
    OperatingPointSweep()
        : ctx_(core::SimContext::standard()),
          sc_(ctx_.tech, ctx_.design, 16), frm_(ctx_.failure)
    {
    }

    core::SimContext ctx_;
    energy::SupplyConfigurator sc_;
    sram::FailureRateModel frm_;
};

TEST_P(OperatingPointSweep, BoostingNeverRaisesFailureRate)
{
    const auto [v, level] = GetParam();
    const Volt vdd{v};
    const Volt vddv = sc_.boostedVoltage(vdd, level);
    EXPECT_GE(vddv, vdd);
    EXPECT_LE(frm_.rate(vddv), frm_.rate(vdd));
}

TEST_P(OperatingPointSweep, EnergyBreakdownComponentsAreNonNegative)
{
    const auto [v, level] = GetParam();
    const Volt vdd{v};
    const energy::Workload w{10000, 100000};
    const auto e = sc_.boostedDynamic(w, vdd, level);
    EXPECT_GE(e.sram.value(), 0.0);
    EXPECT_GE(e.pe.value(), 0.0);
    EXPECT_GE(e.booster.value(), 0.0);
    EXPECT_EQ(e.ldoLoss.value(), 0.0);
    EXPECT_NEAR(e.total().value(),
                e.sram.value() + e.pe.value() + e.booster.value(),
                1e-20);
}

TEST_P(OperatingPointSweep, BoostedLogicCheaperThanSingleRailAtVddv)
{
    // The core of Fig. 13(a): boosting keeps the logic at Vdd while a
    // single-rail design must lift everything to Vddv.
    const auto [v, level] = GetParam();
    if (level == 0)
        return;
    const Volt vdd{v};
    const Volt vddv = sc_.boostedVoltage(vdd, level);
    const energy::Workload w{10000, 100000};
    const auto boosted = sc_.boostedDynamic(w, vdd, level);
    const auto single = sc_.singleSupplyDynamic(w, vddv);
    EXPECT_LT(boosted.pe.value(), single.pe.value());
    EXPECT_LT(boosted.total().value(), single.total().value());
}

TEST_P(OperatingPointSweep, DualSupplyPaysTheLdoTax)
{
    const auto [v, level] = GetParam();
    if (level == 0)
        return;
    const Volt vdd{v};
    const Volt vddv = sc_.boostedVoltage(vdd, level);
    const energy::Workload w{10000, 100000};
    const auto dual = sc_.dualSupplyDynamic(w, vddv, vdd);
    // The LDO loss equals the Eq.-5 inefficiency exactly.
    const double eta = sc_.ldo().efficiency(vdd, vddv);
    EXPECT_NEAR(dual.ldoLoss.value(), dual.pe.value() * (1.0 / eta - 1.0),
                1e-18);
    EXPECT_GT(dual.ldoLoss.value(), 0.0);
}

TEST_P(OperatingPointSweep, LeakageOrderingHoldsEverywhere)
{
    // Boosted config idles everything at Vdd: it can never leak more
    // than the dual rail (SRAM at Vddv) or the single rail at Vddv.
    const auto [v, level] = GetParam();
    if (level == 0)
        return;
    const Volt vdd{v};
    const Volt vddv = sc_.boostedVoltage(vdd, level);
    const Hertz f = 50.0_MHz;
    const double boosted = sc_.boostedLeakagePerCycle(vdd, f).value();
    const double dual =
        sc_.dualSupplyLeakagePerCycle(vddv, vdd, f).value();
    const double single = sc_.singleSupplyLeakagePerCycle(vddv, f).value();
    EXPECT_LT(boosted, dual);
    EXPECT_LT(boosted, single);
    // dual vs single has no universal ordering: at small voltage gaps
    // the LDO tax can outweigh the logic-leakage savings.
}

TEST_P(OperatingPointSweep, MinimalLevelReachingIsMinimal)
{
    const auto [v, level] = GetParam();
    (void)level;
    const Volt vdd{v};
    core::TradeoffExplorer explorer(ctx_, 16);
    const Volt target{0.50};
    const auto chosen = explorer.minimalLevelReaching(vdd, target);
    if (!chosen)
        return;
    EXPECT_GE(explorer.boostedVoltage(vdd, *chosen), target);
    if (*chosen > 0)
        EXPECT_LT(explorer.boostedVoltage(vdd, *chosen - 1), target);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OperatingPointSweep,
    ::testing::Combine(::testing::Values(0.34, 0.38, 0.42, 0.46, 0.50),
                       ::testing::Values(0, 1, 2, 3, 4)));

/** Quantization round trip must be within resolution for any format. */
class QuantSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantSweep, RoundTripWithinResolutionAtEveryFormat)
{
    const int frac = GetParam();
    FixedPointCodec codec(frac);
    Rng rng(static_cast<std::uint64_t>(frac) + 1);
    for (int i = 0; i < 500; ++i) {
        const float x = static_cast<float>(
            rng.uniform(codec.minValue(), codec.maxValue()));
        EXPECT_NEAR(codec.decode(codec.encode(x)), x,
                    codec.resolution() * 0.5001f)
            << "frac=" << frac;
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantSweep,
                         ::testing::Values(0, 3, 7, 11, 13, 15));

/** Fault-map corruption is deterministic given (seed, map, rng seed). */
TEST(CorruptionDeterminism, SameSeedsSameFlips)
{
    const sram::VulnerabilityMap map(5, 9);
    std::vector<std::int16_t> a(256, 0x2222), b(256, 0x2222);
    Rng r1(42), r2(42);
    const auto fa = sram::corruptWords(a, map, 100, {0.05, 0.5}, r1);
    const auto fb = sram::corruptWords(b, map, 100, {0.05, 0.5}, r2);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(a, b);
}

/** DANA ratio is layout-invariant: ~0.75 for any layer sizes that are
 *  multiples of the access width. */
class DanaRatioSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DanaRatioSweep, RatioIsThreeQuarters)
{
    const auto [in, out] = GetParam();
    accel::DanaFcModel model;
    EXPECT_NEAR(model.layerActivity(in, out).accessRatio(), 0.75, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Layers, DanaRatioSweep,
    ::testing::Values(std::pair{784, 256}, std::pair{256, 256},
                      std::pair{512, 64}, std::pair{64, 1024}));

} // namespace
} // namespace vboost
