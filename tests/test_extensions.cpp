/**
 * @file
 * Tests for the extension modules: magnitude pruning + compressed
 * storage (Deep Compression tie-in), fault-aware training, and the
 * canary-based runtime boost controller.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/canary.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/prune.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/experiment.hpp"
#include "fi/fault_training.hpp"

namespace vboost {
namespace {

// -------------------------------------------------------------- pruning

dnn::Network
denseNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(32, 64, rng, "fc1");
    net.addLayer<dnn::Relu>("r");
    net.addLayer<dnn::Dense>(64, 8, rng, "fc2");
    return net;
}

TEST(Prune, AchievesRequestedSparsity)
{
    auto net = denseNet(1);
    const auto report = dnn::magnitudePrune(net, 0.9);
    EXPECT_EQ(report.totalWeights, 32u * 64 + 64 * 8);
    EXPECT_NEAR(report.sparsity(), 0.9, 0.01);
    EXPECT_EQ(dnn::nonzeroWeights(net),
              report.totalWeights - report.zeroedWeights);
}

TEST(Prune, RemovesSmallestMagnitudesFirst)
{
    Rng rng(2);
    dnn::Network net;
    auto &d = net.addLayer<dnn::Dense>(4, 2, rng, "fc");
    // Values with distinct magnitudes.
    for (std::size_t i = 0; i < 8; ++i)
        d.weight()[i] = static_cast<float>(i + 1) * (i % 2 ? -1.f : 1.f);
    dnn::magnitudePrune(net, 0.5);
    // The four smallest magnitudes (1..4) are gone, 5..8 survive.
    int zeros = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        if (d.weight()[i] == 0.0f) {
            ++zeros;
            EXPECT_LT(i, 4u);
        }
    }
    EXPECT_EQ(zeros, 4);
}

TEST(Prune, ZeroSparsityIsNoOp)
{
    auto net = denseNet(3);
    const auto before = dnn::nonzeroWeights(net);
    const auto report = dnn::magnitudePrune(net, 0.0);
    EXPECT_EQ(report.zeroedWeights, 0u);
    EXPECT_EQ(dnn::nonzeroWeights(net), before);
    EXPECT_THROW(dnn::magnitudePrune(net, 1.0), FatalError);
    EXPECT_THROW(dnn::magnitudePrune(net, -0.1), FatalError);
}

TEST(Prune, CompressedStorageShrinksWithSparsity)
{
    auto net = denseNet(4);
    const auto dense_bytes = dnn::denseWeightBytes(net);
    EXPECT_EQ(dense_bytes, (32u * 64 + 64 * 8) * 2);
    const auto before = dnn::compressedWeightBytes(net);
    dnn::magnitudePrune(net, 0.9);
    const auto after = dnn::compressedWeightBytes(net);
    EXPECT_LT(after, before);
    // Strong compression at 90% sparsity with 4-bit indices (row
    // pointers dominate for this small model, capping the ratio).
    EXPECT_LT(after, dense_bytes / 3);
    EXPECT_THROW(dnn::compressedWeightBytes(net, 0), FatalError);
}

TEST(Prune, ModeratePruningPreservesAccuracy)
{
    // Train a model, prune 60%, accuracy must survive.
    Rng rng(5);
    auto train = dnn::makeSyntheticMnist(1500, 21);
    auto test = dnn::makeSyntheticMnist(400, 22);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 64, rng, "fc1");
    net.addLayer<dnn::Relu>("r");
    net.addLayer<dnn::Dense>(64, 10, rng, "fc2");
    dnn::TrainConfig cfg;
    cfg.epochs = 4;
    dnn::SgdTrainer trainer(cfg);
    trainer.train(net, train, rng);
    const double full = dnn::SgdTrainer::evaluate(net, test, 0);
    dnn::magnitudePrune(net, 0.6);
    const double pruned = dnn::SgdTrainer::evaluate(net, test, 0);
    EXPECT_GT(full, 0.95);
    EXPECT_GT(pruned, full - 0.05);
}

// -------------------------------------------------- fault-aware training

TEST(FaultAwareTraining, ImprovesResilienceAtTrainedRate)
{
    Rng rng(7);
    auto train = dnn::makeSyntheticMnist(1500, 31);
    auto test = dnn::makeSyntheticMnist(400, 32);

    auto make_net = [](std::uint64_t seed) {
        Rng r(seed);
        dnn::Network net;
        net.addLayer<dnn::Dense>(784, 48, r, "fc1");
        net.addLayer<dnn::Relu>("relu");
        net.addLayer<dnn::Dense>(48, 10, r, "fc2");
        return net;
    };

    // Baseline training.
    auto baseline = make_net(1);
    dnn::TrainConfig cfg;
    cfg.epochs = 4;
    dnn::SgdTrainer trainer(cfg);
    trainer.train(baseline, train, rng);
    dnn::clipParameters(baseline, 0.5f);

    // Fault-aware training at a bruising rate.
    auto hardened = make_net(1);
    auto scratch_train = make_net(2);
    fi::FaultTrainConfig fcfg;
    fcfg.base = cfg;
    fcfg.base.epochs = 6;
    fcfg.failProb = 0.02;
    fi::FaultAwareTrainer fat(fcfg);
    Rng rng2(7);
    const auto stats = fat.train(hardened, scratch_train, train, rng2);
    EXPECT_EQ(stats.size(), 6u);
    dnn::clipParameters(hardened, 0.5f);

    // Both models are competent fault-free.
    EXPECT_GT(dnn::SgdTrainer::evaluate(baseline, test, 0), 0.95);
    EXPECT_GT(dnn::SgdTrainer::evaluate(hardened, test, 0), 0.90);

    // Under injection at (beyond) the training rate, the hardened
    // model holds more accuracy.
    auto eval_under_faults = [&](dnn::Network &model) {
        fi::ExperimentConfig ecfg;
        ecfg.numMaps = 6;
        ecfg.maxTestSamples = 300;
        fi::FaultInjectionRunner runner(model, test, ecfg);
        return runner.run(0.05, fi::InjectionSpec::allWeights())
            .meanAccuracy;
    };
    const double base_acc = eval_under_faults(baseline);
    const double hard_acc = eval_under_faults(hardened);
    EXPECT_GT(hard_acc, base_acc + 0.03)
        << "hardened " << hard_acc << " vs baseline " << base_acc;
}

TEST(FaultAwareTraining, ValidatesConfig)
{
    fi::FaultTrainConfig cfg;
    cfg.failProb = 1.5;
    EXPECT_THROW(fi::FaultAwareTrainer{cfg}, FatalError);

    cfg = {};
    cfg.failProb = -0.1;
    EXPECT_THROW(fi::FaultAwareTrainer{cfg}, FatalError);

    cfg = {};
    cfg.flipProb = 1.5;
    EXPECT_THROW(fi::FaultAwareTrainer{cfg}, FatalError);

    cfg = {};
    cfg.flipProb = -0.5;
    EXPECT_THROW(fi::FaultAwareTrainer{cfg}, FatalError);

    cfg = {};
    cfg.warmupEpochs = -1;
    EXPECT_THROW(fi::FaultAwareTrainer{cfg}, FatalError);

    // Boundary values are legal.
    cfg = {};
    cfg.failProb = 0.0;
    cfg.flipProb = 1.0;
    cfg.warmupEpochs = 0;
    EXPECT_NO_THROW(fi::FaultAwareTrainer{cfg});
}

// ---------------------------------------------------------------- canary

TEST(Canary, ChoosesHigherLevelAtLowerVoltage)
{
    const auto ctx = core::SimContext::standard();
    core::CanaryController controller(ctx, 16);
    const sram::VulnerabilityMap map(5, 0);

    const auto low = controller.chooseLevel(0.38_V, map);
    const auto high = controller.chooseLevel(0.50_V, map);
    ASSERT_TRUE(low.has_value());
    ASSERT_TRUE(high.has_value());
    EXPECT_GE(*low, *high);
}

TEST(Canary, ChosenLevelGuaranteesLowArrayFailProb)
{
    const auto ctx = core::SimContext::standard();
    core::CanaryController controller(ctx, 16, 64, 0.03_V);
    for (double v : {0.38, 0.42, 0.46, 0.50}) {
        for (std::uint64_t m = 0; m < 5; ++m) {
            const sram::VulnerabilityMap map(11, m);
            const auto level = controller.chooseLevel(Volt(v), map);
            ASSERT_TRUE(level.has_value()) << "v=" << v << " map=" << m;
            // Canary margin buys a real-array failure probability well
            // below the canary trip point.
            EXPECT_LT(controller.arrayFailProbAt(Volt(v), *level), 2e-2)
                << "v=" << v << " map=" << m;
        }
    }
}

TEST(Canary, FailuresDecreaseWithLevel)
{
    const auto ctx = core::SimContext::standard();
    core::CanaryController controller(ctx, 16, 256, 0.05_V);
    const sram::VulnerabilityMap map(13, 1);
    const Volt vdd{0.36};
    int prev = controller.observedFailures(vdd, 0, map);
    for (int level = 1; level <= 4; ++level) {
        const int cur = controller.observedFailures(vdd, level, map);
        EXPECT_LE(cur, prev) << "level " << level;
        prev = cur;
    }
}

TEST(Canary, ValidatesConstruction)
{
    const auto ctx = core::SimContext::standard();
    EXPECT_THROW(core::CanaryController(ctx, 16, 0), FatalError);
    EXPECT_THROW(core::CanaryController(ctx, 16, 64, Volt(-0.01)),
                 FatalError);
}

TEST(Canary, UnreachableAtExtremeLowVoltage)
{
    const auto ctx = core::SimContext::standard();
    // A huge margin makes even the top level insufficient at 0.34 V.
    core::CanaryController controller(ctx, 16, 256, 0.25_V);
    const sram::VulnerabilityMap map(17, 0);
    EXPECT_FALSE(controller.chooseLevel(0.34_V, map).has_value());
}

} // namespace
} // namespace vboost
