/**
 * @file
 * Tests for the V_min / yield analyzer: analytic error-free
 * probabilities, tolerance-based yield, the yield-V_min landmark, and
 * the Monte-Carlo die V_min distribution's agreement with both the
 * analytic model and the fault-map ground truth.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "sram/yield.hpp"

namespace vboost::sram {
namespace {

constexpr std::uint64_t kArrayBits = 144ull * 1024 * 8; // Dante SRAM

class YieldTest : public ::testing::Test
{
  protected:
    YieldTest() : analyzer_(FailureRateModel{}, kArrayBits) {}

    FailureRateModel model_;
    YieldAnalyzer analyzer_;
};

TEST_F(YieldTest, ErrorFreeProbabilityMatchesClosedForm)
{
    for (double v : {0.50, 0.55, 0.60}) {
        const double f = model_.rate(Volt(v));
        const double expected =
            std::exp(static_cast<double>(kArrayBits) * std::log1p(-f));
        EXPECT_NEAR(analyzer_.errorFreeProbability(Volt(v)), expected,
                    1e-12);
    }
    // Saturated failure rate: zero yield.
    EXPECT_DOUBLE_EQ(analyzer_.errorFreeProbability(0.25_V), 0.0);
}

TEST_F(YieldTest, YieldMonotoneInVoltageAndTolerance)
{
    EXPECT_LT(analyzer_.errorFreeProbability(0.50_V),
              analyzer_.errorFreeProbability(0.55_V));
    EXPECT_LT(analyzer_.errorFreeProbability(0.55_V),
              analyzer_.errorFreeProbability(0.62_V));
    // Tolerating more faulty bits can only help.
    const Volt v{0.52};
    double prev = analyzer_.yieldWithTolerance(v, 0);
    for (std::uint64_t k : {1ull, 4ull, 16ull, 64ull}) {
        const double cur = analyzer_.yieldWithTolerance(v, k);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST_F(YieldTest, ZeroToleranceMatchesErrorFree)
{
    // Poisson(λ) P(X=0) = e^-λ ~ (1-F)^N for small F.
    const Volt v{0.55};
    EXPECT_NEAR(analyzer_.yieldWithTolerance(v, 0),
                analyzer_.errorFreeProbability(v), 1e-6);
}

TEST_F(YieldTest, VminForYieldInvertsTheCurve)
{
    for (double target : {0.5, 0.9, 0.99}) {
        const Volt vmin = analyzer_.vminForYield(target);
        EXPECT_NEAR(analyzer_.errorFreeProbability(vmin), target,
                    0.01 * target);
        // Above V_min, yield exceeds the target.
        EXPECT_GT(analyzer_.errorFreeProbability(vmin + 0.02_V), target);
    }
    EXPECT_THROW(analyzer_.vminForYield(0.0), FatalError);
    EXPECT_THROW(analyzer_.vminForYield(1.0), FatalError);
}

TEST_F(YieldTest, HigherYieldTargetNeedsHigherVoltage)
{
    EXPECT_LT(analyzer_.vminForYield(0.5), analyzer_.vminForYield(0.99));
    // Bigger arrays need higher V_min for the same yield (Fig. 1's
    // scaling message).
    YieldAnalyzer big(model_, kArrayBits * 32);
    EXPECT_GT(big.vminForYield(0.9), analyzer_.vminForYield(0.9));
}

TEST_F(YieldTest, SampledVminIsConsistentWithGroundTruth)
{
    // Small array so the exhaustive check is fast.
    constexpr std::uint64_t bits = 32 * 1024;
    YieldAnalyzer small(model_, bits);
    const auto dist = small.sampleVmin(10, 77);
    ASSERT_EQ(dist.samples.size(), 10u);
    for (int d = 0; d < 10; ++d) {
        const VulnerabilityMap map(77, static_cast<std::uint64_t>(d));
        // The distribution is sorted, so re-derive this die's V_min.
        const double u_min = map.minUniform(bits);
        const double vmin =
            model_.voltageForRate(std::max(u_min, 1e-300)).value();
        // Just above V_min the die is clean; just below it is not.
        EXPECT_EQ(map.countFaulty(bits, model_.rate(Volt(vmin + 1e-4))),
                  0u)
            << "die " << d;
        EXPECT_GE(map.countFaulty(bits, model_.rate(Volt(vmin - 1e-3))),
                  1u)
            << "die " << d;
    }
}

TEST_F(YieldTest, VminDistributionCentersOnAnalyticMedian)
{
    constexpr std::uint64_t bits = 64 * 1024;
    YieldAnalyzer an(model_, bits);
    const auto dist = an.sampleVmin(60, 5);
    // Median die V_min ~ voltage where error-free probability = 0.5.
    const double analytic = an.vminForYield(0.5).value();
    EXPECT_NEAR(dist.percentile(50), analytic, 0.015);
    EXPECT_LT(dist.percentile(10), dist.percentile(90));
    EXPECT_GT(dist.mean(), 0.4);
}

TEST(VminDistributionMath, PercentileAndValidation)
{
    VminDistribution d;
    EXPECT_THROW(d.mean(), FatalError);
    d.samples = {0.5, 0.52, 0.54, 0.58};
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.5);
    EXPECT_DOUBLE_EQ(d.percentile(100), 0.58);
    EXPECT_NEAR(d.mean(), 0.535, 1e-12);
    EXPECT_THROW(d.percentile(101), FatalError);
}

TEST(YieldAnalyzerValidation, RejectsEmptyArray)
{
    EXPECT_THROW(YieldAnalyzer(FailureRateModel{}, 0), FatalError);
}

} // namespace
} // namespace vboost::sram
