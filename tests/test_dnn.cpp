/**
 * @file
 * Tests for the network container, trainer convergence, quantization,
 * synthetic datasets, model zoo and parameter serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/network.hpp"
#include "dnn/quantize.hpp"
#include "dnn/serialize.hpp"
#include "dnn/trainer.hpp"
#include "dnn/zoo.hpp"

namespace vboost::dnn {
namespace {

// -------------------------------------------------------------- network

TEST(Network, ForwardComposesLayers)
{
    Rng rng(1);
    Network net;
    net.addLayer<Dense>(2, 3, rng, "fc1");
    net.addLayer<Relu>("relu");
    net.addLayer<Dense>(3, 2, rng, "fc2");
    Tensor x({4, 2});
    Tensor y = net.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{4, 2}));
    EXPECT_EQ(net.size(), 3u);
}

TEST(Network, ParamCollectionsAndWeightFilter)
{
    Rng rng(1);
    Network net;
    net.addLayer<Dense>(2, 3, rng, "fc1");
    net.addLayer<Relu>("relu");
    net.addLayer<Dense>(3, 2, rng, "fc2");
    EXPECT_EQ(net.params().size(), 4u);
    const auto weights = net.weightParams();
    ASSERT_EQ(weights.size(), 2u);
    EXPECT_EQ(weights[0].name, "fc1.weight");
    EXPECT_EQ(weights[1].name, "fc2.weight");
}

TEST(Network, PredictAndAccuracy)
{
    Rng rng(1);
    Network net;
    auto &d = net.addLayer<Dense>(2, 2, rng, "fc");
    d.weight().fill(0.0f);
    d.weight().at(0, 0) = 1.0f; // class 0 follows feature 0
    d.weight().at(1, 1) = 1.0f; // class 1 follows feature 1
    d.bias().fill(0.0f);
    Tensor x({2, 2});
    x.at(0, 0) = 1.0f; // class 0
    x.at(1, 1) = 1.0f; // class 1
    EXPECT_EQ(net.predict(x), (std::vector<int>{0, 1}));
    EXPECT_DOUBLE_EQ(net.accuracy(x, {0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(net.accuracy(x, {1, 0}), 0.0);
    EXPECT_THROW(net.accuracy(x, {0}), FatalError);
}

TEST(Network, CopyParamsRequiresMatchingStructure)
{
    Rng rng(1);
    Network a, b, c;
    a.addLayer<Dense>(2, 3, rng, "fc");
    b.addLayer<Dense>(2, 3, rng, "fc");
    c.addLayer<Dense>(2, 4, rng, "fc");
    b.copyParamsFrom(a);
    const auto pa = a.params(), pb = b.params();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t e = 0; e < pa[i].value->numel(); ++e)
            EXPECT_EQ((*pa[i].value)[e], (*pb[i].value)[e]);
    EXPECT_THROW(c.copyParamsFrom(a), FatalError);
}

TEST(Network, EmptyForwardIsFatal)
{
    Network net;
    EXPECT_THROW(net.forward(Tensor({1, 1})), FatalError);
}

// -------------------------------------------------------------- trainer

TEST(Trainer, LearnsLinearlySeparableProblem)
{
    // Two Gaussian blobs in 2-D; a tiny MLP must exceed 95%.
    Rng rng(5);
    Dataset ds;
    ds.images = Tensor({200, 2});
    ds.labels.resize(200);
    for (int i = 0; i < 200; ++i) {
        const int cls = i % 2;
        ds.labels[static_cast<std::size_t>(i)] = cls;
        ds.images.at(i, 0) =
            static_cast<float>(rng.normal(cls ? 1.5 : -1.5, 0.4));
        ds.images.at(i, 1) =
            static_cast<float>(rng.normal(cls ? -1.0 : 1.0, 0.4));
    }
    Network net;
    net.addLayer<Dense>(2, 8, rng, "fc1");
    net.addLayer<Relu>("r");
    net.addLayer<Dense>(8, 2, rng, "fc2");

    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 16;
    SgdTrainer trainer(cfg);
    const auto stats = trainer.train(net, ds, rng);
    EXPECT_EQ(stats.size(), 12u);
    EXPECT_GT(stats.back().trainAccuracy, 0.95);
    // Loss decreases overall.
    EXPECT_LT(stats.back().meanLoss, stats.front().meanLoss);
    EXPECT_GT(SgdTrainer::evaluate(net, ds, 0), 0.95);
}

TEST(Trainer, ValidatesConfiguration)
{
    TrainConfig cfg;
    cfg.epochs = 0;
    EXPECT_THROW(SgdTrainer{cfg}, FatalError);
    cfg = TrainConfig{};
    cfg.learningRate = 0;
    EXPECT_THROW(SgdTrainer{cfg}, FatalError);
    cfg = TrainConfig{};
    cfg.momentum = 1.0;
    EXPECT_THROW(SgdTrainer{cfg}, FatalError);
}

TEST(Trainer, EvaluateCapsSamples)
{
    Rng rng(1);
    Network net;
    net.addLayer<Dense>(2, 2, rng, "fc");
    Dataset ds;
    ds.images = Tensor({10, 2});
    ds.labels.assign(10, 0);
    EXPECT_NO_THROW(SgdTrainer::evaluate(net, ds, 3));
    Dataset empty;
    empty.images = Tensor({1, 2});
    empty.labels = {};
    EXPECT_THROW(SgdTrainer::evaluate(net, empty, 0), FatalError);
}

// -------------------------------------------------------------- dataset

TEST(Dataset, SliceAndGather)
{
    Dataset ds;
    ds.images = Tensor({5, 3});
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 3; ++j)
            ds.images.at(i, j) = static_cast<float>(i * 10 + j);
    ds.labels = {0, 1, 2, 3, 4};

    const Dataset s = ds.slice(1, 2);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.labels, (std::vector<int>{1, 2}));
    EXPECT_FLOAT_EQ(s.images.at(0, 0), 10.0f);

    const Dataset g = ds.gather({4, 0});
    EXPECT_EQ(g.labels, (std::vector<int>{4, 0}));
    EXPECT_FLOAT_EQ(g.images.at(0, 2), 42.0f);

    EXPECT_THROW(ds.slice(4, 2), FatalError);
    EXPECT_THROW(ds.gather({7}), FatalError);
}

TEST(Dataset, SyntheticMnistShapeAndDeterminism)
{
    const auto a = makeSyntheticMnist(50, 9);
    const auto b = makeSyntheticMnist(50, 9);
    const auto c = makeSyntheticMnist(50, 10);
    EXPECT_EQ(a.images.shape(), (std::vector<int>{50, 784}));
    EXPECT_EQ(a.size(), 50u);
    // Deterministic for the same seed, different across seeds.
    for (std::size_t i = 0; i < a.images.numel(); ++i)
        ASSERT_EQ(a.images[i], b.images[i]);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.images.numel() && !any_diff; ++i)
        any_diff = a.images[i] != c.images[i];
    EXPECT_TRUE(any_diff);
    // Pixels in [0, 1].
    for (std::size_t i = 0; i < a.images.numel(); ++i) {
        ASSERT_GE(a.images[i], 0.0f);
        ASSERT_LE(a.images[i], 1.0f);
    }
}

TEST(Dataset, SyntheticCifarShapeAndLabels)
{
    const auto ds = makeSyntheticCifar(40, 3);
    EXPECT_EQ(ds.images.shape(), (std::vector<int>{40, 3, 32, 32}));
    std::array<int, 10> seen{};
    for (int l : ds.labels) {
        ASSERT_GE(l, 0);
        ASSERT_LT(l, 10);
        ++seen[static_cast<std::size_t>(l)];
    }
    EXPECT_THROW(makeSyntheticMnist(0, 1), FatalError);
}

TEST(Dataset, ClassesAreSeparated)
{
    // Class-mean separation must exceed intra-class spread: the task
    // is learnable by construction.
    const auto ds = makeSyntheticMnist(600, 4);
    std::vector<std::vector<double>> mean(10,
                                          std::vector<double>(784, 0.0));
    std::vector<int> count(10, 0);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const int c = ds.labels[i];
        ++count[static_cast<std::size_t>(c)];
        for (int j = 0; j < 784; ++j)
            mean[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] +=
                ds.images[i * 784 + static_cast<std::size_t>(j)];
    }
    for (int c = 0; c < 10; ++c)
        for (auto &v : mean[static_cast<std::size_t>(c)])
            v /= count[static_cast<std::size_t>(c)];
    double min_dist = 1e9;
    for (int a = 0; a < 10; ++a) {
        for (int b = a + 1; b < 10; ++b) {
            double d = 0;
            for (int j = 0; j < 784; ++j) {
                const double x =
                    mean[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(j)] -
                    mean[static_cast<std::size_t>(b)]
                        [static_cast<std::size_t>(j)];
                d += x * x;
            }
            min_dist = std::min(min_dist, std::sqrt(d));
        }
    }
    EXPECT_GT(min_dist, 2.0);
}

// ------------------------------------------------------------- quantize

TEST(Quantize, RoundTripWithinResolution)
{
    Rng rng(2);
    const Tensor t = Tensor::randn({100}, rng, 0.3);
    const auto q = quantize(t);
    const Tensor back = dequantize(q);
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_NEAR(back[i], t[i], q.codec.resolution());
}

TEST(Quantize, CodecCoversMaxAbsWithoutWaste)
{
    Tensor t({2});
    t[0] = 0.4f;
    t[1] = -0.3f;
    EXPECT_EQ(chooseCodec(t).fracBits(), 15); // range +-1 suffices
    t[0] = 1.7f;
    EXPECT_EQ(chooseCodec(t).fracBits(), 14); // range +-2
    t[0] = 3.5f;
    EXPECT_EQ(chooseCodec(t).fracBits(), 13); // range +-4
}

TEST(Quantize, RoundTripHelperMatchesManual)
{
    Rng rng(4);
    const Tensor t = Tensor::randn({50}, rng, 1.0);
    const Tensor a = quantizeRoundTrip(t);
    const Tensor b = dequantize(quantize(t));
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Quantize, ClipParametersBoundsEveryValue)
{
    Rng rng(6);
    Network net;
    net.addLayer<Dense>(8, 8, rng, "fc");
    auto &w = *net.params()[0].value;
    w[0] = 3.0f;
    w[1] = -2.5f;
    clipParameters(net, 0.5f);
    for (auto &p : net.params())
        for (std::size_t i = 0; i < p.value->numel(); ++i) {
            EXPECT_LE((*p.value)[i], 0.5f);
            EXPECT_GE((*p.value)[i], -0.5f);
        }
    EXPECT_THROW(clipParameters(net, 0.0f), FatalError);
}

// ------------------------------------------------------------------ zoo

TEST(Zoo, MnistFcTopologyMatchesPaper)
{
    // Sec. 2: 4 layers of size 784 x 256 x 256 x 256 x 32.
    EXPECT_EQ(mnistFcLayerSizes(),
              (std::vector<int>{784, 256, 256, 256, 32}));
    Rng rng(1);
    auto net = buildMnistFc(rng);
    const auto weights = net.weightParams();
    ASSERT_EQ(weights.size(), 4u);
    EXPECT_EQ(weights[0].value->shape(), (std::vector<int>{784, 256}));
    EXPECT_EQ(weights[3].value->shape(), (std::vector<int>{256, 32}));
    Tensor x({2, 784});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{2, 32}));
}

TEST(Zoo, AlexNetCifarHasFiveConvLayers)
{
    Rng rng(1);
    auto net = buildAlexNetCifar(rng);
    int convs = 0;
    for (auto &p : net.weightParams())
        convs += p.name.rfind("conv", 0) == 0;
    EXPECT_EQ(convs, 5);
    Tensor x({1, 3, 32, 32});
    EXPECT_EQ(net.forward(x).shape(), (std::vector<int>{1, 10}));
}

TEST(Zoo, ConvDimsConsistentWithNetwork)
{
    const auto dims = alexNetCifarConvDims();
    ASSERT_EQ(dims.size(), 5u);
    Rng rng(1);
    auto net = buildAlexNetCifar(rng);
    const auto weights = net.weightParams();
    for (std::size_t i = 0; i < dims.size(); ++i) {
        EXPECT_EQ(static_cast<std::uint64_t>(weights[i].value->numel()),
                  dims[i].weights())
            << "conv layer " << i;
    }
}

TEST(Zoo, ImageNetAlexNetMatchesPublishedCounts)
{
    const auto dims = alexNetImageNetConvDims();
    ASSERT_EQ(dims.size(), 5u);
    std::uint64_t macs = 0, weights = 0;
    for (const auto &d : dims) {
        macs += d.macs();
        weights += d.weights();
    }
    // Published AlexNet conv totals: ~666M MACs, ~2.3M weights.
    EXPECT_NEAR(static_cast<double>(macs), 666e6, 10e6);
    EXPECT_NEAR(static_cast<double>(weights), 2.33e6, 0.05e6);
}

// ------------------------------------------------------------ serialize

TEST(Serialize, SaveLoadRoundTrip)
{
    Rng rng(3);
    Network a, b;
    a.addLayer<Dense>(4, 3, rng, "fc");
    b.addLayer<Dense>(4, 3, rng, "fc");
    const std::string path = ::testing::TempDir() + "vboost_params.bin";
    saveParameters(a, path);
    ASSERT_TRUE(loadParameters(b, path));
    const auto pa = a.params(), pb = b.params();
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::size_t e = 0; e < pa[i].value->numel(); ++e)
            EXPECT_EQ((*pa[i].value)[e], (*pb[i].value)[e]);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse)
{
    Rng rng(3);
    Network net;
    net.addLayer<Dense>(2, 2, rng, "fc");
    EXPECT_FALSE(loadParameters(net, "/nonexistent/params.bin"));
}

TEST(Serialize, StructureMismatchIsFatal)
{
    Rng rng(3);
    Network a, b;
    a.addLayer<Dense>(4, 3, rng, "fc");
    b.addLayer<Dense>(4, 4, rng, "fc");
    const std::string path = ::testing::TempDir() + "vboost_params2.bin";
    saveParameters(a, path);
    EXPECT_THROW(loadParameters(b, path), FatalError);
    std::remove(path.c_str());
}

} // namespace
} // namespace vboost::dnn
