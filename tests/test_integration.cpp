/**
 * @file
 * End-to-end integration: train a network with the real training
 * pipeline, deploy it onto the Dante chip model, and verify the
 * paper's central behaviour — at low voltage, inference through
 * unboosted SRAM collapses while boosting restores accuracy at a
 * modest energy premium over the unboosted access path.
 */

#include <gtest/gtest.h>

#include "accel/dante.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/experiment.hpp"

namespace vboost {
namespace {

/** Compact FC topology that still exercises the full staging path. */
dnn::Network
compactFc(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 64, rng, "fc1");
    net.addLayer<dnn::Relu>("r1");
    net.addLayer<dnn::Dense>(64, 32, rng, "fc2");
    return net;
}

class EndToEnd : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        net_ = new dnn::Network(compactFc(1));
        test_ = new dnn::Dataset(dnn::makeSyntheticMnist(256, 22));
        auto train = dnn::makeSyntheticMnist(1500, 21);
        dnn::TrainConfig cfg;
        cfg.epochs = 5;
        dnn::SgdTrainer trainer(cfg);
        Rng rng(2);
        trainer.train(*net_, train, rng);
        dnn::clipParameters(*net_, 0.5f);
    }

    static void
    TearDownTestSuite()
    {
        delete net_;
        delete test_;
        net_ = nullptr;
        test_ = nullptr;
    }

    /** Accuracy of chip inference over the held-out set. */
    static double
    chipAccuracy(accel::DanteChip &chip, Volt vdd, int level,
                 std::uint64_t map_index, int input_level = -1)
    {
        const sram::VulnerabilityMap map(77, map_index);
        Rng rng(map_index + 1);
        const auto logits = chip.runFcInference(
            *net_, test_->images, vdd, {level, level},
            input_level < 0 ? level : input_level, map, rng);
        std::size_t correct = 0;
        for (int i = 0; i < logits.dim(0); ++i) {
            int best = 0;
            for (int j = 1; j < logits.dim(1); ++j) {
                if (logits.at(i, j) > logits.at(i, best))
                    best = j;
            }
            correct +=
                best == test_->labels[static_cast<std::size_t>(i)];
        }
        return static_cast<double>(correct) /
               static_cast<double>(test_->size());
    }

    static dnn::Network *net_;
    static dnn::Dataset *test_;
};

dnn::Network *EndToEnd::net_ = nullptr;
dnn::Dataset *EndToEnd::test_ = nullptr;

TEST_F(EndToEnd, FloatModelLearnsTask)
{
    EXPECT_GT(dnn::SgdTrainer::evaluate(*net_, *test_, 0), 0.95);
}

TEST_F(EndToEnd, HighVoltageChipMatchesFloatModel)
{
    auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    const double float_acc = dnn::SgdTrainer::evaluate(*net_, *test_, 0);
    const double chip_acc = chipAccuracy(chip, 0.6_V, 0, 0);
    EXPECT_NEAR(chip_acc, float_acc, 0.02);
}

TEST_F(EndToEnd, BoostingRestoresAccuracyAtLowVoltage)
{
    // The paper's Fig. 1 story on real simulated hardware: at a VLV
    // operating point, unboosted accuracy collapses toward chance
    // while boosting to Vddv4 recovers near-peak accuracy.
    auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    const Volt vdd{0.40};
    double unboosted = 0, boosted = 0;
    const int maps = 3;
    for (int m = 0; m < maps; ++m) {
        unboosted += chipAccuracy(chip, vdd, 0, 100 + m);
        boosted += chipAccuracy(chip, vdd, 4, 100 + m);
    }
    unboosted /= maps;
    boosted /= maps;
    EXPECT_LT(unboosted, 0.7);
    EXPECT_GT(boosted, 0.93);
}

TEST_F(EndToEnd, AccuracyMonotoneInBoostLevel)
{
    auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    const Volt vdd{0.42};
    std::vector<double> acc;
    for (int level = 0; level <= 4; ++level) {
        double a = 0;
        for (int m = 0; m < 3; ++m)
            a += chipAccuracy(chip, vdd, level, 200 + m);
        acc.push_back(a / 3);
    }
    // Allow small Monte-Carlo wiggle but require the overall trend.
    for (std::size_t i = 1; i < acc.size(); ++i)
        EXPECT_GE(acc[i] + 0.05, acc[i - 1]) << "level " << i;
    EXPECT_GT(acc.back(), acc.front());
}

TEST_F(EndToEnd, BoostEnergyPremiumIsBoundedButLeakageWins)
{
    // Boosted accesses cost more dynamic energy per access than
    // unboosted ones, but the premium stays far below the cost of
    // running the whole chip at the boosted voltage.
    auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    const Volt vdd{0.40};

    chip.resetCounters();
    chipAccuracy(chip, vdd, 0, 0);
    const double unboosted = chip.dynamicEnergy().value();

    chip.resetCounters();
    chipAccuracy(chip, vdd, 4, 0);
    const double boosted = chip.dynamicEnergy().value();

    EXPECT_GT(boosted, unboosted);
    EXPECT_LT(boosted, unboosted * 3.0);

    // Leakage at the chip level is evaluated at Vdd regardless of
    // boosting; a single-supply design meeting the same accuracy
    // would idle at the boosted voltage and leak much more.
    auto &em_tech = ctx.tech;
    circuit::EnergyModel em(em_tech);
    const double vddv =
        chip.weightMemory().bank(0).effectiveVoltage(vdd).value();
    EXPECT_GT(em.leakageScale(Volt(vddv)), em.leakageScale(vdd) * 1.5);
}

TEST_F(EndToEnd, FiHarnessAgreesWithChipSimulation)
{
    // The lightweight fi:: path (used for the big Monte-Carlo sweeps)
    // and the cycle-level chip staging path must tell the same story
    // at matched failure probabilities.
    auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    sram::FailureRateModel frm(ctx.failure);
    const Volt vdd{0.42};

    fi::ExperimentConfig cfg;
    cfg.numMaps = 4;
    cfg.maxTestSamples = 256;
    fi::FaultInjectionRunner runner(*net_, *test_, cfg);
    const double fi_acc =
        runner.run(frm.rate(vdd), fi::InjectionSpec::allWeights())
            .meanAccuracy;

    // Keep the input memory boosted to a reliable level so that, like
    // the fi:: harness's all-weights spec, only weights are faulty.
    double chip_acc = 0;
    for (int m = 0; m < 4; ++m)
        chip_acc += chipAccuracy(chip, vdd, 0, 300 + m,
                                 /*input_level=*/4);
    chip_acc /= 4;

    // Same qualitative operating point (both degraded, within a loose
    // band of each other; the chip path also corrupts activations).
    EXPECT_NEAR(chip_acc, fi_acc, 0.25);
}

} // namespace
} // namespace vboost
