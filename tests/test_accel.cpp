/**
 * @file
 * Tests for the dataflow activity models (Table-3 ratios) and the
 * Dante chip model (Table-1 configuration, set_boost_config ISA,
 * end-to-end FC inference through the faulty memories).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/dante.hpp"
#include "accel/dataflow.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/zoo.hpp"

namespace vboost::accel {
namespace {

// ------------------------------------------------------------- dataflow

TEST(DanaFc, AccessRatioMatchesTable3)
{
    // Table 3: SRAMAcc / MAC = 75% for the MNIST FC-DNN under DANA.
    DanaFcModel model;
    const auto layers =
        model.networkActivity(dnn::mnistFcLayerSizes());
    const auto total = totalActivity(layers);
    EXPECT_NEAR(total.accessRatio(), 0.75, 0.01);
}

TEST(DanaFc, MacsMatchLayerProducts)
{
    DanaFcModel model;
    const auto a = model.layerActivity(784, 256);
    EXPECT_EQ(a.macs, 784u * 256u);
    EXPECT_EQ(a.weightAccesses, 784u * 256u / 4);
    EXPECT_GT(a.inputAccesses, 0u);
    EXPECT_GT(a.psumAccesses, 0u);
    EXPECT_THROW(model.layerActivity(0, 5), FatalError);
}

TEST(DanaFc, NetworkActivityHasOneEntryPerLayer)
{
    DanaFcModel model;
    EXPECT_EQ(model.networkActivity({784, 256, 256, 256, 32}).size(), 4u);
    EXPECT_THROW(model.networkActivity({784}), FatalError);
}

TEST(EyerissRs, AlexNetRatioMatchesTable3)
{
    // Table 3: SRAMAcc / MAC = 1.67% for AlexNet under Row Stationary.
    EyerissRsModel model;
    const auto total =
        totalActivity(model.networkActivity(dnn::alexNetImageNetConvDims()));
    EXPECT_NEAR(total.accessRatio(), 0.0167, 0.004);
    // Orders of magnitude: ~666M MACs, ~10M buffer accesses.
    EXPECT_NEAR(static_cast<double>(total.macs), 666e6, 10e6);
}

TEST(EyerissRs, ConvAccessesAreMuchSparserThanFc)
{
    // Sec. 6.3: convolution layers reuse data far better than FC.
    EyerissRsModel rs;
    DanaFcModel fc;
    const auto conv = totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));
    const auto dense =
        totalActivity(fc.networkActivity(dnn::mnistFcLayerSizes()));
    EXPECT_LT(conv.accessRatio() * 10, dense.accessRatio());
}

TEST(EyerissRs, TrafficComponentsScaleWithGeometry)
{
    EyerissRsModel model;
    dnn::ConvLayerDims d{16, 32, 3, 16, 16, 16, 16};
    const auto a = model.layerActivity(d);
    EXPECT_EQ(a.macs, d.macs());
    EXPECT_GE(a.inputAccesses, d.inputs());
    EXPECT_GE(a.weightAccesses, d.weights());
    EXPECT_GE(a.psumAccesses, d.outputs());
    EXPECT_THROW(EyerissRsModel(RsArrayConfig{0, 32, 16}), FatalError);
}

TEST(LayerActivityMath, RatiosAndAccumulation)
{
    LayerActivity a{100, 10, 20, 30};
    EXPECT_EQ(a.totalAccesses(), 60u);
    EXPECT_DOUBLE_EQ(a.accessRatio(), 0.6);
    LayerActivity zero;
    EXPECT_DOUBLE_EQ(zero.accessRatio(), 0.0);
    a += LayerActivity{100, 1, 2, 3};
    EXPECT_EQ(a.macs, 200u);
    EXPECT_EQ(a.totalAccesses(), 66u);
}

// ---------------------------------------------------------------- dante

class DanteTest : public ::testing::Test
{
  protected:
    DanteTest()
        : ctx_(core::SimContext::standard()),
          chip_(DanteConfig::fromTable1(), ctx_.tech, ctx_.failure)
    {
    }

    core::SimContext ctx_;
    DanteChip chip_;
};

TEST_F(DanteTest, Table1Geometry)
{
    const auto &cfg = chip_.config();
    EXPECT_EQ(cfg.totalMacros(), 36);
    EXPECT_EQ(cfg.weightBytes(), 128u * 1024);
    EXPECT_EQ(cfg.inputBytes(), 16u * 1024);
    EXPECT_EQ(chip_.weightMemory().banks(), 16);
    EXPECT_EQ(chip_.inputMemory().banks(), 2);
    EXPECT_EQ(chip_.weightMemory().bank(0).levels(), 4);
}

TEST_F(DanteTest, FrequencyFollowsTable1)
{
    const auto &cfg = chip_.config();
    EXPECT_NEAR(cfg.frequencyAt(0.8_V).value(), 330e6, 1);
    EXPECT_NEAR(cfg.frequencyAt(0.5_V).value(), 50e6, 1);
    EXPECT_NEAR(cfg.frequencyAt(0.34_V).value(), 50e6, 1);
    EXPECT_GT(cfg.frequencyAt(0.65_V).value(), 50e6);
    EXPECT_LT(cfg.frequencyAt(0.65_V).value(), 330e6);
    EXPECT_THROW(cfg.frequencyAt(0.2_V), FatalError);
}

TEST_F(DanteTest, BoosterAreaMatchesTable1PerMacro)
{
    // Table 1: 0.0039 mm^2 per macro, 36 macros.
    const double per_macro_mm2 =
        chip_.boosterArea().value() / 1e6 / 36.0;
    EXPECT_NEAR(per_macro_mm2, 0.0039, 0.0008);
}

TEST_F(DanteTest, SetBoostConfigCountsInstructions)
{
    chip_.setWeightBoostLevel(3);
    EXPECT_EQ(chip_.counters().setBoostConfigInstrs, 16u);
    chip_.setInputBoostLevel(2);
    EXPECT_EQ(chip_.counters().setBoostConfigInstrs, 18u);
    for (int b = 0; b < 16; ++b)
        EXPECT_EQ(chip_.weightMemory().boostLevel(b), 3);
    chip_.setBoostConfig(5, 0b0001);
    EXPECT_EQ(chip_.weightMemory().boostLevel(5), 1);
}

TEST_F(DanteTest, CleanInferenceMatchesFloatModel)
{
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    const auto ds = dnn::makeSyntheticMnist(4, 3);
    sram::VulnerabilityMap map(1, 0);
    Rng rd(9);
    // Boosted well above the error floor: only quantization noise.
    const auto logits = chip_.runFcInference(net, ds.images, 0.5_V,
                                             {4, 4, 4, 4}, 4, map, rd);
    auto ref = net.forward(ds.images);
    ASSERT_EQ(logits.shape(), ref.shape());
    for (std::size_t i = 0; i < logits.numel(); ++i)
        EXPECT_NEAR(logits[i], ref[i], 0.01f);
}

TEST_F(DanteTest, LowVoltageUnboostedCorruptsInference)
{
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    const auto ds = dnn::makeSyntheticMnist(4, 3);
    sram::VulnerabilityMap map(1, 0);
    Rng rd(9);
    const auto bad = chip_.runFcInference(net, ds.images, 0.40_V,
                                          {0, 0, 0, 0}, 0, map, rd);
    const auto ref = net.forward(ds.images);
    double maxdiff = 0;
    for (std::size_t i = 0; i < bad.numel(); ++i)
        maxdiff = std::max(
            maxdiff, std::fabs(static_cast<double>(bad[i] - ref[i])));
    EXPECT_GT(maxdiff, 0.1);
}

TEST_F(DanteTest, CountersAccumulateActivity)
{
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    const auto ds = dnn::makeSyntheticMnist(2, 3);
    sram::VulnerabilityMap map(1, 0);
    Rng rd(9);
    chip_.runFcInference(net, ds.images, 0.5_V, {2, 2, 2, 2}, 1, map, rd);
    // 2 images x 339,968 MACs.
    EXPECT_EQ(chip_.counters().macOps, 2u * 339968u);
    const auto w = chip_.weightMemory().totalCounters();
    // Weights staged once per layer: 339,968 int16 words in and out.
    EXPECT_EQ(w.writes, 339968u / 4);
    EXPECT_EQ(w.reads, 339968u / 4);
    EXPECT_GT(w.boostEvents, 0u);
    EXPECT_GT(chip_.dynamicEnergy().value(), 0.0);
    chip_.resetCounters();
    EXPECT_EQ(chip_.counters().macOps, 0u);
    EXPECT_EQ(chip_.weightMemory().totalCounters().reads, 0u);
}

TEST_F(DanteTest, BoostLevelCountMustMatchLayers)
{
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    const auto ds = dnn::makeSyntheticMnist(1, 3);
    sram::VulnerabilityMap map(1, 0);
    Rng rd(9);
    EXPECT_THROW(chip_.runFcInference(net, ds.images, 0.5_V, {4, 4}, 4,
                                      map, rd),
                 FatalError);
}

TEST_F(DanteTest, LeakageGrowsWithVoltage)
{
    EXPECT_LT(chip_.leakagePower(0.34_V), chip_.leakagePower(0.5_V));
    EXPECT_LT(chip_.leakagePower(0.5_V), chip_.leakagePower(0.8_V));
}

/**
 * Property: across supplies, boosting all layers to the top level
 * yields inference logits closer to the reference than unboosted.
 */
class DanteBoostSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DanteBoostSweep, BoostingReducesLogitCorruption)
{
    const Volt vdd{GetParam()};
    auto ctx = core::SimContext::standard();
    DanteChip chip(DanteConfig::fromTable1(), ctx.tech, ctx.failure);
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    const auto ds = dnn::makeSyntheticMnist(4, 3);
    const auto ref = net.forward(ds.images);

    auto corruption = [&](int level) {
        sram::VulnerabilityMap map(1, 0);
        Rng rd(9);
        chip.resetCounters();
        const auto out = chip.runFcInference(
            net, ds.images, vdd, std::vector<int>(4, level), level, map,
            rd);
        double sum = 0;
        for (std::size_t i = 0; i < out.numel(); ++i)
            sum += std::fabs(static_cast<double>(out[i] - ref[i]));
        return sum;
    };

    EXPECT_LT(corruption(4), corruption(0));
}

INSTANTIATE_TEST_SUITE_P(Supplies, DanteBoostSweep,
                         ::testing::Values(0.38, 0.40, 0.42, 0.44));

} // namespace
} // namespace vboost::accel
