/**
 * @file
 * Tests for the generic (conv-capable) chip inference path: a small
 * conv network staged through the Dante model must match the float
 * model at reliable voltages, degrade when unboosted at VLV, recover
 * with boosting, and account MACs for Dense and Conv2d layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/dante.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"

namespace vboost::accel {
namespace {

/** Compact conv net: conv-pool-conv-pool-fc on 16x16x1 inputs. */
dnn::Network
tinyConvNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Conv2d>(1, 4, 3, 1, rng, "conv1");
    net.addLayer<dnn::Relu>("r1");
    net.addLayer<dnn::MaxPool2d>("p1");
    net.addLayer<dnn::Conv2d>(4, 8, 3, 1, rng, "conv2");
    net.addLayer<dnn::Relu>("r2");
    net.addLayer<dnn::MaxPool2d>("p2");
    net.addLayer<dnn::Flatten>("flat");
    net.addLayer<dnn::Dense>(8 * 4 * 4, 4, rng, "fc");
    return net;
}

class GenericChipTest : public ::testing::Test
{
  protected:
    GenericChipTest()
        : ctx_(core::SimContext::standard()),
          chip_(DanteConfig::fromTable1(), ctx_.tech, ctx_.failure),
          net_(tinyConvNet(1)), scratch_(tinyConvNet(2)),
          x_({3, 1, 16, 16})
    {
        Rng rng(9);
        for (std::size_t i = 0; i < x_.numel(); ++i)
            x_[i] = static_cast<float>(rng.uniform());
        dnn::clipParameters(net_, 0.5f);
    }

    core::SimContext ctx_;
    DanteChip chip_;
    dnn::Network net_;
    dnn::Network scratch_;
    dnn::Tensor x_;
    sram::VulnerabilityMap map_{1, 0};
};

TEST_F(GenericChipTest, HighVoltageMatchesFloatModel)
{
    Rng rng(5);
    const auto out = chip_.runInference(net_, scratch_, x_, 0.6_V,
                                        {4, 4, 4}, 4, map_, rng);
    const auto ref = net_.forward(x_);
    ASSERT_EQ(out.shape(), ref.shape());
    for (std::size_t i = 0; i < out.numel(); ++i)
        EXPECT_NEAR(out[i], ref[i], 0.05f);
}

TEST_F(GenericChipTest, MacAccountingCoversConvAndDense)
{
    Rng rng(5);
    chip_.resetCounters();
    chip_.runInference(net_, scratch_, x_, 0.6_V, {4, 4, 4}, 4, map_,
                       rng);
    // conv1: 4*1*9 weights x 16x16 output; conv2: 8*4*9 x 8x8;
    // fc: 128x4; all x batch 3.
    const std::uint64_t expected =
        3ull * (36 * 256 + 288 * 64 + 128 * 4);
    EXPECT_EQ(chip_.counters().macOps, expected);
    EXPECT_GT(chip_.weightMemory().totalCounters().reads, 0u);
    EXPECT_GT(chip_.inputMemory().totalCounters().reads, 0u);
}

TEST_F(GenericChipTest, UnboostedVlvCorruptsAndBoostRecovers)
{
    Rng r1(5), r2(5);
    const auto ref = net_.forward(x_);
    const auto bad = chip_.runInference(net_, scratch_, x_, 0.40_V,
                                        {0, 0, 0}, 0, map_, r1);
    const auto good = chip_.runInference(net_, scratch_, x_, 0.40_V,
                                         {4, 4, 4}, 4, map_, r2);
    double err_bad = 0, err_good = 0;
    for (std::size_t i = 0; i < ref.numel(); ++i) {
        err_bad += std::fabs(static_cast<double>(bad[i] - ref[i]));
        err_good += std::fabs(static_cast<double>(good[i] - ref[i]));
    }
    EXPECT_LT(err_good, err_bad);
    EXPECT_LT(err_good / static_cast<double>(ref.numel()), 0.05);
}

TEST_F(GenericChipTest, ValidatesLevelCount)
{
    Rng rng(5);
    EXPECT_THROW(chip_.runInference(net_, scratch_, x_, 0.6_V, {4, 4},
                                    4, map_, rng),
                 FatalError);
}

TEST_F(GenericChipTest, AgreesWithFcPathOnDenseNetworks)
{
    // The generic path and the legacy FC path must produce identical
    // logits on a Dense-only network under the same map and rng seed.
    Rng rng_a(5), rng_b(5);
    auto fc = [&](std::uint64_t s) {
        Rng r(s);
        dnn::Network n;
        n.addLayer<dnn::Dense>(32, 16, r, "fc1");
        n.addLayer<dnn::Relu>("relu");
        n.addLayer<dnn::Dense>(16, 4, r, "fc2");
        return n;
    };
    auto net = fc(3);
    auto scratch = fc(4);
    dnn::Tensor x({2, 32});
    Rng xr(6);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(xr.uniform());

    DanteChip chip_a(DanteConfig::fromTable1(), ctx_.tech, ctx_.failure);
    DanteChip chip_b(DanteConfig::fromTable1(), ctx_.tech, ctx_.failure);
    const auto a = chip_a.runInference(net, scratch, x, 0.42_V,
                                       {2, 2}, 2, map_, rng_a);
    const auto b = chip_b.runFcInference(net, x, 0.42_V, {2, 2}, 2,
                                         map_, rng_b);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]) << i;
}

} // namespace
} // namespace vboost::accel
