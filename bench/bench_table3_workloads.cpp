/**
 * @file
 * Table 3 reproduction: workload characteristics (dataflow, type and
 * SRAM-access-per-MAC ratio) for the MNIST FC-DNN under the DANA
 * dataflow and AlexNet's conv stack under Eyeriss Row Stationary, with
 * the per-layer breakdown behind the totals.
 */

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "dnn/zoo.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const accel::DanaFcModel dana;
    const accel::EyerissRsModel rs;
    const auto fc_layers =
        dana.networkActivity(dnn::mnistFcLayerSizes());
    const auto conv_layers =
        rs.networkActivity(dnn::alexNetImageNetConvDims());
    const auto fc_total = accel::totalActivity(fc_layers);
    const auto conv_total = accel::totalActivity(conv_layers);

    Table t({"Workload", "Dataflow", "Type", "SRAMAcc/MAC Ops",
             "paper"});
    t.addRow({"MNIST", "DANA", "4 Fully Connected Layers",
              Table::pct(fc_total.accessRatio()), "75%"});
    t.addRow({"AlexNet for CIFAR-10", "Eyeriss Row Stationary",
              "5 Conv layers", Table::pct(conv_total.accessRatio(), 2),
              "1.67%"});
    bench::emit("Table 3: workload characteristics", t, opts);

    Table fc({"FC layer", "MACs", "weight acc", "input acc", "psum acc",
              "ratio"});
    const auto sizes = dnn::mnistFcLayerSizes();
    for (std::size_t l = 0; l < fc_layers.size(); ++l) {
        fc.addRow({std::to_string(sizes[l]) + "x" +
                       std::to_string(sizes[l + 1]),
                   std::to_string(fc_layers[l].macs),
                   std::to_string(fc_layers[l].weightAccesses),
                   std::to_string(fc_layers[l].inputAccesses),
                   std::to_string(fc_layers[l].psumAccesses),
                   Table::pct(fc_layers[l].accessRatio())});
    }
    bench::emit("Table 3 detail: DANA FC per-layer activity", fc, opts);

    Table cv({"conv layer", "MACs (M)", "ifmap acc (M)",
              "filter acc (M)", "psum acc (M)", "ratio"});
    for (std::size_t l = 0; l < conv_layers.size(); ++l) {
        const auto &a = conv_layers[l];
        cv.addRow({"conv" + std::to_string(l + 1),
                   Table::num(static_cast<double>(a.macs) / 1e6, 1),
                   Table::num(static_cast<double>(a.inputAccesses) / 1e6,
                              2),
                   Table::num(static_cast<double>(a.weightAccesses) /
                                  1e6,
                              2),
                   Table::num(static_cast<double>(a.psumAccesses) / 1e6,
                              2),
                   Table::pct(a.accessRatio(), 2)});
    }
    bench::emit("Table 3 detail: Eyeriss RS per-layer global-buffer "
                "activity",
                cv, opts);
    return 0;
}
