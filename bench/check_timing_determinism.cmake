# Timing-datapath thread-count-invariance gate (DESIGN.md §13): run
# bench_abl_timing in smoke mode at --threads 1 and --threads 8 and
# require (a) the result JSON — including the per-point replay-count
# digests — to be bitwise identical and (b) the metrics fingerprint in
# the metrics JSON to be identical. Invoked by the
# timing_replay_determinism ctest entry with
# -DBENCH_TIMING=<exe> -DWORK_DIR=<dir>.

if(NOT BENCH_TIMING)
    message(FATAL_ERROR "pass -DBENCH_TIMING=<path to bench_abl_timing>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<writable work directory>")
endif()

set(ENV{VBOOST_BENCH_SMOKE} 1)

foreach(threads 1 8)
    execute_process(
        COMMAND ${BENCH_TIMING}
            --threads ${threads}
            --json ${WORK_DIR}/timing-det-t${threads}.json
            --metrics-out ${WORK_DIR}/timing-det-metrics-t${threads}.json
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "bench_abl_timing --threads ${threads} failed (${rc}):\n"
            "${out}\n${err}")
    endif()
endforeach()

# (a) Result JSON (replay digests included) must match bitwise.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/timing-det-t1.json
        ${WORK_DIR}/timing-det-t8.json
    RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR
        "joint-sweep JSON differs between --threads 1 and --threads 8 "
        "(timing-det-t1.json vs timing-det-t8.json)")
endif()

# (b) Metrics fingerprints must match.
foreach(threads 1 8)
    file(READ ${WORK_DIR}/timing-det-metrics-t${threads}.json contents)
    string(REGEX MATCH "\"fingerprint\": ([0-9]+)" _ "${contents}")
    if(NOT CMAKE_MATCH_1)
        message(FATAL_ERROR
            "no fingerprint field in timing-det-metrics-t${threads}.json")
    endif()
    set(fp_t${threads} ${CMAKE_MATCH_1})
endforeach()
if(NOT fp_t1 STREQUAL fp_t8)
    message(FATAL_ERROR
        "metrics fingerprint differs: threads=1 -> ${fp_t1}, "
        "threads=8 -> ${fp_t8}")
endif()

message(STATUS
    "timing determinism OK: fingerprint ${fp_t1}, replay digests and "
    "result JSON bitwise identical at 1 vs 8 threads")
