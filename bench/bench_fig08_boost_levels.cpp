/**
 * @file
 * Fig. 8 reproduction: peak boosted voltage for the four programmable
 * levels of the standard configuration driving a 32 Kbit macro, for
 * low supplies (left panel, 0.34-0.5 V) and high supplies (right
 * panel, 0.5-0.8 V, reported as boost delta Vb).
 */

#include "bench_util.hpp"
#include "circuit/booster.hpp"
#include "common/logging.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto tech = circuit::TechnologyParams::default14nm();
    // Fig. 8 is for a single 32 Kbit macro with its own column.
    circuit::BoosterBank bank(circuit::BoosterDesign::standardConfig(),
                              tech.macroArrayCap + tech.fixedParasiticCap,
                              tech);

    Table low({"Vdd (V)", "Vddv1 (V)", "Vddv2 (V)", "Vddv3 (V)",
               "Vddv4 (V)"});
    for (Volt v : bench::vlvGrid()) {
        std::vector<std::string> row{Table::num(v.value(), 2)};
        for (int level = 1; level <= 4; ++level)
            row.push_back(
                Table::num(bank.boostedVoltage(v, level).value(), 3));
        low.addRow(row);
    }
    bench::emit("Fig. 8 (left): boosted voltage at very low Vdd", low,
                opts);

    Table high({"Vdd (V)", "Vb1 (mV)", "Vb2 (mV)", "Vb3 (mV)",
                "Vb4 (mV)", "peak boost ratio"});
    for (Volt v : bench::highGrid()) {
        std::vector<std::string> row{Table::num(v.value(), 2)};
        for (int level = 1; level <= 4; ++level)
            row.push_back(Table::num(
                bank.boostDelta(v, level).value() * 1e3, 0));
        row.push_back(
            Table::pct(bank.boostDelta(v, 4).value() / v.value()));
        high.addRow(row);
    }
    bench::emit("Fig. 8 (right): boost delta Vb at high Vdd", high, opts);
    return 0;
}
