/**
 * @file
 * Extension: the dual-rail regulator landscape of the paper's
 * introduction, quantified. For the AlexNet workload with the memory
 * held at Vddv4 reliability, compares total dynamic energy when the
 * logic rail is derived with an LDO (paper's comparison point), a
 * fully integrated switched-capacitor converter (< 80% efficiency),
 * and an off-chip buck converter (~90%), against supply boosting —
 * which needs no second rail at all. Also prints each regulator's
 * efficiency across the conversion-ratio range.
 */

#include <memory>

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "circuit/ldo.hpp"
#include "circuit/regulators.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "dnn/zoo.hpp"
#include "energy/supply_config.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    const circuit::LdoRegulator ldo;
    const circuit::BuckConverter buck;
    const circuit::SwitchedCapacitorConverter scc;

    // Efficiency landscape.
    Table eff({"Vout/Vin", "LDO", "switched-cap", "buck (off-chip)"});
    for (double d : {0.5, 0.6, 0.67, 0.75, 0.85, 0.95}) {
        const Volt vin{1.0};
        const Volt vout{d};
        eff.addRow({Table::num(d, 2),
                    Table::pct(ldo.efficiency(vout, vin)),
                    Table::pct(scc.efficiency(vout, vin)),
                    Table::pct(buck.efficiency(vout, vin))});
    }
    bench::emit("Extension: regulator efficiency vs conversion ratio",
                eff, opts);

    // System energy: AlexNet, memory at Vddv4 of each chip supply.
    const accel::EyerissRsModel rs;
    const auto total = accel::totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));
    const energy::Workload w{total.totalAccesses(), total.macs};
    const auto &em = sc.energyModel();

    Table t({"Vdd (V)", "boost (uJ)", "dual-LDO (uJ)",
             "dual-SC (uJ)", "dual-buck (uJ)", "boost vs best dual"});
    for (Volt vdd : bench::vlvGrid()) {
        const Volt vddv = sc.boostedVoltage(vdd, 4);
        const double boost =
            sc.boostedDynamic(w, vdd, 4).total().value();
        // All dual options: SRAM at vddv; PE load at vdd delivered
        // through the respective regulator from the vddv input rail.
        const double sram = em.sramAccessEnergy(vddv, 16).value() *
                            static_cast<double>(w.sramAccesses);
        const double pe = em.peOpEnergy(vdd).value() *
                          static_cast<double>(w.computeOps);
        const double d_ldo = sram + pe / ldo.efficiency(vdd, vddv);
        const double d_sc = sram + pe / scc.efficiency(vdd, vddv);
        const double d_buck = sram + pe / buck.efficiency(vdd, vddv);
        const double best =
            std::min(d_ldo, std::min(d_sc, d_buck));
        t.addRow({Table::num(vdd.value(), 2),
                  Table::num(boost * 1e6, 1),
                  Table::num(d_ldo * 1e6, 1),
                  Table::num(d_sc * 1e6, 1),
                  Table::num(d_buck * 1e6, 1),
                  Table::pct(1.0 - boost / best)});
    }
    bench::emit("Extension: AlexNet dynamic energy per dual-rail "
                "technology vs boosting (memory at Vddv4)",
                t, opts);

    Table n({"note", ""});
    n.addRow({"buck", "needs off-chip inductors: packaging cost, no "
                      "fine-grained spatial control"});
    n.addRow({"switched-cap", "< 80% efficiency without deep-trench "
                              "caps; discrete ratios only"});
    n.addRow({"LDO", "fully integrated but eta ~ Vout/Vin"});
    n.addRow({"boosting", "fully integrated, per-bank spatial + "
                          "per-access temporal control"});
    bench::emit("Extension: qualitative trade-offs (paper Sec. 1)", n,
                opts);
    return 0;
}
