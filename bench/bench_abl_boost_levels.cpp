/**
 * @file
 * Ablation: number of programmable boost levels P. The paper notes
 * (Sec. 6.3) that "with finer voltage adjustment (> 4 boost levels),
 * one can obtain even greater energy savings". We rebuild the booster
 * column with P in {1, 2, 4, 8, 16} (same total boost capacitance,
 * finer steps) and measure the iso-accuracy dynamic energy of the
 * AlexNet workload: finer granularity lets the controller boost just
 * high enough, saving the overshoot energy of coarse designs.
 */

#include <map>

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "fi/accuracy_curve.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);

    const accel::EyerissRsModel rs;
    const auto total = accel::totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));
    const energy::Workload w{total.totalAccesses(), total.macs};

    auto net = bench::trainedAlexNet(opts);
    const auto test = bench::cifarTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(4);
    fcfg.maxTestSamples = opts.samples(200);
    fcfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3, 8);
    const double target = curve.faultFree() - 0.02;
    const auto oracle = [&](Volt vddv) {
        return curve.at(frm.rate(vddv));
    };

    Table t({"levels P", "Vdd (V)", "chosen level", "Vddv (V)",
             "boost dyn (uJ)", "vs P=4"});
    // Reference energies of the paper's P=4 design, computed first.
    std::map<double, double> p4_energy;
    {
        core::TradeoffExplorer explorer4(ctx, 16);
        for (Volt vdd : {0.38_V, 0.42_V, 0.46_V}) {
            const auto op =
                explorer4.isoAccuracyPoint(vdd, target, oracle, w);
            if (op)
                p4_energy[vdd.value()] = op->boostedEnergy.value() * 1e6;
        }
    }
    for (int p : {1, 2, 4, 8, 16}) {
        // Same peak boost capacitance (40 pF MIM + 256 inverters per
        // macro), split into P equal cells.
        core::SimContext variant = ctx;
        variant.design = circuit::BoosterDesign::uniform(
            p, 256 / p, Farad(40.0e-12 / p));
        core::TradeoffExplorer explorer(variant, 16);
        for (Volt vdd : {0.38_V, 0.42_V, 0.46_V}) {
            const auto op =
                explorer.isoAccuracyPoint(vdd, target, oracle, w);
            if (!op) {
                t.addRow({std::to_string(p), Table::num(vdd.value(), 2),
                          "-", "-", "-", "target unreachable"});
                continue;
            }
            const double uj = op->boostedEnergy.value() * 1e6;
            std::string rel = "-";
            if (p4_energy.count(vdd.value()))
                rel = Table::pct(uj / p4_energy[vdd.value()] - 1.0);
            t.addRow({std::to_string(p), Table::num(vdd.value(), 2),
                      std::to_string(op->level),
                      Table::num(op->vddv.value(), 3),
                      Table::num(uj, 2), rel});
        }
    }
    bench::emit("Ablation: programmable boost granularity P "
                "(iso-accuracy AlexNet energy; finer P avoids "
                "overshoot)",
                t, opts);
    return 0;
}
