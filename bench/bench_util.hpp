/**
 * @file
 * Shared infrastructure for the figure/table benches: command-line
 * options (--paper scales the Monte-Carlo effort up to the paper's
 * settings, --csv dumps machine-readable output), cached trained
 * models (train once, reuse across benches via a parameter file in
 * ./bench_cache), and the standard voltage grids of the evaluation.
 */

#ifndef VBOOST_BENCH_BENCH_UTIL_HPP
#define VBOOST_BENCH_BENCH_UTIL_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dnn/dataset.hpp"
#include "dnn/network.hpp"

namespace vboost::bench {

/** Parsed bench options. */
struct BenchOptions
{
    /** Paper-scale Monte Carlo (100 maps, full test sets). */
    bool paper = false;
    /** CI smoke mode: shrink Monte-Carlo effort to seconds
     *  (--smoke or VBOOST_BENCH_SMOKE=1). */
    bool smoke = false;
    /** Monte-Carlo worker threads. The default 0 means all hardware
     *  threads; an explicit `--threads 0` is rejected at parse time
     *  (positive counts only). */
    int threads = 0;
    /** Optional CSV output path ("-" = stdout after the table). */
    std::string csvPath;
    /** Cache directory for trained model parameters. */
    std::string cacheDir = "bench_cache";
    /** Resilience policy selector: "open", "closed" or "both". */
    std::string policy = "both";
    /** Closed-loop retry budget (extra attempts per access). */
    int retryBudget = 3;
    /** Spare rows available for quarantine. */
    int spares = 8;
    /** Optional JSON output path for machine-readable results. */
    std::string jsonPath;
    /** Fault-map spatial model: "iid" or "clustered" (MoRS-lite
     *  row/column defect clustering, DESIGN.md §13). */
    std::string mapModel = "iid";
    /** Compute backend selection ("auto", "reference", "vectorized");
     *  validated and applied (dnn::setActiveBackend) at parse time. */
    std::string backend = "auto";
    /** Optional metrics-registry JSON output path (DESIGN.md §11). */
    std::string metricsOutPath;
    /** Optional Chrome trace_event JSON output path (§11). */
    std::string traceOutPath;
    /** Cluster shard-count override for the cluster benches (0 = use
     *  the bench's built-in sweep; positive = single shard count). */
    int shards = 0;
    /** Cluster replica-group size: the primary plus two successor
     *  spill/failover targets (>= 1; must not exceed --shards when
     *  both are given — enforced at parse time). */
    int replicas = 3;

    /** Parse argv; recognizes --paper, --smoke, --threads <n>,
     *  --csv <path>, --cache <dir>, --policy <open|closed|both>,
     *  --retry-budget <n>, --spares <n>, --json <path>,
     *  --map-model <iid|clustered>,
     *  --backend <auto|reference|vectorized> (rejected at parse time
     *  when unknown or unavailable on this machine),
     *  --metrics-out <path>, --trace-out <path>,
     *  --shards <n>, --replicas <n> (validated at parse time like
     *  --backend);
     *  VBOOST_BENCH_SMOKE=1 in the environment also enables smoke
     *  mode. Unknown options and missing values print the usage to
     *  stderr and exit with status 2. */
    static BenchOptions parse(int argc, char **argv);

    /** The usage text parse() prints on --help and on errors. */
    static void printUsage(std::ostream &os);

    /** Monte-Carlo fault maps to run (paper: 100, smoke: <= 2). */
    int maps(int fast_default = 10) const
    {
        if (smoke)
            return fast_default < 2 ? fast_default : 2;
        return paper ? 100 : fast_default;
    }

    /** Test samples to evaluate (paper: 5000 for MNIST,
     *  smoke: <= 64). */
    std::size_t samples(std::size_t fast_default = 400) const
    {
        if (smoke)
            return fast_default < 64 ? fast_default : 64;
        return paper ? 5000 : fast_default;
    }
};

/** Print a titled table, and CSV when requested. */
void emit(const std::string &title, const Table &table,
          const BenchOptions &opts);

/**
 * The paper's FC-DNN (784-256-256-256-32) trained on synthetic MNIST
 * and clipped for deployment; cached under opts.cacheDir.
 */
dnn::Network trainedMnistFc(const BenchOptions &opts);

/** Held-out synthetic MNIST test set. */
dnn::Dataset mnistTestSet(const BenchOptions &opts);

/** The 5-conv AlexNet-for-CIFAR, trained and clipped; cached. */
dnn::Network trainedAlexNet(const BenchOptions &opts);

/** Held-out synthetic CIFAR test set. */
dnn::Dataset cifarTestSet(const BenchOptions &opts);

/** VLV supply grid 0.34-0.50 V (the paper's Figs. 13-15 x-axis). */
std::vector<Volt> vlvGrid();

/** Wide grid 0.34-0.60 V for the BER/accuracy curves (Figs. 1, 2, 7). */
std::vector<Volt> wideGrid();

/** High-voltage grid 0.5-0.8 V (Figs. 8 right, 9). */
std::vector<Volt> highGrid();

} // namespace vboost::bench

#endif // VBOOST_BENCH_BENCH_UTIL_HPP
