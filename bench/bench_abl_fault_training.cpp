/**
 * @file
 * Ablation: fault-aware training (related work [20-22]) composed with
 * boosting. Trains the FC-DNN twice — standard SGD and fault-aware SGD
 * (per-batch weight bit flips at the ~0.45 V error rate) — and compares
 * accuracy across voltage. The hardened model tolerates a lower boost
 * level at the same target, compounding the energy savings; the paper
 * notes boosting "mitigates the need for fault-aware training", and
 * this bench quantifies how much the two overlap.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/quantize.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "fi/fault_training.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);

    // Standard model from the shared cache.
    auto baseline = bench::trainedMnistFc(opts);

    // Fault-aware model: train at the error rate of ~0.43 V.
    Rng rng(7);
    auto hardened = dnn::buildMnistFc(rng);
    Rng rng_scratch(17);
    auto train_scratch = dnn::buildMnistFc(rng_scratch);
    {
        const auto train = dnn::makeSyntheticMnist(4000, 1);
        fi::FaultTrainConfig fcfg;
        fcfg.base.epochs = 6;
        fcfg.warmupEpochs = 2;
        // Train at the error rate of ~0.454 V (5e-3): harsh enough to
        // harden, gentle enough for stable convergence.
        fcfg.failProb = frm.rate(0.454_V);
        fi::FaultAwareTrainer fat(fcfg);
        Rng trng(3);
        fat.train(hardened, train_scratch, train, trng);
        dnn::clipParameters(hardened, 0.5f);
    }

    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(8);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;

    fi::FaultInjectionRunner run_b(baseline, test, cfg);
    fi::FaultInjectionRunner run_h(hardened, test, cfg);

    Table t({"Vdd (V)", "BER", "standard training", "fault-aware",
             "gain"});
    for (Volt v : bench::wideGrid()) {
        const double f = frm.rate(v);
        const double ab =
            run_b.run(f, fi::InjectionSpec::allWeights()).meanAccuracy;
        const double ah =
            run_h.run(f, fi::InjectionSpec::allWeights()).meanAccuracy;
        t.addRow({Table::num(v.value(), 2), Table::sci(f),
                  Table::pct(ab), Table::pct(ah),
                  Table::pct(ah - ab)});
    }
    bench::emit("Ablation: fault-aware training vs standard training "
                "(unboosted accuracy across Vdd)",
                t, opts);

    // Minimum boost level meeting the within-2% target for each model.
    auto min_level = [&](fi::FaultInjectionRunner &runner) {
        const double target = runner.baselineAccuracy() - 0.02;
        Table lv({"Vdd (V)", "min level meeting target"});
        for (Volt v : bench::vlvGrid()) {
            const auto oracle = [&](Volt vddv) {
                return runner
                    .run(frm.rate(vddv),
                         fi::InjectionSpec::allWeights())
                    .meanAccuracy;
            };
            const auto level =
                explorer.minimalLevelForAccuracy(v, target, oracle);
            lv.addRow({Table::num(v.value(), 2),
                       level ? std::to_string(*level) : "unreachable"});
        }
        return lv;
    };
    bench::emit("Min boost level, standard training", min_level(run_b),
                opts);
    bench::emit("Min boost level, fault-aware training",
                min_level(run_h), opts);
    return 0;
}
