/**
 * @file
 * Ablation: the closed-loop resilient SRAM access pipeline
 * (DESIGN.md §8) against the fire-and-forget open loop, across the VLV
 * supply grid. Sweeps retry budget x escalation policy x spare-row
 * count for the FC-DNN and reports accuracy, residual corruption, the
 * pipeline's own counters (retries, escalations, standing raises,
 * quarantines) and total SRAM energy. The headline question: does
 * reacting to ECC detections (retry at an escalated boost level, raise
 * chronically failing banks, quarantine repeat-offender rows) beat
 * paying for boost on every access up front?
 *
 * The dominance check at the end looks for a VLV point where the
 * closed loop is at least as accurate as an open-loop baseline at
 * strictly lower SRAM energy (or strictly more accurate at equal or
 * lower energy). A perf table shows how the measured retry rate
 * perturbs the Dante performance model.
 *
 * --policy open|closed|both selects the variants; --retry-budget and
 * --spares parameterize the closed loop; --json <path> dumps the
 * full result set for machine consumption (CI uploads this artifact).
 */

#include <fstream>
#include <sstream>
#include <vector>

#include "accel/dataflow.hpp"
#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "fi/experiment.hpp"
#include "json_writer.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "resilience/policy.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** One evaluated (policy, voltage) cell. */
struct ResultRow
{
    resilience::ResiliencePolicy policy;
    Volt vdd{0.0};
    double ber = 0.0;
    fi::ResilientAccuracyPoint r;
};

double
perRead(std::uint64_t count, std::uint64_t reads)
{
    return reads ? static_cast<double>(count) /
                       static_cast<double>(reads)
                 : 0.0;
}

/** Closed-over-open dominance: better on one axis, no worse on the
 *  other (accuracy compared with a small Monte-Carlo epsilon). */
bool
dominates(const ResultRow &closed, const ResultRow &open, double eps)
{
    const double ca = closed.r.point.meanAccuracy;
    const double oa = open.r.point.meanAccuracy;
    const double ce = closed.r.meanAccessEnergy.value();
    const double oe = open.r.meanAccessEnergy.value();
    return (ca >= oa - eps && ce < oe) || (ca > oa + eps && ce <= oe);
}

void
writeJson(const std::string &path, const std::vector<ResultRow> &rows,
          const ResultRow *dom_closed, const ResultRow *dom_open,
          const bench::BenchOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON to ", path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("bench", "abl_resilience")
        .field("smoke", opts.smoke)
        .field("paper", opts.paper)
        .field("map_model", opts.mapModel)
        .beginArrayField("points");
    for (const auto &row : rows) {
        const auto &s = row.r.stats;
        json.beginObject()
            .field("policy", row.policy.name())
            .field("vdd", row.vdd.value())
            .field("ber", row.ber)
            .field("accuracy", row.r.point.meanAccuracy)
            .field("accuracy_stddev", row.r.point.stddevAccuracy)
            .field("residual_flips", row.r.point.meanBitFlips)
            .field("reads", s.reads)
            .field("corrected_reads", s.correctedReads)
            .field("retried_reads", s.retriedReads)
            .field("retries", s.retries)
            .field("escalations", s.escalations)
            .field("standing_raises", s.standingRaises)
            .field("quarantines", s.quarantines)
            .field("spare_reads", s.spareReads)
            .field("spare_exhausted", s.spareExhausted)
            .field("uncorrected", s.uncorrected)
            .field("energy_j", row.r.meanAccessEnergy.value())
            .field("retry_latency_s", row.r.meanRetryLatency.value())
            .field("spare_table_digest", s.spareTableDigest)
            .endObject();
    }
    json.endArray().beginObjectField("dominance");
    if (dom_closed && dom_open) {
        json.field("found", true)
            .field("vdd", dom_closed->vdd.value())
            .field("closed", dom_closed->policy.name())
            .field("open", dom_open->policy.name())
            .field("closed_accuracy", dom_closed->r.point.meanAccuracy)
            .field("open_accuracy", dom_open->r.point.meanAccuracy)
            .field("closed_energy_j",
                   dom_closed->r.meanAccessEnergy.value())
            .field("open_energy_j", dom_open->r.meanAccessEnergy.value());
    } else {
        json.field("found", false);
    }
    json.endObject().endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);

    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(6);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    if (opts.mapModel == "clustered")
        cfg.mapModel = sram::MapModel::Clustered;
    fi::FaultInjectionRunner runner(net, test, cfg);

    using resilience::EscalationPolicy;
    using resilience::ResiliencePolicy;

    // The sweep: open-loop baselines (unboosted and always-boosted)
    // against closed-loop variants over retry budget x escalation x
    // spare count.
    std::vector<ResiliencePolicy> policies;
    if (opts.policy != "closed") {
        policies.push_back(ResiliencePolicy::openLoop(0));
        policies.push_back(ResiliencePolicy::openLoop(1));
    }
    if (opts.policy != "open") {
        policies.push_back(ResiliencePolicy::closedLoop(
            opts.retryBudget, EscalationPolicy::StepUp, opts.spares));
        if (!opts.smoke) {
            policies.push_back(ResiliencePolicy::closedLoop(
                1, EscalationPolicy::StepUp, opts.spares));
            policies.push_back(ResiliencePolicy::closedLoop(
                opts.retryBudget, EscalationPolicy::Hold, opts.spares));
            policies.push_back(ResiliencePolicy::closedLoop(
                opts.retryBudget, EscalationPolicy::StepUp, 0));
        }
        policies.push_back(ResiliencePolicy::closedLoop(
            opts.retryBudget, EscalationPolicy::MaxOut, opts.spares));
    }

    std::vector<Volt> grid =
        opts.smoke ? std::vector<Volt>{0.42_V, 0.46_V} : bench::vlvGrid();

    // One observability sink across the whole policy x voltage sweep:
    // each cell re-attaches with {policy, vdd} labels so the registry
    // separates the cells while the Monte-Carlo merge path stays
    // thread-count invariant (DESIGN.md §11).
    obs::Observability obsv;
    const bool want_obs =
        !opts.metricsOutPath.empty() || !opts.traceOutPath.empty();
    std::uint64_t cell_pid = 0;

    std::vector<ResultRow> rows;
    Table t({"policy", "Vdd (V)", "BER", "accuracy", "resid flips",
             "retries/read", "escal", "raises", "quarant", "spare rd",
             "uncorr", "energy (nJ)", "retry lat (us)"});
    for (const auto &policy : policies) {
        for (Volt v : grid) {
            ResultRow row;
            row.policy = policy;
            row.vdd = v;
            row.ber = frm.rate(v);
            if (want_obs) {
                std::ostringstream vdd_label;
                vdd_label << v.value();
                obsv.trace.setProcessName(cell_pid,
                                          policy.name() + " @ " +
                                              vdd_label.str() + " V");
                runner.attachObservability(&obsv, cell_pid,
                                           {{"policy", policy.name()},
                                            {"vdd", vdd_label.str()}});
                ++cell_pid;
            }
            row.r = runner.runResilient(v, ctx, policy);
            const auto &s = row.r.stats;
            t.addRow({policy.name(), Table::num(v.value(), 2),
                      Table::sci(row.ber),
                      Table::pct(row.r.point.meanAccuracy),
                      Table::num(row.r.point.meanBitFlips, 1),
                      Table::num(perRead(s.retries, s.reads), 4),
                      std::to_string(s.escalations),
                      std::to_string(s.standingRaises),
                      std::to_string(s.quarantines),
                      std::to_string(s.spareReads),
                      std::to_string(s.uncorrected),
                      Table::num(row.r.meanAccessEnergy.value() * 1e9,
                                 2),
                      Table::num(row.r.meanRetryLatency.value() * 1e6,
                                 3)});
            rows.push_back(row);
        }
    }
    bench::emit("Ablation: closed-loop resilient pipeline vs open loop "
                "(FC-DNN, VLV grid, " + opts.mapModel + " fault maps)",
                t, opts);

    // Dominance: find the VLV point where some closed-loop variant
    // beats an open-loop baseline on one axis without losing the
    // other; among all dominating pairs keep the largest energy win.
    const double eps = 0.0025;
    const ResultRow *dom_closed = nullptr;
    const ResultRow *dom_open = nullptr;
    double best_saving = 0.0;
    for (const auto &c : rows) {
        if (c.policy.mode != resilience::AccessPolicyMode::ClosedLoop)
            continue;
        for (const auto &o : rows) {
            if (o.policy.mode != resilience::AccessPolicyMode::OpenLoop ||
                o.vdd.value() != c.vdd.value())
                continue;
            const double saving = o.r.meanAccessEnergy.value() -
                                  c.r.meanAccessEnergy.value();
            if (dominates(c, o, eps) &&
                (!dom_closed || saving > best_saving)) {
                dom_closed = &c;
                dom_open = &o;
                best_saving = saving;
            }
        }
    }
    Table d({"verdict", "Vdd (V)", "closed policy", "open policy",
             "closed acc", "open acc", "closed nJ", "open nJ"});
    if (dom_closed) {
        d.addRow({"closed loop dominates",
                  Table::num(dom_closed->vdd.value(), 2),
                  dom_closed->policy.name(), dom_open->policy.name(),
                  Table::pct(dom_closed->r.point.meanAccuracy),
                  Table::pct(dom_open->r.point.meanAccuracy),
                  Table::num(
                      dom_closed->r.meanAccessEnergy.value() * 1e9, 2),
                  Table::num(dom_open->r.meanAccessEnergy.value() * 1e9,
                             2)});
    } else {
        d.addRow({"no dominating point found", "-", "-", "-", "-", "-",
                  "-", "-"});
    }
    bench::emit("Closed-over-open dominance at VLV", d, opts);

    // Perturb the Dante performance model with the measured retry
    // rates of the main closed-loop policy.
    if (opts.policy != "open") {
        accel::PerformanceModel perf(ctx, 16);
        const auto activity = accel::totalActivity(
            accel::DanaFcModel().networkActivity(
                {784, 256, 256, 256, 32}));
        Table p({"Vdd (V)", "retries/read", "escal frac",
                 "clock (MHz)", "runtime open (us)",
                 "runtime closed (us)", "GOPS/W open", "GOPS/W closed"});
        for (const auto &row : rows) {
            if (row.policy.mode !=
                    resilience::AccessPolicyMode::ClosedLoop ||
                row.policy.name() !=
                    resilience::ResiliencePolicy::closedLoop(
                        opts.retryBudget, EscalationPolicy::StepUp,
                        opts.spares)
                        .name())
                continue;
            const auto &s = row.r.stats;
            accel::RetryOverhead overhead;
            overhead.retryRate = perRead(s.retries, s.reads);
            overhead.escalatedFraction =
                perRead(s.escalations, s.reads + s.retries);
            overhead.escalatedLevel = 1;
            const auto open = perf.evaluate(
                activity, row.vdd, 0, accel::SupplyMode::Boosted);
            const auto closed =
                perf.evaluate(activity, row.vdd, 0,
                              accel::SupplyMode::Boosted, overhead);
            p.addRow({Table::num(row.vdd.value(), 2),
                      Table::num(overhead.retryRate, 4),
                      Table::num(overhead.escalatedFraction, 4),
                      Table::num(closed.clock.value() / 1e6, 1),
                      Table::num(open.runtime.value() * 1e6, 2),
                      Table::num(closed.runtime.value() * 1e6, 2),
                      Table::num(open.gopsPerWatt, 1),
                      Table::num(closed.gopsPerWatt, 1)});
        }
        bench::emit("Perf-model perturbation from measured retry rates "
                    "(Boosted mode, L0 standing)",
                    p, opts);
    }

    if (!opts.jsonPath.empty()) {
        writeJson(opts.jsonPath, rows, dom_closed, dom_open, opts);
        inform("wrote JSON results to ", opts.jsonPath);
    }
    if (want_obs) {
        runner.attachObservability(nullptr);
        obs::recordLoggingMetrics(obsv.metrics);
    }
    if (!opts.metricsOutPath.empty())
        bench::writeMetricsJson(opts.metricsOutPath, "abl_resilience",
                                obsv.metrics);
    if (!opts.traceOutPath.empty())
        bench::writeTraceJson(opts.traceOutPath, obsv.trace);
    return 0;
}
