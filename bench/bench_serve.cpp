/**
 * @file
 * Serving-runtime evaluation (DESIGN.md §9): an open-loop Poisson load
 * generator drives the multi-tenant InferenceServer across offered
 * load x SLO mix, and the table reports what the paper's
 * application-aware operating points buy at the serving layer —
 * admission sheds under overload, queue/batch latency percentiles,
 * accuracy per SLO class and energy per inference, with the
 * operating-point planner stepping tenants between Vdd rungs from the
 * resilience monitor's measured error rates.
 *
 * Everything is deterministic: the trace is a pure function of the
 * seed, the server obeys the §7 discipline, and the printed stats
 * fingerprint is bitwise identical at any --threads value.
 *
 * --json <path> dumps the sweep for machine consumption (CI uploads
 * this next to the resilience artifact); --smoke shrinks the sweep to
 * CI scale.
 */

#include <fstream>
#include <string>
#include <vector>

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "fi/accuracy_curve.hpp"
#include "fi/experiment.hpp"
#include "json_writer.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "serve/planner.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** One evaluated (load, mix) sweep point. */
struct SweepPoint
{
    double loadRps = 0.0;
    std::string mix;
    serve::ServeResult result;
};

void
writeJson(const std::string &path, const std::vector<SweepPoint> &points,
          const bench::BenchOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON to ", path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("bench", "serve")
        .field("smoke", opts.smoke)
        .field("paper", opts.paper)
        .beginArrayField("points");
    for (const auto &point : points) {
        const serve::ServerStats &s = point.result.stats;
        json.beginObject()
            .field("load_rps", point.loadRps)
            .field("mix", point.mix)
            .field("requests", s.total.requests)
            .field("admitted", s.total.admitted)
            .field("shed_queue_full", s.total.shedQueueFull)
            .field("shed_tenant_quota", s.total.shedTenantQuota)
            .field("batches", s.total.batches)
            .field("mean_batch_size", s.meanBatchSize)
            .field("p50_latency_us", s.p50LatencyTicks)
            .field("p95_latency_us", s.p95LatencyTicks)
            .field("accuracy", s.accuracy)
            .field("energy_pj_per_inference",
                   s.total.inferences
                       ? s.total.energyPj /
                             static_cast<double>(s.total.inferences)
                       : 0.0)
            .field("retries", s.total.retries)
            .field("escalations", s.total.escalations)
            .field("quarantines", s.total.quarantines)
            .field("uncorrected", s.total.uncorrected)
            .field("fingerprint", s.fingerprint())
            .beginArrayField("tenants");
        for (const auto &[name, tenant] : s.perTenant) {
            json.beginObject()
                .field("tenant", name)
                .field("requests", tenant.requests)
                .field("admitted", tenant.admitted)
                .field("shed", tenant.shedQueueFull +
                                   tenant.shedTenantQuota)
                .field("accuracy",
                       tenant.admitted
                           ? static_cast<double>(tenant.correct) /
                                 static_cast<double>(tenant.admitted)
                           : 0.0)
                .field("energy_pj", tenant.energyPj)
                .field("final_vdd_step", tenant.finalVddStep)
                .endObject();
        }
        json.endArray().endObject();
    }
    json.endArray().endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);

    auto net = bench::trainedMnistFc(opts);
    const auto pool = bench::mnistTestSet(opts);

    // The planner's accuracy model: a Monte-Carlo sampled
    // accuracy-vs-failure-probability curve queried through the
    // failure-rate fit.
    fi::ExperimentConfig fi_cfg;
    fi_cfg.numMaps = opts.maps(4);
    fi_cfg.maxTestSamples = opts.samples(256);
    fi_cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, pool, fi_cfg);
    const auto curve =
        fi::AccuracyCurve::sample(runner, fi::InjectionSpec::allWeights(),
                                  1e-5, 0.3, opts.smoke ? 5 : 8);
    const auto accuracy_at = [&](Volt vddv) {
        return curve.at(frm.rate(vddv));
    };

    const auto per_inference = accel::totalActivity(
        accel::DanaFcModel().networkActivity({784, 256, 256, 256, 32}));
    serve::InferenceFootprint footprint;
    footprint.weightAccesses = per_inference.weightAccesses;
    footprint.inputAccesses = per_inference.inputAccesses;
    footprint.psumAccesses = per_inference.psumAccesses;
    footprint.computeOps = per_inference.macs;

    std::vector<serve::TenantMix> mixes = serve::standardServeMixes();
    std::vector<double> loads_rps = {250.0, 500.0, 1000.0, 2000.0};
    std::size_t num_requests = 256;
    if (opts.smoke) {
        mixes.resize(2);
        loads_rps = {500.0, 2000.0};
        num_requests = 48;
    }

    // One observability sink for the whole sweep: each (mix, load)
    // point is a trace process (pid = point index) and labels every
    // metric with {mix, load}, so the registry holds the full sweep
    // while staying thread-count invariant (DESIGN.md §11).
    obs::Observability obsv;
    const bool want_obs =
        !opts.metricsOutPath.empty() || !opts.traceOutPath.empty();
    std::uint64_t point_pid = 0;

    std::vector<SweepPoint> points;
    Table t({"load (rps)", "mix", "req", "shed", "batches", "mean B",
             "p50 lat (us)", "p95 lat (us)", "accuracy", "pJ/inf",
             "retries", "fingerprint"});
    for (const serve::TenantMix &mix : mixes) {
        for (double load : loads_rps) {
            serve::OperatingPointPlanner planner(
                ctx, 16, accuracy_at, curve.faultFree(), footprint);
            serve::ServerConfig cfg;
            cfg.numThreads = opts.threads;
            serve::InferenceServer server(ctx, net, pool, per_inference,
                                          std::move(planner), cfg);
            if (want_obs) {
                const std::string load_label =
                    std::to_string(static_cast<long long>(load));
                obsv.trace.setProcessName(point_pid,
                                          mix.name + " @ " + load_label +
                                              " rps");
                server.attachObservability(
                    &obsv, point_pid,
                    {{"mix", mix.name}, {"load", load_label}});
                ++point_pid;
            }

            serve::TraceConfig trace_cfg;
            trace_cfg.requestsPerTick = load / cfg.ticksPerSecond;
            trace_cfg.numRequests = num_requests;
            trace_cfg.tenants = mix.tenants;
            trace_cfg.samplePoolSize = pool.size();
            const auto trace = serve::generatePoissonTrace(trace_cfg);

            SweepPoint point;
            point.loadRps = load;
            point.mix = mix.name;
            point.result = server.run(trace);
            const serve::ServerStats &s = point.result.stats;
            t.addRow({Table::num(load, 0), mix.name,
                      std::to_string(s.total.requests),
                      std::to_string(s.total.shedQueueFull +
                                     s.total.shedTenantQuota),
                      std::to_string(s.total.batches),
                      Table::num(s.meanBatchSize, 2),
                      Table::num(s.p50LatencyTicks, 0),
                      Table::num(s.p95LatencyTicks, 0),
                      Table::pct(s.accuracy),
                      Table::num(s.total.inferences
                                     ? s.total.energyPj /
                                           static_cast<double>(
                                               s.total.inferences)
                                     : 0.0,
                                 1),
                      std::to_string(s.total.retries),
                      std::to_string(s.fingerprint())});
            points.push_back(std::move(point));
        }
    }
    bench::emit("Serving runtime: offered load x SLO mix "
                "(FC-DNN, Poisson arrivals, closed-loop memory)",
                t, opts);

    if (!opts.jsonPath.empty()) {
        writeJson(opts.jsonPath, points, opts);
        inform("wrote JSON results to ", opts.jsonPath);
    }
    if (want_obs)
        obs::recordLoggingMetrics(obsv.metrics);
    if (!opts.metricsOutPath.empty())
        bench::writeMetricsJson(opts.metricsOutPath, "serve",
                                obsv.metrics);
    if (!opts.traceOutPath.empty())
        bench::writeTraceJson(opts.traceOutPath, obsv.trace);
    return 0;
}
