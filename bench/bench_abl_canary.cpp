/**
 * @file
 * Ablation: canary-driven runtime boost control (closing the loop of
 * related work [22] with the programmable booster). For each supply
 * voltage and Monte-Carlo die, the controller picks the lowest boost
 * level at which none of the per-bank canary cells fail; we report
 * the chosen-level distribution, the resulting array bit error rate,
 * and the energy saved against a conservative static policy that
 * always boosts to the top level.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/canary.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    core::CanaryController controller(ctx, 16, 64, 0.03_V);
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    const int dies = opts.paper ? 100 : 25;

    // A memory-heavy workload so the level choice matters.
    const energy::Workload w{250000, 340000};

    Table t({"Vdd (V)", "mean chosen level", "level range",
             "mean array BER", "energy vs always-L4"});
    for (Volt vdd : bench::vlvGrid()) {
        RunningStats level_stats, ber_stats, energy_ratio;
        int unreachable = 0;
        const double e4 =
            sc.boostedDynamic(w, vdd, 4).total().value();
        for (int d = 0; d < dies; ++d) {
            const sram::VulnerabilityMap map(
                1000 + static_cast<std::uint64_t>(d), 0);
            const auto level = controller.chooseLevel(vdd, map);
            if (!level) {
                ++unreachable;
                continue;
            }
            level_stats.add(static_cast<double>(*level));
            ber_stats.add(controller.arrayFailProbAt(vdd, *level));
            energy_ratio.add(
                sc.boostedDynamic(w, vdd, *level).total().value() / e4);
        }
        if (level_stats.count() == 0) {
            t.addRow({Table::num(vdd.value(), 2), "-", "-", "-",
                      "all dies unreachable"});
            continue;
        }
        t.addRow({Table::num(vdd.value(), 2),
                  Table::num(level_stats.mean(), 2),
                  Table::num(level_stats.min(), 0) + ".." +
                      Table::num(level_stats.max(), 0),
                  Table::sci(ber_stats.mean()),
                  Table::pct(1.0 - energy_ratio.mean())});
    }
    bench::emit("Ablation: canary-driven runtime boost control "
                "(64 canaries/bank, 30 mV margin, " +
                    std::to_string(dies) + " dies)",
                t, opts);
    return 0;
}
