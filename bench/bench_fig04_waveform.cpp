/**
 * @file
 * Fig. 4 reproduction: transient simulation of the booster producing
 * the four programmable Vddv plateaus as the configuration bits are
 * changed dynamically, one access burst per level. Prints the sampled
 * waveform (time, Vddv, active level) and the per-level peaks.
 */

#include "bench_util.hpp"
#include "circuit/transient.hpp"
#include "common/logging.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto tech = circuit::TechnologyParams::default14nm();
    // One bank: two macros' arrays on the boosted rail (Dante layout).
    circuit::BoosterBank booster(
        circuit::BoosterDesign::standardConfig().scaled(2),
        tech.macroArrayCap * 2 + tech.fixedParasiticCap, tech);
    const Volt vdd{0.40};
    circuit::TransientSim sim(booster, vdd);

    // Reproduce the figure's drive pattern: for each level, a burst of
    // accesses with Boost_clk toggling, then an idle gap while the
    // configuration register is rewritten (set_boost_config).
    struct Phase
    {
        int level;
        double peak = 0.0;
    };
    std::vector<Phase> phases{{1}, {2}, {3}, {4}};
    const Hertz clock = 50.0_MHz;
    for (auto &phase : phases) {
        sim.setLevel(phase.level);
        const std::size_t before = sim.waveform().size();
        sim.runAccessCycles(3, clock);
        sim.run(/*cen=*/true, /*boost_clk=*/false, Second(10e-9));
        for (std::size_t i = before; i < sim.waveform().size(); ++i)
            phase.peak =
                std::max(phase.peak, sim.waveform()[i].vddv.value());
    }

    Table t({"time (ns)", "Vddv (V)", "level", "boosting"});
    // Sub-sample the waveform for a readable table.
    const auto &wave = sim.waveform();
    const std::size_t stride = std::max<std::size_t>(1, wave.size() / 64);
    for (std::size_t i = 0; i < wave.size(); i += stride) {
        t.addRow({Table::num(wave[i].time.value() * 1e9, 1),
                  Table::num(wave[i].vddv.value(), 3),
                  std::to_string(wave[i].level),
                  wave[i].boostAsserted ? "yes" : "no"});
    }
    bench::emit("Fig. 4: Vddv waveform across dynamic boost levels "
                "(Vdd = 0.40 V, 50 MHz)",
                t, opts);

    Table p({"config bits", "level", "peak Vddv (V)", "boost (mV)"});
    for (const auto &phase : phases) {
        const std::string bits =
            std::string(static_cast<std::size_t>(4 - phase.level), '0') +
            std::string(static_cast<std::size_t>(phase.level), '1');
        p.addRow({bits, std::to_string(phase.level),
                  Table::num(phase.peak, 3),
                  Table::num((phase.peak - vdd.value()) * 1e3, 0)});
    }
    bench::emit("Fig. 4: per-level boosted plateaus", p, opts);
    inform("boost events simulated: ", sim.boostEvents());
    return 0;
}
