/**
 * @file
 * Fig. 1 reproduction: the V_min landscape. Sweeps supply voltage and
 * prints the SRAM bit failure rate together with the FC-DNN inference
 * accuracy of the unboosted baseline, plus the voltage landmarks the
 * figure annotates (V_nom, V_1st-error, V_target-acc,
 * V_data-retention) and the boosted ("ideal") accuracy that motivates
 * the whole design.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);

    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(8);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, cfg);

    const double peak = runner.baselineAccuracy();
    const double target = peak - 0.02;

    Table t({"Vdd (V)", "bit fail rate", "baseline acc",
             "boosted acc (Vddv4)", "meets target (base)",
             "meets target (boost)"});
    for (Volt v : bench::wideGrid()) {
        const auto base = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::allWeights());
        const Volt vddv = explorer.boostedVoltage(v, 4);
        const auto boost = runner.runAtVoltage(
            vddv, frm, fi::InjectionSpec::allWeights());
        t.addRow({Table::num(v.value(), 2), Table::sci(base.failProb),
                  Table::pct(base.meanAccuracy),
                  Table::pct(boost.meanAccuracy),
                  base.meanAccuracy >= target ? "yes" : "no",
                  boost.meanAccuracy >= target ? "yes" : "no"});
    }
    bench::emit("Fig. 1: bit failure rate and inference accuracy vs Vdd",
                t, opts);

    Table lm({"landmark", "voltage (V)", "meaning"});
    lm.addRow({"V_nom", "0.80", "nominal supply (Table 1)"});
    lm.addRow({"V_1st-error",
               Table::num(frm.firstErrorVoltage(144ull * 1024 * 8).value(),
                          3),
               "first expected bit fail in the 144 KB on-chip SRAM"});
    // V_target-acc: lowest grid voltage where the baseline still meets
    // the accuracy target.
    Volt v_target{0.0};
    for (Volt v : bench::wideGrid()) {
        const auto p = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::allWeights());
        if (p.meanAccuracy >= target) {
            v_target = v;
            break;
        }
    }
    lm.addRow({"V_target-acc", Table::num(v_target.value(), 2),
               "minimum unboosted supply meeting target accuracy"});
    lm.addRow({"V_data-retention",
               Table::num(frm.dataRetentionVoltage().value(), 2),
               "minimum voltage at which cells retain data"});
    bench::emit("Fig. 1: voltage landmarks", lm, opts);
    return 0;
}
