# Cluster thread-count-invariance gate (DESIGN.md §14): run
# bench_serve_cluster in smoke mode at --threads 1 and --threads 8
# with the same seed/config — the sweep includes a node-loss/failover
# run on every multi-node point — and require (a) the result JSON
# (cluster outcomes, routing counts, failover transitions, per-point
# fingerprints) to be bitwise identical, (b) the exported merged Chrome
# trace JSON to be bitwise identical, and (c) the merged metrics
# fingerprint to be identical. Invoked by the cluster_determinism
# ctest entry with -DBENCH_CLUSTER=<exe> -DWORK_DIR=<dir>.

if(NOT BENCH_CLUSTER)
    message(FATAL_ERROR "pass -DBENCH_CLUSTER=<path to bench_serve_cluster>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<writable work directory>")
endif()

set(ENV{VBOOST_BENCH_SMOKE} 1)

foreach(threads 1 8)
    execute_process(
        COMMAND ${BENCH_CLUSTER}
            --threads ${threads}
            --json ${WORK_DIR}/cluster-det-result-t${threads}.json
            --metrics-out ${WORK_DIR}/cluster-det-metrics-t${threads}.json
            --trace-out ${WORK_DIR}/cluster-det-trace-t${threads}.json
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "bench_serve_cluster --threads ${threads} failed (${rc}):\n"
            "${out}\n${err}")
    endif()
endforeach()

# (a) Cluster outcomes (result JSON) must match bitwise.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/cluster-det-result-t1.json
        ${WORK_DIR}/cluster-det-result-t8.json
    RESULT_VARIABLE result_rc)
if(NOT result_rc EQUAL 0)
    message(FATAL_ERROR
        "cluster result JSON differs between --threads 1 and "
        "--threads 8 (cluster-det-result-t1.json vs "
        "cluster-det-result-t8.json)")
endif()

# (b) Merged trace artifacts must match bitwise.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/cluster-det-trace-t1.json
        ${WORK_DIR}/cluster-det-trace-t8.json
    RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
    message(FATAL_ERROR
        "merged cluster trace JSON differs between --threads 1 and "
        "--threads 8 (cluster-det-trace-t1.json vs "
        "cluster-det-trace-t8.json)")
endif()

# (c) Merged metrics fingerprints must match.
foreach(threads 1 8)
    file(READ ${WORK_DIR}/cluster-det-metrics-t${threads}.json contents)
    string(REGEX MATCH "\"fingerprint\": ([0-9]+)" _ "${contents}")
    if(NOT CMAKE_MATCH_1)
        message(FATAL_ERROR
            "no fingerprint field in cluster-det-metrics-t${threads}.json")
    endif()
    set(fp_t${threads} ${CMAKE_MATCH_1})
endforeach()
if(NOT fp_t1 STREQUAL fp_t8)
    message(FATAL_ERROR
        "merged metrics fingerprint differs: threads=1 -> ${fp_t1}, "
        "threads=8 -> ${fp_t8}")
endif()

message(STATUS
    "cluster determinism OK: outcomes, merged fingerprint ${fp_t1} and "
    "merged trace bitwise identical at 1 vs 8 threads (incl. failover)")
