/**
 * @file
 * Fig. 6 reproduction: MIM-capacitor boosters versus boost-inverter-
 * only boosters (the prior art of refs [7, 8]). Two matched pairs:
 *  - equal area:  MIMBoost-A (standard config) vs noMIMBoost-A
 *    (1024 inverters);
 *  - equal boost: MIMBoost-B (256 inverters + 4.2 pF MIM) vs
 *    noMIMBoost-B (8192 inverters, 8x the area).
 * Reports boosted voltage, area and per-event energy for each across
 * the supply range, plus the figure's summary ratios.
 */

#include "bench_util.hpp"
#include "circuit/booster.hpp"
#include "common/logging.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto tech = circuit::TechnologyParams::default14nm();
    const Farad load = tech.macroArrayCap + tech.fixedParasiticCap;

    struct Design
    {
        const char *name;
        circuit::BoosterBank bank;
        int level;
    };
    std::vector<Design> designs;
    designs.push_back(
        {"MIMBoost-A",
         circuit::BoosterBank(circuit::BoosterDesign::standardConfig(),
                              load, tech),
         4});
    designs.push_back(
        {"noMIMBoost-A",
         circuit::BoosterBank(circuit::BoosterDesign::inverterOnly(1024),
                              load, tech),
         1});
    designs.push_back(
        {"MIMBoost-B",
         circuit::BoosterBank(
             circuit::BoosterDesign::uniform(1, 256, Farad(4.2e-12)),
             load, tech),
         1});
    designs.push_back(
        {"noMIMBoost-B",
         circuit::BoosterBank(circuit::BoosterDesign::inverterOnly(8192),
                              load, tech),
         1});

    Table t({"design", "Vdd (V)", "boost Vb (mV)", "area (um^2)",
             "event energy (fJ)"});
    for (Volt vdd : {0.34_V, 0.40_V, 0.46_V, 0.60_V, 0.80_V}) {
        for (auto &d : designs) {
            t.addRow({d.name, Table::num(vdd.value(), 2),
                      Table::num(d.bank.boostDelta(vdd, d.level).value() *
                                     1e3,
                                 1),
                      Table::num(d.bank.area().value(), 0),
                      Table::num(d.bank.boostEventEnergy(vdd, d.level)
                                         .value() *
                                     1e15,
                                 1)});
        }
    }
    bench::emit("Fig. 6: MIM vs inverter-only boosters", t, opts);

    const Volt vdd{0.40};
    auto &mim_a = designs[0], &nomim_a = designs[1];
    auto &mim_b = designs[2], &nomim_b = designs[3];
    Table s({"comparison", "value", "paper"});
    s.addRow({"MIMBoost-A / noMIMBoost-A boost (equal area)",
              Table::num(mim_a.bank.boostDelta(vdd, 4).value() /
                             nomim_a.bank.boostDelta(vdd, 1).value(),
                         1) + "x",
              "14x"});
    s.addRow({"noMIMBoost-B / MIMBoost-B energy (equal boost)",
              Table::num(nomim_b.bank.boostEventEnergy(vdd, 1).value() /
                             mim_b.bank.boostEventEnergy(vdd, 1).value(),
                         1) + "x",
              "10x"});
    s.addRow({"noMIMBoost-B / MIMBoost-B area",
              Table::num(nomim_b.bank.area().value() /
                             mim_b.bank.area().value(),
                         1) + "x",
              "8x"});
    s.addRow({"MIMBoost-B vs noMIMBoost-B boost delta",
              Table::num(mim_b.bank.boostDelta(vdd, 1).value() * 1e3, 1) +
                  " vs " +
                  Table::num(nomim_b.bank.boostDelta(vdd, 1).value() * 1e3,
                             1) +
                  " mV",
              "roughly equal"});
    bench::emit("Fig. 6: summary ratios", s, opts);
    return 0;
}
