/**
 * @file
 * Fig. 13 + Table 2 reproduction: analysis of the fully connected
 * MNIST DNN under programmable boosting.
 *
 *  (a) dynamic energy: boosted vs single supply at the same Vddv;
 *  (b) dynamic energy: boosted vs dual supply (LDO);
 *  (c) inference accuracy vs voltage per Table-2 configuration;
 *  (d) leakage energy per cycle for boost / single / dual.
 *
 * All energies are normalized to the single-supply chip energy at
 * 0.5 V, as in the paper. Activity comes from the DANA FC dataflow
 * model; inputs and intermediate data are boosted to the minimum
 * level whose Vddv exceeds 0.44 V (Table 2 footnote).
 */

#include <map>

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "energy/supply_config.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    core::TradeoffExplorer explorer(ctx, 16);

    // DANA FC activity for one inference of the 784-256-256-256-32 net.
    const accel::DanaFcModel dana;
    const auto layer_act =
        dana.networkActivity(dnn::mnistFcLayerSizes());
    const auto total_act = accel::totalActivity(layer_act);

    // Table 2.
    const auto configs = core::BoostConfiguration::table2(4, 4);
    Table t2({"Config", "Weights-L1", "Weights-L2", "Weights-L3",
              "Weights-L4"});
    for (const auto &c : configs) {
        t2.addRow({c.name, "Vddv" + std::to_string(c.layerLevels[0]),
                   "Vddv" + std::to_string(c.layerLevels[1]),
                   "Vddv" + std::to_string(c.layerLevels[2]),
                   "Vddv" + std::to_string(c.layerLevels[3])});
    }
    bench::emit("Table 2: boost level per layer per configuration", t2,
                opts);

    // Accuracy harness.
    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(8);
    fcfg.maxTestSamples = opts.samples(400);
    fcfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const double baseline = runner.baselineAccuracy();

    // Normalization: single-supply chip dynamic energy at 0.5 V.
    const energy::Workload workload{total_act.totalAccesses(),
                                    total_act.macs};
    const double norm =
        sc.singleSupplyDynamic(workload, 0.50_V).total().value();
    const Hertz clock = 50.0_MHz;
    const double leak_norm =
        sc.singleSupplyLeakagePerCycle(0.50_V, clock).value();

    Table ta({"Vdd (V)", "config", "Vddv max (V)", "boost dyn (norm)",
              "single dyn (norm)", "savings vs single"});
    Table tb({"Vdd (V)", "config", "boost dyn (norm)",
              "dual dyn (norm)", "savings vs dual"});
    Table tc({"Vdd (V)", "config", "accuracy", "within 2% of baseline"});
    Table td({"Vdd (V)", "boost leak/cyc (norm)",
              "single leak/cyc (norm)", "dual leak/cyc (norm)",
              "boost vs dual savings"});

    RunningStats dual_savings, leak_savings;
    for (Volt vdd : bench::vlvGrid()) {
        // Input/intermediate data boost level (Table 2 footnote).
        const auto input_level_opt =
            explorer.minimalLevelReaching(vdd, 0.44_V);
        const int input_level = input_level_opt ? *input_level_opt : 4;

        for (const auto &c : configs) {
            const Volt vddv_max = sc.boostedVoltage(vdd, c.maxLevel());

            // Partition accesses by boost level: each layer's weight
            // stream at its level; inputs/psums at the input level.
            std::vector<std::pair<std::uint64_t, int>> by_level;
            std::uint64_t other_accesses = 0;
            for (std::size_t l = 0; l < layer_act.size(); ++l) {
                by_level.emplace_back(layer_act[l].weightAccesses,
                                      c.layerLevels[l]);
                other_accesses += layer_act[l].inputAccesses +
                                  layer_act[l].psumAccesses;
            }
            by_level.emplace_back(other_accesses, input_level);

            const double boost =
                sc.boostedDynamicMulti(by_level, total_act.macs, vdd)
                    .total()
                    .value() /
                norm;
            const double single =
                sc.singleSupplyDynamic(workload, vddv_max)
                    .total()
                    .value() /
                norm;
            const double dual =
                sc.dualSupplyDynamic(workload, vddv_max, vdd)
                    .total()
                    .value() /
                norm;

            ta.addRow({Table::num(vdd.value(), 2), c.name,
                       Table::num(vddv_max.value(), 3),
                       Table::num(boost, 3), Table::num(single, 3),
                       Table::pct(1.0 - boost / single)});
            tb.addRow({Table::num(vdd.value(), 2), c.name,
                       Table::num(boost, 3), Table::num(dual, 3),
                       Table::pct(1.0 - boost / dual)});
            dual_savings.add(1.0 - boost / dual);

            // Accuracy under the per-layer failure probabilities.
            std::vector<double> fail_by_layer;
            for (int level : c.layerLevels) {
                fail_by_layer.push_back(
                    frm.rate(sc.boostedVoltage(vdd, level)));
            }
            const auto acc = runner.runPerLayer(fail_by_layer);
            tc.addRow({Table::num(vdd.value(), 2), c.name,
                       Table::pct(acc.meanAccuracy),
                       acc.meanAccuracy >= baseline - 0.02 ? "yes"
                                                           : "no"});
        }

        // Leakage panel (d): dual/single held at the Vddv4 target.
        const Volt vddv4 = sc.boostedVoltage(vdd, 4);
        const double lb =
            sc.boostedLeakagePerCycle(vdd, clock).value() / leak_norm;
        const double ls =
            sc.singleSupplyLeakagePerCycle(vddv4, clock).value() /
            leak_norm;
        const double ld =
            sc.dualSupplyLeakagePerCycle(vddv4, vdd, clock).value() /
            leak_norm;
        td.addRow({Table::num(vdd.value(), 2), Table::num(lb, 3),
                   Table::num(ls, 3), Table::num(ld, 3),
                   Table::pct(1.0 - lb / ld)});
        leak_savings.add(1.0 - lb / ld);
    }

    bench::emit("Fig. 13(a): boost vs single supply dynamic energy", ta,
                opts);
    bench::emit("Fig. 13(b): boost vs dual supply dynamic energy", tb,
                opts);
    bench::emit("Fig. 13(c): inference accuracy per configuration "
                "(baseline " + Table::pct(baseline) + ")",
                tc, opts);
    bench::emit("Fig. 13(d): leakage energy per cycle at 50 MHz", td,
                opts);

    Table s({"headline", "value", "paper"});
    s.addRow({"mean dynamic savings vs dual (all configs/voltages)",
              Table::pct(dual_savings.mean()), "overall savings"});
    s.addRow({"mean leakage savings vs dual (0.34-0.5 V)",
              Table::pct(leak_savings.mean()), "32%"});
    bench::emit("Fig. 13: headlines", s, opts);
    return 0;
}
