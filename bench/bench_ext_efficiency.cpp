/**
 * @file
 * Extension: end-to-end energy efficiency (GOPS/W) across the
 * operating range — the "operations per second per watt" metric the
 * paper's introduction motivates. For the AlexNet conv workload we
 * sweep the chip supply and report throughput and efficiency for the
 * three supply configurations at iso memory reliability (memory at
 * Vddv4 of each point), plus the high-voltage clock ceiling that
 * boosting lifts (Sec. 3.3.2).
 */

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "dnn/zoo.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    accel::PerformanceModel model(ctx, 16);

    const accel::EyerissRsModel rs;
    const auto total = accel::totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));

    Table t({"Vdd (V)", "mode", "clock (MHz)", "runtime (ms)",
             "energy (uJ)", "power (uW)", "GOPS/W"});
    double best_boost = 0, best_single = 0, best_dual = 0;
    for (Volt vdd : {0.34_V, 0.38_V, 0.42_V, 0.46_V, 0.50_V}) {
        struct Row
        {
            const char *name;
            accel::SupplyMode mode;
        };
        for (const Row row : {Row{"single", accel::SupplyMode::Single},
                              Row{"dual", accel::SupplyMode::Dual},
                              Row{"boost", accel::SupplyMode::Boosted}}) {
            const auto r = model.evaluate(total, vdd, 4, row.mode);
            t.addRow({Table::num(vdd.value(), 2), row.name,
                      Table::num(r.clock.value() / 1e6, 0),
                      Table::num(r.runtime.value() * 1e3, 2),
                      Table::num(r.totalEnergy.value() * 1e6, 1),
                      Table::num(r.power.value() * 1e6, 1),
                      Table::num(r.gopsPerWatt, 1)});
            if (row.mode == accel::SupplyMode::Boosted)
                best_boost = std::max(best_boost, r.gopsPerWatt);
            if (row.mode == accel::SupplyMode::Single)
                best_single = std::max(best_single, r.gopsPerWatt);
            if (row.mode == accel::SupplyMode::Dual)
                best_dual = std::max(best_dual, r.gopsPerWatt);
        }
    }
    bench::emit("Extension: AlexNet conv efficiency across the VLV "
                "range (memory at Vddv4 reliability)",
                t, opts);

    Table s({"peak efficiency", "GOPS/W", "vs boost"});
    s.addRow({"boosted (this paper)", Table::num(best_boost, 1), "-"});
    s.addRow({"dual supply (LDO)", Table::num(best_dual, 1),
              Table::pct(best_dual / best_boost - 1.0)});
    s.addRow({"single supply", Table::num(best_single, 1),
              Table::pct(best_single / best_boost - 1.0)});
    bench::emit("Extension: peak efficiency comparison", s, opts);

    // High-voltage clock ceilings (Sec. 3.3.2): with deeply pipelined
    // logic (1.5 GHz nominal target) the unboosted SRAM access caps
    // the clock; boosting the array lifts the ceiling.
    accel::PerfConfig pipelined;
    pipelined.logicFreqAtNominal = Hertz(1.5e9);
    accel::PerformanceModel deep(ctx, 16, pipelined);
    Table c({"Vdd (V)", "max clock unboosted (MHz)",
             "max clock Vddv4 (MHz)", "gain"});
    for (Volt vdd : bench::highGrid()) {
        const double f0 =
            deep.maxClock(vdd, 0, accel::SupplyMode::Boosted).value();
        const double f4 =
            deep.maxClock(vdd, 4, accel::SupplyMode::Boosted).value();
        c.addRow({Table::num(vdd.value(), 2), Table::num(f0 / 1e6, 0),
                  Table::num(f4 / 1e6, 0), Table::pct(f4 / f0 - 1.0)});
    }
    bench::emit("Extension: clock ceiling with deeply pipelined logic "
                "(Sec. 3.3.2)",
                c, opts);
    return 0;
}
