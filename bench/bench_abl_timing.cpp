/**
 * @file
 * Ablation: the timing-speculative Razor datapath (DESIGN.md §13)
 * against worst-case clocking, on the joint (V_logic, V_sram) grid.
 * Every cell runs the combined fault-injection experiment — SRAM
 * faults through the closed-loop resilient pipeline at V_sram plus
 * timing faults on the speculative datapath at V_logic — and feeds
 * the measured replay/bubble rates (speculative) or clock stretch
 * (worst case) into the Dante performance model for end-to-end
 * energy and runtime.
 *
 * The dominance check mirrors bench_abl_resilience: find a joint
 * point where a Razor policy is at least as accurate as the
 * worst-case baseline at strictly lower total energy (or strictly
 * more accurate at equal-or-lower energy). The worst-case design
 * never errs but pays the guardbanded clock stretch in leakage and
 * runtime; speculation pays replays instead.
 *
 * The whole sweep is bitwise thread-count invariant (§7): per-map
 * datapaths are keyed by counter-derived streams, stats merge in map
 * order, and the JSON includes the replay digests so CI can diff
 * artifacts across machines and thread counts.
 *
 * --map-model {iid,clustered} selects the SRAM fault-map structure;
 * --retry-budget doubles as the Razor replay budget; --json <path>
 * dumps the result set (CI uploads this artifact).
 */

#include <fstream>
#include <sstream>
#include <vector>

#include "accel/dataflow.hpp"
#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "fi/experiment.hpp"
#include "json_writer.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "resilience/policy.hpp"
#include "sram/failure_model.hpp"
#include "timing/replay_policy.hpp"
#include "timing/timing_model.hpp"

using namespace vboost;

namespace {

/** One evaluated (replay policy, V_logic, V_sram) cell. */
struct ResultRow
{
    timing::ReplayPolicy policy;
    Volt vLogic{0.0};
    Volt vSram{0.0};
    /** Model-predicted per-op violation probability at V_logic. */
    double opErrorProb = 0.0;
    fi::CombinedAccuracyPoint r;
    /** End-to-end perf at the measured overheads. */
    accel::PerfResult perf;
};

double
perOp(std::uint64_t count, std::uint64_t ops)
{
    return ops ? static_cast<double>(count) / static_cast<double>(ops)
               : 0.0;
}

/** Measured datapath perturbation of a finished cell. */
accel::TimingOverhead
measuredOverhead(const ResultRow &row)
{
    const timing::TimingStats &t = row.r.timing;
    accel::TimingOverhead o;
    o.replayRate = perOp(t.replays, t.ops);
    // Replays occupy one PE slot each; their extra slowdown cycles and
    // the flush/refill bubbles both go into the bubble term.
    o.bubbleRate =
        perOp(t.bubbleCycles + t.replayCycles - t.replays, t.ops);
    o.vLogic = row.vLogic;
    o.clockStretch = row.r.cycleStretch;
    return o;
}

/** Razor-over-worst-case dominance: better on one axis, no worse on
 *  the other (accuracy compared with a Monte-Carlo epsilon). */
bool
dominates(const ResultRow &razor, const ResultRow &wc, double eps)
{
    const double ra = razor.r.point.meanAccuracy;
    const double wa = wc.r.point.meanAccuracy;
    const double re = razor.perf.totalEnergy.value();
    const double we = wc.perf.totalEnergy.value();
    return (ra >= wa - eps && re < we) || (ra > wa + eps && re <= we);
}

void
writeJson(const std::string &path, const std::vector<ResultRow> &rows,
          const ResultRow *dom_razor, const ResultRow *dom_wc,
          const bench::BenchOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON to ", path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("bench", "abl_timing")
        .field("smoke", opts.smoke)
        .field("paper", opts.paper)
        .field("map_model", opts.mapModel)
        .beginArrayField("points");
    for (const auto &row : rows) {
        const auto &t = row.r.timing;
        const auto &s = row.r.sram;
        json.beginObject()
            .field("policy", row.policy.name())
            .field("v_logic", row.vLogic.value())
            .field("v_sram", row.vSram.value())
            .field("op_error_prob", row.opErrorProb)
            .field("accuracy", row.r.point.meanAccuracy)
            .field("accuracy_stddev", row.r.point.stddevAccuracy)
            .field("residual_flips", row.r.point.meanBitFlips)
            .field("ops", t.ops)
            .field("timing_errors", t.errors)
            .field("replays", t.replays)
            .field("corrupted_ops", t.corrupted)
            .field("step_ups", t.stepUps)
            .field("fallbacks", t.fallbacks)
            .field("replay_cycles", t.replayCycles)
            .field("bubble_cycles", t.bubbleCycles)
            .field("replay_digest", t.replayDigest)
            .field("sram_retries", s.retries)
            .field("sram_uncorrected", s.uncorrected)
            .field("cycle_stretch", row.r.cycleStretch)
            .field("safe_v_logic", row.r.safeVoltage.value())
            .field("logic_energy_j", row.r.meanLogicEnergy.value())
            .field("sram_energy_j", row.r.meanSramEnergy.value())
            .field("replay_latency_s", row.r.meanReplayLatency.value())
            .field("perf_total_energy_j", row.perf.totalEnergy.value())
            .field("perf_runtime_s", row.perf.runtime.value())
            .field("perf_gops_per_w", row.perf.gopsPerWatt)
            .endObject();
    }
    json.endArray().beginObjectField("dominance");
    if (dom_razor && dom_wc) {
        json.field("found", true)
            .field("v_logic", dom_razor->vLogic.value())
            .field("v_sram", dom_razor->vSram.value())
            .field("razor", dom_razor->policy.name())
            .field("worstcase", dom_wc->policy.name())
            .field("razor_accuracy", dom_razor->r.point.meanAccuracy)
            .field("worstcase_accuracy", dom_wc->r.point.meanAccuracy)
            .field("razor_energy_j", dom_razor->perf.totalEnergy.value())
            .field("worstcase_energy_j", dom_wc->perf.totalEnergy.value())
            .field("razor_runtime_s", dom_razor->perf.runtime.value())
            .field("worstcase_runtime_s", dom_wc->perf.runtime.value());
    } else {
        json.field("found", false);
    }
    json.endObject().endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const timing::TimingParams tparams;
    const timing::TimingErrorModel tmodel(ctx.tech, tparams);

    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(4);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    if (opts.mapModel == "clustered")
        cfg.mapModel = sram::MapModel::Clustered;
    fi::FaultInjectionRunner runner(net, test, cfg);

    auto resil = resilience::ResiliencePolicy::closedLoop(
        opts.retryBudget);
    resil.spareRows = opts.spares;

    using timing::ReplayPolicy;
    using timing::TimingEscalation;
    std::vector<ReplayPolicy> policies;
    policies.push_back(ReplayPolicy::worstCase());
    policies.push_back(ReplayPolicy::razor(opts.retryBudget));
    if (!opts.smoke) {
        policies.push_back(ReplayPolicy::razor(0)); // detect-only
        policies.push_back(ReplayPolicy::razor(opts.retryBudget,
                                               TimingEscalation::Hold));
        policies.push_back(ReplayPolicy::razor(opts.retryBudget,
                                               TimingEscalation::MaxOut));
    }

    // The joint grid: the datapath rail sweeps through the region
    // where worst-case timing stops holding at the 50 MHz VLV clock;
    // the SRAM rail sweeps the usual VLV points.
    const std::vector<Volt> vlogic_grid =
        opts.smoke ? std::vector<Volt>{0.32_V, 0.36_V}
                   : std::vector<Volt>{0.30_V, 0.32_V, 0.34_V, 0.36_V,
                                       0.38_V};
    const std::vector<Volt> vsram_grid =
        opts.smoke ? std::vector<Volt>{0.42_V, 0.46_V}
                   : std::vector<Volt>{0.42_V, 0.46_V, 0.50_V};

    accel::PerformanceModel perf(ctx, 16);
    const auto activity = accel::totalActivity(
        accel::DanaFcModel().networkActivity({784, 256, 256, 256, 32}));
    const Second target_period(1.0 / 50e6);

    obs::Observability obsv;
    const bool want_obs =
        !opts.metricsOutPath.empty() || !opts.traceOutPath.empty();
    std::uint64_t cell_pid = 0;

    std::vector<ResultRow> rows;
    Table t({"policy", "Vlogic (V)", "Vsram (V)", "p_op", "accuracy",
             "errors/op", "replays/op", "corrupt", "stepups", "fallbk",
             "stretch", "logic nJ", "sram nJ", "total uJ", "runtime us"});
    for (const auto &policy : policies) {
        for (Volt vl : vlogic_grid) {
            for (Volt vs : vsram_grid) {
                ResultRow row;
                row.policy = policy;
                row.vLogic = vl;
                row.vSram = vs;
                row.opErrorProb =
                    policy.speculative
                        ? tmodel.opErrorProb(vl, target_period)
                        : 0.0;
                if (want_obs) {
                    std::ostringstream cell;
                    cell << policy.name() << " @ " << vl.value() << "/"
                         << vs.value() << " V";
                    obsv.trace.setProcessName(cell_pid, cell.str());
                    std::ostringstream vls, vss;
                    vls << vl.value();
                    vss << vs.value();
                    runner.attachObservability(
                        &obsv, cell_pid,
                        {{"policy", policy.name()},
                         {"v_logic", vls.str()},
                         {"v_sram", vss.str()}});
                    ++cell_pid;
                }
                fi::TimingInjection inj;
                inj.params = tparams;
                inj.policy = policy;
                inj.vLogic = vl;
                inj.clock = Hertz(50e6);
                row.r = runner.runCombined(vs, ctx, resil, inj);

                accel::RetryOverhead retry;
                const auto &rs = row.r.sram;
                if (rs.reads > 0) {
                    retry.retryRate = perOp(rs.retries, rs.reads);
                    retry.escalatedFraction =
                        perOp(rs.escalations, rs.reads + rs.retries);
                    retry.escalatedLevel = 1;
                }
                row.perf = perf.evaluate(activity, vs, 0,
                                         accel::SupplyMode::Boosted,
                                         retry, measuredOverhead(row));

                const auto &ts = row.r.timing;
                t.addRow({policy.name(), Table::num(vl.value(), 2),
                          Table::num(vs.value(), 2),
                          Table::sci(row.opErrorProb),
                          Table::pct(row.r.point.meanAccuracy),
                          Table::num(perOp(ts.errors, ts.ops), 5),
                          Table::num(perOp(ts.replays, ts.ops), 5),
                          std::to_string(ts.corrupted),
                          std::to_string(ts.stepUps),
                          std::to_string(ts.fallbacks),
                          Table::num(row.r.cycleStretch, 3),
                          Table::num(row.r.meanLogicEnergy.value() * 1e9,
                                     2),
                          Table::num(row.r.meanSramEnergy.value() * 1e9,
                                     2),
                          Table::num(row.perf.totalEnergy.value() * 1e6,
                                     3),
                          Table::num(row.perf.runtime.value() * 1e6,
                                     2)});
                rows.push_back(row);
            }
        }
    }
    bench::emit("Ablation: Razor detect-and-replay vs worst-case "
                "clocking (FC-DNN, joint V_logic x V_sram grid, " +
                    opts.mapModel + " fault maps)",
                t, opts);

    // Dominance: a Razor point beating the worst-case baseline at the
    // same joint voltage point; keep the largest energy win.
    const double eps = 0.0025;
    const ResultRow *dom_razor = nullptr;
    const ResultRow *dom_wc = nullptr;
    double best_saving = 0.0;
    for (const auto &rz : rows) {
        if (!rz.policy.speculative)
            continue;
        for (const auto &wc : rows) {
            if (wc.policy.speculative ||
                wc.vLogic.value() != rz.vLogic.value() ||
                wc.vSram.value() != rz.vSram.value())
                continue;
            const double saving = wc.perf.totalEnergy.value() -
                                  rz.perf.totalEnergy.value();
            if (dominates(rz, wc, eps) &&
                (!dom_razor || saving > best_saving)) {
                dom_razor = &rz;
                dom_wc = &wc;
                best_saving = saving;
            }
        }
    }
    Table d({"verdict", "Vlogic (V)", "Vsram (V)", "razor policy",
             "razor acc", "wc acc", "razor uJ", "wc uJ", "razor us",
             "wc us"});
    if (dom_razor) {
        d.addRow({"razor dominates",
                  Table::num(dom_razor->vLogic.value(), 2),
                  Table::num(dom_razor->vSram.value(), 2),
                  dom_razor->policy.name(),
                  Table::pct(dom_razor->r.point.meanAccuracy),
                  Table::pct(dom_wc->r.point.meanAccuracy),
                  Table::num(dom_razor->perf.totalEnergy.value() * 1e6,
                             3),
                  Table::num(dom_wc->perf.totalEnergy.value() * 1e6, 3),
                  Table::num(dom_razor->perf.runtime.value() * 1e6, 2),
                  Table::num(dom_wc->perf.runtime.value() * 1e6, 2)});
    } else {
        d.addRow({"no dominating point found", "-", "-", "-", "-", "-",
                  "-", "-", "-", "-"});
    }
    bench::emit("Razor-over-worst-case dominance on the joint grid", d,
                opts);

    if (!opts.jsonPath.empty()) {
        writeJson(opts.jsonPath, rows, dom_razor, dom_wc, opts);
        inform("wrote JSON results to ", opts.jsonPath);
    }
    if (want_obs) {
        runner.attachObservability(nullptr);
        // Unlike the sibling benches, the logging-limiter gauges are
        // NOT recorded here: their emitted/suppressed split depends on
        // worker-thread interleaving, and this bench's metrics
        // artifact (fingerprint included) is part of the thread-count
        // invariance contract checked by the timing_replay_determinism
        // ctest.
    }
    if (!opts.metricsOutPath.empty())
        bench::writeMetricsJson(opts.metricsOutPath, "abl_timing",
                                obsv.metrics);
    if (!opts.traceOutPath.empty())
        bench::writeTraceJson(opts.traceOutPath, obsv.trace);
    return 0;
}
