#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>

#include "common/logging.hpp"
#include "dnn/backend/backend.hpp"
#include "dnn/quantize.hpp"
#include "dnn/serialize.hpp"
#include "dnn/trainer.hpp"
#include "dnn/zoo.hpp"

namespace vboost::bench {

void
BenchOptions::printUsage(std::ostream &os)
{
    os << "usage: bench [options]\n"
          "  --paper             paper-scale Monte Carlo (100 maps, "
          "full test sets)\n"
          "  --smoke             CI smoke mode (also "
          "VBOOST_BENCH_SMOKE=1)\n"
          "  --threads <n>       Monte-Carlo worker threads "
          "(n >= 1; omit for all cores)\n"
          "  --csv <path|->      append CSV output ('-' = stdout)\n"
          "  --cache <dir>       trained-model cache directory\n"
          "  --policy <p>        resilience policy: open, closed or "
          "both\n"
          "  --retry-budget <n>  closed-loop retry budget (extra "
          "attempts per access)\n"
          "  --spares <n>        spare rows available for quarantine\n"
          "  --json <path>       write machine-readable results as "
          "JSON\n"
          "  --map-model <m>     fault-map spatial model: iid or "
          "clustered\n"
          "  --backend <name>    compute backend: auto, reference or "
          "vectorized\n"
          "                      (rejected at parse time when "
          "unavailable on this CPU)\n"
          "  --metrics-out <path> write the observability metrics "
          "registry as JSON\n"
          "  --trace-out <path>  write a Chrome trace_event JSON "
          "(chrome://tracing)\n"
          "  --shards <n>        cluster benches: run one shard count "
          "instead of the sweep (n >= 1)\n"
          "  --replicas <n>      cluster benches: replica-group size "
          "(n >= 1, <= --shards when given)\n"
          "  --help              show this help\n";
}

namespace {

/** Reject a bad command line: diagnostic + usage on stderr, exit 2. */
[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "error: " << message << '\n';
    BenchOptions::printUsage(std::cerr);
    std::exit(2);
}

/** The value of option argv[i], or a usage error when it is absent. */
const char *
optionValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usageError(std::string("option ") + argv[i] +
                   " requires a value");
    return argv[++i];
}

/** Parse a non-negative integer option value. */
int
countValue(int argc, char **argv, int &i)
{
    const char *flag = argv[i];
    const char *text = optionValue(argc, argv, i);
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0)
        usageError(std::string(flag) + " expects a non-negative " +
                   "integer, got '" + text + "'");
    return static_cast<int>(v);
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    bool replicas_given = false;
    if (const char *env = std::getenv("VBOOST_BENCH_SMOKE"))
        opts.smoke = std::strcmp(env, "0") != 0 && *env != '\0';
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) {
            opts.paper = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            opts.threads = countValue(argc, argv, i);
            if (opts.threads == 0)
                usageError("--threads expects a positive integer "
                           "(omit the option to use all hardware "
                           "threads)");
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csvPath = optionValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            opts.cacheDir = optionValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--policy") == 0) {
            opts.policy = optionValue(argc, argv, i);
            if (opts.policy != "open" && opts.policy != "closed" &&
                opts.policy != "both")
                usageError("--policy expects open, closed or both, "
                           "got '" + opts.policy + "'");
        } else if (std::strcmp(argv[i], "--retry-budget") == 0) {
            opts.retryBudget = countValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--spares") == 0) {
            opts.spares = countValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opts.jsonPath = optionValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--map-model") == 0) {
            opts.mapModel = optionValue(argc, argv, i);
            if (opts.mapModel != "iid" && opts.mapModel != "clustered")
                usageError("--map-model expects iid or clustered, "
                           "got '" + opts.mapModel + "'");
        } else if (std::strcmp(argv[i], "--backend") == 0) {
            opts.backend = optionValue(argc, argv, i);
            // Reject an unknown or unbuilt/unsupported backend here,
            // with the usage-dump discipline, rather than silently
            // falling back to the reference kernels mid-run.
            if (dnn::findBackend(opts.backend) == nullptr) {
                std::string names;
                for (auto name : dnn::availableBackends())
                    names += std::string(names.empty() ? "" : ", ") +
                             std::string(name);
                usageError("--backend '" + opts.backend +
                           "' is unknown or unavailable on this "
                           "machine (available: auto, " + names + ")");
            }
            dnn::setActiveBackend(opts.backend);
        } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
            opts.metricsOutPath = optionValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            opts.traceOutPath = optionValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            opts.shards = countValue(argc, argv, i);
            if (opts.shards == 0)
                usageError("--shards expects a positive integer "
                           "(omit the option to run the built-in "
                           "sweep)");
        } else if (std::strcmp(argv[i], "--replicas") == 0) {
            opts.replicas = countValue(argc, argv, i);
            replicas_given = true;
            if (opts.replicas == 0)
                usageError("--replicas expects a positive integer");
        } else if (std::strcmp(argv[i], "--help") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError(std::string("unknown option '") + argv[i] + "'");
        }
    }
    // Cross-option constraint, checked after the full command line so
    // the flags compose in either order. Only an explicit --replicas
    // conflicts: the benches cap the default at the shard count.
    if (replicas_given && opts.shards > 0 && opts.replicas > opts.shards)
        usageError("--replicas (" + std::to_string(opts.replicas) +
                   ") cannot exceed --shards (" +
                   std::to_string(opts.shards) + ")");
    return opts;
}

void
emit(const std::string &title, const Table &table, const BenchOptions &opts)
{
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    if (opts.csvPath == "-") {
        table.printCsv(std::cout);
    } else if (!opts.csvPath.empty()) {
        std::ofstream out(opts.csvPath, std::ios::app);
        out << "# " << title << '\n';
        table.printCsv(out);
    }
}

namespace {

/** Train (or load) a model and clip it for int16 deployment. The
 *  training set is built lazily so a cache hit skips the synthetic
 *  dataset generation entirely. */
dnn::Network
cachedModel(const BenchOptions &opts, const std::string &name,
            dnn::Network net,
            const std::function<dnn::Dataset()> &make_train_set,
            const dnn::TrainConfig &cfg)
{
    std::filesystem::create_directories(opts.cacheDir);
    const std::string path = opts.cacheDir + "/" + name + ".bin";
    if (loadParameters(net, path))
        return net;
    inform("training ", name, " (cached at ", path, ")");
    dnn::SgdTrainer trainer(cfg);
    Rng rng(2024);
    const dnn::Dataset train_set = make_train_set();
    trainer.train(net, train_set, rng);
    dnn::clipParameters(net, 0.5f);
    saveParameters(net, path);
    return net;
}

} // namespace

dnn::Network
trainedMnistFc(const BenchOptions &opts)
{
    Rng rng(7);
    auto net = dnn::buildMnistFc(rng);
    dnn::TrainConfig cfg;
    cfg.epochs = 6;
    return cachedModel(opts, "mnist_fc", std::move(net),
                       [] { return dnn::makeSyntheticMnist(4000, 1); },
                       cfg);
}

dnn::Dataset
mnistTestSet(const BenchOptions &opts)
{
    return dnn::makeSyntheticMnist(
        static_cast<int>(opts.samples(1000)), 2);
}

dnn::Network
trainedAlexNet(const BenchOptions &opts)
{
    Rng rng(7);
    auto net = dnn::buildAlexNetCifar(rng);
    dnn::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.learningRate = 0.05;
    return cachedModel(opts, "alexnet_cifar", std::move(net),
                       [&opts] {
                           return dnn::makeSyntheticCifar(
                               opts.paper ? 3000 : 1500, 1);
                       },
                       cfg);
}

dnn::Dataset
cifarTestSet(const BenchOptions &opts)
{
    return dnn::makeSyntheticCifar(
        static_cast<int>(opts.samples(300)), 2);
}

std::vector<Volt>
vlvGrid()
{
    return {0.34_V, 0.38_V, 0.42_V, 0.46_V, 0.50_V};
}

std::vector<Volt>
wideGrid()
{
    return {0.34_V, 0.36_V, 0.38_V, 0.40_V, 0.42_V, 0.44_V,
            0.46_V, 0.48_V, 0.50_V, 0.55_V, 0.60_V};
}

std::vector<Volt>
highGrid()
{
    return {0.50_V, 0.55_V, 0.60_V, 0.65_V, 0.70_V, 0.75_V, 0.80_V};
}

} // namespace vboost::bench
