/**
 * @file
 * Fig. 14 + Table 3 reproduction: AlexNet's five convolution layers
 * under the Eyeriss Row-Stationary dataflow with a 128 KB global
 * buffer. Top panel: inference accuracy vs supply voltage for the
 * unboosted baseline and each boost level (accuracy measured by
 * Monte-Carlo fault injection on the trained conv net). Bottom panel:
 * per-layer dynamic energy of boosted vs dual-supply configurations.
 */

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "dnn/zoo.hpp"
#include "energy/supply_config.hpp"
#include "fi/accuracy_curve.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);

    // Table 3: workload characteristics.
    const accel::EyerissRsModel rs;
    const auto conv_dims = dnn::alexNetImageNetConvDims();
    const auto layer_act = rs.networkActivity(conv_dims);
    const auto total = accel::totalActivity(layer_act);
    {
        const accel::DanaFcModel dana;
        const auto fc_total = accel::totalActivity(
            dana.networkActivity(dnn::mnistFcLayerSizes()));
        Table t3({"Workload", "Dataflow", "Type", "SRAMAcc/MAC Ops"});
        t3.addRow({"MNIST", "DANA", "4 Fully Connected Layers",
                   Table::pct(fc_total.accessRatio())});
        t3.addRow({"AlexNet for CIFAR-10", "Eyeriss Row Stationary",
                   "5 Conv layers", Table::pct(total.accessRatio(), 2)});
        bench::emit("Table 3: workload characteristics", t3, opts);
    }

    // Accuracy curve of the trained 5-conv network.
    auto net = bench::trainedAlexNet(opts);
    const auto test = bench::cifarTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(4);
    fcfg.maxTestSamples = opts.samples(200);
    fcfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3,
        opts.paper ? 12 : 8);

    Table acc({"Vdd (V)", "unboosted", "Vddv1", "Vddv2", "Vddv3",
               "Vddv4"});
    for (Volt vdd : bench::vlvGrid()) {
        std::vector<std::string> row{Table::num(vdd.value(), 2)};
        for (int level = 0; level <= 4; ++level) {
            const Volt vddv = sc.boostedVoltage(vdd, level);
            row.push_back(Table::pct(curve.at(frm.rate(vddv))));
        }
        acc.addRow(row);
    }
    bench::emit("Fig. 14 (top): AlexNet accuracy vs Vdd per boost level "
                "(fault-free " + Table::pct(curve.faultFree()) + ")",
                acc, opts);

    // Dynamic energy, boosted vs dual, per conv layer and per level.
    const Volt vdd{0.40};
    Table e({"layer", "MACs (M)", "GB acc (M)", "level",
             "boost dyn (uJ)", "dual dyn (uJ)", "savings"});
    for (std::size_t l = 0; l < layer_act.size(); ++l) {
        for (int level = 1; level <= 4; ++level) {
            const energy::Workload w{layer_act[l].totalAccesses(),
                                     layer_act[l].macs};
            const Volt vddv = sc.boostedVoltage(vdd, level);
            const double boost =
                sc.boostedDynamic(w, vdd, level).total().value();
            const double dual =
                sc.dualSupplyDynamic(w, vddv, vdd).total().value();
            e.addRow({"conv" + std::to_string(l + 1),
                      Table::num(static_cast<double>(layer_act[l].macs) /
                                     1e6,
                                 1),
                      Table::num(static_cast<double>(
                                     layer_act[l].totalAccesses()) /
                                     1e6,
                                 2),
                      std::to_string(level),
                      Table::num(boost * 1e6, 2),
                      Table::num(dual * 1e6, 2),
                      Table::pct(1.0 - boost / dual)});
        }
    }
    bench::emit("Fig. 14 (bottom): per-layer dynamic energy at "
                "Vdd = 0.40 V, boost vs dual supply",
                e, opts);

    // Headlines across all voltages and levels.
    RunningStats all_levels;
    double vddv4_total = 0;
    const energy::Workload w{total.totalAccesses(), total.macs};
    for (Volt v : bench::vlvGrid()) {
        for (int level = 1; level <= 4; ++level) {
            const Volt vddv = sc.boostedVoltage(v, level);
            const double boost =
                sc.boostedDynamic(w, v, level).total().value();
            const double dual =
                sc.dualSupplyDynamic(w, vddv, v).total().value();
            const double saving = 1.0 - boost / dual;
            all_levels.add(saving);
            if (level == 4)
                vddv4_total += saving;
        }
    }
    Table s({"headline", "value", "paper"});
    s.addRow({"mean savings vs dual at Vddv4 (0.34-0.5 V)",
              Table::pct(vddv4_total /
                         static_cast<double>(bench::vlvGrid().size())),
              "26%"});
    s.addRow({"mean savings vs dual across all boost levels",
              Table::pct(all_levels.mean()), "19%"});
    bench::emit("Fig. 14: headlines", s, opts);
    return 0;
}
