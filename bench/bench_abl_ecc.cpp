/**
 * @file
 * Ablation: SECDED ECC versus supply boosting as the low-voltage SRAM
 * mitigation (the paper's related-work comparison, refs [36] and the
 * Sec. 7.3 argument that boosting is the more viable 6T solution).
 *
 * For each supply voltage we compare FC-DNN accuracy with
 *  - the raw unboosted memory,
 *  - SECDED Hamming(72,64) on the unboosted memory (12.5% storage and
 *    access-energy overhead, check bits in equally faulty cells),
 *  - boosting to the minimal level whose Vddv clears 0.5 V.
 * ECC helps in the narrow band where single-bit errors dominate per
 * 72-bit codeword, but collapses at VLV failure rates where multi-bit
 * errors are common; boosting attacks the raw bit error rate itself
 * and keeps working down to 0.34 V.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "sram/ecc.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);

    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(6);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, cfg);

    Table t({"Vdd (V)", "BER", "raw acc", "ECC acc",
             "ECC corrected/word", "ECC uncorrectable/word",
             "boosted acc", "boost level"});
    for (Volt v : bench::wideGrid()) {
        const double f = frm.rate(v);
        const auto raw =
            runner.run(f, fi::InjectionSpec::allWeights());
        sram::EccStats stats;
        const auto ecc = runner.runWithEcc(f, 0.5, &stats);

        const auto level = explorer.minimalLevelReaching(v, 0.50_V);
        std::string boost_acc = "-", boost_level = "unreachable";
        if (level) {
            const Volt vddv = explorer.boostedVoltage(v, *level);
            boost_acc = Table::pct(
                runner.run(frm.rate(vddv),
                           fi::InjectionSpec::allWeights())
                    .meanAccuracy);
            boost_level = std::to_string(*level);
        }
        t.addRow({Table::num(v.value(), 2), Table::sci(f),
                  Table::pct(raw.meanAccuracy),
                  Table::pct(ecc.meanAccuracy),
                  Table::num(static_cast<double>(stats.corrected) /
                                 static_cast<double>(stats.words),
                             4),
                  Table::num(static_cast<double>(
                                 stats.detectedUncorrectable) /
                                 static_cast<double>(stats.words),
                             4),
                  boost_acc, boost_level});
    }
    bench::emit("Ablation: SECDED ECC vs supply boosting "
                "(accuracy across Vdd)",
                t, opts);

    Table o({"overhead", "ECC", "boosting"});
    o.addRow({"storage",
              Table::pct(sram::SecdedCodec::storageOverhead()),
              "0% (booster beside the macro)"});
    o.addRow({"silicon area", "encoder/decoder per port",
              "0.0039 mm^2 per macro (Table 1)"});
    o.addRow({"per-access energy", "+12.5% bits read/written",
              Table::num(explorer.supply()
                                 .booster()
                                 .boostEventEnergy(0.40_V, 4)
                                 .value() *
                             1e15,
                         0) +
                  " fJ boost event at Vddv4/0.4 V"});
    o.addRow({"works below ~0.42 V", "no (multi-bit errors)", "yes"});
    bench::emit("Ablation: ECC vs boosting overhead comparison", o,
                opts);
    return 0;
}
