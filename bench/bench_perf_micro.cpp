/**
 * @file
 * Perf-trajectory harness (DESIGN.md §12): per-kernel ns/op for both
 * compute backends plus the fig14 AlexNet end-to-end measurement
 * phase, emitted as schema-versioned JSON (--json, schema
 * "vboost-bench-perf/1"). tools/bench_compare checks a run against
 * the committed baseline bench/BENCH_perf.json and fails CI on
 * regression.
 *
 * Methodology: every sample is min-of-repeats wall time over a fixed
 * deterministic workload (no time-based calibration, so the measured
 * work is identical run to run). `fig14_e2e` times the Monte-Carlo
 * measurement phase of bench_fig14_alexnet — the fault-injection
 * sweep plus accuracy-curve sampling on the cached trained model —
 * per backend; one-time setup (model training/load, synthetic test
 * set synthesis) runs before the timed region because it is shared
 * verbatim by both backends. The derived fig14_speedup_vec_over_ref
 * entry carries the >= 5x acceptance floor as a hard min-gate. The
 * harness also cross-checks that both backends produce bitwise-equal
 * accuracy curves, so every perf run doubles as an equivalence smoke.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/fixed_point.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dnn/backend/backend.hpp"
#include "dnn/tensor.hpp"
#include "fi/accuracy_curve.hpp"
#include "fi/experiment.hpp"
#include "json_writer.hpp"
#include "sram/fault_map.hpp"

namespace {

using namespace vboost;
using Clock = std::chrono::steady_clock;

/** One measured (or derived) sample of the trajectory. */
struct PerfEntry
{
    std::string kernel;
    std::string backend;
    /** "hard" entries fail bench_compare on regression; "soft" ones
     *  only warn (runner-noise-prone kernels). */
    std::string gate = "soft";
    double nsPerOp = 0.0;
    /** Work items (bits, MACs, elements...) per op, for throughput. */
    std::uint64_t itemsPerOp = 0;
    /** Derived ratios carry a value + optional hard floor instead. */
    bool derived = false;
    double value = 0.0;
    double minGate = 0.0;
};

/** Minimum wall-clock ns per op over `repeats` runs of `iters` calls. */
template <typename F>
double
minNsPerOp(int repeats, int iters, F &&fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        const auto t1 = Clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        best = std::min(best, ns / iters);
    }
    return best;
}

/** Defeat dead-code elimination across timed kernels. */
volatile std::uint64_t g_sink = 0;

/** Backend-independent kernels (the raw fault-map query). */
void
scalarSuite(const bench::BenchOptions &opts, std::vector<PerfEntry> &out)
{
    const int iters = opts.smoke ? 100000 : 1000000;
    const sram::VulnerabilityMap map(1, 0);
    std::uint64_t cell = 0;
    const double ns = minNsPerOp(3, iters, [&] {
        g_sink = g_sink + static_cast<std::uint64_t>(map.isFaulty(cell++, 0.01));
    });
    out.push_back({"fault_map_query", "scalar", "soft", ns, 1});
}

/** Micro-kernel suite for one backend. */
void
microSuite(const dnn::Backend &b, const bench::BenchOptions &opts,
           std::vector<PerfEntry> &out)
{
    const std::string name(b.name());
    const int scale = opts.smoke ? 4 : 1;

    // corrupt_words: one whole-buffer pass of the fault kernel near
    // the fig14 operating point.
    {
        constexpr std::size_t kWords = 65536;
        const sram::VulnerabilityMap map(1, 0);
        const dnn::FaultWindow win{0, kWords * 16, 0};
        std::vector<std::int16_t> words(kWords, 0x1234);
        std::vector<std::int16_t> scratch;
        Rng rng(2);
        const double ns = minNsPerOp(3, 4 / scale + 1, [&] {
            scratch = words;
            g_sink = g_sink + b.applyFaultMap(scratch, map, win, {0.01, 0.5}, rng);
        });
        out.push_back({"corrupt_words", name, "soft", ns, kWords * 16});
    }

    // fused_corrupt_dequant: the fault-injection hot loop (corrupt +
    // dequantize in one pass). The optimized (non-reference) copy is
    // the hard regression gate; the scalar copy stays soft — nobody
    // tunes it, and its ns/op swings with host load.
    {
        constexpr std::size_t kWords = 65536;
        const sram::VulnerabilityMap map(1, 0);
        const dnn::FaultWindow win{0, kWords * 16, 0};
        const FixedPointCodec codec(12);
        std::vector<std::int16_t> words(kWords, 0x1234);
        std::vector<std::int16_t> scratch;
        std::vector<float> decoded(kWords);
        Rng rng(3);
        const double ns = minNsPerOp(3, 4 / scale + 1, [&] {
            scratch = words;
            g_sink = g_sink + b.applyFaultMapDequant(scratch, codec,
                                             decoded.data(), map, win,
                                             {0.01, 0.5}, rng);
        });
        out.push_back({"fused_corrupt_dequant", name,
                       name == "reference" ? "soft" : "hard", ns,
                       kWords * 16});
    }

    // gemm_256: square GEMM, the conv/dense compute core.
    {
        constexpr int kN = 256;
        Rng rng(4);
        const auto a = dnn::Tensor::randn({kN, kN}, rng, 1.0);
        const auto bb = dnn::Tensor::randn({kN, kN}, rng, 1.0);
        dnn::Tensor c({kN, kN});
        const double ns = minNsPerOp(3, 8 / scale + 1, [&] {
            b.gemm(a.data(), bb.data(), c.data(), kN, kN, kN,
                   /*accumulate=*/false);
            g_sink = g_sink + static_cast<std::uint64_t>(c[0] != 0.0f);
        });
        out.push_back({"gemm_256", name, "soft", ns,
                       static_cast<std::uint64_t>(kN) * kN * kN});
    }

    // im2col_conv: one conv2-shaped image (16ch 16x16, 5x5 kernel).
    {
        const dnn::ConvGeom g{16, 24, 5, 2, 16, 16};
        Rng rng(5);
        const auto img = dnn::Tensor::randn({g.inCh, g.h, g.w}, rng, 1.0);
        const auto wts = dnn::Tensor::randn({g.outCh, g.patch()}, rng, 0.1);
        const auto bias = dnn::Tensor::randn({g.outCh}, rng, 0.1);
        std::vector<float> outbuf(
            static_cast<std::size_t>(g.outCh) * g.spatial());
        std::vector<float> cols;
        const double ns = minNsPerOp(3, 64 / scale, [&] {
            b.im2colConv(img.data(), wts.data(), bias.data(), outbuf.data(),
                         g, cols);
            g_sink = g_sink + static_cast<std::uint64_t>(outbuf[0] != 0.0f);
        });
        out.push_back({"im2col_conv", name, "soft", ns,
                       static_cast<std::uint64_t>(g.outCh) * g.patch() *
                           g.spatial()});
    }

    // maxpool_2x2: a conv1-sized activation batch.
    {
        Rng rng(6);
        const auto x = dnn::Tensor::randn({32, 16, 32, 32}, rng, 1.0);
        dnn::Tensor y({32, 16, 16, 16});
        const double ns = minNsPerOp(3, 32 / scale, [&] {
            b.maxPool2x2(x.data(), y.data(), 32, 16, 32, 32);
            g_sink = g_sink + static_cast<std::uint64_t>(y[0] != 0.0f);
        });
        out.push_back({"maxpool_2x2", name, "soft", ns, x.numel()});
    }
}

/** One round of the fig14 measurement phase under one backend:
 *  returns wall nanoseconds and appends the sampled accuracies plus
 *  the fault-free accuracy to `digest` for the cross-backend bitwise
 *  check. */
double
fig14Round(dnn::Network &net, const dnn::Dataset &test,
           const fi::ExperimentConfig &fcfg, int points,
           const dnn::Backend &b, std::vector<double> &digest)
{
    if (!dnn::setActiveBackend(b.name()))
        fatal("perf harness: backend ", b.name(), " vanished");
    const auto t0 = Clock::now();
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3, points);
    const auto t1 = Clock::now();
    digest = curve.accuracies();
    digest.push_back(curve.faultFree());
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    std::vector<PerfEntry> entries;
    std::vector<const dnn::Backend *> backends;
    for (auto name : dnn::availableBackends())
        backends.push_back(dnn::findBackend(name));

    scalarSuite(opts, entries);
    for (const dnn::Backend *b : backends)
        microSuite(*b, opts, entries);

    // fig14 end-to-end measurement phase: train/load once (untimed),
    // then run the full Monte-Carlo sweep per backend. Repeats
    // interleave the backends in time (ref, vec, ref, vec, ...) so a
    // transient host-load spike inflates both legs of the speedup
    // ratio instead of just one; each backend keeps its min.
    auto net = bench::trainedAlexNet(opts);
    const auto test = bench::cifarTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(4);
    fcfg.maxTestSamples = opts.samples(200);
    fcfg.numThreads = opts.threads;
    const int points = opts.paper ? 12 : 8;
    const int repeats = opts.smoke ? 1 : 2;
    std::vector<double> best_ns(
        backends.size(), std::numeric_limits<double>::infinity());
    std::vector<std::vector<double>> digests(backends.size());
    for (int r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < backends.size(); ++i) {
            std::vector<double> digest;
            const double ns =
                fig14Round(net, test, fcfg, points, *backends[i], digest);
            best_ns[i] = std::min(best_ns[i], ns);
            if (digests[i].empty())
                digests[i] = digest;
            else if (digests[i] != digest)
                fatal("perf harness: fig14 accuracy curve changed "
                      "between repeats — nondeterminism");
        }
    }
    dnn::setActiveBackend("auto");
    for (std::size_t i = 1; i < digests.size(); ++i)
        if (digests[i] != digests[0])
            fatal("perf harness: backends disagree on the fig14 "
                  "accuracy curve — bitwise contract violated");
    double ref_ns = 0.0, vec_ns = 0.0;
    for (std::size_t i = 0; i < backends.size(); ++i) {
        entries.push_back(
            {"fig14_e2e", std::string(backends[i]->name()), "soft",
             best_ns[i],
             static_cast<std::uint64_t>(fcfg.maxTestSamples) *
                 static_cast<std::uint64_t>(points) *
                 static_cast<std::uint64_t>(fcfg.numMaps)});
        if (entries.back().backend == "reference")
            ref_ns = best_ns[i];
        else if (entries.back().backend == "vectorized")
            vec_ns = best_ns[i];
    }

    if (ref_ns > 0.0 && vec_ns > 0.0) {
        PerfEntry d;
        d.kernel = "fig14_speedup_vec_over_ref";
        d.backend = "derived";
        d.gate = "hard";
        d.derived = true;
        d.value = ref_ns / vec_ns;
        d.minGate = 5.0;
        entries.push_back(d);
    }

    Table t({"kernel", "backend", "ns/op", "items/op", "gate"});
    for (const auto &e : entries) {
        if (e.derived) {
            t.addRow({e.kernel, e.backend, Table::num(e.value, 2),
                      ">= " + Table::num(e.minGate, 1), e.gate});
            continue;
        }
        t.addRow({e.kernel, e.backend, Table::num(e.nsPerOp, 1),
                  std::to_string(e.itemsPerOp), e.gate});
    }
    bench::emit("Perf trajectory (min-of-repeats, threads=" +
                    std::to_string(opts.threads) + ")",
                t, opts);

    if (!opts.jsonPath.empty()) {
        std::ofstream os(opts.jsonPath);
        if (!os)
            fatal("cannot write ", opts.jsonPath);
        bench::JsonWriter j(os);
        j.beginObject()
            .field("schema", "vboost-bench-perf/1")
            .field("bench", "perf_micro")
            .field("threads", static_cast<std::int64_t>(opts.threads))
            .field("smoke", opts.smoke)
            .beginArrayField("entries");
        for (const auto &e : entries) {
            j.beginObject()
                .field("kernel", e.kernel)
                .field("backend", e.backend)
                .field("threads", static_cast<std::int64_t>(opts.threads))
                .field("gate", e.gate);
            if (e.derived) {
                j.field("value", e.value).field("min_gate", e.minGate);
            } else {
                j.field("ns_per_op", e.nsPerOp)
                    .field("items_per_op",
                           static_cast<std::uint64_t>(e.itemsPerOp));
            }
            j.endObject();
        }
        j.endArray().endObject();
    }
    return 0;
}
