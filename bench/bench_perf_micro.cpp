/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator's hot paths:
 * fault-map evaluation, buffer corruption, the GEMM kernel, the
 * booster solver, bank reads through the faulty path, and a full FC
 * inference. These quantify simulator throughput (not chip
 * performance) so users can size their Monte-Carlo budgets.
 */

#include <benchmark/benchmark.h>

#include "circuit/booster.hpp"
#include "core/context.hpp"
#include "dnn/tensor.hpp"
#include "dnn/zoo.hpp"
#include "sram/fault_map.hpp"
#include "sram/sram_bank.hpp"

namespace {

using namespace vboost;

void
BM_FaultMapQuery(benchmark::State &state)
{
    sram::VulnerabilityMap map(1, 0);
    std::uint64_t cell = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.isFaulty(cell++, 0.01));
    }
}
BENCHMARK(BM_FaultMapQuery);

void
BM_CorruptWords(benchmark::State &state)
{
    sram::VulnerabilityMap map(1, 0);
    Rng rng(2);
    std::vector<std::int16_t> words(
        static_cast<std::size_t>(state.range(0)), 0x1234);
    for (auto _ : state) {
        auto copy = words;
        benchmark::DoNotOptimize(
            sram::corruptWords(copy, map, 0, {0.01, 0.5}, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_CorruptWords)->Arg(1024)->Arg(65536);

void
BM_Gemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(3);
    const auto a =
        dnn::Tensor::randn({n, n}, rng, 1.0);
    const auto b =
        dnn::Tensor::randn({n, n}, rng, 1.0);
    dnn::Tensor c({n, n});
    for (auto _ : state) {
        dnn::gemm(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256);

void
BM_BoosterSolve(benchmark::State &state)
{
    const auto tech = circuit::TechnologyParams::default14nm();
    circuit::BoosterBank bank(
        circuit::BoosterDesign::standardConfig().scaled(2),
        tech.macroArrayCap * 2 + tech.fixedParasiticCap, tech);
    double v = 0.34;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bank.boostedVoltage(Volt(v), 4));
        v = v < 0.8 ? v + 1e-4 : 0.34;
    }
}
BENCHMARK(BM_BoosterSolve);

void
BM_BankFaultyRead(benchmark::State &state)
{
    const auto tech = circuit::TechnologyParams::default14nm();
    sram::SramBank bank(0, circuit::BoosterDesign::standardConfig(),
                        tech, sram::FailureRateModel{}, 16);
    bank.setBoostLevel(2);
    sram::VulnerabilityMap map(1, 0);
    Rng rng(4);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bank.read(addr, Volt(0.42), map, rng));
        addr = (addr + 1) % sram::SramBank::kWords;
    }
}
BENCHMARK(BM_BankFaultyRead);

void
BM_FcInference(benchmark::State &state)
{
    Rng rng(5);
    auto net = dnn::buildMnistFc(rng);
    const auto x = dnn::Tensor::randn({8, 784}, rng, 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(x));
    }
    state.SetItemsProcessed(state.iterations() * 8 * 339968);
}
BENCHMARK(BM_FcInference);

} // namespace

BENCHMARK_MAIN();
