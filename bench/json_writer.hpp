/**
 * @file
 * Minimal streaming JSON emitter shared by the benches' --json output
 * paths. Replaces the hand-rolled operator<< chains (each bench used
 * to manage its own commas, quoting and nesting): the writer tracks
 * the container stack, inserts separators and indentation itself,
 * escapes strings, and turns non-finite doubles into null so the
 * artifact always parses.
 *
 * Usage:
 *   JsonWriter j(out);
 *   j.beginObject()
 *    .field("bench", "serve").field("smoke", true)
 *    .beginArrayField("points");
 *   for (...) j.beginObject().field("vdd", 0.42).endObject();
 *   j.endArray().endObject();   // emits a trailing newline
 */

#ifndef VBOOST_BENCH_JSON_WRITER_HPP
#define VBOOST_BENCH_JSON_WRITER_HPP

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vboost::bench {

/** Structured JSON emitter over an ostream. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &
    beginObject()
    {
        separator();
        os_ << '{';
        stack_.push_back({false, 0});
        return *this;
    }

    JsonWriter &
    endObject()
    {
        closeContainer('}');
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        separator();
        os_ << '[';
        stack_.push_back({true, 0});
        return *this;
    }

    JsonWriter &
    endArray()
    {
        closeContainer(']');
        return *this;
    }

    /** Emit a key inside the current object; a value must follow. */
    JsonWriter &
    key(const std::string &k)
    {
        separator();
        writeString(k);
        os_ << ": ";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        separator();
        os_ << (v ? "true" : "false");
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        separator();
        if (std::isfinite(v))
            os_ << v;
        else
            os_ << "null";
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        separator();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        separator();
        os_ << v;
        return *this;
    }

    JsonWriter &value(std::int32_t v)
    { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(std::uint32_t v)
    { return value(static_cast<std::uint64_t>(v)); }

    JsonWriter &
    value(const std::string &v)
    {
        separator();
        writeString(v);
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** key + beginObject / beginArray. */
    JsonWriter &
    beginObjectField(const std::string &k)
    {
        key(k);
        return beginObject();
    }

    JsonWriter &
    beginArrayField(const std::string &k)
    {
        key(k);
        return beginArray();
    }

  private:
    struct Frame
    {
        bool isArray;
        std::size_t count;
    };

    /** Comma / newline / indent before the next key or value. */
    void
    separator()
    {
        if (pendingValue_) {
            // Value directly after key(): no separator of its own.
            pendingValue_ = false;
            if (!stack_.empty())
                ++stack_.back().count;
            return;
        }
        if (stack_.empty())
            return;
        Frame &top = stack_.back();
        if (top.count > 0)
            os_ << ',';
        os_ << '\n';
        indent(stack_.size());
        ++top.count;
    }

    void
    closeContainer(char closer)
    {
        const bool empty = stack_.back().count == 0;
        stack_.pop_back();
        if (!empty) {
            os_ << '\n';
            indent(stack_.size());
        }
        os_ << closer;
        if (stack_.empty())
            os_ << '\n';
    }

    void
    indent(std::size_t depth)
    {
        for (std::size_t i = 0; i < depth; ++i)
            os_ << "  ";
    }

    void
    writeString(const std::string &s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                os_ << "\\\"";
                break;
              case '\\':
                os_ << "\\\\";
                break;
              case '\n':
                os_ << "\\n";
                break;
              case '\t':
                os_ << "\\t";
                break;
              case '\r':
                os_ << "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char *hex = "0123456789abcdef";
                    os_ << "\\u00" << hex[(c >> 4) & 0xf]
                        << hex[c & 0xf];
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool pendingValue_ = false;
};

} // namespace vboost::bench

#endif // VBOOST_BENCH_JSON_WRITER_HPP
