/**
 * @file
 * Ablation: boost-only-during-access versus a statically boosted SRAM
 * rail. The paper's design boosts only inside read/write cycles
 * ("When to boost", Sec. 2), so idle SRAM leaks at Vdd. A static
 * scheme (or a dual rail) holds the SRAM at Vddv continuously. We
 * sweep memory duty cycle (fraction of cycles with an access) and
 * report total energy per cycle for both policies: dynamic boosting
 * wins everywhere, and the gap widens as duty drops.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 18);
    const Hertz clock = 50.0_MHz;
    const Volt vdd{0.40};
    const int level = 4;
    const Volt vddv = sc.boostedVoltage(vdd, level);
    const auto &em = sc.energyModel();

    Table t({"duty cycle", "dynamic-boost E/cycle (pJ)",
             "static-rail E/cycle (pJ)", "savings"});
    for (double duty : {0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        // Dynamic boosting: per-access boost + access energy at Vddv,
        // idle leakage at Vdd everywhere.
        const double dyn_access =
            duty * (em.sramAccessEnergy(vddv, 18).value() +
                    sc.booster().boostEventEnergy(vdd, level).value());
        const double dyn_leak =
            sc.boostedLeakagePerCycle(vdd, clock).value();
        const double dynamic_total = dyn_access + dyn_leak;

        // Static rail: accesses at Vddv without boost cost, but the
        // whole SRAM leaks at Vddv continuously (PE stays at Vdd with
        // no LDO, the most charitable static variant).
        const double st_access =
            duty * em.sramAccessEnergy(vddv, 18).value();
        const double st_leak =
            em.leakagePerCycle(em.sramLeakage(vddv, 36) +
                                   em.peLeakage(vdd),
                               clock)
                .value();
        const double static_total = st_access + st_leak;

        t.addRow({Table::pct(duty, 0),
                  Table::num(dynamic_total * 1e12, 3),
                  Table::num(static_total * 1e12, 3),
                  Table::pct(1.0 - dynamic_total / static_total)});
    }
    bench::emit("Ablation: boost-on-access vs statically boosted rail "
                "(Vdd 0.40 V, level 4, total energy per cycle)",
                t, opts);
    return 0;
}
