/**
 * @file
 * Fig. 9 reproduction: normalized SRAM access latency at high supply
 * voltages when only the cell array is boosted (Boost-array-p, the
 * peripherals stay at Vdd) versus when the whole macro including
 * peripherals is boosted (Boost-macro-p). Macro-level boosting sees a
 * lower Vddv (extra peripheral load on the boosted rail) but speeds up
 * the full access path.
 */

#include "bench_util.hpp"
#include "circuit/booster.hpp"
#include "circuit/latency.hpp"
#include "common/logging.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto tech = circuit::TechnologyParams::default14nm();
    const circuit::LatencyModel lat(tech);

    // Array-only boosting: the booster drives just the cell array.
    circuit::BoosterBank array_bank(
        circuit::BoosterDesign::standardConfig(),
        tech.macroArrayCap + tech.fixedParasiticCap, tech);
    // Macro boosting: peripherals load the boosted rail too.
    circuit::BoosterBank macro_bank(
        circuit::BoosterDesign::standardConfig(),
        tech.macroArrayCap + tech.macroPeriphCap + tech.fixedParasiticCap,
        tech);

    Table t({"Vdd (V)", "config", "level", "Vddv (V)",
             "normalized latency", "reduction"});
    double best_macro_reduction = 0.0;
    for (Volt vdd : bench::highGrid()) {
        for (int level = 1; level <= 4; ++level) {
            const Volt v_arr = array_bank.boostedVoltage(vdd, level);
            const double n_arr = lat.normalized(v_arr, vdd, vdd);
            t.addRow({Table::num(vdd.value(), 2),
                      "Boost-array-" + std::to_string(level),
                      std::to_string(level), Table::num(v_arr.value(), 3),
                      Table::num(n_arr, 3), Table::pct(1.0 - n_arr)});

            const Volt v_mac = macro_bank.boostedVoltage(vdd, level);
            const double n_mac = lat.normalized(v_mac, vdd);
            t.addRow({Table::num(vdd.value(), 2),
                      "Boost-macro-" + std::to_string(level),
                      std::to_string(level), Table::num(v_mac.value(), 3),
                      Table::num(n_mac, 3), Table::pct(1.0 - n_mac)});
            if (vdd == 0.50_V)
                best_macro_reduction =
                    std::max(best_macro_reduction, 1.0 - n_mac);
        }
    }
    bench::emit("Fig. 9: normalized access latency, array vs macro "
                "boosting",
                t, opts);

    Table s({"headline", "value", "paper"});
    s.addRow({"max macro-boost latency reduction at 0.5 V",
              Table::pct(best_macro_reduction), "35%"});
    bench::emit("Fig. 9: headline", s, opts);
    return 0;
}
