/**
 * @file
 * Ablation: data layout vs set_boost_config churn (paper Sec. 3.2.1,
 * "Data layout"). When data of different sensitivity (inputs vs
 * weights) shares a bank, the accelerator must issue set_boost_config
 * before each switch between data types; storing each type in its own
 * BIC-controlled region needs only one configuration per layer. We
 * sweep the interleaving granularity (accesses between type switches)
 * and report the instruction count and its energy overhead relative to
 * the boosted access energy — reproducing the paper's guidance that
 * the instruction "must be issued at relatively large intervals" and
 * that partitioned layouts keep the count small.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    const Volt vdd{0.40};

    // One MNIST FC inference under the DANA dataflow: 255k accesses,
    // of which weights run at level 4 and inputs/psums at level 1.
    constexpr std::uint64_t kWeightAcc = 63744 + 63744; // w + psum
    constexpr std::uint64_t kInputAcc = 127488;
    constexpr std::uint64_t kTotalAcc = kWeightAcc + kInputAcc;
    constexpr int kLayers = 4;

    // Energy of one set_boost_config instruction: a 4-bit register
    // write plus decode — modeled as 20 fF of switched capacitance.
    const Joule e_config = switchingEnergy(Farad(20e-15), vdd);
    const double base_energy =
        sc.boostedDynamicMulti({{kWeightAcc, 4}, {kInputAcc, 1}}, 340000,
                               vdd)
            .total()
            .value();

    Table t({"layout", "accesses per config switch",
             "set_boost_config count", "config energy (pJ)",
             "overhead vs dynamic"});
    // Partitioned: one configuration per region per layer.
    {
        const std::uint64_t instrs = 2 * kLayers * 16ull; // per bank
        const double e = static_cast<double>(instrs) * e_config.value();
        t.addRow({"partitioned (paper)", "-", std::to_string(instrs),
                  Table::num(e * 1e12, 2), Table::pct(e / base_energy, 4)});
    }
    // Interleaved at decreasing granularity.
    for (std::uint64_t chunk : {4096ull, 512ull, 64ull, 8ull, 1ull}) {
        const std::uint64_t switches = kTotalAcc / chunk;
        const double e =
            static_cast<double>(switches) * e_config.value();
        t.addRow({"interleaved", std::to_string(chunk),
                  std::to_string(switches), Table::num(e * 1e12, 2),
                  Table::pct(e / base_energy, 4)});
    }
    bench::emit("Ablation: data layout vs set_boost_config overhead "
                "(MNIST FC inference at Vdd = 0.40 V)",
                t, opts);

    Table n({"takeaway", ""});
    n.addRow({"partitioned regions",
              "configuration cost is amortized over a whole layer: "
              "negligible"});
    n.addRow({"word-level interleaving",
              "one instruction per access makes the overhead visible "
              "- exactly why the paper stores inputs and weights in "
              "separately controlled regions"});
    bench::emit("Ablation: layout guidance (Sec. 3.2.1)", n, opts);
    return 0;
}
