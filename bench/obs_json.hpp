/**
 * @file
 * Shared observability artifact writers for the benches (DESIGN.md
 * §11), built on the same JsonWriter as the --json result paths. Two
 * artifacts:
 *
 *  - writeMetricsJson: the full MetricsRegistry as one JSON document
 *    with a top-level "fingerprint" field (the thread-count-invariance
 *    acceptance value the serve_obs_determinism ctest compares) and a
 *    key-ordered "metrics" array.
 *  - writeTraceJson: the Tracer's Chrome trace_event JSON, loadable in
 *    chrome://tracing or Perfetto.
 *
 * Both writers are deterministic byte-for-byte given equal registry /
 * tracer contents, so artifact files can be compared bitwise.
 */

#ifndef VBOOST_BENCH_OBS_JSON_HPP
#define VBOOST_BENCH_OBS_JSON_HPP

#include <fstream>
#include <string>

#include "common/logging.hpp"
#include "json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vboost::bench {

/** Serialize a metrics registry to `path` (fatal on open failure). */
inline void
writeMetricsJson(const std::string &path, const std::string &bench,
                 const obs::MetricsRegistry &reg)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output file '", path, "'");
    JsonWriter j(out);
    j.beginObject()
        .field("bench", bench)
        .field("fingerprint", reg.fingerprint())
        .field("metric_count", static_cast<std::uint64_t>(reg.size()));
    j.beginArrayField("fingerprint_exclusions");
    for (const std::string &name : reg.fingerprintExclusions())
        j.value(name);
    j.endArray();
    j.beginArrayField("metrics");
    for (const auto &[key, metric] : reg.metrics()) {
        j.beginObject()
            .field("name", key.name)
            .field("kind", obs::toString(metric.kind));
        if (!key.labels.empty()) {
            j.beginObjectField("labels");
            for (const auto &[k, v] : key.labels)
                j.field(k, v);
            j.endObject();
        }
        switch (metric.kind) {
          case obs::MetricKind::Counter:
            j.field("value", metric.count);
            break;
          case obs::MetricKind::Sum:
          case obs::MetricKind::Gauge:
            j.field("value", metric.sum);
            break;
          case obs::MetricKind::Histogram:
            j.field("count", metric.count).field("sum", metric.sum);
            if (metric.count > 0)
                j.field("min", metric.min).field("max", metric.max);
            j.beginArrayField("bounds");
            for (double b : metric.bounds)
                j.value(b);
            j.endArray();
            j.beginArrayField("buckets");
            for (std::uint64_t b : metric.buckets)
                j.value(b);
            j.endArray();
            break;
        }
        j.endObject();
    }
    j.endArray().endObject();
    inform("wrote metrics JSON: ", path, " (", reg.size(),
           " metrics, fingerprint ", reg.fingerprint(), ")");
}

/** Serialize a tracer to Chrome trace_event JSON at `path`. */
inline void
writeTraceJson(const std::string &path, const obs::Tracer &tracer)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '", path, "'");
    tracer.writeChromeTrace(out);
    inform("wrote Chrome trace JSON: ", path, " (", tracer.eventCount(),
           " events; load in chrome://tracing or Perfetto)");
}

} // namespace vboost::bench

#endif // VBOOST_BENCH_OBS_JSON_HPP
