# Recovery-subsystem thread-count-invariance gate (DESIGN.md §15): run
# bench_abl_recovery in smoke mode at --threads 1 and --threads 8 and
# require (a) the result JSON — trained-weight digests, training-stats
# digests and per-point ChipEvaluator digests included — to be bitwise
# identical and (b) the metrics fingerprint in the metrics JSON to be
# identical. Invoked by the recovery_determinism ctest entry with
# -DBENCH_RECOVERY=<exe> -DWORK_DIR=<dir>.

if(NOT BENCH_RECOVERY)
    message(FATAL_ERROR "pass -DBENCH_RECOVERY=<path to bench_abl_recovery>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<writable work directory>")
endif()

set(ENV{VBOOST_BENCH_SMOKE} 1)

foreach(threads 1 8)
    execute_process(
        COMMAND ${BENCH_RECOVERY}
            --threads ${threads}
            --json ${WORK_DIR}/recovery-det-t${threads}.json
            --metrics-out ${WORK_DIR}/recovery-det-metrics-t${threads}.json
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "bench_abl_recovery --threads ${threads} failed (${rc}):\n"
            "${out}\n${err}")
    endif()
endforeach()

# (a) Result JSON (all digests included) must match bitwise.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/recovery-det-t1.json
        ${WORK_DIR}/recovery-det-t8.json
    RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR
        "recovery-frontier JSON differs between --threads 1 and "
        "--threads 8 (recovery-det-t1.json vs recovery-det-t8.json)")
endif()

# (b) Metrics fingerprints must match.
foreach(threads 1 8)
    file(READ ${WORK_DIR}/recovery-det-metrics-t${threads}.json contents)
    string(REGEX MATCH "\"fingerprint\": ([0-9]+)" _ "${contents}")
    if(NOT CMAKE_MATCH_1)
        message(FATAL_ERROR
            "no fingerprint field in recovery-det-metrics-t${threads}.json")
    endif()
    set(fp_t${threads} ${CMAKE_MATCH_1})
endforeach()
if(NOT fp_t1 STREQUAL fp_t8)
    message(FATAL_ERROR
        "metrics fingerprint differs: threads=1 -> ${fp_t1}, "
        "threads=8 -> ${fp_t8}")
endif()

message(STATUS
    "recovery determinism OK: fingerprint ${fp_t1}, trained-weight and "
    "evaluation digests and result JSON bitwise identical at 1 vs 8 "
    "threads")
