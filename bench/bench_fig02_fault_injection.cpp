/**
 * @file
 * Fig. 2 reproduction: effect of fault injection into inputs, weights
 * of all layers, and selectively into the first and last weight layers
 * of the MNIST FC-DNN, across supply voltage, together with the bit
 * error rate used for injection.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);

    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(8);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, cfg);

    const double baseline = runner.baselineAccuracy();

    // Each curve is one voltage sweep: the runner parallelizes over
    // the full (voltage x map) grid.
    const auto grid = bench::wideGrid();
    const auto all =
        runner.sweepVoltage(grid, frm, fi::InjectionSpec::allWeights());
    const auto inputs =
        runner.sweepVoltage(grid, frm, fi::InjectionSpec::inputsOnly());
    const auto l1 =
        runner.sweepVoltage(grid, frm, fi::InjectionSpec::singleLayer(0));
    const auto l4 =
        runner.sweepVoltage(grid, frm, fi::InjectionSpec::singleLayer(3));

    Table t({"Vdd (V)", "bit error rate", "weights all layers",
             "inputs", "weights L1 only", "weights L4 only"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        t.addRow({Table::num(grid[i].value(), 2),
                  Table::sci(all[i].failProb),
                  Table::pct(all[i].meanAccuracy),
                  Table::pct(inputs[i].meanAccuracy),
                  Table::pct(l1[i].meanAccuracy),
                  Table::pct(l4[i].meanAccuracy)});
    }
    bench::emit("Fig. 2: accuracy vs Vdd per injection target "
                "(baseline " + Table::pct(baseline) + ")",
                t, opts);

    // The figure's headline comparisons at the 0.44 V anchor.
    const double f = frm.rate(0.44_V);
    const auto w = runner.run(f, fi::InjectionSpec::allWeights());
    const auto in = runner.run(f, fi::InjectionSpec::inputsOnly());
    Table h({"injection target at 0.44 V (BER 1.4e-2)", "accuracy",
             "drop vs baseline"});
    h.addRow({"weights (all layers)", Table::pct(w.meanAccuracy),
              Table::pct(baseline - w.meanAccuracy)});
    h.addRow({"inputs", Table::pct(in.meanAccuracy),
              Table::pct(baseline - in.meanAccuracy)});
    bench::emit("Fig. 2: weight vs input sensitivity at the anchor BER",
                h, opts);
    return 0;
}
