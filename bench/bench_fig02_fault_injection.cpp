/**
 * @file
 * Fig. 2 reproduction: effect of fault injection into inputs, weights
 * of all layers, and selectively into the first and last weight layers
 * of the MNIST FC-DNN, across supply voltage, together with the bit
 * error rate used for injection.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    auto net = bench::trainedMnistFc(opts);
    Rng rng(8);
    auto scratch = dnn::buildMnistFc(rng);
    const auto test = bench::mnistTestSet(opts);

    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(8);
    cfg.maxTestSamples = opts.samples(400);
    fi::FaultInjectionRunner runner(net, scratch, test, cfg);

    const double baseline = runner.baselineAccuracy();

    Table t({"Vdd (V)", "bit error rate", "weights all layers",
             "inputs", "weights L1 only", "weights L4 only"});
    for (Volt v : bench::wideGrid()) {
        const auto all = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::allWeights());
        const auto inputs = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::inputsOnly());
        const auto l1 = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::singleLayer(0));
        const auto l4 = runner.runAtVoltage(
            v, frm, fi::InjectionSpec::singleLayer(3));
        t.addRow({Table::num(v.value(), 2), Table::sci(all.failProb),
                  Table::pct(all.meanAccuracy),
                  Table::pct(inputs.meanAccuracy),
                  Table::pct(l1.meanAccuracy),
                  Table::pct(l4.meanAccuracy)});
    }
    bench::emit("Fig. 2: accuracy vs Vdd per injection target "
                "(baseline " + Table::pct(baseline) + ")",
                t, opts);

    // The figure's headline comparisons at the 0.44 V anchor.
    const double f = frm.rate(0.44_V);
    const auto w = runner.run(f, fi::InjectionSpec::allWeights());
    const auto in = runner.run(f, fi::InjectionSpec::inputsOnly());
    Table h({"injection target at 0.44 V (BER 1.4e-2)", "accuracy",
             "drop vs baseline"});
    h.addRow({"weights (all layers)", Table::pct(w.meanAccuracy),
              Table::pct(baseline - w.meanAccuracy)});
    h.addRow({"inputs", Table::pct(in.meanAccuracy),
              Table::pct(baseline - in.meanAccuracy)});
    bench::emit("Fig. 2: weight vs input sensitivity at the anchor BER",
                h, opts);
    return 0;
}
