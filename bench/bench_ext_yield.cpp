/**
 * @file
 * Extension: array V_min and yield across the operating range — the
 * paper's framing ("bit cell variability and yield challenges") made
 * quantitative. Reports the error-free yield of the Dante 144 KB SRAM
 * vs voltage, the Monte-Carlo die V_min distribution, and how each
 * boost level shifts the effective V_min of the *chip supply*: with
 * level-4 boosting the chip can be supplied ~0.2 V below the die's
 * intrinsic SRAM V_min at equal yield.
 */

#include "bench_util.hpp"
#include "circuit/booster.hpp"
#include "common/logging.hpp"
#include "sram/yield.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    constexpr std::uint64_t kBits = 144ull * 1024 * 8;
    const sram::YieldAnalyzer analyzer(frm, kBits);

    Table y({"Vdd (V)", "error-free yield", "yield tolerating 16 bits",
             "yield tolerating 256 bits"});
    for (Volt v : {0.46_V, 0.50_V, 0.54_V, 0.58_V, 0.62_V, 0.66_V}) {
        y.addRow({Table::num(v.value(), 2),
                  Table::pct(analyzer.errorFreeProbability(v), 2),
                  Table::pct(analyzer.yieldWithTolerance(v, 16), 2),
                  Table::pct(analyzer.yieldWithTolerance(v, 256), 2)});
    }
    bench::emit("Extension: 144 KB array yield vs voltage", y, opts);

    const int dies = opts.paper ? 200 : 40;
    const auto dist = analyzer.sampleVmin(dies, 2026);
    Table d({"statistic", "die V_min (V)"});
    d.addRow({"best die (p10)", Table::num(dist.percentile(10), 3)});
    d.addRow({"median die", Table::num(dist.percentile(50), 3)});
    d.addRow({"mean", Table::num(dist.mean(), 3)});
    d.addRow({"worst die (p90)", Table::num(dist.percentile(90), 3)});
    d.addRow({"analytic V_min @ 99% yield",
              Table::num(analyzer.vminForYield(0.99).value(), 3)});
    bench::emit("Extension: die V_min distribution (" +
                    std::to_string(dies) + " dies)",
                d, opts);

    // Boosting lowers the required chip supply at equal array yield:
    // find the chip Vdd whose boosted Vddv reaches the 99%-yield
    // voltage, per level.
    const auto tech = circuit::TechnologyParams::default14nm();
    circuit::BoosterBank bank(
        circuit::BoosterDesign::standardConfig().scaled(2),
        tech.macroArrayCap * 2 + tech.fixedParasiticCap, tech);
    const Volt v_target = analyzer.vminForYield(0.99);
    Table b({"boost level", "min chip Vdd for 99% yield",
             "supply reduction"});
    for (int level = 0; level <= 4; ++level) {
        double vdd = 0.80;
        while (vdd > 0.30 &&
               bank.boostedVoltage(Volt(vdd - 0.001), level) >= v_target)
            vdd -= 0.001;
        b.addRow({std::to_string(level), Table::num(vdd, 3),
                  Table::num((v_target.value() - vdd) * 1e3, 0) +
                      " mV"});
    }
    bench::emit("Extension: chip-supply V_min reduction from boosting "
                "(array held at the 99%-yield voltage " +
                    Table::num(v_target.value(), 3) + " V)",
                b, opts);
    return 0;
}
