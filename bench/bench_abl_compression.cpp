/**
 * @file
 * Ablation: Deep-Compression-style pruning composed with boosting
 * (paper Sec. 6.3: compression lets the whole model live in on-chip
 * SRAM, "making our work indispensable to the application of Deep
 * Compression at very low voltages"). Prunes the trained FC-DNN at
 * increasing sparsity, reports accuracy and compressed storage
 * footprint against the Dante weight memory (128 KB), and shows the
 * accuracy-vs-voltage behaviour of the pruned model: once the model
 * is resident on chip, every weight access enjoys the boosted
 * reliability and the DRAM interface stays idle.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "dnn/prune.hpp"
#include "energy/supply_config.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    const auto test = bench::mnistTestSet(opts);
    constexpr std::uint64_t kOnChipBytes = 128 * 1024;

    Table t({"sparsity", "nonzero weights", "compressed KB",
             "fits 128 KB", "clean acc", "acc @ 0.44 V",
             "acc @ 0.44 V boosted L2"});
    for (double sparsity : {0.0, 0.5, 0.75, 0.9, 0.95}) {
        auto net = bench::trainedMnistFc(opts); // fresh copy each time
        const auto report = dnn::magnitudePrune(net, sparsity);
        const auto bytes = dnn::compressedWeightBytes(net);

        fi::ExperimentConfig cfg;
        cfg.numMaps = opts.maps(6);
        cfg.maxTestSamples = opts.samples(400);
        cfg.numThreads = opts.threads;
        fi::FaultInjectionRunner runner(net, test, cfg);

        const auto ctx = core::SimContext::standard();
        energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
        const double f_unboosted = frm.rate(0.44_V);
        const double f_boosted =
            frm.rate(sc.boostedVoltage(0.44_V, 2));

        t.addRow({Table::pct(report.sparsity(), 0),
                  std::to_string(dnn::nonzeroWeights(net)),
                  Table::num(static_cast<double>(bytes) / 1024.0, 1),
                  bytes <= kOnChipBytes ? "yes" : "no",
                  Table::pct(runner.baselineAccuracy()),
                  Table::pct(
                      runner.run(f_unboosted,
                                 fi::InjectionSpec::allWeights())
                          .meanAccuracy),
                  Table::pct(
                      runner.run(f_boosted,
                                 fi::InjectionSpec::allWeights())
                          .meanAccuracy)});
    }
    bench::emit("Ablation: pruning + compression + boosting "
                "(FC-DNN, dense int16 weights = " +
                    Table::num(339968 * 2 / 1024.0, 0) + " KB)",
                t, opts);
    return 0;
}
