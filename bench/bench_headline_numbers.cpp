/**
 * @file
 * The paper's headline numbers in one place (abstract + Sec. 6):
 *  - up to 26% / avg 17% savings vs dual supply (AlexNet conv);
 *  - 30% savings vs the single supply that meets the same accuracy;
 *  - 32% leakage energy savings vs dual supply;
 *  - ~6% booster leakage overhead;
 *  - up to 50% peak boost; 0.0039 mm^2 booster area per macro.
 */

#include "accel/dante.hpp"
#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "fi/accuracy_curve.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);
    const auto &sc = explorer.supply();
    const Hertz clock = 50.0_MHz;

    const accel::EyerissRsModel rs;
    const auto total = accel::totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));
    const energy::Workload w{total.totalAccesses(), total.macs};

    // Dynamic savings vs dual across the VLV range.
    RunningStats vddv4_savings, all_savings;
    for (Volt vdd : bench::vlvGrid()) {
        for (int level = 1; level <= 4; ++level) {
            const Volt vddv = sc.boostedVoltage(vdd, level);
            const double boost =
                sc.boostedDynamic(w, vdd, level).total().value();
            const double dual =
                sc.dualSupplyDynamic(w, vddv, vdd).total().value();
            const double saving = 1.0 - boost / dual;
            all_savings.add(saving);
            if (level == 4)
                vddv4_savings.add(saving);
        }
    }

    // Iso-accuracy savings vs the single supply meeting the target.
    auto net = bench::trainedAlexNet(opts);
    const auto test = bench::cifarTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(4);
    fcfg.maxTestSamples = opts.samples(200);
    fcfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3,
        opts.paper ? 12 : 8);
    const double target = curve.faultFree() - 0.02;
    const auto oracle = [&](Volt vddv) {
        return curve.at(frm.rate(vddv));
    };
    Volt v_single{0.60};
    for (double v = 0.40; v <= 0.62; v += 0.005) {
        if (oracle(Volt(v)) >= target) {
            v_single = Volt(v);
            break;
        }
    }
    const double single_energy =
        sc.singleSupplyDynamic(w, v_single).total().value();
    RunningStats single_savings, dual_iso_savings;
    for (Volt vdd : {0.34_V, 0.38_V, 0.40_V, 0.42_V, 0.44_V, 0.46_V}) {
        const auto op = explorer.isoAccuracyPoint(vdd, target, oracle, w);
        if (!op)
            continue;
        single_savings.add(1.0 -
                           op->boostedEnergy.value() / single_energy);
        dual_iso_savings.add(1.0 - op->boostedEnergy.value() /
                                       op->dualEnergy.value());
    }

    // Leakage savings and booster overhead for the 36-macro chip.
    energy::SupplyConfigurator sc18(ctx.tech, ctx.design, 18);
    RunningStats leak_savings;
    for (Volt vdd : bench::vlvGrid()) {
        const Volt vddv4 = sc18.boostedVoltage(vdd, 4);
        leak_savings.add(
            1.0 - sc18.boostedLeakagePerCycle(vdd, clock).value() /
                      sc18.dualSupplyLeakagePerCycle(vddv4, vdd, clock)
                          .value());
    }
    const circuit::EnergyModel em(ctx.tech);
    const double chip_leak =
        (em.sramLeakage(0.40_V, 36) + em.peLeakage(0.40_V)).value();
    const double bc_leak =
        sc18.booster().leakagePower(0.40_V).value() * 18;

    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);

    Table t({"headline", "measured", "paper"});
    t.addRow({"AlexNet dynamic savings vs dual at Vddv4",
              Table::pct(vddv4_savings.mean()) + " (max " +
                  Table::pct(vddv4_savings.max()) + ")",
              "26% (on average)"});
    t.addRow({"AlexNet dynamic savings vs dual, all levels",
              Table::pct(all_savings.mean()), "19%"});
    t.addRow({"iso-accuracy savings vs single supply",
              Table::pct(single_savings.mean()), "30%"});
    t.addRow({"iso-accuracy savings vs dual supply",
              Table::pct(dual_iso_savings.mean()), "17%"});
    t.addRow({"leakage savings vs dual (0.34-0.5 V)",
              Table::pct(leak_savings.mean()), "32%"});
    t.addRow({"booster leakage overhead",
              Table::pct(bc_leak / chip_leak), "6%"});
    t.addRow({"peak boost ratio at 0.8 V",
              Table::pct(sc.booster().boostDelta(0.80_V, 4).value() /
                         0.8),
              "up to 50%"});
    t.addRow({"booster area per macro",
              Table::num(chip.boosterArea().value() / 1e6 / 36, 4) +
                  " mm^2",
              "0.0039 mm^2"});
    bench::emit("Headline numbers vs the paper", t, opts);

    // --metrics-out publishes the measured headline values as gauges
    // (same BenchOptions parse path as the other benches, so unknown
    // flags are rejected consistently).
    if (!opts.metricsOutPath.empty()) {
        obs::MetricsRegistry reg;
        reg.gauge("headline.dynamic_savings_vs_dual.vddv4")
            .set(vddv4_savings.mean());
        reg.gauge("headline.dynamic_savings_vs_dual.all_levels")
            .set(all_savings.mean());
        reg.gauge("headline.iso_accuracy_savings_vs_single")
            .set(single_savings.mean());
        reg.gauge("headline.iso_accuracy_savings_vs_dual")
            .set(dual_iso_savings.mean());
        reg.gauge("headline.leakage_savings_vs_dual")
            .set(leak_savings.mean());
        reg.gauge("headline.booster_leakage_overhead")
            .set(bc_leak / chip_leak);
        reg.gauge("headline.peak_boost_ratio")
            .set(sc.booster().boostDelta(0.80_V, 4).value() / 0.8);
        reg.gauge("headline.booster_area_mm2_per_macro")
            .set(chip.boosterArea().value() / 1e6 / 36);
        obs::recordLoggingMetrics(reg);
        bench::writeMetricsJson(opts.metricsOutPath, "headline_numbers",
                                reg);
    }
    return 0;
}
