/**
 * @file
 * Ablation: the chip-adaptive accuracy-recovery menu (DESIGN.md §15)
 * as a four-way iso-accuracy frontier. For one serving chip's frozen
 * vulnerability map, five strategies compete per supply voltage on the
 * energy it takes to hold the within-2% accuracy bar:
 *
 *  - boost-only        — the paper's mechanism alone (standard model);
 *  - fault-aware       — chip-agnostic hardening (related work [20-22]);
 *  - matic             — MATIC map-aware retraining on the chip's map;
 *  - neuralfuse        — NeuralFuse learned input transform in front of
 *                        the frozen standard model;
 *  - combined          — map-aware weights plus an input transform.
 *
 * Each strategy's minimum adequate boost level feeds the Dante
 * performance model (transform strategies pay accel::RecoveryOverhead
 * for their extra MACs and operand traffic), and the dominance verdict
 * reports the voltage where a recovery mode holds the bar at strictly
 * lower energy than boost-only. A final section hands the measured
 * accuracy curves to serve::OperatingPointPlanner as PlannedRecovery
 * options and prints which recovery mode each SLO class selects.
 *
 * Full runs sweep the map-model dimension (i.i.d. AND clustered chip
 * maps, each with its own MATIC retraining); smoke runs keep the
 * --map-model selection only. The whole bench is bitwise thread-count
 * invariant (§7): training is serial, per-read flip streams are
 * counter-derived, reads reduce in read order, and the JSON carries
 * the trained-weight and per-point evaluation digests so CI diffs
 * artifacts across thread counts.
 */

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/dataflow.hpp"
#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/quantize.hpp"
#include "dnn/zoo.hpp"
#include "fi/fault_training.hpp"
#include "json_writer.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "recovery/input_transform.hpp"
#include "recovery/map_aware_trainer.hpp"
#include "recovery/recovery.hpp"
#include "serve/planner.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** One competing strategy on one chip map. */
struct Strategy
{
    std::string name;
    recovery::RecoveryMode mode = recovery::RecoveryMode::None;
    recovery::ChipEvaluator *eval = nullptr;
    /** Transform applied before the corrupted forward (or nullptr). */
    recovery::InputTransform *tf = nullptr;
    double faultFreeAccuracy = 0.0;
    /** Memoized accuracy per vddv bit pattern (keeps the explorer's
     *  level search and the planner from re-running Monte Carlo). */
    std::map<std::uint64_t, recovery::ChipAccuracy> cache;

    recovery::ChipAccuracy
    at(const sram::FailureRateModel &frm, Volt vddv)
    {
        std::uint64_t bits = 0;
        const double v = vddv.value();
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        if (auto it = cache.find(bits); it != cache.end())
            return it->second;
        const double f = frm.rate(vddv);
        const recovery::ChipAccuracy a =
            tf ? eval->evaluateWithTransform(f, *tf)
               : eval->evaluate(f);
        cache.emplace(bits, a);
        return a;
    }
};

/** One (strategy, Vdd) frontier cell. */
struct FrontierRow
{
    std::string mapModel;
    std::string strategy;
    Volt vdd{0.0};
    /** Unboosted (level-0) evaluation at this Vdd. */
    recovery::ChipAccuracy raw;
    bool feasible = false;
    int level = 0;
    Volt vddv{0.0};
    double accuracy = 0.0;
    Joule energy{0.0};
};

sram::MapModel
parseMapModel(const std::string &name)
{
    return name == "clustered" ? sram::MapModel::Clustered
                               : sram::MapModel::Iid;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);
    accel::PerformanceModel perf(ctx, 16);
    const auto activity = accel::totalActivity(
        accel::DanaFcModel().networkActivity({784, 256, 256, 256, 32}));

    obs::Observability obsv;
    const bool want_obs = !opts.metricsOutPath.empty();

    // ---- Models ----------------------------------------------------
    auto baseline = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    // Competitors train at the cached baseline's full budget even in
    // smoke mode: an under-trained hardened model never reaches the
    // iso-accuracy bar, which would void the frontier comparison.
    const auto train = dnn::makeSyntheticMnist(4000, 1);
    // Train at the error rate of ~0.454 V (5e-3): harsh enough to
    // harden, gentle enough that the hardened models keep a clean
    // ceiling above the shared iso-accuracy bar.
    const double deploy_prob = frm.rate(0.454_V);

    fi::FaultTrainConfig fa_cfg;
    fa_cfg.base.epochs = 6;
    fa_cfg.warmupEpochs = 2;
    fa_cfg.failProb = deploy_prob;

    // Chip-agnostic fault-aware model (shared across map models: it
    // never sees a specific chip).
    Rng rng_fa(7);
    auto fault_aware = dnn::buildMnistFc(rng_fa);
    {
        Rng rng_scratch(17);
        auto scratch = dnn::buildMnistFc(rng_scratch);
        fi::FaultAwareTrainer fat(fa_cfg);
        Rng trng(3);
        fat.train(fault_aware, scratch, train, trng);
        dnn::clipParameters(fault_aware, 0.5f);
    }

    // Chip-agnostic NeuralFuse transform for the frozen standard model
    // (trained against fresh per-batch maps, so one transform serves
    // every chip map below).
    recovery::TransformTrainConfig tf_cfg;
    tf_cfg.base.epochs = 4;
    tf_cfg.base.learningRate = 0.05;
    tf_cfg.failProb = deploy_prob;
    recovery::InputTransform fuse_tf;
    recovery::TransformTrainStats fuse_stats;
    {
        recovery::TransformTrainer tt(tf_cfg);
        if (want_obs)
            tt.attachObservability(&obsv, {{"strategy", "neuralfuse"}});
        Rng scratch_rng(19);
        auto scratch = dnn::buildMnistFc(scratch_rng);
        Rng trng(5);
        fuse_stats = tt.train(fuse_tf, baseline, scratch, train, trng);
    }

    const std::vector<std::string> map_models =
        opts.smoke ? std::vector<std::string>{opts.mapModel}
                   : std::vector<std::string>{"iid", "clustered"};

    recovery::ChipEvalConfig ecfg;
    // Evaluation is cheap next to training, and the frontier verdict
    // hinges on separating ~1-2 % accuracy gaps near the bar, so smoke
    // keeps a higher floor than the generic bench clamps would give
    // (2 maps x 64 samples cannot resolve the MATIC margin at 0.44 V).
    ecfg.numReads = opts.smoke ? 4 : 6;
    ecfg.maxTestSamples = opts.smoke ? 200 : 400;
    ecfg.numThreads = opts.threads;

    const double iso_margin = 0.02;

    std::vector<FrontierRow> rows;
    std::vector<std::uint64_t> model_digests;
    // Keep per-map-model state alive for the planner section below.
    struct MapModelRun
    {
        std::string name;
        dnn::Network matic;
        std::unique_ptr<recovery::InputTransform> combinedTf;
        std::vector<std::unique_ptr<recovery::ChipEvaluator>> evals;
        std::vector<std::unique_ptr<Strategy>> strategies;
        recovery::MapAwareStats maticStats;
        recovery::TransformTrainStats combinedStats;
    };
    std::vector<std::unique_ptr<MapModelRun>> runs;

    // The smoke grid brackets the accuracy cliff (~0.44 V at the
    // trained rate) where map-aware retraining pays off. 0.34 V is the
    // deep-scaling rung whose boost ladder (level 2 -> 0.440 V, level
    // 3 -> 0.469 V) straddles the cliff: hardened models hold the bar
    // one level below boost-only there.
    const auto grid = opts.smoke
                          ? std::vector<Volt>{0.34_V, 0.38_V, 0.42_V,
                                              0.46_V}
                          : bench::vlvGrid();

    double base_ceiling = 0.0;
    for (const auto &mm_name : map_models) {
        auto run = std::make_unique<MapModelRun>();
        run->name = mm_name;
        const sram::MapModel mm = parseMapModel(mm_name);

        // MATIC retraining against THIS chip's frozen map.
        recovery::MapAwareConfig mcfg;
        mcfg.train = fa_cfg;
        mcfg.mapModel = mm;
        mcfg.curriculumEpochs = 2;
        Rng rng_m(7);
        run->matic = dnn::buildMnistFc(rng_m);
        recovery::MapAwareTrainer mat(mcfg);
        {
            if (want_obs)
                mat.attachObservability(
                    &obsv,
                    {{"strategy", "matic"}, {"map_model", mm_name}});
            Rng rng_scratch(17);
            auto scratch = dnn::buildMnistFc(rng_scratch);
            Rng trng(3);
            run->maticStats =
                mat.train(run->matic, scratch, train, trng);
            dnn::clipParameters(run->matic, 0.5f);
        }

        // Combined: a second transform trained through the frozen
        // map-aware weights.
        run->combinedTf = std::make_unique<recovery::InputTransform>();
        {
            recovery::TransformTrainer tt(tf_cfg);
            if (want_obs)
                tt.attachObservability(
                    &obsv,
                    {{"strategy", "combined"}, {"map_model", mm_name}});
            Rng scratch_rng(19);
            auto scratch = dnn::buildMnistFc(scratch_rng);
            Rng trng(5);
            run->combinedStats = tt.train(*run->combinedTf, run->matic,
                                          scratch, train, trng);
        }

        // One evaluator per model, all on the SAME frozen chip map.
        auto add_eval = [&](dnn::Network &net, const char *strategy) {
            run->evals.push_back(
                std::make_unique<recovery::ChipEvaluator>(
                    net, test,
                    sram::VulnerabilityMap(mcfg.chipSeed,
                                           mcfg.chipMapIndex, mm,
                                           mcfg.cluster),
                    ecfg));
            if (want_obs)
                run->evals.back()->attachObservability(
                    &obsv, {{"strategy", strategy},
                            {"map_model", mm_name}});
            return run->evals.back().get();
        };
        auto *eval_base = add_eval(baseline, "boost_only");
        auto *eval_fa = add_eval(fault_aware, "fault_aware");
        auto *eval_matic = add_eval(run->matic, "matic");
        auto *eval_fuse = add_eval(baseline, "neuralfuse");
        auto *eval_comb = add_eval(run->matic, "combined");

        auto add_strategy = [&](const char *name,
                                recovery::RecoveryMode mode,
                                recovery::ChipEvaluator *eval,
                                recovery::InputTransform *tf) {
            auto s = std::make_unique<Strategy>();
            s->name = name;
            s->mode = mode;
            s->eval = eval;
            s->tf = tf;
            s->faultFreeAccuracy =
                tf ? eval->evaluateWithTransform(0.0, *tf).meanAccuracy
                   : eval->baselineAccuracy();
            run->strategies.push_back(std::move(s));
        };
        using recovery::RecoveryMode;
        add_strategy("boost_only", RecoveryMode::None, eval_base,
                     nullptr);
        add_strategy("fault_aware", RecoveryMode::None, eval_fa,
                     nullptr);
        add_strategy("matic", RecoveryMode::MapAware, eval_matic,
                     nullptr);
        add_strategy("neuralfuse", RecoveryMode::InputTransform,
                     eval_fuse, &fuse_tf);
        add_strategy("combined", RecoveryMode::Combined, eval_comb,
                     run->combinedTf.get());

        base_ceiling = run->strategies[0]->faultFreeAccuracy;
        const double target = base_ceiling - iso_margin;

        // Transform strategies pay their extra work in the perf model.
        auto overhead_of = [&](const Strategy &s) {
            accel::RecoveryOverhead o;
            if (s.tf) {
                o.computeOverhead =
                    static_cast<double>(s.tf->macsPerSample()) /
                    static_cast<double>(activity.macs);
                o.accessOverhead =
                    static_cast<double>(s.tf->accessesPerSample()) /
                    static_cast<double>(activity.totalAccesses());
            }
            return o;
        };

        Table t({"strategy", "Vdd (V)", "raw accuracy", "min level",
                 "Vddv (V)", "boosted acc", "energy (uJ)"});
        for (auto &sp : run->strategies) {
            Strategy &s = *sp;
            for (Volt v : grid) {
                FrontierRow row;
                row.mapModel = mm_name;
                row.strategy = s.name;
                row.vdd = v;
                row.raw = s.at(frm, v);
                const auto oracle = [&](Volt vddv) {
                    return s.at(frm, vddv).meanAccuracy;
                };
                const auto level = explorer.minimalLevelForAccuracy(
                    v, target, oracle);
                if (level) {
                    row.feasible = true;
                    row.level = *level;
                    row.vddv = explorer.boostedVoltage(v, *level);
                    row.accuracy = s.at(frm, row.vddv).meanAccuracy;
                    row.energy =
                        perf.evaluate(activity, v, *level,
                                      accel::SupplyMode::Boosted,
                                      accel::RetryOverhead::none(),
                                      accel::TimingOverhead::none(),
                                      overhead_of(s))
                            .totalEnergy;
                }
                t.addRow({s.name, Table::num(v.value(), 2),
                          Table::pct(row.raw.meanAccuracy),
                          row.feasible ? std::to_string(row.level)
                                       : "unreachable",
                          row.feasible ? Table::num(row.vddv.value(), 3)
                                       : "-",
                          row.feasible ? Table::pct(row.accuracy) : "-",
                          row.feasible
                              ? Table::num(row.energy.value() * 1e6, 3)
                              : "-"});
                rows.push_back(row);
            }
        }
        bench::emit("Iso-accuracy recovery frontier (" + mm_name +
                        " chip map, within-2% bar at " +
                        Table::pct(target) + ")",
                    t, opts);

        model_digests.push_back(recovery::weightsDigest(run->matic));
        runs.push_back(std::move(run));
    }
    model_digests.push_back(recovery::weightsDigest(baseline));
    model_digests.push_back(recovery::weightsDigest(fault_aware));
    model_digests.push_back(
        recovery::weightsDigest(fuse_tf.network()));

    // ---- Dominance verdict -----------------------------------------
    // A recovery mode dominates where it holds the bar at strictly
    // lower energy than boost-only at the same (Vdd, map model); keep
    // the largest saving.
    const FrontierRow *dom_rec = nullptr;
    const FrontierRow *dom_boost = nullptr;
    double best_saving = 0.0;
    for (const auto &r : rows) {
        if (!r.feasible || r.strategy == "boost_only" ||
            r.strategy == "fault_aware")
            continue;
        for (const auto &b : rows) {
            if (b.strategy != "boost_only" || !b.feasible ||
                b.mapModel != r.mapModel ||
                b.vdd.value() != r.vdd.value())
                continue;
            const double saving =
                b.energy.value() - r.energy.value();
            if (saving > 0.0 && (!dom_rec || saving > best_saving)) {
                dom_rec = &r;
                dom_boost = &b;
                best_saving = saving;
            }
        }
    }
    Table d({"verdict", "map model", "Vdd (V)", "mode", "mode level",
             "boost level", "mode uJ", "boost-only uJ", "saving"});
    if (dom_rec) {
        d.addRow({"recovery dominates", dom_rec->mapModel,
                  Table::num(dom_rec->vdd.value(), 2), dom_rec->strategy,
                  std::to_string(dom_rec->level),
                  std::to_string(dom_boost->level),
                  Table::num(dom_rec->energy.value() * 1e6, 3),
                  Table::num(dom_boost->energy.value() * 1e6, 3),
                  Table::pct(best_saving / dom_boost->energy.value())});
    } else {
        d.addRow({"no dominating point found", "-", "-", "-", "-", "-",
                  "-", "-", "-"});
    }
    bench::emit("Recovery-over-boost-only dominance", d, opts);

    // ---- Planner integration ---------------------------------------
    // Hand the first map model's measured curves to the serving
    // planner as PlannedRecovery options and let each SLO class choose.
    MapModelRun &prun = *runs.front();
    serve::InferenceFootprint footprint;
    footprint.weightAccesses = activity.weightAccesses;
    footprint.inputAccesses = activity.inputAccesses;
    footprint.psumAccesses = activity.psumAccesses;
    footprint.computeOps = activity.macs;
    serve::PlannerConfig pcfg;
    // Plan over the same rail grid the frontier swept, so the planner
    // can reach the deep-scaling rung where recovery modes pay off.
    pcfg.vddGrid = grid;
    for (auto &sp : prun.strategies) {
        Strategy &s = *sp;
        if (s.mode == recovery::RecoveryMode::None)
            continue;
        recovery::PlannedRecovery rec;
        rec.mode = s.mode;
        rec.faultFreeAccuracy = s.faultFreeAccuracy;
        Strategy *sptr = sp.get();
        rec.accuracy = [&frm, sptr](Volt vddv) {
            return sptr->at(frm, vddv).meanAccuracy;
        };
        if (s.tf) {
            rec.extraComputeOps = s.tf->macsPerSample();
            rec.extraInputAccesses = s.tf->accessesPerSample();
        }
        pcfg.recoveryOptions.push_back(std::move(rec));
    }
    serve::OperatingPointPlanner planner(
        ctx, 16,
        [&](Volt vddv) {
            return prun.strategies[0]->at(frm, vddv).meanAccuracy;
        },
        base_ceiling, footprint, pcfg);

    struct PlannedClass
    {
        serve::SloClass slo;
        serve::OperatingPlan plan;
    };
    std::vector<PlannedClass> planned;
    Table p({"SLO class", "Vdd (V)", "weight lvl", "recovery mode",
             "planned acc", "energy (uJ)", "recovery nJ"});
    for (int c = 0; c < serve::kNumSloClasses; ++c) {
        const auto slo = static_cast<serve::SloClass>(c);
        const auto &plan = planner.planFor("bench", slo);
        planned.push_back({slo, plan});
        p.addRow({serve::toString(slo), Table::num(plan.vdd.value(), 2),
                  std::to_string(plan.weightLevel),
                  recovery::toString(plan.recoveryMode),
                  Table::pct(plan.plannedAccuracy),
                  Table::num(plan.energyPerInference.value() * 1e6, 3),
                  Table::num(plan.recoveryEnergy.value() * 1e9, 3)});
    }
    bench::emit("Per-SLO-class planner selection (" + prun.name +
                    " chip map, recovery options enabled)",
                p, opts);

    // ---- Artifacts -------------------------------------------------
    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath);
        if (!out)
            fatal("cannot write JSON to ", opts.jsonPath);
        bench::JsonWriter json(out);
        json.beginObject()
            .field("bench", "abl_recovery")
            .field("smoke", opts.smoke)
            .field("paper", opts.paper)
            .field("iso_margin", iso_margin)
            .field("fault_free_accuracy", base_ceiling)
            .beginArrayField("model_digests");
        for (std::uint64_t dg : model_digests)
            json.value(dg);
        json.endArray()
            .field("fuse_train_digest", fuse_stats.digest())
            .beginArrayField("map_model_runs");
        for (const auto &run : runs) {
            json.beginObject()
                .field("map_model", run->name)
                .field("matic_train_digest", run->maticStats.digest())
                .field("matic_map_refreshes",
                       run->maticStats.mapRefreshes)
                .field("matic_final_injected_prob",
                       run->maticStats.finalInjectedProb)
                .field("combined_train_digest",
                       run->combinedStats.digest())
                .endObject();
        }
        json.endArray().beginArrayField("points");
        for (const auto &r : rows) {
            json.beginObject()
                .field("map_model", r.mapModel)
                .field("strategy", r.strategy)
                .field("vdd", r.vdd.value())
                .field("raw_accuracy", r.raw.meanAccuracy)
                .field("raw_stddev", r.raw.stddevAccuracy)
                .field("raw_bit_flips", r.raw.meanBitFlips)
                .field("eval_digest", r.raw.digest)
                .field("feasible", r.feasible);
            if (r.feasible) {
                json.field("level", static_cast<std::int64_t>(r.level))
                    .field("vddv", r.vddv.value())
                    .field("accuracy", r.accuracy)
                    .field("energy_j", r.energy.value());
            }
            json.endObject();
        }
        json.endArray().beginObjectField("dominance");
        if (dom_rec) {
            json.field("found", true)
                .field("map_model", dom_rec->mapModel)
                .field("vdd", dom_rec->vdd.value())
                .field("mode", dom_rec->strategy)
                .field("mode_energy_j", dom_rec->energy.value())
                .field("boost_only_energy_j", dom_boost->energy.value())
                .field("saving_j", best_saving);
        } else {
            json.field("found", false);
        }
        json.endObject().beginArrayField("planner");
        for (const auto &pc : planned) {
            json.beginObject()
                .field("slo", serve::toString(pc.slo))
                .field("vdd", pc.plan.vdd.value())
                .field("weight_level",
                       static_cast<std::int64_t>(pc.plan.weightLevel))
                .field("recovery_mode",
                       recovery::toString(pc.plan.recoveryMode))
                .field("planned_accuracy", pc.plan.plannedAccuracy)
                .field("energy_j", pc.plan.energyPerInference.value())
                .field("recovery_energy_j",
                       pc.plan.recoveryEnergy.value())
                .endObject();
        }
        json.endArray().endObject();
        inform("wrote JSON results to ", opts.jsonPath);
    }
    if (!opts.metricsOutPath.empty())
        bench::writeMetricsJson(opts.metricsOutPath, "abl_recovery",
                                obsv.metrics);
    return 0;
}
