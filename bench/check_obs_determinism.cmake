# Observability thread-count-invariance gate (DESIGN.md §11): run
# bench_serve in smoke mode at --threads 1 and --threads 8 with the
# same seed/config, and require (a) the exported Chrome trace JSON to
# be bitwise identical and (b) the metrics fingerprint in the metrics
# JSON to be identical. Invoked by the serve_obs_determinism ctest
# entry with -DBENCH_SERVE=<exe> -DWORK_DIR=<dir>.

if(NOT BENCH_SERVE)
    message(FATAL_ERROR "pass -DBENCH_SERVE=<path to bench_serve>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<writable work directory>")
endif()

set(ENV{VBOOST_BENCH_SMOKE} 1)

foreach(threads 1 8)
    execute_process(
        COMMAND ${BENCH_SERVE}
            --threads ${threads}
            --metrics-out ${WORK_DIR}/obs-det-metrics-t${threads}.json
            --trace-out ${WORK_DIR}/obs-det-trace-t${threads}.json
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "bench_serve --threads ${threads} failed (${rc}):\n"
            "${out}\n${err}")
    endif()
endforeach()

# (a) Trace artifacts must match bitwise.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/obs-det-trace-t1.json
        ${WORK_DIR}/obs-det-trace-t8.json
    RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
    message(FATAL_ERROR
        "exported trace JSON differs between --threads 1 and "
        "--threads 8 (obs-det-trace-t1.json vs obs-det-trace-t8.json)")
endif()

# (b) Metrics fingerprints must match.
foreach(threads 1 8)
    file(READ ${WORK_DIR}/obs-det-metrics-t${threads}.json contents)
    string(REGEX MATCH "\"fingerprint\": ([0-9]+)" _ "${contents}")
    if(NOT CMAKE_MATCH_1)
        message(FATAL_ERROR
            "no fingerprint field in obs-det-metrics-t${threads}.json")
    endif()
    set(fp_t${threads} ${CMAKE_MATCH_1})
endforeach()
if(NOT fp_t1 STREQUAL fp_t8)
    message(FATAL_ERROR
        "metrics fingerprint differs: threads=1 -> ${fp_t1}, "
        "threads=8 -> ${fp_t8}")
endif()

message(STATUS
    "observability determinism OK: fingerprint ${fp_t1} and trace "
    "bitwise identical at 1 vs 8 threads")
