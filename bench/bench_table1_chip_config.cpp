/**
 * @file
 * Table 1 reproduction: the Dante chip configuration, printed from the
 * live chip model (so the numbers are what the simulator actually
 * uses), plus derived quantities: total macro count, booster area per
 * macro, and chip leakage across the operating range.
 */

#include "accel/dante.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    const auto &cfg = chip.config();

    Table t({"parameter", "value"});
    t.addRow({"Chip dimensions",
              Table::num(cfg.chipArea.value() / 1e6, 2) +
                  " mm^2 (2.05 mm x 1.13 mm, 14 nm)"});
    t.addRow({"Weight memory",
              std::to_string(cfg.weightBytes() / 1024) + " KB (" +
                  std::to_string(cfg.weightBanks) + " banks)"});
    t.addRow({"Input memory",
              std::to_string(cfg.inputBytes() / 1024) + " KB (" +
                  std::to_string(cfg.inputBanks) + " banks)"});
    t.addRow({"SRAM macros", std::to_string(cfg.totalMacros()) +
                                 " x 4 KB (512 x 64 bit)"});
    t.addRow({"Target frequency",
              Table::num(cfg.frequencyAt(0.80_V).value() / 1e6, 0) +
                  " MHz at 0.8 V / " +
                  Table::num(cfg.frequencyAt(0.50_V).value() / 1e6, 0) +
                  " MHz at <= 0.5 V"});
    t.addRow({"Target voltage range",
              Table::num(cfg.vMin.value(), 2) + " V to " +
                  Table::num(cfg.vMax.value(), 2) + " V"});
    t.addRow({"Booster configuration",
              "programmable, " + std::to_string(cfg.boostLevels) +
                  " levels per bank"});
    t.addRow({"Booster area",
              Table::num(chip.boosterArea().value() / 1e6 /
                             cfg.totalMacros(),
                         4) +
                  " mm^2 per SRAM macro"});
    t.addRow({"MIM capacitance", "40 pF per SRAM macro"});
    bench::emit("Table 1: Dante configuration (from the chip model)", t,
                opts);

    Table l({"Vdd (V)", "chip leakage (uW)", "frequency (MHz)"});
    for (Volt v : {0.34_V, 0.40_V, 0.50_V, 0.65_V, 0.80_V}) {
        l.addRow({Table::num(v.value(), 2),
                  Table::num(chip.leakagePower(v).value() * 1e6, 1),
                  Table::num(cfg.frequencyAt(v).value() / 1e6, 0)});
    }
    bench::emit("Derived: leakage and frequency across the range", l,
                opts);
    return 0;
}
