/**
 * @file
 * Sharded serving-cluster evaluation (DESIGN.md §14): a Poisson
 * "million-user" tenant mix (Zipf-shared tenant population over the
 * three SLO classes) is replayed through ServingCluster at shard
 * counts {1, 2, 4, 8, 16}, with a node-loss event injected at a
 * routing-epoch boundary on every multi-node point. The table reports
 * throughput scaling vs the single-shard baseline, per-SLO-class tail
 * latency under failover, routing/overflow traffic classes and the
 * failover transition count.
 *
 * Everything is deterministic: the trace is a pure function of the
 * seed, every node obeys the §7 discipline, routing/failover run on
 * serial paths, and the printed cluster fingerprint — plus the merged
 * metrics/trace artifacts — is bitwise identical at any --threads
 * value (gated by the cluster_determinism ctest).
 *
 * --shards <n> runs a single shard count instead of the sweep;
 * --replicas <n> sets the replica-group size (capped at the shard
 * count per point). --json dumps the sweep for machine consumption;
 * --smoke shrinks it to CI scale.
 */

#include <fstream>
#include <string>
#include <vector>

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "fi/accuracy_curve.hpp"
#include "fi/experiment.hpp"
#include "json_writer.hpp"
#include "obs_json.hpp"
#include "obs/observability.hpp"
#include "serve/planner.hpp"
#include "serve/trace.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** One evaluated shard-count sweep point. */
struct SweepPoint
{
    int shards = 0;
    int replicas = 0;
    double throughputRps = 0.0;
    double speedupVs1 = 0.0;
    cluster::ClusterResult result;
};

/** Served requests per second on the virtual clock. */
double
throughputRps(const cluster::ClusterStats &s, double ticks_per_second)
{
    if (s.makespanTicks == 0)
        return 0.0;
    return static_cast<double>(s.total.admitted) /
           (static_cast<double>(s.makespanTicks) / ticks_per_second);
}

void
writeJson(const std::string &path, const std::vector<SweepPoint> &points,
          const bench::BenchOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON to ", path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("bench", "serve_cluster")
        .field("smoke", opts.smoke)
        .field("paper", opts.paper)
        .beginArrayField("points");
    for (const auto &point : points) {
        const cluster::ClusterStats &s = point.result.stats;
        json.beginObject()
            .field("shards", static_cast<std::uint64_t>(point.shards))
            .field("replicas",
                   static_cast<std::uint64_t>(point.replicas))
            .field("requests", s.requests)
            .field("admitted", s.total.admitted)
            .field("routed_primary", s.routedPrimary)
            .field("routed_spill", s.routedSpill)
            .field("routed_failover", s.routedFailover)
            .field("shed_cluster", s.shedCluster)
            .field("shed_node", s.total.shedQueueFull +
                                    s.total.shedTenantQuota)
            .field("failover_transitions", s.transitions)
            .field("throughput_rps", point.throughputRps)
            .field("speedup_vs_1shard", point.speedupVs1)
            .field("makespan_ticks", s.makespanTicks)
            .field("p50_latency_us", s.p50LatencyTicks)
            .field("p95_latency_us", s.p95LatencyTicks)
            .field("p95_latency_us_gold", s.p95LatencyBySlo[0])
            .field("p95_latency_us_silver", s.p95LatencyBySlo[1])
            .field("p95_latency_us_bronze", s.p95LatencyBySlo[2])
            .field("accuracy", s.accuracy)
            .field("accuracy_gold", s.accuracyBySlo[0])
            .field("accuracy_silver", s.accuracyBySlo[1])
            .field("accuracy_bronze", s.accuracyBySlo[2])
            .field("energy_pj_per_inference",
                   s.total.inferences
                       ? s.total.energyPj /
                             static_cast<double>(s.total.inferences)
                       : 0.0)
            .field("fingerprint", s.fingerprint())
            .beginArrayField("nodes");
        for (std::size_t n = 0; n < s.perNode.size(); ++n) {
            const cluster::NodeStats &node = s.perNode[n];
            json.beginObject()
                .field("node",
                       cluster::ServingCluster::nodeName(
                           static_cast<int>(n)))
                .field("primary", node.primaryRequests)
                .field("spill", node.spillRequests)
                .field("failover", node.failoverRequests)
                .field("epochs_served", node.epochsServed)
                .field("inferences", node.serve.inferences)
                .field("final_state",
                       cluster::toString(node.finalState))
                .field("final_ewma", node.finalEwma)
                .endObject();
        }
        json.endArray().endObject();
    }
    json.endArray().endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);

    auto net = bench::trainedMnistFc(opts);
    const auto pool = bench::mnistTestSet(opts);

    fi::ExperimentConfig fi_cfg;
    fi_cfg.numMaps = opts.maps(4);
    fi_cfg.maxTestSamples = opts.samples(256);
    fi_cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, pool, fi_cfg);
    const auto curve =
        fi::AccuracyCurve::sample(runner, fi::InjectionSpec::allWeights(),
                                  1e-5, 0.3, opts.smoke ? 5 : 8);
    const auto accuracy_at = [&](Volt vddv) {
        return curve.at(frm.rate(vddv));
    };

    const auto per_inference = accel::totalActivity(
        accel::DanaFcModel().networkActivity({784, 256, 256, 256, 32}));
    serve::InferenceFootprint footprint;
    footprint.weightAccesses = per_inference.weightAccesses;
    footprint.inputAccesses = per_inference.inputAccesses;
    footprint.psumAccesses = per_inference.psumAccesses;
    footprint.computeOps = per_inference.macs;

    // One planner prototype; every node of every sweep point gets its
    // own copy (independent per-tenant feedback trajectories).
    const serve::OperatingPointPlanner planner(
        ctx, 16, accuracy_at, curve.faultFree(), footprint);

    // A heavily overloaded open-loop feed: offered load far above one
    // node's service capacity, so throughput is capacity-limited and
    // the shard sweep exposes the scaling, not the arrival process.
    const double load_rps = 40000.0;
    std::vector<int> shard_counts = {1, 2, 4, 8, 16};
    std::size_t num_requests = 320;
    int epoch_requests = 64;
    std::size_t num_tenants = 24;
    // Smoke keeps the full trace shape (same tenant mix, epochs and
    // per-point scaling behaviour) and trims only the shard list; the
    // Monte-Carlo accuracy-curve effort above is already smoke-scaled.
    if (opts.smoke)
        shard_counts = {1, 2, 4};
    if (opts.shards > 0)
        shard_counts = {opts.shards};

    const serve::TenantMix mix = serve::scaledTenantMix(num_tenants);
    serve::TraceConfig trace_cfg;
    trace_cfg.requestsPerTick = load_rps / 1e6;
    trace_cfg.numRequests = num_requests;
    trace_cfg.tenants = mix.tenants;
    trace_cfg.samplePoolSize = pool.size();
    const auto trace = serve::generatePoissonTrace(trace_cfg);

    // One observability sink for the whole sweep, labeled per point:
    // the merged registry/trace spans all shard counts while staying
    // thread-count invariant (§11).
    obs::Observability obsv;
    const bool want_obs =
        !opts.metricsOutPath.empty() || !opts.traceOutPath.empty();

    std::vector<SweepPoint> points;
    Table t({"shards", "req", "shed", "spill", "failover", "trans",
             "tput (rps)", "speedup", "p95 gold", "p95 bronze",
             "accuracy", "fingerprint"});
    double tput_1shard = 0.0;
    for (const int shards : shard_counts) {
        cluster::ClusterConfig cfg;
        cfg.shards = shards;
        cfg.replicas = std::min(opts.replicas, shards);
        cfg.epochRequests = epoch_requests;
        // Per-shard bounded epoch queue at the fair share: the Zipf
        // head tenant would otherwise pin over a third of the load to
        // its owner and cap the sweep's scaling — with the bound, a
        // hot shard spills its overflow to the least-loaded replica
        // and the admission tier load-balances the ring.
        cfg.shardQueueCapacity = std::max<std::size_t>(
            4, static_cast<std::size_t>(epoch_requests) /
                   static_cast<std::size_t>(shards));
        cfg.node.numThreads = opts.threads;
        cfg.node.queueCapacity =
            static_cast<std::size_t>(epoch_requests);
        // Spill scatter thins each node's per-tenant stream; a wider
        // batching window keeps batch occupancy (and the per-batch
        // weight-staging amortization) comparable across shard counts.
        // Under saturation the extra wait hides inside the backlog.
        cfg.node.batcher.maxWaitTicks = 4000;
        // Restart cost of one routing epoch at this trace scale: the
        // crashed node is back on probation after a single epoch out.
        cfg.failover.downEpochs = 1;
        // Every multi-node point loses node 0 at the second epoch
        // boundary: the failover run is part of the standard sweep
        // (and of the determinism gate), not a special mode.
        if (shards > 1)
            cfg.lossEvents = {{1, 0}};

        cluster::ServingCluster cl(ctx, net, pool, per_inference,
                                   planner, cfg);
        if (want_obs) {
            cl.attachObservability(
                &obsv, {{"shards", std::to_string(shards)}});
        }

        SweepPoint point;
        point.shards = shards;
        point.replicas = cfg.replicas;
        point.result = cl.run(trace);
        const cluster::ClusterStats &s = point.result.stats;
        point.throughputRps = throughputRps(s, 1e6);
        if (shards == shard_counts.front() && shards == 1)
            tput_1shard = point.throughputRps;
        point.speedupVs1 = tput_1shard > 0.0
                               ? point.throughputRps / tput_1shard
                               : 0.0;
        t.addRow({std::to_string(shards),
                  std::to_string(s.requests),
                  std::to_string(s.shedCluster + s.total.shedQueueFull +
                                 s.total.shedTenantQuota),
                  std::to_string(s.routedSpill),
                  std::to_string(s.routedFailover),
                  std::to_string(s.transitions),
                  Table::num(point.throughputRps, 0),
                  Table::num(point.speedupVs1, 2),
                  Table::num(s.p95LatencyBySlo[0], 0),
                  Table::num(s.p95LatencyBySlo[2], 0),
                  Table::pct(s.accuracy),
                  std::to_string(s.fingerprint())});
        points.push_back(std::move(point));
    }
    bench::emit("Serving cluster: shard-count scaling under node loss "
                "(Poisson Zipf tenant mix, EWMA failover)",
                t, opts);

    if (!opts.jsonPath.empty()) {
        writeJson(opts.jsonPath, points, opts);
        inform("wrote JSON results to ", opts.jsonPath);
    }
    if (want_obs)
        obs::recordLoggingMetrics(obsv.metrics);
    if (!opts.metricsOutPath.empty())
        bench::writeMetricsJson(opts.metricsOutPath, "serve_cluster",
                                obsv.metrics);
    if (!opts.traceOutPath.empty())
        bench::writeTraceJson(opts.traceOutPath, obsv.trace);
    return 0;
}
