/**
 * @file
 * Fig. 7 reproduction: (top) bit failure rate vs supply voltage for
 * the 4 Mbit test-chip fit, including the expected fail count of the
 * array, and (bottom) normalized access latency of a 32 Kbit macro vs
 * supply voltage.
 */

#include "bench_util.hpp"
#include "circuit/latency.hpp"
#include "common/logging.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    const auto tech = circuit::TechnologyParams::default14nm();
    const circuit::LatencyModel lat(tech);

    constexpr std::uint64_t kTestChipBits = 4ull * 1024 * 1024;

    Table t({"Vdd (V)", "bit fail rate", "expected fails (4 Mbit)",
             "normalized latency (vs 0.8 V)"});
    for (Volt v : bench::wideGrid()) {
        t.addRow({Table::num(v.value(), 2), Table::sci(frm.rate(v)),
                  Table::num(frm.rate(v) *
                                 static_cast<double>(kTestChipBits),
                             1),
                  Table::num(lat.normalized(v, tech.nominalVdd), 2)});
    }
    for (Volt v : {0.70_V, 0.80_V}) {
        t.addRow({Table::num(v.value(), 2), Table::sci(frm.rate(v)),
                  Table::num(frm.rate(v) *
                                 static_cast<double>(kTestChipBits),
                             1),
                  Table::num(lat.normalized(v, tech.nominalVdd), 2)});
    }
    bench::emit("Fig. 7: measured-fit bit failure rate and access "
                "latency vs Vdd",
                t, opts);

    Table lm({"quantity", "value"});
    lm.addRow({"V at first expected fail (4 Mbit)",
               Table::num(frm.firstErrorVoltage(kTestChipBits).value(), 3) +
                   " V"});
    lm.addRow({"fail rate at 0.44 V (Fig. 2 anchor)",
               Table::sci(frm.rate(0.44_V))});
    lm.addRow({"fail rate at 0.60 V (screening voltage)",
               Table::sci(frm.rate(0.60_V))});
    lm.addRow({"absolute access time at 0.8 V",
               Table::num(lat.accessTime(0.80_V).value() * 1e9, 2) +
                   " ns"});
    lm.addRow({"absolute access time at 0.4 V",
               Table::num(lat.accessTime(0.40_V).value() * 1e9, 2) +
                   " ns"});
    bench::emit("Fig. 7: landmarks", lm, opts);
    return 0;
}
