/**
 * @file
 * Ablation: sensitivity to the faulty-cell read flip probability p.
 * The paper assumes p = 0.5 by default (Sec. 5.1: "the probability of
 * a bit flip, in a faulty bitcell is p, assumed to be 0.5"). We rerun
 * the Fig. 2 all-weights accuracy sweep with p in {0.25, 0.5, 1.0}:
 * larger p shifts the accuracy cliff to higher voltages but preserves
 * its shape, confirming the conclusions are robust to this modeling
 * choice.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "dnn/zoo.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const sram::FailureRateModel frm;
    auto net = bench::trainedMnistFc(opts);
    const auto test = bench::mnistTestSet(opts);
    fi::ExperimentConfig cfg;
    cfg.numMaps = opts.maps(8);
    cfg.maxTestSamples = opts.samples(400);
    cfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, cfg);

    // One parallel (voltage x map) sweep per flip probability.
    const auto grid = bench::wideGrid();
    std::vector<std::vector<fi::AccuracyPoint>> by_p;
    for (double p : {0.25, 0.5, 1.0}) {
        auto spec = fi::InjectionSpec::allWeights();
        spec.flipProb = p;
        by_p.push_back(runner.sweepVoltage(grid, frm, spec));
    }

    Table t({"Vdd (V)", "BER", "acc (p=0.25)", "acc (p=0.5, paper)",
             "acc (p=1.0)"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        std::vector<std::string> row{Table::num(grid[i].value(), 2),
                                     Table::sci(frm.rate(grid[i]))};
        for (const auto &points : by_p)
            row.push_back(Table::pct(points[i].meanAccuracy));
        t.addRow(row);
    }
    bench::emit("Ablation: read flip probability p of faulty cells", t,
                opts);
    return 0;
}
