/**
 * @file
 * Fig. 15 reproduction: iso-accuracy energy comparison for AlexNet.
 * For each supply voltage in 0.34-0.46 V, the explorer picks the
 * minimum boost level whose boosted SRAM voltage still meets the
 * target accuracy (within 2% of peak), then compares the dynamic
 * energy of that boosted operating point against (i) the single-supply
 * design, which must run the whole chip at the lowest voltage meeting
 * the target (~0.48 V), and (ii) the LDO dual-supply design at the
 * same memory voltage.
 */

#include "accel/dataflow.hpp"
#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/zoo.hpp"
#include "fi/accuracy_curve.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel frm(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);
    const auto &sc = explorer.supply();

    const accel::EyerissRsModel rs;
    const auto total = accel::totalActivity(
        rs.networkActivity(dnn::alexNetImageNetConvDims()));
    const energy::Workload workload{total.totalAccesses(), total.macs};

    // Accuracy oracle from the trained conv net.
    auto net = bench::trainedAlexNet(opts);
    const auto test = bench::cifarTestSet(opts);
    fi::ExperimentConfig fcfg;
    fcfg.numMaps = opts.maps(4);
    fcfg.maxTestSamples = opts.samples(200);
    fcfg.numThreads = opts.threads;
    fi::FaultInjectionRunner runner(net, test, fcfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3,
        opts.paper ? 12 : 8);
    const double target = curve.faultFree() - 0.02;
    const auto oracle = [&](Volt vddv) {
        return curve.at(frm.rate(vddv));
    };

    // Single-supply reference: lowest voltage meeting the target.
    Volt v_single{0.0};
    for (double v = 0.40; v <= 0.62; v += 0.005) {
        if (oracle(Volt(v)) >= target) {
            v_single = Volt(v);
            break;
        }
    }
    if (v_single == Volt(0.0))
        fatal("no single-supply voltage meets the accuracy target");
    const double single_energy =
        sc.singleSupplyDynamic(workload, v_single).total().value();

    Table t({"Vdd (V)", "chosen level", "Vddv (V)", "accuracy",
             "boost dyn (uJ)", "dual dyn (uJ)", "savings vs dual",
             "savings vs single@" + Table::num(v_single.value(), 2)});
    RunningStats dual_savings, single_savings;
    for (Volt vdd : {0.34_V, 0.38_V, 0.40_V, 0.42_V, 0.44_V, 0.46_V}) {
        const auto op =
            explorer.isoAccuracyPoint(vdd, target, oracle, workload);
        if (!op) {
            t.addRow({Table::num(vdd.value(), 2), "-", "-", "-", "-",
                      "-", "-", "target unreachable"});
            continue;
        }
        const double sv_dual =
            1.0 - op->boostedEnergy.value() / op->dualEnergy.value();
        const double sv_single =
            1.0 - op->boostedEnergy.value() / single_energy;
        dual_savings.add(sv_dual);
        single_savings.add(sv_single);
        t.addRow({Table::num(vdd.value(), 2),
                  std::to_string(op->level),
                  Table::num(op->vddv.value(), 3),
                  Table::pct(op->accuracy),
                  Table::num(op->boostedEnergy.value() * 1e6, 2),
                  Table::num(op->dualEnergy.value() * 1e6, 2),
                  Table::pct(sv_dual), Table::pct(sv_single)});
    }
    bench::emit("Fig. 15: iso-accuracy operating points (target " +
                    Table::pct(target) + ")",
                t, opts);

    Table s({"headline", "value", "paper"});
    s.addRow({"single-supply voltage meeting target",
              Table::num(v_single.value(), 2) + " V", "0.48 V"});
    s.addRow({"mean savings vs single supply",
              Table::pct(single_savings.mean()), "30%"});
    s.addRow({"mean savings vs dual supply",
              Table::pct(dual_savings.mean()), "17%"});
    bench::emit("Fig. 15: headlines", s, opts);
    return 0;
}
