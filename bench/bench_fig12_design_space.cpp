/**
 * @file
 * Fig. 12 reproduction: the boost-enabled accelerator design space.
 * Sweeps the two architectural parameters of Sec. 6.1 — Ops_ratio
 * (memory accesses per compute op) and Energy_ratio (memory access
 * energy per compute-op energy at equal voltage) — and prints the
 * ratio of boosted-configuration energy to the LDO-based dual-supply
 * configuration, for an SRAM boosted from Vdd = 0.4 V to
 * Vddv ~ 0.6 V. Values below 1 mean boosting wins.
 */

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"

using namespace vboost;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    setQuiet(!opts.paper);

    const std::vector<double> ops_ratios{0.01, 0.02, 0.05, 0.1, 0.2,
                                         0.5,  0.75, 1.0,  2.0};
    const std::vector<double> energy_ratios{0.25, 0.5, 1.0, 2.0, 4.0,
                                            8.0};
    const Volt vdd{0.40};

    Table t({"Ops_ratio \\ Energy_ratio", "0.25", "0.5", "1", "2", "4",
             "8"});
    double best = 1.0;
    for (double ops : ops_ratios) {
        std::vector<std::string> row{Table::num(ops, 2)};
        for (double er : energy_ratios) {
            // Energy_ratio is swept by scaling the compute-op
            // capacitance relative to the memory-access capacitance
            // (paper: "energy of a single compute operation was varied
            // as a fraction of energy per access of an SRAM bank").
            auto ctx = core::SimContext::standard();
            const double mux_levels = 4.0; // 16 banks
            const Farad mem_cap =
                ctx.tech.bankAccessCap + ctx.tech.bankMuxCap * mux_levels;
            ctx.tech.peOpCap = Farad(mem_cap.value() / er);
            energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);

            const energy::Workload w{
                static_cast<std::uint64_t>(ops * 1e6),
                static_cast<std::uint64_t>(1e6)};
            const Volt vddv = sc.boostedVoltage(vdd, 4);
            const double ratio =
                sc.boostedDynamic(w, vdd, 4).total().value() /
                sc.dualSupplyDynamic(w, vddv, vdd).total().value();
            best = std::min(best, ratio);
            row.push_back(Table::num(ratio, 3));
        }
        t.addRow(row);
    }
    bench::emit("Fig. 12: boosted / dual-supply dynamic energy ratio "
                "(Vdd 0.4 V -> Vddv4; <1 means boosting wins)",
                t, opts);

    Table s({"headline", "value", "paper"});
    s.addRow({"max savings in the swept space", Table::pct(1.0 - best),
              "up to 32%"});
    bench::emit("Fig. 12: headline", s, opts);
    return 0;
}
