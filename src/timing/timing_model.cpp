#include "timing/timing_model.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace vboost::timing {

void
TimingParams::validate() const
{
    if (stageFractions.empty() || stageFractions.size() > 8)
        fatal("TimingParams: need 1-8 pipeline stages, got ",
              stageFractions.size());
    for (double f : stageFractions) {
        if (f <= 0.0 || f > 1.0)
            fatal("TimingParams: stage fractions must be in (0,1], got ", f);
    }
    if (slackSigma <= 0.0 || slackSigma > 0.5)
        fatal("TimingParams: slackSigma must be in (0,0.5], got ",
              slackSigma);
    if (pathsPerOp < 1 || pathsPerOp > 4096)
        fatal("TimingParams: pathsPerOp must be in [1,4096], got ",
              pathsPerOp);
    if (delayAtNominal.value() <= 0.0)
        fatal("TimingParams: delayAtNominal must be positive");
}

TimingErrorModel::TimingErrorModel(const circuit::TechnologyParams &tech,
                                   const TimingParams &params)
    : tech_(tech), params_(params)
{
    params_.validate();
    // Anchor: datapathDelay(nominalVdd) == delayAtNominal.
    kNorm_ = 1.0;
    const double vn = tech_.nominalVdd.value();
    const double vt = tech_.thresholdVoltage.value();
    kNorm_ = params_.delayAtNominal.value() /
             (vn / std::pow(vn - vt, tech_.alphaPower));
}

Second
TimingErrorModel::datapathDelay(Volt v) const
{
    const double vt = tech_.thresholdVoltage.value();
    if (v.value() <= vt) {
        fatal("TimingErrorModel: logic supply ", v.value(),
              " V at or below threshold ", vt, " V; datapath dead");
    }
    return Second(kNorm_ * v.value() /
                  std::pow(v.value() - vt, tech_.alphaPower));
}

double
TimingErrorModel::stageErrorProb(int stage, Volt v, Second period) const
{
    if (stage < 0 || stage >= params_.numStages())
        fatal("TimingErrorModel: stage ", stage, " out of range");
    if (period.value() <= 0.0)
        fatal("TimingErrorModel: period must be positive");
    const double ds =
        params_.stageFractions[static_cast<std::size_t>(stage)] *
        datapathDelay(v).value();
    // Path delay ~ N(ds, (sigma*ds)^2); a path violates when its
    // delay exceeds the period.
    const double z = (period.value() - ds) / (params_.slackSigma * ds);
    const double p_path = normalCdf(-z);
    if (p_path <= 0.0)
        return 0.0;
    if (p_path >= 1.0)
        return 1.0;
    // 1 - (1 - p)^n without cancellation for tiny p.
    return -std::expm1(params_.pathsPerOp * std::log1p(-p_path));
}

double
TimingErrorModel::opErrorProb(Volt v, Second period) const
{
    double p_ok = 1.0;
    for (int s = 0; s < params_.numStages(); ++s)
        p_ok *= 1.0 - stageErrorProb(s, v, period);
    return 1.0 - p_ok;
}

Second
TimingErrorModel::worstCasePeriod(Volt v, double guardband_sigmas) const
{
    if (guardband_sigmas < 0.0)
        fatal("TimingErrorModel: guardband must be non-negative");
    return Second(datapathDelay(v).value() *
                  (1.0 + guardband_sigmas * params_.slackSigma));
}

Volt
TimingErrorModel::safeVoltage(Second period, double max_op_error) const
{
    if (max_op_error <= 0.0 || max_op_error >= 1.0)
        fatal("TimingErrorModel: max_op_error must be in (0,1)");
    // Deterministic 1 mV grid from just above threshold to the
    // calibrated ceiling; opErrorProb is monotone decreasing in v, so
    // the first qualifying grid point is the answer.
    const int lo_mv =
        static_cast<int>(tech_.thresholdVoltage.value() * 1000.0) + 11;
    const int hi_mv = 1200;
    for (int mv = lo_mv; mv <= hi_mv; ++mv) {
        const Volt v(mv * 1e-3);
        if (opErrorProb(v, period) <= max_op_error)
            return v;
    }
    fatal("TimingErrorModel: no safe voltage up to 1.2 V for period ",
          period.value(), " s; clock too fast for this process");
}

} // namespace vboost::timing
