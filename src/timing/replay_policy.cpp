#include "timing/replay_policy.hpp"

#include "common/logging.hpp"

namespace vboost::timing {

void
ReplayPolicy::validate() const
{
    if (replayBudget < 0 || replayBudget > kMaxIssues - 1)
        fatal("ReplayPolicy: replayBudget must be in [0,", kMaxIssues - 1,
              "], got ", replayBudget);
    if (replaySlowdown < 1.0 || replaySlowdown > 16.0)
        fatal("ReplayPolicy: replaySlowdown must be in [1,16], got ",
              replaySlowdown);
    if (ewmaAlpha <= 0.0 || ewmaAlpha > 1.0)
        fatal("ReplayPolicy: ewmaAlpha must be in (0,1], got ", ewmaAlpha);
    if (raiseThreshold <= 0.0 || raiseThreshold >= 1.0)
        fatal("ReplayPolicy: raiseThreshold must be in (0,1), got ",
              raiseThreshold);
    if (stepSize.value() <= 0.0 || stepSize.value() > 0.2)
        fatal("ReplayPolicy: stepSize must be in (0,0.2] V, got ",
              stepSize.value());
    if (guardbandSigmas < 0.0 || guardbandSigmas > 16.0)
        fatal("ReplayPolicy: guardbandSigmas must be in [0,16], got ",
              guardbandSigmas);
    if (safeResidual <= 0.0 || safeResidual >= 1.0)
        fatal("ReplayPolicy: safeResidual must be in (0,1), got ",
              safeResidual);
}

std::string
ReplayPolicy::name() const
{
    if (!speculative)
        return "worstcase";
    return std::string("razor/r") + std::to_string(replayBudget) + "/" +
           toString(escalation);
}

ReplayPolicy
ReplayPolicy::worstCase()
{
    ReplayPolicy p;
    p.speculative = false;
    p.replayBudget = 0;
    return p;
}

ReplayPolicy
ReplayPolicy::razor(int replay_budget, TimingEscalation esc)
{
    ReplayPolicy p;
    p.speculative = true;
    p.replayBudget = replay_budget;
    p.escalation = esc;
    return p;
}

const char *
toString(TimingEscalation esc)
{
    switch (esc) {
    case TimingEscalation::Hold:
        return "hold";
    case TimingEscalation::StepUp:
        return "stepup";
    case TimingEscalation::MaxOut:
        return "maxout";
    }
    return "?";
}

} // namespace vboost::timing
