#include "timing/speculative_datapath.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sram/cell_hash.hpp"

namespace vboost::timing {

namespace {

/** FNV-1a fold of one 64-bit value. */
std::uint64_t
fnvFold(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
TimingStats::merge(const TimingStats &other)
{
    ops += other.ops;
    errors += other.errors;
    replays += other.replays;
    corrupted += other.corrupted;
    stepUps += other.stepUps;
    fallbacks += other.fallbacks;
    replayCycles += other.replayCycles;
    bubbleCycles += other.bubbleCycles;
    logicEnergy += other.logicEnergy;
    replayEnergy += other.replayEnergy;
    replayDigest = fnvFold(replayDigest, other.replayDigest);
}

SpeculativeDatapath::SpeculativeDatapath(
    const circuit::TechnologyParams &tech, const TimingParams &params,
    const ReplayPolicy &policy, Volt v_logic, Hertz clock)
    : model_(tech, params), policy_(policy), vLogic_(v_logic),
      energy_(tech)
{
    policy_.validate();
    if (clock.value() <= 0.0)
        fatal("SpeculativeDatapath: clock must be positive");
    targetPeriod_ = period(clock);
    // Fatal below threshold (no functional datapath at all).
    (void)model_.datapathDelay(vLogic_);

    ladder_.push_back(vLogic_);
    if (policy_.speculative) {
        effectivePeriod_ = targetPeriod_;
        const Volt safe =
            model_.safeVoltage(targetPeriod_, policy_.safeResidual);
        Volt v = vLogic_;
        while (v.value() + policy_.stepSize.value() <
               safe.value() - 1e-12) {
            v = v + policy_.stepSize;
            ladder_.push_back(v);
        }
        if (safe > ladder_.back())
            ladder_.push_back(safe);
    } else {
        // Worst-case clocking: stretch the period until the
        // guardbanded datapath closes timing; no violations occur.
        effectivePeriod_ = std::max(
            targetPeriod_,
            model_.worstCasePeriod(vLogic_, policy_.guardbandSigmas));
    }
    ewma_.assign(static_cast<std::size_t>(model_.params().numStages()),
                 0.0);
    rebuildThresholds();
}

void
SpeculativeDatapath::rebuildThresholds()
{
    const int stages = model_.params().numStages();
    thresholds_.assign(ladder_.size() * 2 *
                           static_cast<std::size_t>(stages),
                       0);
    if (!policy_.speculative)
        return; // worst-case clocking: no violation draws at all
    const Second replay_period(targetPeriod_.value() *
                               policy_.replaySlowdown);
    for (std::size_t r = 0; r < ladder_.size(); ++r) {
        for (int kind = 0; kind < 2; ++kind) {
            const Second p = kind == 0 ? targetPeriod_ : replay_period;
            for (int s = 0; s < stages; ++s) {
                thresholds_[(r * 2 + static_cast<std::size_t>(kind)) *
                                static_cast<std::size_t>(stages) +
                            static_cast<std::size_t>(s)] =
                    sram::detail::probThreshold(
                        model_.stageErrorProb(s, ladder_[r], p));
            }
        }
    }
}

void
SpeculativeDatapath::reseed(std::uint64_t stream_key)
{
    streamKey_ = stream_key;
    rung_ = 0;
    std::fill(ewma_.begin(), ewma_.end(), 0.0);
    stats_ = TimingStats{};
}

int
SpeculativeDatapath::violatingStage(std::uint64_t op, int issue) const
{
    const int stages = model_.params().numStages();
    const int kind = issue == 0 ? 0 : 1;
    const std::uint64_t *thr =
        &thresholds_[(static_cast<std::size_t>(rung_) * 2 +
                      static_cast<std::size_t>(kind)) *
                     static_cast<std::size_t>(stages)];
    const std::uint64_t base =
        op * static_cast<std::uint64_t>(ReplayPolicy::kMaxIssues *
                                        stages) +
        static_cast<std::uint64_t>(issue) *
            static_cast<std::uint64_t>(stages);
    for (int s = 0; s < stages; ++s) {
        if (sram::detail::cellHash(
                streamKey_, base + static_cast<std::uint64_t>(s)) <
            thr[s]) {
            return s;
        }
    }
    return -1;
}

void
SpeculativeDatapath::observeIssue(int violating_stage)
{
    bool crossed = false;
    for (std::size_t s = 0; s < ewma_.size(); ++s) {
        const double x =
            static_cast<int>(s) == violating_stage ? 1.0 : 0.0;
        ewma_[s] = (1.0 - policy_.ewmaAlpha) * ewma_[s] +
                   policy_.ewmaAlpha * x;
        crossed = crossed || ewma_[s] > policy_.raiseThreshold;
    }
    if (!crossed || policy_.escalation == TimingEscalation::Hold)
        return;
    const int top = static_cast<int>(ladder_.size()) - 1;
    if (rung_ >= top)
        return; // already on the safe rail
    rung_ = policy_.escalation == TimingEscalation::MaxOut ? top
                                                           : rung_ + 1;
    ++stats_.stepUps;
    if (rung_ == top)
        ++stats_.fallbacks;
    // Re-observe at the new rail instead of being dragged up by
    // stale history (same discipline as resilience's bank monitor).
    std::fill(ewma_.begin(), ewma_.end(), 0.0);
}

bool
SpeculativeDatapath::executeOp(std::uint64_t op)
{
    ++stats_.ops;
    if (!policy_.speculative) {
        stats_.logicEnergy += energy_.peOpEnergy(vLogic_);
        return false;
    }
    const std::uint64_t replay_cycles = static_cast<std::uint64_t>(
        std::ceil(policy_.replaySlowdown));
    const std::uint64_t bubble_cycles =
        static_cast<std::uint64_t>(model_.params().numStages());
    for (int issue = 0; issue <= policy_.replayBudget; ++issue) {
        // vblint: assoc-ok(issues accumulate in sequential replay order)
        stats_.logicEnergy += energy_.peOpEnergy(standingVoltage());
        if (issue > 0) {
            ++stats_.replays;
            stats_.replayCycles += replay_cycles;
            // vblint: assoc-ok(issues accumulate in sequential replay order)
            stats_.replayEnergy += energy_.peOpEnergy(standingVoltage());
        }
        const int stage = violatingStage(op, issue);
        observeIssue(stage);
        if (stage < 0)
            return false; // clean commit
        ++stats_.errors;
        stats_.bubbleCycles += bubble_cycles;
        stats_.replayDigest = fnvFold(
            fnvFold(fnvFold(stats_.replayDigest, op),
                    static_cast<std::uint64_t>(issue)),
            static_cast<std::uint64_t>(stage));
    }
    ++stats_.corrupted;
    return true; // budget exhausted: corrupted result committed
}

void
SpeculativeDatapath::executeOps(std::uint64_t base_op,
                                std::uint64_t count,
                                std::vector<std::uint64_t> &corrupted_out)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        if (executeOp(base_op + i))
            corrupted_out.push_back(i);
    }
}

double
SpeculativeDatapath::cycleStretch() const
{
    return effectivePeriod_ / targetPeriod_;
}

double
SpeculativeDatapath::currentOpErrorProb() const
{
    if (!policy_.speculative)
        return 0.0;
    return model_.opErrorProb(standingVoltage(), targetPeriod_);
}

double
SpeculativeDatapath::stageEwma(int stage) const
{
    if (stage < 0 || stage >= static_cast<int>(ewma_.size()))
        fatal("SpeculativeDatapath: stage ", stage, " out of range");
    return ewma_[static_cast<std::size_t>(stage)];
}

void
SpeculativeDatapath::exportMetrics(obs::MetricsRegistry &reg,
                                   const obs::Labels &labels) const
{
    reg.counter("timing.ops", labels).add(stats_.ops);
    reg.counter("timing.errors", labels).add(stats_.errors);
    reg.counter("timing.replays", labels).add(stats_.replays);
    reg.counter("timing.corrupted", labels).add(stats_.corrupted);
    reg.counter("timing.step_ups", labels).add(stats_.stepUps);
    reg.counter("timing.fallbacks", labels).add(stats_.fallbacks);
    reg.counter("timing.replay_cycles", labels).add(stats_.replayCycles);
    reg.counter("timing.bubble_cycles", labels).add(stats_.bubbleCycles);
    reg.sum("timing.energy.logic_j", labels)
        .add(stats_.logicEnergy.value());
    reg.sum("timing.energy.replay_j", labels)
        .add(stats_.replayEnergy.value());
    reg.gauge("timing.standing_v", labels)
        .set(standingVoltage().value());
}

} // namespace vboost::timing
