/**
 * @file
 * Razor-style replay policy for the timing-speculative datapath: the
 * logic-side mirror of resilience::ResiliencePolicy. A detected
 * timing violation is replayed at a slower issue rate under a bounded
 * budget; per-stage EWMA monitors watch the violation rate and, on a
 * crossing, escalate the standing logic voltage up a ladder that ends
 * at the model's safe fallback rail — replay, then step-up, then
 * graceful fallback (DESIGN.md §13).
 */

#ifndef VBOOST_TIMING_REPLAY_POLICY_HPP
#define VBOOST_TIMING_REPLAY_POLICY_HPP

#include <string>

#include "common/units.hpp"

namespace vboost::timing {

/** What a monitor crossing does to the standing logic voltage. */
enum class TimingEscalation
{
    /** Keep the voltage; replays alone absorb the error rate. */
    Hold,
    /** Raise the standing voltage by one ladder rung per crossing. */
    StepUp,
    /** Jump straight to the safe fallback rail on the first crossing. */
    MaxOut,
};

/** Tunable knobs of the timing-speculative execution pipeline. */
struct ReplayPolicy
{
    /** False = worst-case-clocked baseline: the clock stretches to
     *  the guardbanded datapath delay, no violations occur, and no
     *  detection/replay machinery exists. */
    bool speculative = true;

    /** Replay issues after the first (0 = detect-only: a violation
     *  immediately commits a corrupted result). */
    int replayBudget = 3;

    /** Standing-voltage response to monitor crossings. */
    TimingEscalation escalation = TimingEscalation::StepUp;

    /** Replay issues run this many clock periods per issue (half-rate
     *  reissue doubles the timing slack of the replay). */
    double replaySlowdown = 2.0;

    /** EWMA smoothing factor of the per-stage violation monitors. */
    double ewmaAlpha = 0.02;

    /** Per-stage EWMA violation rate that triggers an escalation.
     *  Well above the replay-absorbable trickle, so only a standing
     *  mis-set voltage moves the rail. */
    double raiseThreshold = 0.05;

    /** Voltage increment of one escalation-ladder rung. */
    Volt stepSize{0.02};

    /** Path-spread sigmas of margin the worst-case baseline clocks
     *  for (and the safe rail is derived from). */
    double guardbandSigmas = 4.0;

    /** Residual per-op error probability accepted at the safe rail. */
    double safeResidual = 1e-12;

    /** Upper bound on issues per op (first try + replays); fixes the
     *  per-op hash stream layout like ResiliencePolicy::kMaxAttempts
     *  fixes the per-access RNG layout. */
    static constexpr int kMaxIssues = 8;

    /** Throw FatalError unless self-consistent. */
    void validate() const;

    /** Short tag, e.g. "razor/r3/stepup" or "worstcase". */
    std::string name() const;

    /** Worst-case-clocked baseline (no speculation). */
    static ReplayPolicy worstCase();

    /** The standard Razor loop (replay 3, step-up escalation). */
    static ReplayPolicy
    razor(int replay_budget = 3,
          TimingEscalation esc = TimingEscalation::StepUp);
};

/** Display name of an escalation mode ("hold"/"stepup"/"maxout"). */
const char *toString(TimingEscalation esc);

} // namespace vboost::timing

#endif // VBOOST_TIMING_REPLAY_POLICY_HPP
