/**
 * @file
 * Timing-speculative datapath (DESIGN.md §13): executes ops on a
 * Razor-protected PE pipeline at an underscaled logic voltage.
 * Violations are *detected* (shadow-latch detection is assumed
 * sound), replayed at a slower issue rate under a bounded budget, and
 * watched by per-stage EWMA monitors whose crossings climb a standing
 * voltage ladder ending at the model's safe fallback rail. An op
 * whose replay budget exhausts commits a corrupted result — the only
 * way a timing error reaches inference.
 *
 * Determinism (§7): every violation decision is a counter-based hash
 * of (stream key, op, issue, stage) against a precomputed threshold —
 * the same discipline as sram::VulnerabilityMap. One op's draws are
 * independent of every other op's, the per-op layout is fixed by
 * ReplayPolicy::kMaxIssues, and the datapath evolves serially within
 * one Monte-Carlo map, so results are bitwise identical at any thread
 * count when per-map stats merge in map order.
 */

#ifndef VBOOST_TIMING_SPECULATIVE_DATAPATH_HPP
#define VBOOST_TIMING_SPECULATIVE_DATAPATH_HPP

#include <cstdint>
#include <vector>

#include "circuit/energy_model.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "timing/replay_policy.hpp"
#include "timing/timing_model.hpp"

namespace vboost::timing {

/** Aggregate outcome of a datapath run; mergeable in map order. */
struct TimingStats
{
    /** Ops executed (committed, clean or corrupted). */
    std::uint64_t ops = 0;
    /** Detected timing violations (one per failing issue). */
    std::uint64_t errors = 0;
    /** Replay issues performed. */
    std::uint64_t replays = 0;
    /** Ops whose replay budget exhausted: corrupted results
     *  committed into inference. */
    std::uint64_t corrupted = 0;
    /** Standing-voltage rung increments from monitor crossings. */
    std::uint64_t stepUps = 0;
    /** Crossings that landed on the safe fallback rail. */
    std::uint64_t fallbacks = 0;
    /** Extra cycles spent in replay issues. */
    std::uint64_t replayCycles = 0;
    /** Pipeline flush/refill bubble cycles after detections. */
    std::uint64_t bubbleCycles = 0;
    /** Dynamic energy of every issue (first tries + replays). */
    Joule logicEnergy{0.0};
    /** Dynamic energy of replay issues alone (the speculation tax). */
    Joule replayEnergy{0.0};
    /** FNV-1a digest over (op, issue, stage) of every detected
     *  violation, chained in map order by merge(): the replay-count
     *  digest of the thread-count-invariance contract. */
    std::uint64_t replayDigest = 0xcbf29ce484222325ull;

    /** Fold another run's stats in (caller fixes the order). */
    void merge(const TimingStats &other);
};

/** Razor-protected PE pipeline at one (V_logic, clock) point. */
class SpeculativeDatapath
{
  public:
    /**
     * @param tech technology constants shared with the SRAM models.
     * @param params pipeline structure / path-slack parameters.
     * @param policy replay + escalation policy.
     * @param v_logic initial standing logic voltage.
     * @param clock target clock (the speculative clock; a worst-case
     *        policy stretches its effective period above this).
     */
    SpeculativeDatapath(const circuit::TechnologyParams &tech,
                        const TimingParams &params,
                        const ReplayPolicy &policy, Volt v_logic,
                        Hertz clock);

    /** Reset runtime state (monitors, ladder position, stats) and
     *  re-key the violation hash stream — fresh Monte-Carlo map. */
    void reseed(std::uint64_t stream_key);

    /**
     * Execute one op. @return true when the committed result is
     * corrupted (budget exhausted on a violating op); the caller owns
     * the accuracy coupling for corrupted ops.
     */
    bool executeOp(std::uint64_t op);

    /** Execute ops [base_op, base_op + count); corrupted op offsets
     *  (relative to base_op) are appended to `corrupted_out`. */
    void executeOps(std::uint64_t base_op, std::uint64_t count,
                    std::vector<std::uint64_t> &corrupted_out);

    /** Current standing logic voltage (top of climbs so far). */
    Volt standingVoltage() const { return ladder_[static_cast<std::size_t>(rung_)]; }

    /** The safe fallback rail (top ladder rung). */
    Volt safeVoltage() const { return ladder_.back(); }

    /** Effective clock period: the target period, or the guardbanded
     *  worst-case period under a non-speculative policy. */
    Second effectivePeriod() const { return effectivePeriod_; }

    /** effectivePeriod() / target period: the clock stretch a
     *  worst-case design pays (1.0 when speculative). */
    double cycleStretch() const;

    /** Per-op violation probability at the current standing voltage
     *  and first-issue period. */
    double currentOpErrorProb() const;

    /** EWMA violation rate of one pipeline stage. */
    double stageEwma(int stage) const;

    /** Aggregate stats so far. */
    const TimingStats &stats() const { return stats_; }

    /** Export stats into a metrics registry under `labels`. Uses the
     *  same values as stats() so obs attribution reconciles exactly. */
    void exportMetrics(obs::MetricsRegistry &reg,
                       const obs::Labels &labels) const;

    const TimingErrorModel &model() const { return model_; }
    const ReplayPolicy &policy() const { return policy_; }

  private:
    /** Stage that violates on this issue, or -1 when all close. */
    int violatingStage(std::uint64_t op, int issue) const;

    /** Feed the monitors one issue outcome; escalate on crossing. */
    void observeIssue(int violating_stage);

    /** Recompute per-(rung, issue-kind, stage) hash thresholds. */
    void rebuildThresholds();

    TimingErrorModel model_;
    ReplayPolicy policy_;
    Volt vLogic_;
    Second targetPeriod_;
    Second effectivePeriod_;
    circuit::EnergyModel energy_;

    std::vector<Volt> ladder_; // standing rungs, ends at the safe rail
    int rung_ = 0;
    std::vector<double> ewma_; // one monitor per stage
    // thresholds_[rung][kind][stage], kind 0 = first issue at the
    // target period, kind 1 = replay issue at slowdown * period.
    std::vector<std::uint64_t> thresholds_;
    std::uint64_t streamKey_ = 0;
    TimingStats stats_;
};

} // namespace vboost::timing

#endif // VBOOST_TIMING_SPECULATIVE_DATAPATH_HPP
