/**
 * @file
 * Logic-side timing-error model (DESIGN.md §13): the datapath analog
 * of the SRAM failure-rate model. The paper assumes VLV *logic* is
 * clean at any voltage; ThUnderVolt (PAPERS.md) shows the other half
 * of the energy win is underscaling the MAC datapath into the region
 * where worst-case timing no longer holds, detecting violations with
 * Razor-style shadow latches and replaying.
 *
 * Model: the PE pipeline has a small number of stages; stage s has a
 * critical delay equal to a fixed fraction of the full alpha-power
 * datapath delay t(V) = K * V / (V - Vt)^alpha (the same law —
 * and the same technology constants — as circuit::LatencyModel, just
 * anchored to the PE's nominal clock instead of the SRAM access
 * time). Near-critical path delays spread around the stage critical
 * delay with relative sigma `slackSigma`; a path violates timing when
 * its delay exceeds the clock period, so the per-path violation
 * probability is a normal tail, and an op (one MAC chain) fails when
 * any of its `pathsPerOp` near-critical paths violates. Error
 * probability is monotone decreasing in both voltage and period.
 */

#ifndef VBOOST_TIMING_TIMING_MODEL_HPP
#define VBOOST_TIMING_TIMING_MODEL_HPP

#include <vector>

#include "circuit/tech.hpp"
#include "common/units.hpp"

namespace vboost::timing {

/** Structural parameters of the timing-speculative PE pipeline. */
struct TimingParams
{
    /** Critical-path delay of each pipeline stage as a fraction of
     *  the full datapath delay; stage 0 is the deepest. */
    std::vector<double> stageFractions = {1.0, 0.93, 0.86, 0.80};

    /** Relative spread of near-critical path delays around a stage's
     *  critical delay (process variation + data dependence). */
    double slackSigma = 0.06;

    /** Near-critical paths exercised per op and stage; an op fails
     *  when any of them violates timing. */
    int pathsPerOp = 24;

    /** Full datapath critical delay at the nominal supply. Anchored
     *  so the PE closes timing at accel::PerfConfig's 330 MHz
     *  nominal logic clock with zero margin. */
    Second delayAtNominal{1.0 / 330.0e6};

    int numStages() const { return static_cast<int>(stageFractions.size()); }

    /** Throw FatalError on out-of-range parameters. */
    void validate() const;
};

/** Per-op timing-violation probability vs (V_logic, clock period). */
class TimingErrorModel
{
  public:
    TimingErrorModel(const circuit::TechnologyParams &tech,
                     const TimingParams &params);

    /** Full datapath critical delay at logic voltage v (alpha-power
     *  law; fatal at or below threshold). */
    Second datapathDelay(Volt v) const;

    /** Probability that stage `stage` of one op violates timing at
     *  voltage v and clock period `period`. */
    double stageErrorProb(int stage, Volt v, Second period) const;

    /** Probability that any stage of one op violates timing. */
    double opErrorProb(Volt v, Second period) const;

    /**
     * Worst-case-clocked period at voltage v: the datapath delay plus
     * a `guardband_sigmas` path-spread margin. A non-speculative
     * design must stretch its clock to this period to stay error-free.
     */
    Second worstCasePeriod(Volt v, double guardband_sigmas) const;

    /**
     * Smallest voltage (on a deterministic 1 mV grid) whose per-op
     * error probability at `period` is at most `max_op_error`: the
     * safe fallback rail of the replay escalation ladder. Fatal when
     * no voltage up to the calibrated 1.2 V ceiling qualifies.
     */
    Volt safeVoltage(Second period, double max_op_error = 1e-12) const;

    const TimingParams &params() const { return params_; }
    const circuit::TechnologyParams &tech() const { return tech_; }

  private:
    circuit::TechnologyParams tech_;
    TimingParams params_;
    double kNorm_; // scales the alpha-power law to delayAtNominal
};

} // namespace vboost::timing

#endif // VBOOST_TIMING_TIMING_MODEL_HPP
