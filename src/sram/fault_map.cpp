#include "sram/fault_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sram/cell_hash.hpp"

namespace vboost::sram {

using detail::cellHash;
using detail::mix64;
using detail::probThreshold;

void
ClusterParams::validate() const
{
    if (rowCells == 0)
        fatal("ClusterParams: rowCells must be positive");
    if (rowDefectProb < 0.0 || rowDefectProb > 1.0 ||
        colDefectProb < 0.0 || colDefectProb > 1.0) {
        fatal("ClusterParams: defect probabilities must be in [0,1]");
    }
    if (rowDefectProb + colDefectProb <= 0.0)
        fatal("ClusterParams: clustered model needs a nonzero defect "
              "process (row or column)");
    if (coverage() >= 1.0)
        fatal("ClusterParams: defect coverage must be below 1");
    if (defectBoost < 1.0)
        fatal("ClusterParams: defectBoost must be >= 1, got ", defectBoost);
}

VulnerabilityMap::VulnerabilityMap(std::uint64_t seed,
                                   std::uint64_t map_index)
    : seed_(seed), mapIndex_(map_index)
{
    streamKey_ = mix64(seed ^ mix64(map_index + 0x5851f42d4c957f2dull));
}

VulnerabilityMap::VulnerabilityMap(std::uint64_t seed,
                                   std::uint64_t map_index, MapModel model,
                                   const ClusterParams &cluster)
    : VulnerabilityMap(seed, map_index)
{
    model_ = model;
    if (model_ == MapModel::Clustered) {
        cluster.validate();
        cluster_ = cluster;
        // Independent defect streams so the row/column processes do
        // not alias the per-cell draws (which use streamKey_ itself).
        rowKey_ = mix64(streamKey_ ^ 0x60bee2bee120fc15ull);
        colKey_ = mix64(streamKey_ ^ 0xa3aac0aac0330ca3ull);
    }
}

double
VulnerabilityMap::cellUniform(std::uint64_t cell) const
{
    return (cellHash(streamKey_, cell) >> 11) * 0x1.0p-53;
}

bool
VulnerabilityMap::inDefectCluster(std::uint64_t cell) const
{
    if (model_ != MapModel::Clustered)
        return false;
    const std::uint64_t row = cell / cluster_.rowCells;
    const std::uint64_t col = cell % cluster_.rowCells;
    return cellHash(rowKey_, row) <
               probThreshold(cluster_.rowDefectProb) ||
           cellHash(colKey_, col) < probThreshold(cluster_.colDefectProb);
}

void
VulnerabilityMap::stratumProbs(double fail_prob, double &hi,
                               double &lo) const
{
    // Calibration: cov*hi + (1-cov)*lo == fail_prob exactly, with hi
    // boosted as far as defectBoost allows. Both hi(F) and lo(F) are
    // continuous and nondecreasing in F, so inclusivity (a fixed cell
    // draw against a moving threshold) carries over to the clustered
    // model unchanged.
    const double cov = cluster_.coverage();
    hi = std::min(1.0, cluster_.defectBoost * fail_prob);
    if (cov * hi > fail_prob) {
        hi = fail_prob / cov;
        lo = 0.0;
    } else {
        lo = (fail_prob - cov * hi) / (1.0 - cov);
    }
}

double
VulnerabilityMap::effectiveFailProb(std::uint64_t cell,
                                    double fail_prob) const
{
    if (model_ != MapModel::Clustered || fail_prob <= 0.0 ||
        fail_prob >= 1.0) {
        return fail_prob;
    }
    double hi = 0.0;
    double lo = 0.0;
    stratumProbs(fail_prob, hi, lo);
    return inDefectCluster(cell) ? hi : lo;
}

bool
VulnerabilityMap::isFaulty(std::uint64_t cell, double fail_prob) const
{
    if (model_ == MapModel::Clustered) {
        return cellHash(streamKey_, cell) <
               probThreshold(effectiveFailProb(cell, fail_prob));
    }
    return cellHash(streamKey_, cell) < probThreshold(fail_prob);
}

double
VulnerabilityMap::vulnerability(std::uint64_t cell) const
{
    // Cell is faulty iff u < F(v) iff Phi^-1(1-u) >= Phi^-1(1-F(v)),
    // so x = Phi^-1(1-u) is the N(0,1) vulnerability of the paper's
    // model. Clamp u away from the endpoints for a finite quantile.
    double u = cellUniform(cell);
    u = std::min(std::max(u, 1e-15), 1.0 - 1e-15);
    return inverseNormalCdf(1.0 - u);
}

std::vector<std::uint64_t>
VulnerabilityMap::faultyCells(std::uint64_t num_cells,
                              double fail_prob) const
{
    std::vector<std::uint64_t> out;
    if (model_ == MapModel::Clustered) {
        for (std::uint64_t c = 0; c < num_cells; ++c) {
            if (isFaulty(c, fail_prob))
                out.push_back(c);
        }
        return out;
    }
    const std::uint64_t thr = probThreshold(fail_prob);
    for (std::uint64_t c = 0; c < num_cells; ++c) {
        if (cellHash(streamKey_, c) < thr)
            out.push_back(c);
    }
    return out;
}

std::uint64_t
VulnerabilityMap::countFaulty(std::uint64_t num_cells,
                              double fail_prob) const
{
    std::uint64_t n = 0;
    if (model_ == MapModel::Clustered) {
        for (std::uint64_t c = 0; c < num_cells; ++c)
            n += isFaulty(c, fail_prob);
        return n;
    }
    const std::uint64_t thr = probThreshold(fail_prob);
    for (std::uint64_t c = 0; c < num_cells; ++c)
        n += cellHash(streamKey_, c) < thr;
    return n;
}

double
VulnerabilityMap::minUniform(std::uint64_t num_cells) const
{
    if (num_cells == 0)
        fatal("VulnerabilityMap::minUniform: empty cell range");
    if (model_ != MapModel::Iid) {
        fatal("VulnerabilityMap::minUniform: defined for i.i.d. maps "
              "only (clustered cells face per-stratum thresholds)");
    }
    std::uint64_t min_hash = ~0ull;
    for (std::uint64_t c = 0; c < num_cells; ++c)
        min_hash = std::min(min_hash, cellHash(streamKey_, c));
    return (min_hash >> 11) * 0x1.0p-53;
}

std::uint64_t
corruptWords(std::span<std::int16_t> words, const VulnerabilityMap &map,
             std::uint64_t base_cell, FaultParams params, Rng &rng)
{
    if (params.failProb < 0.0 || params.failProb > 1.0 ||
        params.flipProb < 0.0 || params.flipProb > 1.0) {
        fatal("corruptWords: probabilities must be in [0,1]");
    }
    if (params.failProb == 0.0 || params.flipProb == 0.0)
        return 0;

    std::uint64_t flipped = 0;
    std::uint64_t cell = base_cell;
    for (auto &word : words) {
        auto bits = static_cast<std::uint16_t>(word);
        for (int b = 0; b < 16; ++b, ++cell) {
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                bits ^= static_cast<std::uint16_t>(1u << b);
                ++flipped;
            }
        }
        word = static_cast<std::int16_t>(bits);
    }
    return flipped;
}

std::uint64_t
corruptWords64(std::span<std::uint64_t> words, const VulnerabilityMap &map,
               std::uint64_t base_cell, FaultParams params, Rng &rng)
{
    if (params.failProb < 0.0 || params.failProb > 1.0 ||
        params.flipProb < 0.0 || params.flipProb > 1.0) {
        fatal("corruptWords64: probabilities must be in [0,1]");
    }
    if (params.failProb == 0.0 || params.flipProb == 0.0)
        return 0;

    std::uint64_t flipped = 0;
    std::uint64_t cell = base_cell;
    for (auto &word : words) {
        for (int b = 0; b < 64; ++b, ++cell) {
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                word ^= 1ull << b;
                ++flipped;
            }
        }
    }
    return flipped;
}

} // namespace vboost::sram
