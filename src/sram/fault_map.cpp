#include "sram/fault_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sram/cell_hash.hpp"

namespace vboost::sram {

using detail::cellHash;
using detail::mix64;
using detail::probThreshold;

VulnerabilityMap::VulnerabilityMap(std::uint64_t seed,
                                   std::uint64_t map_index)
    : seed_(seed), mapIndex_(map_index)
{
    streamKey_ = mix64(seed ^ mix64(map_index + 0x5851f42d4c957f2dull));
}

double
VulnerabilityMap::cellUniform(std::uint64_t cell) const
{
    return (cellHash(streamKey_, cell) >> 11) * 0x1.0p-53;
}

bool
VulnerabilityMap::isFaulty(std::uint64_t cell, double fail_prob) const
{
    return cellHash(streamKey_, cell) < probThreshold(fail_prob);
}

double
VulnerabilityMap::vulnerability(std::uint64_t cell) const
{
    // Cell is faulty iff u < F(v) iff Phi^-1(1-u) >= Phi^-1(1-F(v)),
    // so x = Phi^-1(1-u) is the N(0,1) vulnerability of the paper's
    // model. Clamp u away from the endpoints for a finite quantile.
    double u = cellUniform(cell);
    u = std::min(std::max(u, 1e-15), 1.0 - 1e-15);
    return inverseNormalCdf(1.0 - u);
}

std::vector<std::uint64_t>
VulnerabilityMap::faultyCells(std::uint64_t num_cells,
                              double fail_prob) const
{
    std::vector<std::uint64_t> out;
    const std::uint64_t thr = probThreshold(fail_prob);
    for (std::uint64_t c = 0; c < num_cells; ++c) {
        if (cellHash(streamKey_, c) < thr)
            out.push_back(c);
    }
    return out;
}

std::uint64_t
VulnerabilityMap::countFaulty(std::uint64_t num_cells,
                              double fail_prob) const
{
    std::uint64_t n = 0;
    const std::uint64_t thr = probThreshold(fail_prob);
    for (std::uint64_t c = 0; c < num_cells; ++c)
        n += cellHash(streamKey_, c) < thr;
    return n;
}

double
VulnerabilityMap::minUniform(std::uint64_t num_cells) const
{
    if (num_cells == 0)
        fatal("VulnerabilityMap::minUniform: empty cell range");
    std::uint64_t min_hash = ~0ull;
    for (std::uint64_t c = 0; c < num_cells; ++c)
        min_hash = std::min(min_hash, cellHash(streamKey_, c));
    return (min_hash >> 11) * 0x1.0p-53;
}

std::uint64_t
corruptWords(std::span<std::int16_t> words, const VulnerabilityMap &map,
             std::uint64_t base_cell, FaultParams params, Rng &rng)
{
    if (params.failProb < 0.0 || params.failProb > 1.0 ||
        params.flipProb < 0.0 || params.flipProb > 1.0) {
        fatal("corruptWords: probabilities must be in [0,1]");
    }
    if (params.failProb == 0.0 || params.flipProb == 0.0)
        return 0;

    std::uint64_t flipped = 0;
    std::uint64_t cell = base_cell;
    for (auto &word : words) {
        auto bits = static_cast<std::uint16_t>(word);
        for (int b = 0; b < 16; ++b, ++cell) {
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                bits ^= static_cast<std::uint16_t>(1u << b);
                ++flipped;
            }
        }
        word = static_cast<std::int16_t>(bits);
    }
    return flipped;
}

std::uint64_t
corruptWords64(std::span<std::uint64_t> words, const VulnerabilityMap &map,
               std::uint64_t base_cell, FaultParams params, Rng &rng)
{
    if (params.failProb < 0.0 || params.failProb > 1.0 ||
        params.flipProb < 0.0 || params.flipProb > 1.0) {
        fatal("corruptWords64: probabilities must be in [0,1]");
    }
    if (params.failProb == 0.0 || params.flipProb == 0.0)
        return 0;

    std::uint64_t flipped = 0;
    std::uint64_t cell = base_cell;
    for (auto &word : words) {
        for (int b = 0; b < 64; ++b, ++cell) {
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                word ^= 1ull << b;
                ++flipped;
            }
        }
    }
    return flipped;
}

} // namespace vboost::sram
