#include "sram/sram_bank.hpp"

#include "common/logging.hpp"

namespace vboost::sram {

namespace {

/** Memory-side load the booster drives: two macro arrays + parasitics. */
Farad
bankLoadCap(const circuit::TechnologyParams &tech)
{
    return tech.macroArrayCap * SramBank::kMacros + tech.fixedParasiticCap;
}

} // namespace

SramBank::SramBank(int bank_id, const circuit::BoosterDesign &design,
                   const circuit::TechnologyParams &tech,
                   const FailureRateModel &failure, int num_banks_in_memory)
    : bankId_(bank_id),
      // One booster column per macro, ganged per bank under one BIC.
      booster_(design.scaled(kMacros), bankLoadCap(tech), tech),
      bic_(design.levels()),
      energy_(tech),
      failure_(failure),
      numBanksInMemory_(num_banks_in_memory),
      macros_{SramMacro(static_cast<std::uint64_t>(bank_id) * kBits),
              SramMacro(static_cast<std::uint64_t>(bank_id) * kBits +
                        SramMacro::kBits)}
{
    if (bank_id < 0)
        fatal("SramBank: negative bank id");
    if (num_banks_in_memory < 1)
        fatal("SramBank: memory must contain at least one bank");
}

void
SramBank::setBoostConfig(std::uint32_t bits)
{
    bic_.setConfig(bits);
}

void
SramBank::setBoostLevel(int level)
{
    bic_.setLevel(level);
}

Volt
SramBank::effectiveVoltage(Volt vdd) const
{
    return booster_.boostedVoltage(vdd, bic_.enabledLevel());
}

double
SramBank::failProbAt(Volt vdd) const
{
    return failure_.rate(effectiveVoltage(vdd));
}

const SramMacro &
SramBank::macroFor(std::uint32_t addr, std::uint32_t &macro_addr) const
{
    if (addr >= kWords)
        fatal("SramBank: address ", addr, " out of range [0,", kWords, ")");
    macro_addr = addr % SramMacro::kWords;
    return macros_[addr / SramMacro::kWords];
}

void
SramBank::chargeAccess(Volt vdd)
{
    const int level = bic_.enabledLevel();
    const Volt vddv = booster_.boostedVoltage(vdd, level);
    counters_.accessEnergy +=
        energy_.sramAccessEnergy(vddv, numBanksInMemory_);
    if (level > 0) {
        counters_.boostEnergy += booster_.boostEventEnergy(vdd, level);
        ++counters_.boostEvents;
    }
}

void
SramBank::write(std::uint32_t addr, std::uint64_t data, Volt vdd)
{
    std::uint32_t macro_addr;
    macroFor(addr, macro_addr); // bounds check
    macros_[addr / SramMacro::kWords].write(macro_addr, data);
    chargeAccess(vdd);
    ++counters_.writes;
}

std::uint64_t
SramBank::read(std::uint32_t addr, Volt vdd, const VulnerabilityMap &map,
               Rng &rng)
{
    std::uint32_t macro_addr;
    const auto &macro = macroFor(addr, macro_addr);
    chargeAccess(vdd);
    ++counters_.reads;
    return macro.read(macro_addr, map,
                      FaultParams{failProbAt(vdd), flipProb_}, rng);
}

std::uint64_t
SramBank::peek(std::uint32_t addr) const
{
    std::uint32_t macro_addr;
    const auto &macro = macroFor(addr, macro_addr);
    return macro.peek(macro_addr);
}

Watt
SramBank::leakagePower(Volt vdd) const
{
    // SRAMs idle at the unboosted supply: boosting happens only inside
    // access cycles, so leakage is evaluated at Vdd (the key leakage
    // advantage over a dual-rail design holding the SRAM at Vddv).
    return energy_.sramLeakage(vdd, kMacros) + booster_.leakagePower(vdd);
}

std::uint64_t
SramBank::cellIndex(std::uint32_t addr) const
{
    std::uint32_t macro_addr;
    const auto &macro = macroFor(addr, macro_addr);
    return macro.cellIndex(macro_addr, 0);
}

void
SramBank::setFlipProb(double p)
{
    if (p < 0.0 || p > 1.0)
        fatal("SramBank::setFlipProb: p must be in [0,1], got ", p);
    flipProb_ = p;
}

} // namespace vboost::sram
