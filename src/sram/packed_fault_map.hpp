/**
 * @file
 * Bit-packed fault maps (DESIGN.md §12): precompute 64 cells per word
 * of fault bits for one Monte-Carlo map at one fail probability,
 * instead of re-hashing every cell on every access.
 *
 * A packed map captures a *visit sequence* through the wrapped SRAM
 * region walked by the fault-injection staging loop: sequence bit j
 * corresponds to cell
 *
 *     region_base + (start_bit + j) mod region_bits,
 *
 * exactly the order `fi`'s staging visits cells. Packing hashes each
 * visited cell once (the same counter-based hash VulnerabilityMap
 * uses, so packed bits are bitwise-identical to per-cell isFaulty()
 * answers by construction); application then reduces to mask
 * extraction, so entire fault-free words are skipped with one compare
 * instead of 16-64 hash-and-threshold draws.
 */

#ifndef VBOOST_SRAM_PACKED_FAULT_MAP_HPP
#define VBOOST_SRAM_PACKED_FAULT_MAP_HPP

#include <cstdint>
#include <vector>

#include "sram/fault_map.hpp"

namespace vboost::sram {

/**
 * Fault bits for one wrapped-region visit sequence, 64 cells per word.
 * Immutable after construction; cheap to query from many threads.
 */
class PackedFaultMap
{
  public:
    /**
     * Pack the faults a wrapped walk will visit.
     *
     * @param map vulnerability map to pack.
     * @param region_base first cell of the physical region.
     * @param region_bits region size in cells (wrap modulus, > 0).
     * @param start_bit offset of the walk's first visit in the region.
     * @param num_bits visits to pack (may exceed region_bits: the walk
     *        then revisits cells, and the packed bits repeat with it).
     * @param fail_prob bit failure probability F(v).
     */
    PackedFaultMap(const VulnerabilityMap &map, std::uint64_t region_base,
                   std::uint64_t region_bits, std::uint64_t start_bit,
                   std::uint64_t num_bits, double fail_prob);

    /** Pack a linear (non-wrapping) run of cells starting at
     *  `base_cell`, as read by sram::corruptWords. */
    PackedFaultMap(const VulnerabilityMap &map, std::uint64_t base_cell,
                   std::uint64_t num_bits, double fail_prob);

    /** Number of visits packed. */
    std::uint64_t numBits() const { return numBits_; }

    /** Is visit j's cell faulty? */
    bool test(std::uint64_t j) const
    {
        return (words_[j >> 6] >> (j & 63)) & 1u;
    }

    /**
     * Fault bits for visits [j, j+nbits), nbits in [1, 64]; bit b of
     * the result is visit j+b. Visits past numBits() read as zero.
     */
    std::uint64_t mask(std::uint64_t j, unsigned nbits) const;

    /** Total faulty visits (popcount of the packed words). */
    std::uint64_t countFaulty() const;

    /** Packed words; bit b of word w is visit 64*w + b. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** True when packing ran on the AVX2 hash path (diagnostics; the
     *  packed bits are bitwise-identical either way). */
    static bool simdPackingActive();

  private:
    void pack(const VulnerabilityMap &map, std::uint64_t region_base,
              std::uint64_t region_bits, std::uint64_t start_bit,
              double fail_prob);
    /** OR `count` fault bits for cells [cell, cell+count) into the
     *  packed words at sequence position `bit_offset`. */
    void packRun(std::uint64_t stream_key, std::uint64_t threshold,
                 std::uint64_t cell, std::uint64_t count,
                 std::uint64_t bit_offset);
    /** Scalar run packer for clustered maps: per-cell isFaulty(), so
     *  stratum thresholds are honored (no raw-hash shortcut). */
    void packClusteredRun(const VulnerabilityMap &map, double fail_prob,
                          std::uint64_t cell, std::uint64_t count,
                          std::uint64_t bit_offset);
    void deposit(std::uint64_t bits, std::uint64_t bit_offset,
                 unsigned nbits);

    std::uint64_t numBits_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * AVX2 packing kernel (packed_fault_map_simd.cpp): fault mask for the
 * 64 consecutive cells [cell, cell+64). Bitwise-identical to 64 scalar
 * cellHash-vs-threshold compares — the hash is exact integer
 * arithmetic either way. Only callable when simdPackingActive().
 */
std::uint64_t packMask64Avx2(std::uint64_t stream_key,
                             std::uint64_t threshold, std::uint64_t cell);

} // namespace vboost::sram

#endif // VBOOST_SRAM_PACKED_FAULT_MAP_HPP
