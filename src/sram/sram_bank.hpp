/**
 * @file
 * One boost-enabled SRAM bank: 64 Kbit (two 4 KB macros) with its own
 * booster-cell column, Boost Input Control block and configuration
 * register (paper Sec. 4: "The MIM capacitor-based programmable boost
 * circuit ... boosts each SRAM bank of size 64Kbit (2 macros) to a
 * different supply voltage using its corresponding configuration
 * bits"). Every read/write at chip supply Vdd is performed with the
 * array rail boosted to Vddv(level); the failure probability applied on
 * the read path is F(Vddv).
 */

#ifndef VBOOST_SRAM_SRAM_BANK_HPP
#define VBOOST_SRAM_SRAM_BANK_HPP

#include <array>
#include <cstdint>

#include "circuit/bic.hpp"
#include "circuit/booster.hpp"
#include "circuit/energy_model.hpp"
#include "sram/failure_model.hpp"
#include "sram/sram_macro.hpp"

namespace vboost::sram {

/** Access/energy/error accounting for one bank. */
struct BankCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t boostEvents = 0;
    Joule accessEnergy{0.0};
    Joule boostEnergy{0.0};

    void reset() { *this = BankCounters{}; }
};

/** A 64 Kbit boost-enabled SRAM bank. */
class SramBank
{
  public:
    /** Macros per bank. */
    static constexpr int kMacros = 2;
    /** 64-bit words per bank. */
    static constexpr std::uint32_t kWords = kMacros * SramMacro::kWords;
    /** Bitcells per bank. */
    static constexpr std::uint64_t kBits =
        static_cast<std::uint64_t>(kMacros) * SramMacro::kBits;

    /**
     * @param bank_id position of the bank in its memory (determines the
     *        global cell range of its macros).
     * @param design booster column design (one column per bank).
     * @param tech technology constants.
     * @param failure failure-rate calibration.
     * @param num_banks_in_memory total banks sharing the output mux
     *        (sets the per-access mux energy).
     */
    SramBank(int bank_id, const circuit::BoosterDesign &design,
             const circuit::TechnologyParams &tech,
             const FailureRateModel &failure, int num_banks_in_memory);

    /** Program the boost configuration bits (set_boost_config). */
    void setBoostConfig(std::uint32_t bits);

    /** Program a boost level directly (enable the first `level` cells). */
    void setBoostLevel(int level);

    /** Currently enabled boost level. */
    int boostLevel() const { return bic_.enabledLevel(); }

    /** Number of programmable boost levels. */
    int levels() const { return booster_.levels(); }

    /** Boosted array voltage for an access at chip supply vdd. */
    Volt effectiveVoltage(Volt vdd) const;

    /** Bit failure probability for an access at chip supply vdd. */
    double failProbAt(Volt vdd) const;

    /**
     * Write a 64-bit word. Consumes access energy at the boosted
     * voltage and a boost event if boosting is enabled.
     */
    void write(std::uint32_t addr, std::uint64_t data, Volt vdd);

    /** Read a word through the faulty read path at chip supply vdd. */
    std::uint64_t read(std::uint32_t addr, Volt vdd,
                       const VulnerabilityMap &map, Rng &rng);

    /** Fault-free debug read (no energy, no faults). */
    std::uint64_t peek(std::uint32_t addr) const;

    /** Leakage power of this bank (macros idle at vdd + booster). */
    Watt leakagePower(Volt vdd) const;

    /** Booster column + BIC silicon area for this bank. */
    Area boosterArea() const { return booster_.area(); }

    /** Access/energy counters. */
    const BankCounters &counters() const { return counters_; }

    /** Reset counters. */
    void resetCounters() { counters_.reset(); }

    /** Global cell index of bit 0 of word `addr`. */
    std::uint64_t cellIndex(std::uint32_t addr) const;

    /** Per-read flip probability used on faulty cells. */
    double flipProb() const { return flipProb_; }

    /** Override the faulty-cell read flip probability (default 0.5). */
    void setFlipProb(double p);

  private:
    const SramMacro &macroFor(std::uint32_t addr,
                              std::uint32_t &macro_addr) const;
    void chargeAccess(Volt vdd);

    int bankId_;
    circuit::BoosterBank booster_;
    circuit::BoostInputControl bic_;
    circuit::EnergyModel energy_;
    FailureRateModel failure_;
    int numBanksInMemory_;
    double flipProb_ = 0.5;
    std::array<SramMacro, kMacros> macros_;
    BankCounters counters_;
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_SRAM_BANK_HPP
