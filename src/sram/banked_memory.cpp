#include "sram/banked_memory.hpp"

#include "common/logging.hpp"

namespace vboost::sram {

BankedMemory::BankedMemory(std::string name, int num_banks,
                           const circuit::BoosterDesign &design,
                           const circuit::TechnologyParams &tech,
                           const FailureRateModel &failure,
                           std::uint64_t cell_base_offset)
    : name_(std::move(name)), cellBase_(cell_base_offset)
{
    if (num_banks < 1)
        fatal("BankedMemory ", name_, ": at least one bank required");
    if (cell_base_offset % SramBank::kBits != 0) {
        fatal("BankedMemory ", name_, ": cell base offset must be a ",
              "multiple of the bank size (", SramBank::kBits, " bits)");
    }
    const int base_bank =
        static_cast<int>(cell_base_offset / SramBank::kBits);
    banks_.reserve(static_cast<std::size_t>(num_banks));
    for (int i = 0; i < num_banks; ++i)
        banks_.emplace_back(base_bank + i, design, tech, failure, num_banks);
}

std::uint32_t
BankedMemory::words() const
{
    return static_cast<std::uint32_t>(banks_.size()) * SramBank::kWords;
}

int
BankedMemory::bankOf(std::uint32_t addr) const
{
    if (addr >= words())
        fatal("BankedMemory ", name_, ": address ", addr,
              " out of range [0,", words(), ")");
    return static_cast<int>(addr / SramBank::kWords);
}

void
BankedMemory::setBoostConfig(int bank, std::uint32_t bits)
{
    this->bank(bank).setBoostConfig(bits);
}

void
BankedMemory::setBoostLevel(int bank, int level)
{
    this->bank(bank).setBoostLevel(level);
}

void
BankedMemory::setAllBoostLevels(int level)
{
    for (auto &b : banks_)
        b.setBoostLevel(level);
}

int
BankedMemory::boostLevel(int bank) const
{
    return this->bank(bank).boostLevel();
}

void
BankedMemory::write(std::uint32_t addr, std::uint64_t data, Volt vdd)
{
    const int b = bankOf(addr);
    banks_[static_cast<std::size_t>(b)].write(addr % SramBank::kWords, data,
                                              vdd);
}

std::uint64_t
BankedMemory::read(std::uint32_t addr, Volt vdd, const VulnerabilityMap &map,
                   Rng &rng)
{
    const int b = bankOf(addr);
    return banks_[static_cast<std::size_t>(b)].read(addr % SramBank::kWords,
                                                    vdd, map, rng);
}

std::uint64_t
BankedMemory::peek(std::uint32_t addr) const
{
    const int b = bankOf(addr);
    return banks_[static_cast<std::size_t>(b)].peek(addr % SramBank::kWords);
}

void
BankedMemory::writeWords16(std::uint32_t elem16,
                           const std::vector<std::int16_t> &values, Volt vdd)
{
    // Read-modify-write whole 64-bit words; partial first/last words
    // keep their other lanes.
    std::uint32_t i = 0;
    while (i < values.size()) {
        const std::uint32_t e = elem16 + i;
        const std::uint32_t addr = e / 4;
        std::uint64_t word = peek(addr);
        while (i < values.size() && (elem16 + i) / 4 == addr) {
            const std::uint32_t lane = (elem16 + i) % 4;
            const std::uint64_t mask = 0xffffull << (16 * lane);
            const auto v = static_cast<std::uint64_t>(
                static_cast<std::uint16_t>(values[i]));
            word = (word & ~mask) | (v << (16 * lane));
            ++i;
        }
        write(addr, word, vdd);
    }
}

std::vector<std::int16_t>
BankedMemory::readWords16(std::uint32_t elem16, std::uint32_t count,
                          Volt vdd, const VulnerabilityMap &map, Rng &rng)
{
    std::vector<std::int16_t> out;
    out.reserve(count);
    std::uint32_t i = 0;
    while (i < count) {
        const std::uint32_t e = elem16 + i;
        const std::uint32_t addr = e / 4;
        const std::uint64_t word = read(addr, vdd, map, rng);
        while (i < count && (elem16 + i) / 4 == addr) {
            const std::uint32_t lane = (elem16 + i) % 4;
            out.push_back(static_cast<std::int16_t>(
                static_cast<std::uint16_t>(word >> (16 * lane))));
            ++i;
        }
    }
    return out;
}

Watt
BankedMemory::leakagePower(Volt vdd) const
{
    Watt p{0.0};
    for (const auto &b : banks_)
        // vblint: assoc-ok(banks summed in fixed vector order)
        p += b.leakagePower(vdd);
    return p;
}

Area
BankedMemory::boosterArea() const
{
    Area a{0.0};
    for (const auto &b : banks_)
        a += b.boosterArea();
    return a;
}

const BankCounters &
BankedMemory::bankCounters(int bank) const
{
    return this->bank(bank).counters();
}

BankCounters
BankedMemory::totalCounters() const
{
    BankCounters total;
    for (const auto &b : banks_) {
        const auto &c = b.counters();
        total.reads += c.reads;
        total.writes += c.writes;
        total.boostEvents += c.boostEvents;
        total.accessEnergy += c.accessEnergy;
        total.boostEnergy += c.boostEnergy;
    }
    return total;
}

void
BankedMemory::resetCounters()
{
    for (auto &b : banks_)
        b.resetCounters();
}

void
BankedMemory::setFlipProb(double p)
{
    for (auto &b : banks_)
        b.setFlipProb(p);
}

SramBank &
BankedMemory::bank(int i)
{
    if (i < 0 || i >= banks())
        fatal("BankedMemory ", name_, ": bank ", i, " out of range");
    return banks_[static_cast<std::size_t>(i)];
}

const SramBank &
BankedMemory::bank(int i) const
{
    if (i < 0 || i >= banks())
        fatal("BankedMemory ", name_, ": bank ", i, " out of range");
    return banks_[static_cast<std::size_t>(i)];
}

std::uint64_t
BankedMemory::cellIndex(std::uint32_t addr) const
{
    const int b = bankOf(addr);
    return banks_[static_cast<std::size_t>(b)].cellIndex(
        addr % SramBank::kWords);
}

} // namespace vboost::sram
