/**
 * @file
 * AVX2 packing kernel for PackedFaultMap. This translation unit is the
 * only sram code compiled with -mavx2 (see src/sram/CMakeLists.txt);
 * callers must gate on PackedFaultMap::simdPackingActive() so the
 * kernel never executes on hardware without AVX2.
 *
 * The kernel evaluates the SplitMix64-finalizer cell hash four lanes
 * at a time. Everything here is exact 64-bit integer arithmetic, so
 * the packed bits are bitwise-identical to the scalar path — SIMD is
 * purely a throughput choice, never a numerics one (DESIGN.md §12).
 */

#include "sram/packed_fault_map.hpp"

#if defined(VBOOST_HAVE_AVX2)

#include <immintrin.h>

namespace vboost::sram {

namespace {

/** 64-bit lane-wise multiply low (AVX2 has no mullo_epi64). */
inline __m256i
mullo64(__m256i a, __m256i b)
{
    // lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32), mod 2^64.
    const __m256i ahi = _mm256_srli_epi64(a, 32);
    const __m256i bhi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i lh = _mm256_mul_epu32(a, bhi);
    const __m256i hl = _mm256_mul_epu32(ahi, b);
    const __m256i hi = _mm256_add_epi64(lh, hl);
    return _mm256_add_epi64(ll, _mm256_slli_epi64(hi, 32));
}

/** Lane-wise SplitMix64 finalizer (matches detail::mix64). */
inline __m256i
mix64x4(__m256i z)
{
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
    z = mullo64(z, _mm256_set1_epi64x(
                       static_cast<long long>(0xbf58476d1ce4e5b9ull)));
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
    z = mullo64(z, _mm256_set1_epi64x(
                       static_cast<long long>(0x94d049bb133111ebull)));
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

} // namespace

std::uint64_t
packMask64Avx2(std::uint64_t stream_key, std::uint64_t threshold,
               std::uint64_t cell)
{
    constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
    const __m256i key = _mm256_set1_epi64x(
        static_cast<long long>(stream_key));
    // AVX2 compares are signed; biasing both sides by 2^63 turns the
    // unsigned hash < threshold test into a signed one.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i thr = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(threshold)), bias);
    // Consecutive cells differ by kGolden in the pre-mix counter, so
    // the per-lane counters advance by addition instead of a 64-bit
    // multiply per lane.
    const std::uint64_t c0 = cell * kGolden;
    __m256i ctr = _mm256_set_epi64x(
        static_cast<long long>(c0 + 3 * kGolden),
        static_cast<long long>(c0 + 2 * kGolden),
        static_cast<long long>(c0 + kGolden),
        static_cast<long long>(c0));
    const __m256i step = _mm256_set1_epi64x(
        static_cast<long long>(4 * kGolden));

    std::uint64_t mask = 0;
    for (int block = 0; block < 16; ++block) {
        const __m256i hash =
            mix64x4(_mm256_xor_si256(key, ctr));
        const __m256i lt = _mm256_cmpgt_epi64(
            thr, _mm256_xor_si256(hash, bias));
        const int bits4 = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
        mask |= static_cast<std::uint64_t>(bits4) << (4 * block);
        ctr = _mm256_add_epi64(ctr, step);
    }
    return mask;
}

} // namespace vboost::sram

#else // !VBOOST_HAVE_AVX2

#include "common/logging.hpp"

namespace vboost::sram {

std::uint64_t
packMask64Avx2(std::uint64_t, std::uint64_t, std::uint64_t)
{
    fatal("packMask64Avx2: built without AVX2 support");
}

} // namespace vboost::sram

#endif // VBOOST_HAVE_AVX2
