/**
 * @file
 * One compiler-generated SRAM macro: 512 words x 64 bits (4 KB), the
 * building block of the Dante chip's 144 KB on-chip memory (paper
 * Sec. 4, Table 1). The macro stores data exactly; fault manifestation
 * happens on the read path, where each faulty bitcell (per the active
 * vulnerability map and the failure probability at the effective array
 * voltage) flips with probability p.
 */

#ifndef VBOOST_SRAM_SRAM_MACRO_HPP
#define VBOOST_SRAM_SRAM_MACRO_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sram/fault_map.hpp"

namespace vboost::sram {

/** A 512 x 64-bit SRAM macro with a faulty read path. */
class SramMacro
{
  public:
    /** Words per macro (512 x 64 bit = 4 KB). */
    static constexpr std::uint32_t kWords = 512;
    /** Bits per word. */
    static constexpr std::uint32_t kWordBits = 64;
    /** Bitcells per macro (32 Kbit). */
    static constexpr std::uint64_t kBits =
        static_cast<std::uint64_t>(kWords) * kWordBits;

    /**
     * @param cell_base index of this macro's first bitcell in the
     *        global cell space (gives every macro distinct cells in
     *        the shared vulnerability map).
     */
    explicit SramMacro(std::uint64_t cell_base = 0);

    /** Store a word. Writes are modeled as reliable; low-voltage
     *  failures manifest on the read path (paper Sec. 5.1). */
    void write(std::uint32_t addr, std::uint64_t data);

    /**
     * Read a word through the faulty read path: each bit whose cell is
     * faulty under (`map`, `params.failProb`) flips with probability
     * `params.flipProb`.
     */
    std::uint64_t read(std::uint32_t addr, const VulnerabilityMap &map,
                       FaultParams params, Rng &rng) const;

    /** Fault-free debug read (does not touch the fault model). */
    std::uint64_t peek(std::uint32_t addr) const;

    /** Global cell index of bit `bit` of word `addr`. */
    std::uint64_t cellIndex(std::uint32_t addr, std::uint32_t bit) const;

    /** This macro's first global cell index. */
    std::uint64_t cellBase() const { return cellBase_; }

  private:
    void checkAddr(std::uint32_t addr) const;

    std::uint64_t cellBase_;
    std::vector<std::uint64_t> data_;
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_SRAM_MACRO_HPP
