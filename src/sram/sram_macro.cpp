#include "sram/sram_macro.hpp"

#include "common/logging.hpp"

namespace vboost::sram {

SramMacro::SramMacro(std::uint64_t cell_base)
    : cellBase_(cell_base), data_(kWords, 0)
{
}

void
SramMacro::checkAddr(std::uint32_t addr) const
{
    if (addr >= kWords)
        fatal("SramMacro: address ", addr, " out of range [0,", kWords, ")");
}

void
SramMacro::write(std::uint32_t addr, std::uint64_t data)
{
    checkAddr(addr);
    data_[addr] = data;
}

std::uint64_t
SramMacro::read(std::uint32_t addr, const VulnerabilityMap &map,
                FaultParams params, Rng &rng) const
{
    checkAddr(addr);
    std::uint64_t word = data_[addr];
    if (params.failProb <= 0.0 || params.flipProb <= 0.0)
        return word;
    const std::uint64_t base = cellIndex(addr, 0);
    for (std::uint32_t b = 0; b < kWordBits; ++b) {
        if (map.isFaulty(base + b, params.failProb) &&
            rng.bernoulli(params.flipProb)) {
            word ^= 1ull << b;
        }
    }
    return word;
}

std::uint64_t
SramMacro::peek(std::uint32_t addr) const
{
    checkAddr(addr);
    return data_[addr];
}

std::uint64_t
SramMacro::cellIndex(std::uint32_t addr, std::uint32_t bit) const
{
    checkAddr(addr);
    if (bit >= kWordBits)
        fatal("SramMacro::cellIndex: bit ", bit, " out of range");
    return cellBase_ + static_cast<std::uint64_t>(addr) * kWordBits + bit;
}

} // namespace vboost::sram
