#include "sram/ecc.hpp"

#include <bit>

namespace vboost::sram {

namespace {

/** Is codeword position p (1-based) a Hamming check position? */
constexpr bool
isCheckPos(int p)
{
    return (p & (p - 1)) == 0; // power of two
}

/** Number of codeword positions used (1..71 holds 64 data + 7 check). */
constexpr int kPositions = 71;

/**
 * Scatter 64 data bits into codeword positions 1..71, skipping the
 * seven power-of-two check positions. Returns a 72-bit value whose
 * bit p (p >= 1) is codeword position p; check positions are zero.
 */
std::uint64_t
scatterLow(std::uint64_t data, std::uint64_t &high)
{
    // Positions 1..63 fit in the low word (bit index == position);
    // positions 64..71 go into `high` (bit index == position - 64).
    std::uint64_t low = 0;
    high = 0;
    int bit = 0;
    for (int p = 1; p <= kPositions; ++p) {
        if (isCheckPos(p))
            continue;
        const std::uint64_t v = (data >> bit) & 1ull;
        if (p < 64)
            low |= v << p;
        else
            high |= v << (p - 64);
        ++bit;
    }
    return low;
}

/** Gather the 64 data bits back out of the codeword. */
std::uint64_t
gather(std::uint64_t low, std::uint64_t high)
{
    std::uint64_t data = 0;
    int bit = 0;
    for (int p = 1; p <= kPositions; ++p) {
        if (isCheckPos(p))
            continue;
        const std::uint64_t v =
            p < 64 ? (low >> p) & 1ull : (high >> (p - 64)) & 1ull;
        data |= v << bit;
        ++bit;
    }
    return data;
}

/** XOR of the positions of all set bits: the Hamming syndrome. */
int
syndromeOf(std::uint64_t low, std::uint64_t high)
{
    int s = 0;
    for (int p = 1; p < 64; ++p) {
        if ((low >> p) & 1ull)
            s ^= p;
    }
    for (int p = 64; p <= kPositions; ++p) {
        if ((high >> (p - 64)) & 1ull)
            s ^= p;
    }
    return s;
}

/** Parity (number of set bits mod 2) of the whole codeword. */
int
parityOf(std::uint64_t low, std::uint64_t high)
{
    return (std::popcount(low) + std::popcount(high)) & 1;
}

} // namespace

std::uint8_t
SecdedCodec::encode(std::uint64_t data)
{
    std::uint64_t high;
    std::uint64_t low = scatterLow(data, high);

    // Choose the 7 check bits so the syndrome of the full codeword is
    // zero: each check bit at position 2^i absorbs bit i of the
    // data-only syndrome.
    const int s = syndromeOf(low, high);
    std::uint8_t check = 0;
    for (int i = 0; i < 7; ++i) {
        if ((s >> i) & 1) {
            check |= static_cast<std::uint8_t>(1u << i);
            const int p = 1 << i;
            if (p < 64)
                low |= 1ull << p;
            else
                high |= 1ull << (p - 64);
        }
    }
    // Eighth bit: overall parity of the 71-bit codeword (even parity).
    if (parityOf(low, high))
        check |= 0x80;
    return check;
}

EccDecodeResult
SecdedCodec::decode(std::uint64_t data, std::uint8_t check)
{
    std::uint64_t high;
    std::uint64_t low = scatterLow(data, high);
    for (int i = 0; i < 7; ++i) {
        if ((check >> i) & 1) {
            const int p = 1 << i;
            if (p < 64)
                low |= 1ull << p;
            else
                high |= 1ull << (p - 64);
        }
    }

    const int s = syndromeOf(low, high);
    const int stored_parity = (check >> 7) & 1;
    const int parity_ok = parityOf(low, high) == stored_parity;

    EccDecodeResult result;
    if (s == 0 && parity_ok) {
        result.data = data;
        result.outcome = EccOutcome::Clean;
        return result;
    }
    if (!parity_ok) {
        // Odd number of errors; assume one and correct it. s == 0
        // means the overall parity bit itself flipped.
        if (s >= 1 && s <= kPositions) {
            if (s < 64)
                low ^= 1ull << s;
            else
                high ^= 1ull << (s - 64);
        }
        result.data = gather(low, high);
        result.outcome = EccOutcome::Corrected;
        return result;
    }
    // Syndrome non-zero with even parity: double error detected.
    result.data = data;
    result.outcome = EccOutcome::DetectedUncorrectable;
    return result;
}

} // namespace vboost::sram
