/**
 * @file
 * Per-bitcell vulnerability and fault maps (paper Sec. 5.1, Fig. 11).
 *
 * The paper models inter-cell Vt variation by giving each bitcell a
 * vulnerability drawn from N(0,1): at supply voltage v the cell is
 * *faulty* iff its draw x satisfies P(X >= x1) = F(v), i.e.
 * x >= Phi^-1(1 - F(v)). A faulty cell manifests a bit flip on any
 * given read with probability p (0.5 by default). Fault maps are
 * *inclusive*: every cell faulty at voltage V2 is also faulty at any
 * V1 < V2.
 *
 * Implementation: the N(0,1) draw for cell c in Monte-Carlo map m is
 * derived from a counter-based hash of (seed, m, c), so maps need no
 * storage, are reproducible, and inclusivity across voltages holds by
 * construction (the draw is fixed; only the threshold moves).
 */

#ifndef VBOOST_SRAM_FAULT_MAP_HPP
#define VBOOST_SRAM_FAULT_MAP_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace vboost::sram {

/** Spatial structure of the per-cell fault process. */
enum class MapModel {
    /** Independent per-cell draws (the paper's baseline model). */
    Iid,
    /** MoRS-lite: row/column defect processes layered over the
     *  i.i.d. baseline. A deterministic per-map subset of wordline
     *  rows and bitline columns is *defective*; cells inside a
     *  defective row or column fail at a boosted probability, the
     *  rest at a depressed one, calibrated so the aggregate expected
     *  fault fraction stays exactly F(v). */
    Clustered,
};

/** Parameters of the clustered (MoRS-lite) defect process. */
struct ClusterParams
{
    /** Cells per wordline row (row id = cell / rowCells, column id =
     *  cell % rowCells). Defaults to the resilience layer's 8-word
     *  72-bit-codeword rows so same-row clustering lines up with
     *  spare-row quarantine granularity. */
    std::uint64_t rowCells = 576;
    /** Fraction of rows that are defective. */
    double rowDefectProb = 0.05;
    /** Fraction of columns that are defective. */
    double colDefectProb = 0.02;
    /** Fail-probability multiplier inside defective rows/columns
     *  (clamped so calibration keeps the aggregate at F(v)). */
    double defectBoost = 12.0;

    /** Fatals on out-of-range parameters. */
    void validate() const;

    /** Fraction of cells covered by a defective row or column. */
    double coverage() const
    {
        return rowDefectProb + colDefectProb -
               rowDefectProb * colDefectProb;
    }
};

/**
 * Deterministic per-cell vulnerability for one Monte-Carlo fault map.
 * Cheap to copy; all methods are const and thread-safe.
 */
class VulnerabilityMap
{
  public:
    /**
     * @param seed experiment seed shared across maps.
     * @param map_index Monte-Carlo map number.
     */
    VulnerabilityMap(std::uint64_t seed, std::uint64_t map_index);

    /** As above, with an explicit spatial model. `cluster` is ignored
     *  under MapModel::Iid. */
    VulnerabilityMap(std::uint64_t seed, std::uint64_t map_index,
                     MapModel model, const ClusterParams &cluster);

    /**
     * Is cell `cell` faulty when the bit failure probability is
     * `fail_prob`? Monotone in fail_prob (inclusivity), under both
     * spatial models: the per-cell draw and the defect structure are
     * fixed; only the (per-stratum) threshold moves with fail_prob.
     */
    bool isFaulty(std::uint64_t cell, double fail_prob) const;

    /** Spatial model of this map. */
    MapModel model() const { return model_; }

    /** Cluster parameters (meaningful under MapModel::Clustered). */
    const ClusterParams &cluster() const { return cluster_; }

    /** Is the cell inside a defective row or column? Always false
     *  under MapModel::Iid. */
    bool inDefectCluster(std::uint64_t cell) const;

    /**
     * Effective per-cell fail probability at aggregate probability
     * `fail_prob`: the boosted/depressed stratum probability under
     * Clustered, `fail_prob` itself under Iid. The expectation over
     * cells equals `fail_prob` exactly under both models.
     */
    double effectiveFailProb(std::uint64_t cell, double fail_prob) const;

    /** The cell's N(0,1) vulnerability draw (diagnostics/tests). */
    double vulnerability(std::uint64_t cell) const;

    /** Enumerate faulty cells in [0, num_cells) at fail_prob. */
    std::vector<std::uint64_t>
    faultyCells(std::uint64_t num_cells, double fail_prob) const;

    /** Count faulty cells in [0, num_cells) at fail_prob. */
    std::uint64_t
    countFaulty(std::uint64_t num_cells, double fail_prob) const;

    /**
     * Smallest uniform draw among cells [0, num_cells): the map's most
     * vulnerable cell. A fail probability above this value makes at
     * least one cell faulty; at or below it the array is error-free.
     * Used by the yield analyzer to compute exact per-die V_min.
     */
    double minUniform(std::uint64_t num_cells) const;

    std::uint64_t seed() const { return seed_; }
    std::uint64_t mapIndex() const { return mapIndex_; }

    /** Internal hash stream key; lets PackedFaultMap reproduce the
     *  exact per-cell draws without going through isFaulty(). */
    std::uint64_t streamKey() const { return streamKey_; }

  private:
    /** Counter-based hash of the cell id to a uniform in [0,1). */
    double cellUniform(std::uint64_t cell) const;

    /** Stratum fail probabilities (boosted, depressed) calibrated so
     *  cov*hi + (1-cov)*lo == fail_prob. */
    void stratumProbs(double fail_prob, double &hi, double &lo) const;

    std::uint64_t seed_;
    std::uint64_t mapIndex_;
    std::uint64_t streamKey_;
    MapModel model_ = MapModel::Iid;
    ClusterParams cluster_;
    std::uint64_t rowKey_ = 0; // defect stream for row ids
    std::uint64_t colKey_ = 0; // defect stream for column ids
};

/** Read-manifestation parameters for fault injection. */
struct FaultParams
{
    /** Bit failure probability F(v) at the operating voltage. */
    double failProb = 0.0;
    /** Probability a faulty cell flips on a given read (paper: 0.5). */
    double flipProb = 0.5;
};

/**
 * Corrupt a buffer of 16-bit words in place, as one read of the whole
 * buffer through a faulty SRAM: each bit whose cell is faulty in `map`
 * flips with probability flipProb.
 *
 * @param words buffer to corrupt (bit i of word w is cell
 *        base_cell + 16*w + i).
 * @param map vulnerability map.
 * @param base_cell cell index of the buffer's first bit in the global
 *        SRAM cell space.
 * @param params failure/flip probabilities.
 * @param rng randomness for the per-read flip decisions.
 * @return number of bits flipped.
 */
std::uint64_t corruptWords(std::span<std::int16_t> words,
                           const VulnerabilityMap &map,
                           std::uint64_t base_cell, FaultParams params,
                           Rng &rng);

/** As corruptWords, for a span of 64-bit words. */
std::uint64_t corruptWords64(std::span<std::uint64_t> words,
                             const VulnerabilityMap &map,
                             std::uint64_t base_cell, FaultParams params,
                             Rng &rng);

} // namespace vboost::sram

#endif // VBOOST_SRAM_FAULT_MAP_HPP
