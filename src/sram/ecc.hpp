/**
 * @file
 * SECDED Hamming(72, 64) error-correcting code: the conventional
 * alternative to supply boosting for low-voltage SRAM (the paper's
 * related work [36] uses ECC + redundancy to limit Vmin-induced yield
 * loss). One 64-bit data word is protected by 8 check bits (7 Hamming
 * syndrome bits + 1 overall parity), correcting any single bit error
 * and detecting any double bit error per codeword — including errors
 * in the check bits themselves, which occupy (faulty) SRAM cells like
 * any other bit.
 *
 * Used by the fault-injection harness and the ECC-vs-boosting ablation
 * bench to quantify where ECC stops helping: at VLV failure rates the
 * per-word multi-bit error probability grows quadratically and SECDED
 * collapses, while boosting keeps lowering the raw bit error rate.
 */

#ifndef VBOOST_SRAM_ECC_HPP
#define VBOOST_SRAM_ECC_HPP

#include <cstdint>

namespace vboost::sram {

/** Outcome of decoding one codeword. */
enum class EccOutcome
{
    /** No error detected. */
    Clean,
    /** Single-bit error corrected (possibly in a check bit). */
    Corrected,
    /** Double-bit error detected but not correctable; the decoder
     *  returns the uncorrected data bits. */
    DetectedUncorrectable,
};

/** Decode result: data plus what the decoder observed. */
struct EccDecodeResult
{
    std::uint64_t data = 0;
    EccOutcome outcome = EccOutcome::Clean;
};

/** Running decode statistics for an experiment. */
struct EccStats
{
    std::uint64_t words = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detectedUncorrectable = 0;

    void
    record(EccOutcome outcome)
    {
        ++words;
        if (outcome == EccOutcome::Corrected)
            ++corrected;
        else if (outcome == EccOutcome::DetectedUncorrectable)
            ++detectedUncorrectable;
    }

    /** Combine another accumulator (parallel Monte-Carlo reduction). */
    void
    merge(const EccStats &other)
    {
        words += other.words;
        corrected += other.corrected;
        detectedUncorrectable += other.detectedUncorrectable;
    }
};

/** Hamming(72, 64) SECDED codec. Stateless; all methods are static. */
class SecdedCodec
{
  public:
    /** Check bits per 64-bit data word (7 syndrome + 1 parity). */
    static constexpr int kCheckBits = 8;
    /** Total codeword size in bits. */
    static constexpr int kCodewordBits = 72;

    /** Compute the 8 check bits for a data word. */
    static std::uint8_t encode(std::uint64_t data);

    /**
     * Decode a (possibly corrupted) codeword.
     *
     * @param data the 64 stored data bits as read.
     * @param check the 8 stored check bits as read.
     * @return corrected data and the decode outcome. Triple and higher
     *         errors may alias to Clean or Corrected (inherent SECDED
     *         limitation, faithfully modeled).
     */
    static EccDecodeResult decode(std::uint64_t data, std::uint8_t check);

    /** Storage overhead of the code (check bits / data bits). */
    static constexpr double
    storageOverhead()
    {
        return static_cast<double>(kCheckBits) / 64.0;
    }
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_ECC_HPP
