/**
 * @file
 * SRAM bit-failure rate vs supply voltage (paper Sec. 5.1, Fig. 7 top).
 * The paper measures bit fails across dies on a 4 Mbit 14nm test chip
 * and fits the per-voltage failure probability to an exponential; we
 * implement that fit directly:
 *
 *     F(v) = F_anchor * exp(-k * (v - v_anchor)),  clamped to [0, Fmax]
 *
 * calibrated so F(0.44 V) ~ 1.4e-2 (the rate quoted with Fig. 2) and
 * F(0.6 V) is negligible (macros screened for zero fails at 0.6 V).
 */

#ifndef VBOOST_SRAM_FAILURE_MODEL_HPP
#define VBOOST_SRAM_FAILURE_MODEL_HPP

#include <cstdint>

#include "common/units.hpp"

namespace vboost::sram {

/** Calibration of the exponential failure-rate fit. */
struct FailureRateParams
{
    /** Failure probability at the anchor voltage. */
    double rateAtAnchor = 1.4e-2;
    /** Anchor voltage for the fit. */
    Volt anchorVoltage{0.44};
    /** Exponential slope k (per volt). */
    double slopePerVolt = 75.0;
    /** Saturation: a cell is a coin flip at best. */
    double maxRate = 0.5;
    /**
     * Minimum voltage at which a cell retains its stored value at all
     * (V_data-retention in Fig. 1); below this every read is garbage.
     */
    Volt dataRetentionVoltage{0.30};
};

/** Exponential bit-failure-rate model with landmark helpers. */
class FailureRateModel
{
  public:
    explicit FailureRateModel(FailureRateParams params = {});

    /** Bit failure probability at supply voltage v. */
    double rate(Volt v) const;

    /**
     * Inverse of rate(): the voltage at which the failure probability
     * equals `target` (on the exponential segment).
     * @pre 0 < target <= maxRate.
     */
    Volt voltageForRate(double target) const;

    /**
     * V_1st-error landmark (Fig. 1): the highest voltage at which an
     * array of `bits` cells is expected to contain at least one faulty
     * cell (expected fail count crosses 1).
     */
    Volt firstErrorVoltage(std::uint64_t bits) const;

    /** V_data-retention landmark. */
    Volt dataRetentionVoltage() const
    { return params_.dataRetentionVoltage; }

    /** The calibration in use. */
    const FailureRateParams &params() const { return params_; }

  private:
    FailureRateParams params_;
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_FAILURE_MODEL_HPP
