/**
 * @file
 * Array-level V_min and yield analysis. The paper's introduction frames
 * the whole problem through yield: "at such low voltages, SRAMs do not
 * function reliably due to bit cell variability and yield challenges",
 * and its failure data is "measured across multiple die" (Sec. 5.1).
 * This module turns the bit-level failure fit into array/die-level
 * statements:
 *
 *  - P(array of N bits is error-free at voltage v) = (1 - F(v))^N;
 *  - the die V_min distribution (lowest voltage at which the die's
 *    array is still error-free), sampled across Monte-Carlo dies;
 *  - yield vs voltage curves with and without boosting, showing how a
 *    boost level shifts the entire V_min distribution down.
 */

#ifndef VBOOST_SRAM_YIELD_HPP
#define VBOOST_SRAM_YIELD_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sram/failure_model.hpp"
#include "sram/fault_map.hpp"

namespace vboost::sram {

/** Summary of a sampled die V_min distribution. */
struct VminDistribution
{
    /** Sampled per-die V_min values (volts), sorted ascending. */
    std::vector<double> samples;

    /** Mean die V_min. */
    double mean() const;
    /** Percentile (0-100) of the distribution. */
    double percentile(double p) const;
};

/** Array-level yield evaluator on top of the failure-rate fit. */
class YieldAnalyzer
{
  public:
    /**
     * @param model bit-failure-rate calibration.
     * @param array_bits bitcells per die under analysis.
     */
    YieldAnalyzer(const FailureRateModel &model, std::uint64_t array_bits);

    /** Analytic probability the whole array is error-free at v. */
    double errorFreeProbability(Volt v) const;

    /**
     * Analytic yield at voltage v when up to `max_faulty_bits` faulty
     * cells are tolerable (e.g. repaired by redundancy or absorbed by
     * the application): P(#faults <= k), Poisson approximation of the
     * binomial (exact enough for F(v) << 1 and large arrays).
     */
    double yieldWithTolerance(Volt v, std::uint64_t max_faulty_bits) const;

    /**
     * Analytic voltage at which the error-free yield crosses `target`
     * (e.g. 0.99): the "V_min for yield" landmark.
     */
    Volt vminForYield(double target) const;

    /**
     * Monte-Carlo die V_min distribution: each die is one
     * vulnerability map; its V_min is the lowest grid voltage at which
     * the die has zero faulty cells. Uses a per-die bisection over the
     * analytic inverse, then verifies against the map's worst cell, so
     * it is exact for the hash-based vulnerability model.
     *
     * @param dies number of Monte-Carlo dies.
     * @param seed experiment seed.
     */
    VminDistribution sampleVmin(int dies, std::uint64_t seed) const;

    /** The array size under analysis. */
    std::uint64_t arrayBits() const { return arrayBits_; }

  private:
    FailureRateModel model_;
    std::uint64_t arrayBits_;
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_YIELD_HPP
