/**
 * @file
 * A banked on-chip memory assembled from boost-enabled 64 Kbit banks,
 * with flat word addressing, per-bank boost configuration (the spatial
 * programmability of paper Sec. 3.2.1) and aggregate energy/leakage
 * accounting. Dante's 128 KB weight memory is a 16-bank instance and
 * its 16 KB input memory a 2-bank instance (Table 1).
 */

#ifndef VBOOST_SRAM_BANKED_MEMORY_HPP
#define VBOOST_SRAM_BANKED_MEMORY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sram/sram_bank.hpp"

namespace vboost::sram {

/** Flat-addressed banked memory of boost-enabled SRAM banks. */
class BankedMemory
{
  public:
    /**
     * @param name identifier used in diagnostics ("weight_mem").
     * @param num_banks number of 64 Kbit banks (>= 1).
     * @param design per-bank booster design.
     * @param tech technology constants.
     * @param failure failure-rate calibration.
     * @param cell_base_offset first global cell index of this memory
     *        (keeps independent memories in disjoint cell ranges of
     *        the vulnerability map).
     */
    BankedMemory(std::string name, int num_banks,
                 const circuit::BoosterDesign &design,
                 const circuit::TechnologyParams &tech,
                 const FailureRateModel &failure,
                 std::uint64_t cell_base_offset = 0);

    /** Total 64-bit words. */
    std::uint32_t words() const;

    /** Total capacity in bytes. */
    std::uint64_t bytes() const { return words() * 8ull; }

    /** Number of banks. */
    int banks() const { return static_cast<int>(banks_.size()); }

    /** Bank holding flat word address `addr`. */
    int bankOf(std::uint32_t addr) const;

    /** Program one bank's boost configuration bits. */
    void setBoostConfig(int bank, std::uint32_t bits);

    /** Program one bank's boost level. */
    void setBoostLevel(int bank, int level);

    /** Program every bank to the same boost level. */
    void setAllBoostLevels(int level);

    /** Boost level of a bank. */
    int boostLevel(int bank) const;

    /** Write a 64-bit word at flat address `addr`. */
    void write(std::uint32_t addr, std::uint64_t data, Volt vdd);

    /** Read a word through the faulty read path. */
    std::uint64_t read(std::uint32_t addr, Volt vdd,
                       const VulnerabilityMap &map, Rng &rng);

    /** Fault-free debug read. */
    std::uint64_t peek(std::uint32_t addr) const;

    /**
     * Write a contiguous buffer of 16-bit values starting at 16-bit
     * element offset `elem16` (4 elements per 64-bit word).
     */
    void writeWords16(std::uint32_t elem16,
                      const std::vector<std::int16_t> &values, Volt vdd);

    /** Read `count` 16-bit values from element offset `elem16`. */
    std::vector<std::int16_t> readWords16(std::uint32_t elem16,
                                          std::uint32_t count, Volt vdd,
                                          const VulnerabilityMap &map,
                                          Rng &rng);

    /** Total leakage power (all banks idle at vdd + boosters). */
    Watt leakagePower(Volt vdd) const;

    /** Total booster + BIC area added to this memory. */
    Area boosterArea() const;

    /** Per-bank access/energy counters. */
    const BankCounters &bankCounters(int bank) const;

    /** Aggregated counters across all banks. */
    BankCounters totalCounters() const;

    /** Reset all counters. */
    void resetCounters();

    /** Set the faulty-read flip probability on every bank. */
    void setFlipProb(double p);

    /** Mutable access to a bank (tests, advanced callers). */
    SramBank &bank(int i);
    const SramBank &bank(int i) const;

    /** Name of this memory. */
    const std::string &name() const { return name_; }

    /** First global cell index of this memory. */
    std::uint64_t cellBase() const { return cellBase_; }

    /** Global cell index of flat word address `addr`, bit 0. */
    std::uint64_t cellIndex(std::uint32_t addr) const;

  private:
    std::string name_;
    std::uint64_t cellBase_;
    std::vector<SramBank> banks_;
};

} // namespace vboost::sram

#endif // VBOOST_SRAM_BANKED_MEMORY_HPP
