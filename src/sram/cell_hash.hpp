/**
 * @file
 * The counter-based cell hash shared by VulnerabilityMap and the
 * bit-packed fault maps. One definition keeps the per-cell draws of
 * every query path bitwise-identical by construction (DESIGN.md §12):
 * a packed word and a scalar isFaulty() answer come from the same
 * integer arithmetic.
 */

#ifndef VBOOST_SRAM_CELL_HASH_HPP
#define VBOOST_SRAM_CELL_HASH_HPP

#include <cstdint>

namespace vboost::sram::detail {

/** Stateless 64-bit mix (SplitMix64 finalizer). */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Hash a cell id under a stream key to a raw 64-bit value. */
inline std::uint64_t
cellHash(std::uint64_t stream_key, std::uint64_t cell)
{
    return mix64(stream_key ^ (cell * 0x9e3779b97f4a7c15ull));
}

/** Convert a fail probability to a 64-bit comparison threshold. */
inline std::uint64_t
probThreshold(double fail_prob)
{
    if (fail_prob <= 0.0)
        return 0;
    if (fail_prob >= 1.0)
        return ~0ull;
    return static_cast<std::uint64_t>(fail_prob * 0x1.0p64);
}

} // namespace vboost::sram::detail

#endif // VBOOST_SRAM_CELL_HASH_HPP
