#include "sram/yield.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost::sram {

double
VminDistribution::mean() const
{
    if (samples.empty())
        fatal("VminDistribution: empty sample set");
    double sum = 0;
    for (double v : samples)
        // vblint: assoc-ok(samples summed in fixed vector order)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

double
VminDistribution::percentile(double p) const
{
    if (samples.empty())
        fatal("VminDistribution: empty sample set");
    if (p < 0.0 || p > 100.0)
        fatal("VminDistribution: percentile out of range");
    const double rank = p / 100.0 *
                        static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

YieldAnalyzer::YieldAnalyzer(const FailureRateModel &model,
                             std::uint64_t array_bits)
    : model_(model), arrayBits_(array_bits)
{
    if (array_bits == 0)
        fatal("YieldAnalyzer: array must have at least one bit");
}

double
YieldAnalyzer::errorFreeProbability(Volt v) const
{
    // (1 - F)^N computed in log space for numerical stability.
    const double f = model_.rate(v);
    if (f >= 1.0)
        return 0.0;
    return std::exp(static_cast<double>(arrayBits_) *
                    std::log1p(-f));
}

double
YieldAnalyzer::yieldWithTolerance(Volt v,
                                  std::uint64_t max_faulty_bits) const
{
    // Poisson approximation: faults ~ Poisson(N * F).
    const double lambda =
        static_cast<double>(arrayBits_) * model_.rate(v);
    double term = std::exp(-lambda);
    double cdf = term;
    for (std::uint64_t k = 1; k <= max_faulty_bits; ++k) {
        term *= lambda / static_cast<double>(k);
        // vblint: assoc-ok(Poisson CDF terms in fixed k order)
        cdf += term;
    }
    return std::min(cdf, 1.0);
}

Volt
YieldAnalyzer::vminForYield(double target) const
{
    if (target <= 0.0 || target >= 1.0)
        fatal("YieldAnalyzer::vminForYield: target must be in (0,1)");
    // (1-F)^N >= target  <=>  F <= 1 - target^(1/N).
    const double f_max =
        -std::log(target) / static_cast<double>(arrayBits_);
    return model_.voltageForRate(f_max);
}

VminDistribution
YieldAnalyzer::sampleVmin(int dies, std::uint64_t seed) const
{
    if (dies < 1)
        fatal("YieldAnalyzer::sampleVmin: at least one die required");

    VminDistribution dist;
    dist.samples.reserve(static_cast<std::size_t>(dies));
    for (int d = 0; d < dies; ++d) {
        const VulnerabilityMap map(seed, static_cast<std::uint64_t>(d));
        // The die's V_min is set by its most vulnerable cell (the
        // smallest uniform draw): error-free at v iff F(v) <= u_min.
        const double u_min =
            std::max(map.minUniform(arrayBits_), 1e-300);
        const double capped =
            std::min(u_min, model_.params().maxRate * 0.999);
        dist.samples.push_back(model_.voltageForRate(capped).value());
    }
    std::sort(dist.samples.begin(), dist.samples.end());
    return dist;
}

} // namespace vboost::sram
