#include "sram/failure_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost::sram {

FailureRateModel::FailureRateModel(FailureRateParams params)
    : params_(params)
{
    if (params_.rateAtAnchor <= 0.0 || params_.rateAtAnchor > 1.0)
        fatal("FailureRateModel: anchor rate must be in (0,1]");
    if (params_.slopePerVolt <= 0.0)
        fatal("FailureRateModel: slope must be positive");
    if (params_.maxRate <= 0.0 || params_.maxRate > 1.0)
        fatal("FailureRateModel: maxRate must be in (0,1]");
}

double
FailureRateModel::rate(Volt v) const
{
    if (v < params_.dataRetentionVoltage)
        return params_.maxRate;
    const double f = params_.rateAtAnchor *
        std::exp(-params_.slopePerVolt *
                 (v.value() - params_.anchorVoltage.value()));
    return std::clamp(f, 0.0, params_.maxRate);
}

Volt
FailureRateModel::voltageForRate(double target) const
{
    if (target <= 0.0 || target > params_.maxRate)
        fatal("FailureRateModel::voltageForRate: target ", target,
              " outside (0,", params_.maxRate, "]");
    // Invert F = F0 * exp(-k (v - v0)).
    const double v = params_.anchorVoltage.value() -
        std::log(target / params_.rateAtAnchor) / params_.slopePerVolt;
    return Volt(std::max(v, params_.dataRetentionVoltage.value()));
}

Volt
FailureRateModel::firstErrorVoltage(std::uint64_t bits) const
{
    if (bits == 0)
        fatal("FailureRateModel::firstErrorVoltage: empty array");
    // Expected fail count F(v) * bits == 1.
    const double target = 1.0 / static_cast<double>(bits);
    if (target > params_.maxRate)
        return dataRetentionVoltage();
    return voltageForRate(target);
}

} // namespace vboost::sram
