#include "sram/packed_fault_map.hpp"

#include <bit>

#include "common/logging.hpp"
#include "sram/cell_hash.hpp"

namespace vboost::sram {

namespace {

bool
avx2Available()
{
#if defined(VBOOST_HAVE_AVX2)
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
#else
    return false;
#endif
}

} // namespace

bool
PackedFaultMap::simdPackingActive()
{
    return avx2Available();
}

PackedFaultMap::PackedFaultMap(const VulnerabilityMap &map,
                               std::uint64_t region_base,
                               std::uint64_t region_bits,
                               std::uint64_t start_bit,
                               std::uint64_t num_bits, double fail_prob)
    : numBits_(num_bits)
{
    if (region_bits == 0)
        fatal("PackedFaultMap: empty region");
    words_.assign((num_bits + 63) / 64, 0);
    pack(map, region_base, region_bits, start_bit, fail_prob);
}

PackedFaultMap::PackedFaultMap(const VulnerabilityMap &map,
                               std::uint64_t base_cell,
                               std::uint64_t num_bits, double fail_prob)
    : PackedFaultMap(map, base_cell,
                     num_bits == 0 ? 1 : num_bits, 0, num_bits, fail_prob)
{
}

void
PackedFaultMap::pack(const VulnerabilityMap &map, std::uint64_t region_base,
                     std::uint64_t region_bits, std::uint64_t start_bit,
                     double fail_prob)
{
    const std::uint64_t key = map.streamKey();
    const std::uint64_t thr = detail::probThreshold(fail_prob);
    if (thr == 0)
        return; // no cell can be faulty; leave all bits clear
    // Split the wrapped visit sequence into contiguous cell runs so
    // packing can walk consecutive cells (which the SIMD kernel
    // exploits with an incremental counter).
    std::uint64_t j = 0;
    std::uint64_t offset = start_bit % region_bits;
    while (j < numBits_) {
        const std::uint64_t run =
            std::min(numBits_ - j, region_bits - offset);
        if (map.model() == MapModel::Iid) {
            packRun(key, thr, region_base + offset, run, j);
        } else {
            // Clustered maps mix per-stratum thresholds into the
            // per-cell decision; the raw hash-vs-threshold kernel
            // would silently reproduce the i.i.d. pattern. Go through
            // isFaulty() so packed bits stay bitwise-identical to the
            // scalar query path by construction.
            packClusteredRun(map, fail_prob, region_base + offset, run, j);
        }
        j += run;
        offset = 0; // every later run restarts at the region base
    }
}

void
PackedFaultMap::packClusteredRun(const VulnerabilityMap &map,
                                 double fail_prob, std::uint64_t cell,
                                 std::uint64_t count,
                                 std::uint64_t bit_offset)
{
    std::uint64_t done = 0;
    while (done < count) {
        const unsigned chunk =
            static_cast<unsigned>(std::min<std::uint64_t>(64, count - done));
        std::uint64_t m = 0;
        for (unsigned b = 0; b < chunk; ++b) {
            if (map.isFaulty(cell + done + b, fail_prob))
                m |= 1ull << b;
        }
        deposit(m, bit_offset + done, chunk);
        done += chunk;
    }
}

void
PackedFaultMap::packRun(std::uint64_t stream_key, std::uint64_t threshold,
                        std::uint64_t cell, std::uint64_t count,
                        std::uint64_t bit_offset)
{
    std::uint64_t done = 0;
    if (avx2Available()) {
        while (count - done >= 64) {
            const std::uint64_t m =
                packMask64Avx2(stream_key, threshold, cell + done);
            deposit(m, bit_offset + done, 64);
            done += 64;
        }
    }
    // Scalar path: also covers the sub-64-cell tail of the SIMD path.
    while (done < count) {
        const unsigned chunk =
            static_cast<unsigned>(std::min<std::uint64_t>(64, count - done));
        std::uint64_t m = 0;
        for (unsigned b = 0; b < chunk; ++b) {
            if (detail::cellHash(stream_key, cell + done + b) < threshold)
                m |= 1ull << b;
        }
        deposit(m, bit_offset + done, chunk);
        done += chunk;
    }
}

void
PackedFaultMap::deposit(std::uint64_t bits, std::uint64_t bit_offset,
                        unsigned nbits)
{
    if (nbits < 64)
        bits &= (1ull << nbits) - 1;
    const std::uint64_t w = bit_offset >> 6;
    const unsigned shift = static_cast<unsigned>(bit_offset & 63);
    words_[w] |= bits << shift;
    if (shift != 0 && shift + nbits > 64)
        words_[w + 1] |= bits >> (64 - shift);
}

std::uint64_t
PackedFaultMap::mask(std::uint64_t j, unsigned nbits) const
{
    if (nbits == 0 || nbits > 64)
        fatal("PackedFaultMap::mask: nbits must be in [1,64], got ", nbits);
    std::uint64_t out = 0;
    if (j < numBits_) {
        const std::uint64_t w = j >> 6;
        const unsigned shift = static_cast<unsigned>(j & 63);
        out = words_[w] >> shift;
        if (shift != 0 && w + 1 < words_.size())
            out |= words_[w + 1] << (64 - shift);
        // Clear bits past the packed range (the tail word may carry
        // garbage-free zeros already, but the straddle above can pull
        // in bits beyond numBits_ only when numBits_ % 64 != 0 and the
        // caller asks across the end; keep the contract explicit).
        if (numBits_ - j < 64 && nbits > numBits_ - j)
            out &= (1ull << (numBits_ - j)) - 1;
    }
    if (nbits < 64)
        out &= (1ull << nbits) - 1;
    return out;
}

std::uint64_t
PackedFaultMap::countFaulty() const
{
    std::uint64_t n = 0;
    for (std::uint64_t w : words_)
        n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

} // namespace vboost::sram
