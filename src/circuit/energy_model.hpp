/**
 * @file
 * Per-event dynamic energy and per-component leakage models: the
 * Spectre/Joules stand-in feeding the paper's energy equations
 * (2)-(4), (6)-(7). Dynamic events cost E = C_eff * V^2 with effective
 * capacitances from TechnologyParams; leakage follows an exponential
 * voltage dependence P(V) = Pref * exp((V - Vref)/Vslope).
 */

#ifndef VBOOST_CIRCUIT_ENERGY_MODEL_HPP
#define VBOOST_CIRCUIT_ENERGY_MODEL_HPP

#include "circuit/tech.hpp"
#include "common/units.hpp"

namespace vboost::circuit {

/** Dynamic-energy and leakage primitives for SRAM banks and PEs. */
class EnergyModel
{
  public:
    explicit EnergyModel(const TechnologyParams &tech);

    /**
     * Energy of one access to a banked on-chip memory at array voltage
     * v. Includes the per-access output-mux/routing cost, which grows
     * logarithmically with the number of banks (paper Sec. 5.2: "the
     * energy cost of banked SRAM access also includes the multiplexer
     * cost").
     *
     * @param v voltage on the accessed bank's array.
     * @param num_banks banks in the memory (>= 1).
     */
    Joule sramAccessEnergy(Volt v, int num_banks = 1) const;

    /** Energy of one processing-element operation (MAC + activation
     *  share) at logic voltage v. */
    Joule peOpEnergy(Volt v) const;

    /** Leakage power of `num_macros` 4 KB SRAM macros at voltage v. */
    Watt sramLeakage(Volt v, int num_macros) const;

    /** Leakage power of the PE/control logic at voltage v. */
    Watt peLeakage(Volt v) const;

    /** Exponential leakage scale factor exp((v - Vref)/Vslope). */
    double leakageScale(Volt v) const;

    /** Leakage energy per clock cycle for a given power (LE = P/f). */
    Joule leakagePerCycle(Watt p, Hertz clock) const;

    /** The underlying technology constants. */
    const TechnologyParams &tech() const { return tech_; }

  private:
    TechnologyParams tech_;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_ENERGY_MODEL_HPP
