#include "circuit/regulators.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost::circuit {

namespace {

void
checkOperatingPoint(Volt vout, Volt vin)
{
    if (vout <= Volt(0.0) || vin <= Volt(0.0))
        fatal("Regulator: voltages must be positive");
    if (vout > vin)
        fatal("Regulator: vout (", vout.value(), " V) exceeds vin (",
              vin.value(), " V)");
}

} // namespace

Joule
Regulator::inputEnergy(Joule load, Volt vout, Volt vin) const
{
    return load / efficiency(vout, vin);
}

BuckConverter::BuckConverter(double peak_efficiency)
    : peakEff_(peak_efficiency)
{
    if (peakEff_ <= 0.0 || peakEff_ > 1.0)
        fatal("BuckConverter: peak efficiency must be in (0,1]");
}

double
BuckConverter::efficiency(Volt vout, Volt vin) const
{
    checkOperatingPoint(vout, vin);
    // Mild droop at extreme conversion ratios (switching losses
    // dominate when the duty cycle is small).
    const double d = vout / vin;
    return peakEff_ * (0.9 + 0.1 * d);
}

SwitchedCapacitorConverter::SwitchedCapacitorConverter(
    double peak_efficiency, std::vector<double> ratios)
    : peakEff_(peak_efficiency), ratios_(std::move(ratios))
{
    if (peakEff_ <= 0.0 || peakEff_ > 1.0)
        fatal("SwitchedCapacitorConverter: peak efficiency in (0,1]");
    if (ratios_.empty())
        fatal("SwitchedCapacitorConverter: at least one ratio");
    std::sort(ratios_.begin(), ratios_.end());
    for (double r : ratios_) {
        if (r <= 0.0 || r > 1.0)
            fatal("SwitchedCapacitorConverter: ratios must be in (0,1]");
    }
}

double
SwitchedCapacitorConverter::efficiency(Volt vout, Volt vin) const
{
    checkOperatingPoint(vout, vin);
    const double d = vout / vin;
    // Intrinsic SC loss: the output can only sit *below* a supported
    // ratio r, with efficiency (d / r) * peak — equivalent to an LDO
    // from the ratio's ideal output. Choose the best ratio >= d.
    double best = 0.0;
    for (double r : ratios_) {
        if (r + 1e-12 >= d)
            best = std::max(best, d / r * peakEff_);
    }
    if (best == 0.0) {
        // d above the largest ratio: unreachable operating point;
        // model as the top ratio driven into dropout.
        best = peakEff_ * ratios_.back() / d;
    }
    return std::min(best, peakEff_);
}

} // namespace vboost::circuit
