/**
 * @file
 * The programmable SRAM supply booster (paper Sec. 3): booster cells
 * made of boost inverters plus a per-cell MIM capacitor, assembled into
 * a per-bank booster with P programmable levels. The steady-state
 * boosted voltage follows the charge-share relation of paper Eq. (1):
 *
 *     Vb = Vdd * Cb / (Cb + Cmem + Cp)
 *
 * where Cb is the enabled boost capacitance, Cmem the memory power-grid
 * capacitance and Cp the parasitic load on the boosted node.
 */

#ifndef VBOOST_CIRCUIT_BOOSTER_HPP
#define VBOOST_CIRCUIT_BOOSTER_HPP

#include <vector>

#include "circuit/tech.hpp"
#include "common/units.hpp"

namespace vboost::circuit {

/** Physical composition of one booster cell (one programmable step). */
struct BoosterCellSpec
{
    /** Number of boost inverters in the cell. */
    int numInverters = 64;
    /** MIM capacitance wired in parallel with the cell's inverters. */
    Farad mimCap{10.0e-12};
};

/**
 * A complete booster design: an ordered column of booster cells.
 * Enabling the first `level` cells yields boost level `level`; level 0
 * means boosting disabled (output pinned at Vdd through the pFETs).
 */
class BoosterDesign
{
  public:
    /** Build from an explicit cell list. @pre non-empty. */
    explicit BoosterDesign(std::vector<BoosterCellSpec> cells);

    /**
     * The paper's *standard* configuration (Sec. 3.2): 4 booster cells,
     * each with 64 boost inverters and a 10 pF MIM capacitor (40 pF MIM
     * per macro total, Table 1).
     */
    static BoosterDesign standardConfig();

    /** Uniform design: `levels` identical cells. */
    static BoosterDesign uniform(int levels, int inv_per_cell, Farad mim);

    /**
     * A boost-inverter-only design (no MIM capacitor), as in the prior
     * work the paper compares against in Fig. 6 (noMIMBoost-A/B).
     */
    static BoosterDesign inverterOnly(int total_inverters, int levels = 1);

    /**
     * Replicate the design `copies` times per level: a bank spanning N
     * macros carries N booster columns ganged under one BIC, so each
     * level contributes N cells' worth of boost capacitance.
     */
    BoosterDesign scaled(int copies) const;

    /** Number of programmable levels P. */
    int levels() const { return static_cast<int>(cells_.size()); }

    /** Boost capacitance Cb with the first `level` cells enabled. */
    Farad boostCap(int level, const TechnologyParams &tech) const;

    /** Inverters enabled at `level`. */
    int enabledInverters(int level) const;

    /** Total inverters across all cells. */
    int totalInverters() const;

    /** Total MIM capacitance across the first `level` cells. */
    Farad enabledMim(int level) const;

    /** Parasitic load all cells place on the boosted node (all cells
     *  load the node whether enabled or not). */
    Farad parasiticLoad(const TechnologyParams &tech) const;

    /** Silicon area of the booster column (inverters + buffers + MIM
     *  buffers; the MIM plates are free in upper metal). */
    Area area(const TechnologyParams &tech) const;

    /** Access to the cell list. */
    const std::vector<BoosterCellSpec> &cells() const { return cells_; }

  private:
    std::vector<BoosterCellSpec> cells_;
};

/**
 * A booster bound to one SRAM bank's power grid: solves the boosted
 * voltage, per-event energy, leakage and area for that binding.
 */
class BoosterBank
{
  public:
    /**
     * @param design booster composition.
     * @param load_cap memory-side load (Cmem + fixed parasitics): use
     *        macroArrayCap (+ macroPeriphCap for macro-level boosting)
     *        + fixedParasiticCap, times the number of macros on the
     *        boosted rail.
     * @param tech technology constants.
     */
    BoosterBank(BoosterDesign design, Farad load_cap,
                const TechnologyParams &tech);

    /** Number of programmable levels P. */
    int levels() const { return design_.levels(); }

    /**
     * Boost delta Vb at the given supply and level (paper Eq. 1).
     * Level 0 returns 0 V. @pre 0 <= level <= levels().
     */
    Volt boostDelta(Volt vdd, int level) const;

    /** Boosted supply Vddv = Vdd + Vb. */
    Volt boostedVoltage(Volt vdd, int level) const;

    /**
     * Energy dissipated by the booster circuit for one boost event
     * (one read or write at the given level): drive energy of the
     * enabled inverters and MIM buffers plus the resistive share of the
     * charge-shuffle, per DESIGN.md Sec. 4. This is the E(BC, Vdd) term
     * of paper Eq. (3). Level 0 costs nothing.
     */
    Joule boostEventEnergy(Volt vdd, int level) const;

    /** Leakage power of the booster column + BIC at supply vdd. */
    Watt leakagePower(Volt vdd) const;

    /** Silicon area (booster column + BIC). */
    Area area() const;

    /** The memory-side load this booster drives. */
    Farad loadCap() const { return loadCap_; }

    /** The underlying design. */
    const BoosterDesign &design() const { return design_; }

  private:
    BoosterDesign design_;
    Farad loadCap_;
    TechnologyParams tech_;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_BOOSTER_HPP
