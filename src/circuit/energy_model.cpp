#include "circuit/energy_model.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost::circuit {

EnergyModel::EnergyModel(const TechnologyParams &tech) : tech_(tech) {}

Joule
EnergyModel::sramAccessEnergy(Volt v, int num_banks) const
{
    if (num_banks < 1)
        fatal("EnergyModel::sramAccessEnergy: num_banks must be >= 1");
    if (v <= Volt(0.0))
        fatal("EnergyModel::sramAccessEnergy: voltage must be positive");
    // Output mux / routing depth grows with log2(banks).
    const double mux_levels = std::log2(static_cast<double>(num_banks));
    const Farad c_eff = tech_.bankAccessCap + tech_.bankMuxCap * mux_levels;
    return switchingEnergy(c_eff, v);
}

Joule
EnergyModel::peOpEnergy(Volt v) const
{
    if (v <= Volt(0.0))
        fatal("EnergyModel::peOpEnergy: voltage must be positive");
    return switchingEnergy(tech_.peOpCap, v);
}

double
EnergyModel::leakageScale(Volt v) const
{
    return std::exp((v.value() - tech_.leakageVref.value()) /
                    tech_.leakageSlope.value());
}

Watt
EnergyModel::sramLeakage(Volt v, int num_macros) const
{
    if (num_macros < 0)
        fatal("EnergyModel::sramLeakage: negative macro count");
    return tech_.sramLeakPerMacroAtVref * (leakageScale(v) * num_macros);
}

Watt
EnergyModel::peLeakage(Volt v) const
{
    return tech_.peLeakAtVref * leakageScale(v);
}

Joule
EnergyModel::leakagePerCycle(Watt p, Hertz clock) const
{
    if (clock <= Hertz(0.0))
        fatal("EnergyModel::leakagePerCycle: clock must be positive");
    return energyFromPower(p, period(clock));
}

} // namespace vboost::circuit
