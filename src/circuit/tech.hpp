/**
 * @file
 * Technology parameters for the 14nm-like process model.
 *
 * The paper's circuit numbers come from Cadence Spectre/Joules runs on
 * IBM's 14nm bulk-FinFET node; we do not have those tools, so every
 * component model in this library (booster, SRAM, PE, leakage, delay)
 * is an analytic stand-in parameterized by the constants below. Each
 * constant is calibrated against an anchor the paper states explicitly
 * (peak boost ~50%, ~50 mV level steps near 0.4 V, 40 pF MIM per macro,
 * booster area 0.0039 mm^2 per macro, booster leakage ~6% overhead).
 * DESIGN.md Sec. 4 records the calibration; EXPERIMENTS.md records the
 * resulting paper-vs-measured shapes.
 */

#ifndef VBOOST_CIRCUIT_TECH_HPP
#define VBOOST_CIRCUIT_TECH_HPP

#include "common/units.hpp"

namespace vboost::circuit {

/** Process/design constants consumed by every circuit-level model. */
struct TechnologyParams
{
    // ---- Transistor / delay (alpha-power law) ----
    /** Effective threshold voltage of the critical SRAM access path. */
    Volt thresholdVoltage{0.28};
    /** Velocity-saturation exponent in the alpha-power delay law. */
    double alphaPower = 1.15;
    /** Delay scale: absolute access time at the 0.8 V nominal point. */
    Second accessTimeAtNominal{1.1e-9};
    /** Nominal supply used to normalize delay/energy curves. */
    Volt nominalVdd{0.8};

    // ---- Booster component capacitances ----
    /** Gate-drain coupling capacitance contributed by one boost
     *  inverter to the boost capacitance Cb (paper Eq. 1). */
    Farad invCoupleCap{0.53e-15};
    /** Parasitic drain capacitance one boost inverter adds to the
     *  boosted node (loads the boost; the Cp term of Eq. 1). */
    Farad invParasiticCap{0.2e-15};
    /** Input/buffer capacitance switched per boost event per inverter
     *  (fully dissipated each event). */
    Farad invDriveCap{1.0e-15};
    /** Drive capacitance of the buffer chain for one booster cell's MIM
     *  capacitor (fully dissipated each event). */
    Farad mimBufferDriveCap{90.0e-15};
    /** Fraction of the charge-shared boost energy Cb*Vb*Vdd dissipated
     *  resistively per event; the remainder is recovered when the
     *  boosted node relaxes back to Vdd through the pFET. */
    double chargeShareLossFactor = 0.02;
    /** Boost-drive swing efficiency: the coupling swing saturates as
     *  eff(V) = 1 - exp(-(V - boostDriveOffset)/boostDriveScale), so
     *  boost is slightly sub-linear at very low supplies (weak drive
     *  near threshold) and approaches the full Eq.-1 value at nominal
     *  voltage. Matches Fig. 8's superlinear peak-boost growth. */
    Volt boostDriveOffset{0.05};
    /** Scale of the boost-drive swing saturation. */
    Volt boostDriveScale{0.13};

    // ---- SRAM power-grid / access capacitances ----
    /** Power-grid capacitance of one 32 Kbit (4 KB) macro's cell array:
     *  the Cmem term of Eq. 1 for array-level boosting. */
    Farad macroArrayCap{40.0e-12};
    /** Additional load when the peripheral logic (decoders, sense amps)
     *  shares the boosted rail (macro-level boosting, Sec. 3.3.2). */
    Farad macroPeriphCap{12.0e-12};
    /** Fixed routing parasitic on the boosted node. */
    Farad fixedParasiticCap{1.0e-12};
    /** Effective switched capacitance of one 64-bit access to a 64 Kbit
     *  bank (2 macros), excluding routing. */
    Farad bankAccessCap{1.2e-12};
    /** Per-access output-mux / routing adder for a banked memory, per
     *  doubling of bank count beyond one. */
    Farad bankMuxCap{0.12e-12};

    // ---- Processing element ----
    /** Effective switched capacitance of one 16-bit MAC + activation
     *  share (post-route, Cadence-Joules stand-in). */
    Farad peOpCap{2.5e-12};

    // ---- Leakage: P(V) = Pref * exp((V - Vref)/Vslope) ----
    /** Reference voltage at which leakage powers below are specified. */
    Volt leakageVref{0.5};
    /** Exponential slope of total leakage vs supply voltage. */
    Volt leakageSlope{0.38};
    /** Leakage of one 4 KB SRAM macro at the reference voltage. */
    Watt sramLeakPerMacroAtVref{2.0e-6};
    /** Leakage of the PE + control logic at the reference voltage. */
    Watt peLeakAtVref{20.0e-6};
    /** Leakage of one macro's booster circuit (cells + BIC) at Vref. */
    Watt boosterLeakPerMacroAtVref{0.15e-6};

    // ---- Areas (square microns) ----
    /** One boost inverter plus its share of input buffering. */
    Area invArea{5.5};
    /** Buffer chain for one booster cell's MIM capacitor. The MIM plate
     *  itself lives in upper metal above the macro: zero silicon area
     *  (Sec. 3.2.2). */
    Area mimBufferArea{768.0 * 5.5};
    /** Boost Input Control block, per bank. */
    Area bicArea{700.0};

    /** Default 14nm-like parameter set used throughout the benches. */
    static TechnologyParams default14nm() { return TechnologyParams{}; }
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_TECH_HPP
