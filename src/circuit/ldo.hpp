/**
 * @file
 * Low Drop-Out (LDO) linear regulator model for the dual-supply
 * baseline (paper Sec. 5.2). An LDO derives a lower logic voltage Vl
 * from the higher memory supply Vh; its overall efficiency follows
 * paper Eq. (5): eta = (Vl / Vh) * eta_i, with current efficiency
 * eta_i ~ 99% for state-of-the-art digital LDOs.
 */

#ifndef VBOOST_CIRCUIT_LDO_HPP
#define VBOOST_CIRCUIT_LDO_HPP

#include "common/units.hpp"

namespace vboost::circuit {

/** Analytic LDO efficiency/energy model. */
class LdoRegulator
{
  public:
    /** @param current_efficiency eta_i in (0, 1]. Default 0.99. */
    explicit LdoRegulator(double current_efficiency = 0.99);

    /**
     * Overall efficiency for regulating vin down to vout
     * (paper Eq. 5). @pre 0 < vout <= vin.
     */
    double efficiency(Volt vout, Volt vin) const;

    /**
     * Energy drawn from the input supply to deliver `load_energy` at
     * the output: E_in = E_load / eta.
     */
    Joule inputEnergy(Joule load_energy, Volt vout, Volt vin) const;

    /** Input power to deliver `load_power` at the output. */
    Watt inputPower(Watt load_power, Volt vout, Volt vin) const;

    /** The current-efficiency parameter eta_i. */
    double currentEfficiency() const { return etaI_; }

  private:
    double etaI_;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_LDO_HPP
