/**
 * @file
 * First-order transient simulator for the boosted supply node Vddv.
 * Stands in for the Cadence Spectre runs behind the paper's Fig. 4
 * waveforms: on a boost event the node charge-shares to Vdd + Vb within
 * a fast RC; when the boost input falls the pFET restores the node to
 * Vdd. Configuration-bit changes mid-run reproduce the four-step
 * programmable waveform of Fig. 4.
 */

#ifndef VBOOST_CIRCUIT_TRANSIENT_HPP
#define VBOOST_CIRCUIT_TRANSIENT_HPP

#include <vector>

#include "circuit/bic.hpp"
#include "circuit/booster.hpp"
#include "common/units.hpp"

namespace vboost::circuit {

/** One sampled point of a transient run. */
struct WaveformSample
{
    Second time{0.0};
    Volt vddv{0.0};
    bool boostAsserted = false;
    int level = 0;
};

/**
 * Event-driven RC step simulator for the Vddv node of one bank.
 * Drive it with a clock pattern and configuration changes; it records
 * the node voltage at a fixed sample interval.
 */
class TransientSim
{
  public:
    /**
     * @param booster the bank's booster (provides Vb per level).
     * @param vdd chip supply.
     * @param boost_tau time constant of the boost rise (charge share
     *        through the boost buffers).
     * @param restore_tau time constant of the pFET restore to Vdd.
     * @param sample_interval waveform sampling period.
     */
    TransientSim(const BoosterBank &booster, Volt vdd,
                 Second boost_tau = Second(80e-12),
                 Second restore_tau = Second(120e-12),
                 Second sample_interval = Second(100e-12));

    /** Program the configuration bits (takes effect immediately). */
    void setConfig(std::uint32_t bits);

    /** Program a boost level (first `level` cells enabled). */
    void setLevel(int level);

    /**
     * Advance the simulation with the given control inputs held for a
     * duration. Samples are appended to the waveform.
     *
     * @param cen active-low access enable (false = access).
     * @param boost_clk boost clock phase.
     * @param duration how long the inputs are held.
     */
    void run(bool cen, bool boost_clk, Second duration);

    /**
     * Convenience: simulate `cycles` full access cycles at the given
     * clock frequency (CEN low; Boost_clk high for the first half of
     * each cycle, low for the second half).
     */
    void runAccessCycles(int cycles, Hertz clock);

    /** Current node voltage. */
    Volt vddv() const { return vddv_; }

    /** Elapsed simulated time. */
    Second now() const { return now_; }

    /** Sampled waveform so far. */
    const std::vector<WaveformSample> &waveform() const { return wave_; }

    /** Number of boost (rising Boost_in) events so far. */
    int boostEvents() const { return boostEvents_; }

  private:
    void step(Second dt, Volt target);
    void sampleIfDue();

    const BoosterBank &booster_;
    BoostInputControl bic_;
    Volt vdd_;
    Second boostTau_;
    Second restoreTau_;
    Second sampleInterval_;
    Volt vddv_;
    Second now_{0.0};
    Second nextSample_{0.0};
    bool lastAsserted_ = false;
    int boostEvents_ = 0;
    std::vector<WaveformSample> wave_;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_TRANSIENT_HPP
