/**
 * @file
 * The dual-rail regulator alternatives the paper's introduction
 * surveys and dismisses one by one:
 *
 *  - buck converters: up to ~90% efficiency but need off-chip
 *    inductors (packaging cost, integration limits) [ref 2];
 *  - fully on-chip switched-capacitor converters: limited to < 80%
 *    efficiency without deep-trench capacitors, and efficient only
 *    near their discrete conversion ratios [refs 3-5];
 *  - LDOs: fully integrated and fine-grained but with efficiency
 *    proportional to Vout/Vin (circuit/ldo.hpp implements these).
 *
 * These models feed the regulator-landscape bench that positions the
 * paper's boosting against every conventional dual-rail option.
 */

#ifndef VBOOST_CIRCUIT_REGULATORS_HPP
#define VBOOST_CIRCUIT_REGULATORS_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace vboost::circuit {

/** Common interface of the dual-rail regulator models. */
class Regulator
{
  public:
    virtual ~Regulator() = default;

    /** Conversion efficiency for vin -> vout. @pre 0 < vout <= vin. */
    virtual double efficiency(Volt vout, Volt vin) const = 0;

    /** True when the regulator needs off-chip components. */
    virtual bool requiresOffChip() const = 0;

    /** Display name. */
    virtual std::string name() const = 0;

    /** Input energy to deliver `load` at the output. */
    Joule inputEnergy(Joule load, Volt vout, Volt vin) const;
};

/**
 * Inductive buck converter: high, weakly ratio-dependent efficiency,
 * but inductors live off chip.
 */
class BuckConverter : public Regulator
{
  public:
    /** @param peak_efficiency peak efficiency (default 0.90). */
    explicit BuckConverter(double peak_efficiency = 0.90);

    double efficiency(Volt vout, Volt vin) const override;
    bool requiresOffChip() const override { return true; }
    std::string name() const override { return "buck (off-chip L)"; }

  private:
    double peakEff_;
};

/**
 * Fully integrated switched-capacitor converter: efficiency peaks at
 * its discrete conversion ratios (1/3, 1/2, 2/3, 1) and degrades
 * linearly with the distance to the nearest ratio (the classic SC
 * "intrinsic charge-sharing loss"), capped below 80% on a standard
 * process.
 */
class SwitchedCapacitorConverter : public Regulator
{
  public:
    /**
     * @param peak_efficiency efficiency at an exact ratio (default
     *        0.78, "< 80%" per the paper's survey).
     * @param ratios supported conversion ratios.
     */
    explicit SwitchedCapacitorConverter(
        double peak_efficiency = 0.78,
        std::vector<double> ratios = {1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0});

    double efficiency(Volt vout, Volt vin) const override;
    bool requiresOffChip() const override { return false; }
    std::string name() const override { return "switched-capacitor"; }

    /** The supported conversion ratios. */
    const std::vector<double> &ratios() const { return ratios_; }

  private:
    double peakEff_;
    std::vector<double> ratios_;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_REGULATORS_HPP
