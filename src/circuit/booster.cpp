#include "circuit/booster.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost::circuit {

BoosterDesign::BoosterDesign(std::vector<BoosterCellSpec> cells)
    : cells_(std::move(cells))
{
    if (cells_.empty())
        fatal("BoosterDesign: at least one booster cell required");
    for (const auto &c : cells_) {
        if (c.numInverters < 0 || c.mimCap < Farad(0.0))
            fatal("BoosterDesign: negative cell parameters");
        if (c.numInverters == 0 && c.mimCap == Farad(0.0))
            fatal("BoosterDesign: empty booster cell");
    }
}

BoosterDesign
BoosterDesign::standardConfig()
{
    using namespace vboost::literals;
    return uniform(4, 64, 10.0_pF);
}

BoosterDesign
BoosterDesign::uniform(int levels, int inv_per_cell, Farad mim)
{
    if (levels <= 0)
        fatal("BoosterDesign::uniform: levels must be > 0, got ", levels);
    std::vector<BoosterCellSpec> cells(
        static_cast<std::size_t>(levels),
        BoosterCellSpec{inv_per_cell, mim});
    return BoosterDesign(std::move(cells));
}

BoosterDesign
BoosterDesign::inverterOnly(int total_inverters, int levels)
{
    if (levels <= 0 || total_inverters <= 0 || total_inverters % levels != 0) {
        fatal("BoosterDesign::inverterOnly: inverters (", total_inverters,
              ") must divide evenly into levels (", levels, ")");
    }
    return uniform(levels, total_inverters / levels, Farad(0.0));
}

BoosterDesign
BoosterDesign::scaled(int copies) const
{
    if (copies < 1)
        fatal("BoosterDesign::scaled: copies must be >= 1, got ", copies);
    std::vector<BoosterCellSpec> cells;
    cells.reserve(cells_.size());
    for (const auto &c : cells_) {
        cells.push_back(BoosterCellSpec{c.numInverters * copies,
                                        c.mimCap * copies});
    }
    return BoosterDesign(std::move(cells));
}

Farad
BoosterDesign::boostCap(int level, const TechnologyParams &tech) const
{
    if (level < 0 || level > levels())
        fatal("BoosterDesign::boostCap: level ", level, " out of [0,",
              levels(), "]");
    Farad cb(0.0);
    for (int i = 0; i < level; ++i) {
        const auto &c = cells_[static_cast<std::size_t>(i)];
        // vblint: assoc-ok(cells summed in fixed index order)
        cb += c.mimCap + tech.invCoupleCap * c.numInverters;
    }
    return cb;
}

int
BoosterDesign::enabledInverters(int level) const
{
    if (level < 0 || level > levels())
        fatal("BoosterDesign::enabledInverters: level out of range");
    int n = 0;
    for (int i = 0; i < level; ++i)
        n += cells_[static_cast<std::size_t>(i)].numInverters;
    return n;
}

int
BoosterDesign::totalInverters() const
{
    return enabledInverters(levels());
}

Farad
BoosterDesign::enabledMim(int level) const
{
    if (level < 0 || level > levels())
        fatal("BoosterDesign::enabledMim: level out of range");
    Farad mim(0.0);
    for (int i = 0; i < level; ++i)
        // vblint: assoc-ok(cells summed in fixed index order)
        mim += cells_[static_cast<std::size_t>(i)].mimCap;
    return mim;
}

Farad
BoosterDesign::parasiticLoad(const TechnologyParams &tech) const
{
    return tech.invParasiticCap * totalInverters();
}

Area
BoosterDesign::area(const TechnologyParams &tech) const
{
    // One shared MIM buffer chain serves the whole column (sized for
    // drive strength, not MIM value), so it is counted once per design
    // that uses a MIM capacitor at all.
    Area a(0.0);
    bool has_mim = false;
    for (const auto &c : cells_) {
        a += tech.invArea * c.numInverters;
        has_mim = has_mim || c.mimCap > Farad(0.0);
    }
    if (has_mim)
        a += tech.mimBufferArea;
    return a;
}

BoosterBank::BoosterBank(BoosterDesign design, Farad load_cap,
                         const TechnologyParams &tech)
    : design_(std::move(design)), loadCap_(load_cap), tech_(tech)
{
    if (loadCap_ <= Farad(0.0))
        fatal("BoosterBank: load capacitance must be positive");
}

Volt
BoosterBank::boostDelta(Volt vdd, int level) const
{
    if (level < 0 || level > levels())
        fatal("BoosterBank::boostDelta: level ", level, " out of [0,",
              levels(), "]");
    if (level == 0)
        return Volt(0.0);
    const Farad cb = design_.boostCap(level, tech_);
    const Farad total = cb + loadCap_ + design_.parasiticLoad(tech_);
    // Paper Eq. (1): Vb = Vdd * Cb / (Cb + Cmem + Cp), derated by the
    // drive-swing efficiency at low supplies.
    const double eff = std::max(
        0.0, 1.0 - std::exp(-(vdd.value() - tech_.boostDriveOffset.value()) /
                            tech_.boostDriveScale.value()));
    return Volt(vdd.value() * (cb / total) * eff);
}

Volt
BoosterBank::boostedVoltage(Volt vdd, int level) const
{
    return vdd + boostDelta(vdd, level);
}

Joule
BoosterBank::boostEventEnergy(Volt vdd, int level) const
{
    if (level < 0 || level > levels())
        fatal("BoosterBank::boostEventEnergy: level out of range");
    if (level == 0)
        return Joule(0.0);

    // Fully dissipated: input/buffer switching of enabled inverters and
    // the enabled cells' MIM buffer chains.
    Farad drive = tech_.invDriveCap * design_.enabledInverters(level);
    for (int i = 0; i < level; ++i) {
        if (design_.cells()[static_cast<std::size_t>(i)].mimCap > Farad(0.0))
            // vblint: assoc-ok(cells summed in fixed index order)
            drive += tech_.mimBufferDriveCap;
    }
    Joule e = switchingEnergy(drive, vdd);

    // Resistive fraction of the charge shuffled onto the memory rail;
    // the rest is recovered when Vddv relaxes back to Vdd.
    const Farad cb = design_.boostCap(level, tech_);
    const Volt vb = boostDelta(vdd, level);
    e += Joule(tech_.chargeShareLossFactor * cb.value() * vb.value() *
               vdd.value());
    return e;
}

Watt
BoosterBank::leakagePower(Volt vdd) const
{
    const double scale = std::exp(
        (vdd.value() - tech_.leakageVref.value()) / tech_.leakageSlope.value());
    // Reference leakage is specified for the standard (4-cell, 256-inv)
    // column; scale with inverter count for other designs.
    const double size_scale =
        static_cast<double>(design_.totalInverters()) / 256.0;
    return tech_.boosterLeakPerMacroAtVref * (scale * size_scale);
}

Area
BoosterBank::area() const
{
    return design_.area(tech_) + tech_.bicArea;
}

} // namespace vboost::circuit
