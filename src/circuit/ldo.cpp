#include "circuit/ldo.hpp"

#include "common/logging.hpp"

namespace vboost::circuit {

LdoRegulator::LdoRegulator(double current_efficiency)
    : etaI_(current_efficiency)
{
    if (etaI_ <= 0.0 || etaI_ > 1.0)
        fatal("LdoRegulator: current efficiency must be in (0,1], got ",
              etaI_);
}

double
LdoRegulator::efficiency(Volt vout, Volt vin) const
{
    if (vout <= Volt(0.0) || vin <= Volt(0.0))
        fatal("LdoRegulator::efficiency: voltages must be positive");
    if (vout > vin)
        fatal("LdoRegulator::efficiency: vout (", vout.value(),
              " V) exceeds vin (", vin.value(), " V)");
    return (vout / vin) * etaI_;
}

Joule
LdoRegulator::inputEnergy(Joule load_energy, Volt vout, Volt vin) const
{
    return load_energy / efficiency(vout, vin);
}

Watt
LdoRegulator::inputPower(Watt load_power, Volt vout, Volt vin) const
{
    return load_power / efficiency(vout, vin);
}

} // namespace vboost::circuit
