#include "circuit/latency.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost::circuit {

LatencyModel::LatencyModel(const TechnologyParams &tech,
                           double array_fraction)
    : tech_(tech), arrayFraction_(array_fraction)
{
    if (array_fraction <= 0.0 || array_fraction >= 1.0)
        fatal("LatencyModel: array_fraction must be in (0,1), got ",
              array_fraction);
    // Anchor: accessTime(nominalVdd) == accessTimeAtNominal.
    kNorm_ = 1.0;
    kNorm_ = tech_.accessTimeAtNominal.value() / rawDelay(tech_.nominalVdd);
}

double
LatencyModel::rawDelay(Volt v) const
{
    const double vt = tech_.thresholdVoltage.value();
    if (v.value() <= vt) {
        fatal("LatencyModel: supply ", v.value(),
              " V at or below threshold ", vt, " V; no functional access");
    }
    return kNorm_ * v.value() / std::pow(v.value() - vt, tech_.alphaPower);
}

Volt
LatencyModel::minCalibrated() const
{
    return Volt(tech_.thresholdVoltage.value() + kMinMargin);
}

Volt
LatencyModel::maxCalibrated() const
{
    return Volt(kMaxCalibrated);
}

Volt
LatencyModel::clampToDomain(Volt v) const
{
    const double vt = tech_.thresholdVoltage.value();
    if (v.value() <= vt) {
        fatal("LatencyModel: supply ", v.value(),
              " V at or below threshold ", vt, " V; no functional access");
    }
    const Volt lo = minCalibrated();
    const Volt hi = maxCalibrated();
    if (v < lo) {
        warnRateLimited("LatencyModel: ", v.value(),
                        " V below calibrated domain [", lo.value(), ", ",
                        hi.value(), "] V; clamping to ", lo.value(), " V");
        return lo;
    }
    if (v > hi) {
        warnRateLimited("LatencyModel: ", v.value(),
                        " V above calibrated domain [", lo.value(), ", ",
                        hi.value(), "] V; clamping to ", hi.value(), " V");
        return hi;
    }
    return v;
}

Second
LatencyModel::accessTime(Volt v) const
{
    return Second(rawDelay(clampToDomain(v)));
}

Second
LatencyModel::accessTime(Volt v_array, Volt v_periph) const
{
    return Second(arrayFraction_ * rawDelay(clampToDomain(v_array)) +
                  (1.0 - arrayFraction_) * rawDelay(clampToDomain(v_periph)));
}

double
LatencyModel::normalized(Volt v, Volt vdd) const
{
    return accessTime(v) / accessTime(vdd);
}

double
LatencyModel::normalized(Volt v_array, Volt v_periph, Volt vdd) const
{
    return accessTime(v_array, v_periph) / accessTime(vdd);
}

} // namespace vboost::circuit
