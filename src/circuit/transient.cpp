#include "circuit/transient.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost::circuit {

TransientSim::TransientSim(const BoosterBank &booster, Volt vdd,
                           Second boost_tau, Second restore_tau,
                           Second sample_interval)
    : booster_(booster), bic_(booster.levels()), vdd_(vdd),
      boostTau_(boost_tau), restoreTau_(restore_tau),
      sampleInterval_(sample_interval), vddv_(vdd)
{
    if (vdd <= Volt(0.0))
        fatal("TransientSim: vdd must be positive");
    if (boost_tau <= Second(0.0) || restore_tau <= Second(0.0) ||
        sample_interval <= Second(0.0)) {
        fatal("TransientSim: time constants must be positive");
    }
}

void
TransientSim::setConfig(std::uint32_t bits)
{
    bic_.setConfig(bits);
}

void
TransientSim::setLevel(int level)
{
    bic_.setLevel(level);
}

void
TransientSim::step(Second dt, Volt target)
{
    const Second tau = target > vddv_ ? boostTau_ : restoreTau_;
    const double alpha = 1.0 - std::exp(-dt.value() / tau.value());
    vddv_ += (target - vddv_) * alpha;
}

void
TransientSim::sampleIfDue()
{
    while (now_ >= nextSample_) {
        wave_.push_back(WaveformSample{now_, vddv_, lastAsserted_,
                                       bic_.enabledLevel()});
        // vblint: assoc-ok(single sequential sample clock)
        nextSample_ += sampleInterval_;
    }
}

void
TransientSim::run(bool cen, bool boost_clk, Second duration)
{
    const bool asserted = bic_.boostActive(cen, boost_clk);
    if (asserted && !lastAsserted_)
        ++boostEvents_;
    lastAsserted_ = asserted;

    const Volt target = asserted
        ? booster_.boostedVoltage(vdd_, bic_.enabledLevel())
        : vdd_;

    // March in sub-sample steps so the RC integration stays accurate.
    const Second step_dt(sampleInterval_.value() / 4.0);
    Second remaining = duration;
    while (remaining > Second(0.0)) {
        const Second dt = remaining < step_dt ? remaining : step_dt;
        step(dt, target);
        // vblint: assoc-ok(time advances in sequential integration steps)
        now_ += dt;
        remaining -= dt;
        sampleIfDue();
    }
}

void
TransientSim::runAccessCycles(int cycles, Hertz clock)
{
    if (cycles < 0)
        fatal("TransientSim::runAccessCycles: negative cycle count");
    const Second half(period(clock).value() / 2.0);
    for (int i = 0; i < cycles; ++i) {
        run(/*cen=*/false, /*boost_clk=*/true, half);
        run(/*cen=*/false, /*boost_clk=*/false, half);
    }
}

} // namespace vboost::circuit
