#include "circuit/bic.hpp"

#include <bit>

#include "common/logging.hpp"

namespace vboost::circuit {

BoostInputControl::BoostInputControl(int num_cells) : numCells_(num_cells)
{
    if (num_cells < 1 || num_cells > 32)
        fatal("BoostInputControl: num_cells must be in [1,32], got ",
              num_cells);
    mask_ = num_cells == 32 ? ~0u : ((1u << num_cells) - 1u);
}

void
BoostInputControl::setConfig(std::uint32_t bits)
{
    config_ = bits & mask_;
}

void
BoostInputControl::setLevel(int level)
{
    if (level < 0 || level > numCells_)
        fatal("BoostInputControl::setLevel: level ", level, " out of [0,",
              numCells_, "]");
    setConfig(level == 0 ? 0u : ((1u << level) - 1u));
}

int
BoostInputControl::enabledLevel() const
{
    return std::popcount(config_);
}

std::vector<bool>
BoostInputControl::boostInputs(bool cen, bool boost_clk) const
{
    std::vector<bool> out(static_cast<std::size_t>(numCells_));
    for (int i = 0; i < numCells_; ++i) {
        const bool enabled = (config_ >> i) & 1u;
        if (!enabled) {
            // Disabled: Boost_in stays high, nFET holds output ~Vdd.
            out[static_cast<std::size_t>(i)] = true;
        } else {
            // Enabled: low at idle; swings high to boost when an access
            // (CEN low) coincides with the high phase of Boost_clk.
            out[static_cast<std::size_t>(i)] = !cen && boost_clk;
        }
    }
    return out;
}

bool
BoostInputControl::boostActive(bool cen, bool boost_clk) const
{
    return !cen && boost_clk && config_ != 0;
}

} // namespace vboost::circuit
