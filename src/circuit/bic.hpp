/**
 * @file
 * Boost Input Control (BIC) block (paper Sec. 3.2.1). One BIC per SRAM
 * bank generates the per-booster-cell Boost_in signals from the
 * application-programmable configuration bits, the active-low bank
 * enable CEN, and the Boost_clk. A booster cell is enabled iff its
 * configuration bit is set; an enabled cell's Boost_in swings during a
 * read/write access (CEN low) in the high phase of Boost_clk, producing
 * the boost event. Disabled cells keep Boost_in high (nFET on, output
 * held near Vdd).
 */

#ifndef VBOOST_CIRCUIT_BIC_HPP
#define VBOOST_CIRCUIT_BIC_HPP

#include <cstdint>
#include <vector>

namespace vboost::circuit {

/** Combinational model of one bank's Boost Input Control block. */
class BoostInputControl
{
  public:
    /** @param num_cells number of booster cells P controlled (1..32). */
    explicit BoostInputControl(int num_cells);

    /**
     * Program the configuration register (the datapath of the
     * accelerator's set_boost_config instruction). Bits above P are
     * ignored. Bit i enables booster cell i.
     */
    void setConfig(std::uint32_t bits);

    /** Current configuration register value (masked to P bits). */
    std::uint32_t config() const { return config_; }

    /**
     * Convenience: program a *level* 0..P, i.e. enable the first
     * `level` cells ('1111' = level 4 in the paper's 4-cell example).
     */
    void setLevel(int level);

    /** Enabled cell count (popcount of the configuration register). */
    int enabledLevel() const;

    /** Number of controlled booster cells P. */
    int numCells() const { return numCells_; }

    /**
     * Evaluate the Boost_in outputs.
     *
     * @param cen active-low chip/bank enable: false = access in flight.
     * @param boost_clk high phase of the boost clock.
     * @return per-cell Boost_in values; true = input high. An enabled
     *         cell's input is low when idle and swings high (boost!)
     *         during an access with boost_clk high; a disabled cell's
     *         input is always high.
     */
    std::vector<bool> boostInputs(bool cen, bool boost_clk) const;

    /** True iff any cell boosts for the given control inputs. */
    bool boostActive(bool cen, bool boost_clk) const;

  private:
    int numCells_;
    std::uint32_t mask_;
    std::uint32_t config_ = 0;
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_BIC_HPP
