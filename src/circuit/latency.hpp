/**
 * @file
 * SRAM access-latency model vs supply voltage. Stands in for the
 * Spectre simulations behind the paper's Fig. 7 (bottom) and Fig. 9:
 * an alpha-power-law gate delay t(V) = K * V / (V - Vt)^alpha, plus a
 * two-segment access path (peripheral logic + cell array) so that
 * array-only and macro-level boosting (Sec. 3.3.2) can be compared.
 */

#ifndef VBOOST_CIRCUIT_LATENCY_HPP
#define VBOOST_CIRCUIT_LATENCY_HPP

#include "circuit/tech.hpp"
#include "common/units.hpp"

namespace vboost::circuit {

/** Alpha-power-law SRAM access latency model. */
class LatencyModel
{
  public:
    /**
     * @param tech technology constants (Vt, alpha, nominal anchor).
     * @param array_fraction fraction of the unboosted access delay
     *        attributable to the cell array (wordline/bitline/sense);
     *        the remainder is peripheral logic (decoders, drivers).
     */
    explicit LatencyModel(const TechnologyParams &tech,
                          double array_fraction = 0.6);

    /**
     * Absolute access time with the whole macro at voltage v.
     * Diverges as v approaches Vt; v must exceed Vt.
     */
    Second accessTime(Volt v) const;

    /**
     * Access time with the array at `v_array` and the peripheral logic
     * at `v_periph` (array-level boosting keeps the periphery at Vdd).
     */
    Second accessTime(Volt v_array, Volt v_periph) const;

    /** Access time normalized to the unboosted macro at `vdd`. */
    double normalized(Volt v, Volt vdd) const;

    /** Split-rail access time normalized to the unboosted macro. */
    double normalized(Volt v_array, Volt v_periph, Volt vdd) const;

    /** Fraction of delay in the array segment. */
    double arrayFraction() const { return arrayFraction_; }

    /** Lower edge of the calibrated voltage domain. The alpha-power
     *  fit is anchored against simulation between kMinMargin above
     *  threshold and kMaxCalibrated; outside that window the law has
     *  no data behind it, so queries clamp to the edge instead of
     *  extrapolating (a diagnostic is emitted via warnRateLimited).
     *  At or below threshold there is no functional access at all and
     *  accessTime() still fails hard. */
    Volt minCalibrated() const;

    /** Upper edge of the calibrated voltage domain. */
    Volt maxCalibrated() const;

    /** Headroom above Vt where the fit is considered calibrated. */
    static constexpr double kMinMargin = 0.04; // volts
    /** Absolute calibrated ceiling (well above any boost rail). */
    static constexpr double kMaxCalibrated = 1.2; // volts

  private:
    /** Unit-K alpha-power delay at voltage v. */
    double rawDelay(Volt v) const;

    /** Clamp v into the calibrated domain, warning (rate-limited)
     *  when an out-of-domain query is being clamped. */
    Volt clampToDomain(Volt v) const;

    TechnologyParams tech_;
    double arrayFraction_;
    double kNorm_; // scales rawDelay to accessTimeAtNominal
};

} // namespace vboost::circuit

#endif // VBOOST_CIRCUIT_LATENCY_HPP
