/**
 * @file
 * The Observability bundle handed to instrumented subsystems: one
 * MetricsRegistry plus one Tracer, owned by the caller (a bench or a
 * test) and attached to FaultInjectionRunner / InferenceServer /
 * ResilientMemory via their attach/export hooks. Attachment is always
 * optional — a null Observability pointer means zero instrumentation
 * overhead.
 */

#ifndef VBOOST_OBS_OBSERVABILITY_HPP
#define VBOOST_OBS_OBSERVABILITY_HPP

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vboost::obs {

/** Shared metrics + trace sink for one observed run. */
struct Observability
{
    MetricsRegistry metrics;
    Tracer trace;
};

/**
 * Publish the common/logging rate-limited warning totals into `reg`
 * as gauges `log.warn.rate_limited.emitted` / `.suppressed`. The
 * token bucket runs on the wall clock, so both are registered as
 * fingerprint-excluded: visible in artifacts, outside the determinism
 * contract (DESIGN.md §11).
 */
void recordLoggingMetrics(MetricsRegistry &reg);

} // namespace vboost::obs

#endif // VBOOST_OBS_OBSERVABILITY_HPP
