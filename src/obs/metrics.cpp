#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/logging.hpp"

namespace vboost::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
hashDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

void
hashString(std::uint64_t &h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    hashU64(h, s.size());
}

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
        return alnum || c == '.' || c == '_' || c == '-';
    });
}

} // namespace

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Sum: return "sum";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

std::string
MetricKey::render() const
{
    std::string out = name;
    if (labels.empty())
        return out;
    out.push_back('{');
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out.push_back(',');
        first = false;
        out += k;
        out.push_back('=');
        out += v;
    }
    out.push_back('}');
    return out;
}

void
Histogram::observe(double v)
{
    const auto &bounds = m_->bounds;
    std::size_t bucket = bounds.size();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (v <= bounds[i]) {
            bucket = i;
            break;
        }
    }
    m_->buckets[bucket] += 1;
    if (m_->count == 0) {
        m_->min = v;
        m_->max = v;
    } else {
        m_->min = std::min(m_->min, v);
        m_->max = std::max(m_->max, v);
    }
    m_->count += 1;
    m_->sum += v;
}

std::vector<double>
linearBounds(double lo, double hi, int n)
{
    if (n < 1)
        fatal("linearBounds: need at least one bound, got ", n);
    if (!(lo < hi) && n > 1)
        fatal("linearBounds: lo ", lo, " must be below hi ", hi);
    std::vector<double> bounds;
    bounds.reserve(static_cast<std::size_t>(n));
    if (n == 1) {
        bounds.push_back(hi);
        return bounds;
    }
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (int i = 0; i < n; ++i)
        bounds.push_back(lo + step * static_cast<double>(i));
    return bounds;
}

std::vector<double>
exponentialBounds(double lo, double factor, int n)
{
    if (n < 1)
        fatal("exponentialBounds: need at least one bound, got ", n);
    if (lo <= 0.0 || factor <= 1.0) {
        fatal("exponentialBounds: need lo > 0 and factor > 1, got ", lo,
              " / ", factor);
    }
    std::vector<double> bounds;
    bounds.reserve(static_cast<std::size_t>(n));
    double v = lo;
    for (int i = 0; i < n; ++i) {
        bounds.push_back(v);
        v *= factor;
    }
    return bounds;
}

Counter
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    return Counter(&get(MetricKind::Counter, name, labels, nullptr));
}

Sum
MetricsRegistry::sum(const std::string &name, const Labels &labels)
{
    return Sum(&get(MetricKind::Sum, name, labels, nullptr));
}

Gauge
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    return Gauge(&get(MetricKind::Gauge, name, labels, nullptr));
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds,
                           const Labels &labels)
{
    if (bounds.empty())
        fatal("metric '", name, "': histogram needs at least one bound");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        if (!(bounds[i - 1] < bounds[i])) {
            fatal("metric '", name, "': histogram bounds must be strictly",
                  " increasing (bound ", i, ": ", bounds[i - 1], " then ",
                  bounds[i], ")");
        }
    }
    return Histogram(&get(MetricKind::Histogram, name, labels, &bounds));
}

Metric &
MetricsRegistry::get(MetricKind kind, const std::string &name,
                     const Labels &labels, const std::vector<double> *bounds)
{
    if (!validName(name)) {
        fatal("invalid metric name '", name,
              "': want non-empty [a-zA-Z0-9._-]");
    }
    MetricKey key{name, labels};
    auto it = metrics_.find(key);
    if (it == metrics_.end()) {
        Metric m;
        m.kind = kind;
        if (bounds) {
            m.bounds = *bounds;
            m.buckets.assign(bounds->size() + 1, 0);
        }
        it = metrics_.emplace(std::move(key), std::move(m)).first;
    } else {
        Metric &m = it->second;
        if (m.kind != kind) {
            fatal("metric '", key.render(), "' already registered as ",
                  toString(m.kind), ", requested as ", toString(kind));
        }
        if (bounds && m.bounds != *bounds)
            fatal("metric '", key.render(), "': histogram bounds mismatch");
    }
    return it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[key, src] : other.metrics_) {
        Metric &dst = get(src.kind, key.name, key.labels,
                          src.kind == MetricKind::Histogram ? &src.bounds
                                                            : nullptr);
        switch (src.kind) {
          case MetricKind::Counter:
            dst.count += src.count;
            break;
          case MetricKind::Sum:
            // vblint: assoc-ok(key-ordered merge, callers merge per-job registries in job order per §7)
            dst.sum += src.sum;
            break;
          case MetricKind::Gauge:
            if (src.gaugeSet) {
                dst.sum = src.sum;
                dst.gaugeSet = true;
            }
            break;
          case MetricKind::Histogram:
            for (std::size_t i = 0; i < src.buckets.size(); ++i)
                dst.buckets[i] += src.buckets[i];
            if (src.count > 0) {
                dst.min = dst.count == 0 ? src.min
                                         : std::min(dst.min, src.min);
                dst.max = dst.count == 0 ? src.max
                                         : std::max(dst.max, src.max);
            }
            dst.count += src.count;
            // vblint: assoc-ok(key-ordered merge, callers merge per-job registries in job order per §7)
            dst.sum += src.sum;
            break;
        }
    }
    excluded_.insert(other.excluded_.begin(), other.excluded_.end());
}

std::uint64_t
MetricsRegistry::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &[key, m] : metrics_) {
        if (excluded_.count(key.name) > 0)
            continue;
        hashString(h, key.render());
        hashU64(h, static_cast<std::uint64_t>(m.kind));
        hashU64(h, m.count);
        hashDouble(h, m.sum);
        hashU64(h, m.gaugeSet ? 1 : 0);
        hashU64(h, m.bounds.size());
        for (const double b : m.bounds)
            hashDouble(h, b);
        for (const std::uint64_t c : m.buckets)
            hashU64(h, c);
        hashDouble(h, m.min);
        hashDouble(h, m.max);
    }
    return h;
}

void
MetricsRegistry::excludeFromFingerprint(const std::string &name)
{
    excluded_.insert(name);
}

void
MetricsRegistry::writeText(std::ostream &os) const
{
    os << "# " << metrics_.size() << " metrics, fingerprint "
       << fingerprint() << "\n";
    for (const auto &[key, m] : metrics_) {
        os << toString(m.kind) << " " << key.render() << " ";
        switch (m.kind) {
          case MetricKind::Counter:
            os << m.count;
            break;
          case MetricKind::Sum:
          case MetricKind::Gauge:
            os << m.sum;
            break;
          case MetricKind::Histogram:
            os << "count=" << m.count << " sum=" << m.sum;
            if (m.count > 0)
                os << " min=" << m.min << " max=" << m.max;
            break;
        }
        if (excluded_.count(key.name) > 0)
            os << " (unfingerprinted)";
        os << "\n";
    }
}

} // namespace vboost::obs
