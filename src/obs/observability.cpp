#include "obs/observability.hpp"

#include "common/logging.hpp"

namespace vboost::obs {

void
recordLoggingMetrics(MetricsRegistry &reg)
{
    const RateLimitedWarnStats stats = rateLimitedWarnStats();
    reg.gauge("log.warn.rate_limited.emitted")
        .set(static_cast<double>(stats.emitted));
    reg.gauge("log.warn.rate_limited.suppressed")
        .set(static_cast<double>(stats.suppressed));
    reg.excludeFromFingerprint("log.warn.rate_limited.emitted");
    reg.excludeFromFingerprint("log.warn.rate_limited.suppressed");
}

} // namespace vboost::obs
