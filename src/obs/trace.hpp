/**
 * @file
 * Deterministic span tracing on the virtual clock (DESIGN.md §11).
 * The Tracer records begin/end or pre-completed spans whose timestamps
 * are virtual ticks (the serve layer's microtick unit — exported 1:1
 * as Chrome trace microseconds), never wall-clock time, so the trace
 * of a run is a pure function of its seed: byte-identical at any
 * thread count as long as spans are recorded on serial paths or in a
 * caller-fixed order (§7).
 *
 * Exports:
 *  - writeChromeTrace(): Chrome `trace_event` JSON array format,
 *    loadable in chrome://tracing or https://ui.perfetto.dev.
 *  - writeTextSummary(): per-span-name count/total/min/max table in
 *    name order, the grep-friendly counterpart.
 */

#ifndef VBOOST_OBS_TRACE_HPP
#define VBOOST_OBS_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vboost::obs {

/**
 * Monotone virtual clock for code with no natural tick source (the
 * fault-injection trial loop): callers advance it by completed work
 * units, which keeps every derived timestamp seed-deterministic.
 */
class VirtualClock
{
  public:
    explicit VirtualClock(std::uint64_t start = 0) : now_(start) {}

    void advance(std::uint64_t n = 1) { now_ += n; }
    std::uint64_t now() const { return now_; }

  private:
    std::uint64_t now_;
};

/** One recorded trace event (Chrome "X" complete or "i" instant). */
struct TraceEvent
{
    std::string name;
    /** 'X' = complete span, 'i' = instant event. */
    char phase = 'X';
    std::uint64_t pid = 0;
    std::uint64_t tid = 0;
    /** Start timestamp in virtual ticks (exported as microseconds). */
    std::uint64_t ts = 0;
    /** Duration in virtual ticks ('X' only). */
    std::uint64_t dur = 0;
    /** True while begin()'d but not yet end()'d. */
    bool open = false;
    /** Numeric arguments, name-ordered. */
    std::map<std::string, double> numArgs;
    /** String arguments, name-ordered. */
    std::map<std::string, std::string> strArgs;
};

class Tracer
{
  public:
    /** Index of a begin()'d span, used to end() it. */
    using SpanId = std::size_t;

    /** Name the process row `pid` in the Chrome trace viewer. */
    void setProcessName(std::uint64_t pid, const std::string &name);

    /** Name the thread row (`pid`, `tid`) in the Chrome trace viewer. */
    void setThreadName(std::uint64_t pid, std::uint64_t tid,
                       const std::string &name);

    /** Open a span at tick `ts`; close it with end(). */
    SpanId begin(std::uint64_t pid, std::uint64_t tid,
                 const std::string &name, std::uint64_t ts);

    /** Close a begin()'d span at tick `ts` (>= its begin tick). */
    void end(SpanId id, std::uint64_t ts);

    /** Record an already-measured span [ts, ts + dur). */
    void complete(std::uint64_t pid, std::uint64_t tid,
                  const std::string &name, std::uint64_t ts,
                  std::uint64_t dur,
                  const std::map<std::string, double> &num_args = {},
                  const std::map<std::string, std::string> &str_args = {});

    /** Record a zero-duration marker at tick `ts`. */
    void instant(std::uint64_t pid, std::uint64_t tid,
                 const std::string &name, std::uint64_t ts,
                 const std::map<std::string, double> &num_args = {},
                 const std::map<std::string, std::string> &str_args = {});

    /** Attach a numeric argument to a still-open span. */
    void setNumArg(SpanId id, const std::string &key, double value);

    /**
     * Append another tracer's events (in their record order) after this
     * tracer's own, and fold in its process/thread names (the other
     * tracer wins on a name collision). The §7 contract mirrors
     * MetricsRegistry::merge: callers that fan work out must merge
     * per-job tracers back in job order, which makes the merged event
     * sequence — and hence the Chrome export and fingerprint() — a pure
     * function of the job order, never of scheduling.
     */
    void merge(const Tracer &other);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t eventCount() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Number of begin()'d spans that were never end()'d. */
    std::size_t openSpans() const;

    /**
     * FNV-1a digest over all events in record order (names, ids, raw
     * tick values, argument bits). Equal digests mean byte-identical
     * Chrome exports.
     */
    std::uint64_t fingerprint() const;

    /**
     * Chrome `trace_event` JSON: `{"displayTimeUnit":..,
     * "traceEvents":[..]}` with metadata (process/thread names) first,
     * then events in record order. Ticks map 1:1 to microseconds.
     * Open spans are exported with zero duration.
     */
    void writeChromeTrace(std::ostream &os) const;

    /**
     * Deterministic text table: per span name (name order) the event
     * count, total/min/max duration in ticks.
     */
    void writeTextSummary(std::ostream &os) const;

  private:
    std::vector<TraceEvent> events_;
    /** pid -> process name. */
    std::map<std::uint64_t, std::string> processNames_;
    /** (pid, tid) -> thread name. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::string>
        threadNames_;
};

/**
 * RAII span: begin() at construction, end() at destruction using the
 * clock's then-current tick. The clock must outlive the span.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer &tracer, std::uint64_t pid, std::uint64_t tid,
               const std::string &name, const VirtualClock &clock)
        : tracer_(tracer), clock_(clock),
          id_(tracer.begin(pid, tid, name, clock.now()))
    {}

    ~ScopedSpan() { tracer_.end(id_, clock_.now()); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a numeric argument before the span closes. */
    void setNumArg(const std::string &key, double value)
    { tracer_.setNumArg(id_, key, value); }

  private:
    Tracer &tracer_;
    const VirtualClock &clock_;
    Tracer::SpanId id_;
};

} // namespace vboost::obs

#endif // VBOOST_OBS_TRACE_HPP
