/**
 * @file
 * Deterministic metrics registry (DESIGN.md §11): named counters,
 * double-precision sums, gauges and fixed-bucket histograms with
 * hierarchical dotted names and ordered label sets
 * (`serve.queue.depth`, `resil.retry.count{bank=3}`). The registry is
 * the shared instrumentation substrate of the fi, resilience and serve
 * stacks, so it obeys the §7 determinism discipline end to end:
 *
 *  - **Ordered containers only.** Metrics live in a `std::map` keyed
 *    by (name, labels); labels are a `std::map` themselves. Iteration,
 *    serialization and the fingerprint are pure functions of the
 *    registry contents, never of hash-table internals.
 *  - **Mergeable in caller-fixed order.** merge() combines another
 *    registry key-ordered; callers that fan work out must merge
 *    per-job registries back in job order (the same contract as
 *    `ResilienceStats::merge`), which makes every floating-point sum
 *    order-fixed and the result thread-count invariant.
 *  - **Bitwise fingerprint.** fingerprint() is an FNV-1a digest over
 *    every metric (key order, raw double bits). Two runs with equal
 *    fingerprints produced bitwise identical telemetry — the
 *    determinism acceptance check for observability output. Metrics
 *    fed by wall-clock state (e.g. the log rate limiter) are excluded
 *    via excludeFromFingerprint() so they stay visible in artifacts
 *    without breaking the invariance contract.
 *
 * Handles (Counter/Sum/Gauge/Histogram) wrap stable `std::map` node
 * pointers, so hot paths resolve a metric once and bump it cheaply.
 */

#ifndef VBOOST_OBS_METRICS_HPP
#define VBOOST_OBS_METRICS_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace vboost::obs {

/** Ordered label set attached to a metric instance. */
using Labels = std::map<std::string, std::string>;

/** The four metric families of the registry. */
enum class MetricKind
{
    /** Monotone integer event count. */
    Counter,
    /** Monotone double accumulator (energy in joules, tick totals). */
    Sum,
    /** Last-written double sample (final queue depth, a percentile). */
    Gauge,
    /** Fixed-bucket distribution of double observations. */
    Histogram,
};

/** Display name of a metric kind ("counter"/"sum"/"gauge"/"histogram"). */
const char *toString(MetricKind kind);

/** Canonical metric identity: dotted name plus ordered labels. */
struct MetricKey
{
    std::string name;
    Labels labels;

    /** Canonical rendering: `name` or `name{k=v,k2=v2}` (key order). */
    std::string render() const;

    friend bool operator==(const MetricKey &, const MetricKey &) = default;
    friend bool
    operator<(const MetricKey &a, const MetricKey &b)
    {
        return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
    }
};

/**
 * Storage of one metric instance. Exposed read-only through
 * MetricsRegistry::metrics() so serializers (bench JSON writers) can
 * walk the registry without a visitor API; mutate only through the
 * typed handles.
 */
struct Metric
{
    MetricKind kind = MetricKind::Counter;
    /** Counter value / histogram observation count. */
    std::uint64_t count = 0;
    /** Sum value / gauge value / histogram observation sum. */
    double sum = 0.0;
    /** Whether a gauge was ever set (merge takes set gauges only). */
    bool gaugeSet = false;
    /** Histogram upper bounds, strictly increasing; the final bucket
     *  is the implicit +inf overflow. */
    std::vector<double> bounds;
    /** Per-bucket counts; size bounds.size() + 1. */
    std::vector<std::uint64_t> buckets;
    /** Smallest / largest histogram observation (count > 0 only). */
    double min = 0.0;
    double max = 0.0;
};

class MetricsRegistry;

/** Handle to a monotone integer counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { m_->count += n; }
    std::uint64_t value() const { return m_->count; }

  private:
    friend class MetricsRegistry;
    explicit Counter(Metric *m) : m_(m) {}
    Metric *m_;
};

/** Handle to a monotone double accumulator. */
class Sum
{
  public:
    void add(double v) { m_->sum += v; }
    double value() const { return m_->sum; }

  private:
    friend class MetricsRegistry;
    explicit Sum(Metric *m) : m_(m) {}
    Metric *m_;
};

/** Handle to a last-written-sample gauge. */
class Gauge
{
  public:
    void
    set(double v)
    {
        m_->sum = v;
        m_->gaugeSet = true;
    }
    double value() const { return m_->sum; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(Metric *m) : m_(m) {}
    Metric *m_;
};

/** Handle to a fixed-bucket histogram. */
class Histogram
{
  public:
    /** Record one observation into its bucket. */
    void observe(double v);

    std::uint64_t count() const { return m_->count; }
    double sum() const { return m_->sum; }
    const std::vector<std::uint64_t> &buckets() const
    { return m_->buckets; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(Metric *m) : m_(m) {}
    Metric *m_;
};

/** `n` evenly spaced upper bounds from `lo` to `hi` inclusive. */
std::vector<double> linearBounds(double lo, double hi, int n);

/** `n` geometric upper bounds: lo, lo*factor, lo*factor^2, ... */
std::vector<double> exponentialBounds(double lo, double factor, int n);

/**
 * The registry. Metrics are created on first access (name + labels +
 * kind); re-accessing an existing key with a different kind or
 * different histogram bounds is a fatal() configuration error, so two
 * subsystems can never silently alias one metric with two meanings.
 */
class MetricsRegistry
{
  public:
    /** Get-or-create a counter. */
    Counter counter(const std::string &name, const Labels &labels = {});

    /** Get-or-create a double sum. */
    Sum sum(const std::string &name, const Labels &labels = {});

    /** Get-or-create a gauge. */
    Gauge gauge(const std::string &name, const Labels &labels = {});

    /**
     * Get-or-create a histogram with the given upper bounds (must be
     * non-empty and strictly increasing; an existing histogram must
     * have identical bounds).
     */
    Histogram histogram(const std::string &name,
                        const std::vector<double> &bounds,
                        const Labels &labels = {});

    /**
     * Combine another registry into this one, key-ordered: counters,
     * sums and histograms add; set gauges overwrite. Callers own the
     * §7 obligation to merge per-job registries in job order.
     */
    void merge(const MetricsRegistry &other);

    /**
     * FNV-1a digest over every non-excluded metric: key rendering,
     * kind, and raw value bits, in key order. Equal fingerprints mean
     * bitwise identical telemetry.
     */
    std::uint64_t fingerprint() const;

    /**
     * Exclude every metric instance named `name` from fingerprint().
     * For telemetry that is legitimately wall-clock coupled (log
     * rate-limiter totals): visible in artifacts, outside the
     * determinism contract. The exclusion set merges with merge().
     */
    void excludeFromFingerprint(const std::string &name);

    /** All metrics, key-ordered (serialization surface). */
    const std::map<MetricKey, Metric> &metrics() const
    { return metrics_; }

    /** Names excluded from the fingerprint. */
    const std::set<std::string> &fingerprintExclusions() const
    { return excluded_; }

    /** Number of metric instances. */
    std::size_t size() const { return metrics_.size(); }

    bool empty() const { return metrics_.empty(); }

    /**
     * Deterministic text dump, one metric per line in key order
     * (`counter fi.trials{kind=resilient} 12`). The human-readable
     * counterpart of the benches' JSON artifact.
     */
    void writeText(std::ostream &os) const;

  private:
    Metric &get(MetricKind kind, const std::string &name,
                const Labels &labels, const std::vector<double> *bounds);

    std::map<MetricKey, Metric> metrics_;
    std::set<std::string> excluded_;
};

} // namespace vboost::obs

#endif // VBOOST_OBS_METRICS_HPP
