/**
 * @file
 * RAII attribution helpers (DESIGN.md §11) that hot paths adopt to
 * charge latency and energy to named phases without scattering manual
 * bookkeeping:
 *
 *  - ScopeTimer: measures a scope in virtual ticks against a
 *    VirtualClock and publishes `<name>.ticks` (sum) plus
 *    `<name>.calls` (counter); optionally also emits a tracer span.
 *  - EnergyScope: accumulates Joule amounts locally and publishes the
 *    total into a sum metric exactly once at scope exit, so per-item
 *    charging inside a loop costs one registry update.
 *
 * Both publish at destruction only, on the thread that created them —
 * use them on serial paths (or per-job with job-order merge) per §7.
 */

#ifndef VBOOST_OBS_SCOPE_HPP
#define VBOOST_OBS_SCOPE_HPP

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vboost::obs {

/**
 * Times a scope in virtual ticks: on destruction adds the elapsed
 * ticks to sum `<name>.ticks` and bumps counter `<name>.calls`. When a
 * tracer is given, additionally records a span named `name` over the
 * same interval.
 */
class ScopeTimer
{
  public:
    ScopeTimer(MetricsRegistry &registry, const std::string &name,
               const VirtualClock &clock, const Labels &labels = {},
               Tracer *tracer = nullptr, std::uint64_t pid = 0,
               std::uint64_t tid = 0)
        : registry_(registry), clock_(clock), name_(name), labels_(labels),
          tracer_(tracer), pid_(pid), tid_(tid), startTick_(clock.now())
    {}

    ~ScopeTimer()
    {
        const std::uint64_t now = clock_.now();
        const std::uint64_t ticks = now - startTick_;
        registry_.sum(name_ + ".ticks", labels_).add(
            static_cast<double>(ticks));
        registry_.counter(name_ + ".calls", labels_).add(1);
        if (tracer_)
            tracer_->complete(pid_, tid_, name_, startTick_, ticks);
    }

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

    /** Ticks elapsed so far. */
    std::uint64_t elapsed() const { return clock_.now() - startTick_; }

  private:
    MetricsRegistry &registry_;
    const VirtualClock &clock_;
    std::string name_;
    Labels labels_;
    Tracer *tracer_;
    std::uint64_t pid_;
    std::uint64_t tid_;
    std::uint64_t startTick_;
};

/**
 * Attributes energy to a named sum metric (joules). add() accumulates
 * locally; the destructor publishes the scope total with a single
 * registry update.
 */
class EnergyScope
{
  public:
    EnergyScope(MetricsRegistry &registry, const std::string &name,
                const Labels &labels = {})
        : registry_(registry), name_(name), labels_(labels)
    {}

    ~EnergyScope() { registry_.sum(name_, labels_).add(joules_); }

    EnergyScope(const EnergyScope &) = delete;
    EnergyScope &operator=(const EnergyScope &) = delete;

    /** Charge an energy amount to this scope. */
    void add(Joule e) { joules_ += e.value(); }

    /** Charge raw joules to this scope. */
    void addJoules(double j) { joules_ += j; }

    /** Total charged so far. */
    Joule total() const { return Joule(joules_); }

  private:
    MetricsRegistry &registry_;
    std::string name_;
    Labels labels_;
    double joules_ = 0.0;
};

} // namespace vboost::obs

#endif // VBOOST_OBS_SCOPE_HPP
