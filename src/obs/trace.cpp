#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>

#include "common/logging.hpp"

namespace vboost::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
hashDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

void
hashString(std::uint64_t &h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    hashU64(h, s.size());
}

/** Minimal JSON string escaper (control chars, quote, backslash). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

void
writeArgs(std::ostream &os, const TraceEvent &e)
{
    os << "\"args\":{";
    bool first = true;
    for (const auto &[k, v] : e.numArgs) {
        if (!first)
            os << ',';
        first = false;
        writeJsonString(os, k);
        os << ':';
        writeJsonNumber(os, v);
    }
    for (const auto &[k, v] : e.strArgs) {
        if (!first)
            os << ',';
        first = false;
        writeJsonString(os, k);
        os << ':';
        writeJsonString(os, v);
    }
    os << '}';
}

} // namespace

void
Tracer::setProcessName(std::uint64_t pid, const std::string &name)
{
    processNames_[pid] = name;
}

void
Tracer::setThreadName(std::uint64_t pid, std::uint64_t tid,
                      const std::string &name)
{
    threadNames_[{pid, tid}] = name;
}

Tracer::SpanId
Tracer::begin(std::uint64_t pid, std::uint64_t tid, const std::string &name,
              std::uint64_t ts)
{
    TraceEvent e;
    e.name = name;
    e.phase = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.open = true;
    events_.push_back(std::move(e));
    return events_.size() - 1;
}

void
Tracer::end(SpanId id, std::uint64_t ts)
{
    if (id >= events_.size())
        panic("Tracer::end: span id ", id, " out of range");
    TraceEvent &e = events_[id];
    if (!e.open)
        panic("Tracer::end: span '", e.name, "' already closed");
    if (ts < e.ts) {
        panic("Tracer::end: span '", e.name, "' ends at tick ", ts,
              " before its begin tick ", e.ts);
    }
    e.dur = ts - e.ts;
    e.open = false;
}

void
Tracer::complete(std::uint64_t pid, std::uint64_t tid,
                 const std::string &name, std::uint64_t ts,
                 std::uint64_t dur,
                 const std::map<std::string, double> &num_args,
                 const std::map<std::string, std::string> &str_args)
{
    TraceEvent e;
    e.name = name;
    e.phase = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.numArgs = num_args;
    e.strArgs = str_args;
    events_.push_back(std::move(e));
}

void
Tracer::instant(std::uint64_t pid, std::uint64_t tid,
                const std::string &name, std::uint64_t ts,
                const std::map<std::string, double> &num_args,
                const std::map<std::string, std::string> &str_args)
{
    TraceEvent e;
    e.name = name;
    e.phase = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.numArgs = num_args;
    e.strArgs = str_args;
    events_.push_back(std::move(e));
}

void
Tracer::setNumArg(SpanId id, const std::string &key, double value)
{
    if (id >= events_.size())
        panic("Tracer::setNumArg: span id ", id, " out of range");
    events_[id].numArgs[key] = value;
}

void
Tracer::merge(const Tracer &other)
{
    if (&other == this)
        panic("Tracer::merge: cannot merge a tracer into itself");
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
    for (const auto &[pid, name] : other.processNames_)
        processNames_[pid] = name;
    for (const auto &[key, name] : other.threadNames_)
        threadNames_[key] = name;
}

std::size_t
Tracer::openSpans() const
{
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [](const TraceEvent &e) { return e.open; }));
}

std::uint64_t
Tracer::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &[pid, name] : processNames_) {
        hashU64(h, pid);
        hashString(h, name);
    }
    for (const auto &[key, name] : threadNames_) {
        hashU64(h, key.first);
        hashU64(h, key.second);
        hashString(h, name);
    }
    for (const TraceEvent &e : events_) {
        hashString(h, e.name);
        hashU64(h, static_cast<std::uint64_t>(e.phase));
        hashU64(h, e.pid);
        hashU64(h, e.tid);
        hashU64(h, e.ts);
        hashU64(h, e.dur);
        hashU64(h, e.open ? 1 : 0);
        for (const auto &[k, v] : e.numArgs) {
            hashString(h, k);
            hashDouble(h, v);
        }
        for (const auto &[k, v] : e.strArgs) {
            hashString(h, k);
            hashString(h, v);
        }
    }
    return h;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (const auto &[pid, name] : processNames_) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":";
        writeJsonString(os, name);
        os << "}}";
    }
    for (const auto &[key, name] : threadNames_) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
           << ",\"tid\":" << key.second << ",\"args\":{\"name\":";
        writeJsonString(os, name);
        os << "}}";
    }
    for (const TraceEvent &e : events_) {
        sep();
        os << "{\"name\":";
        writeJsonString(os, e.name);
        os << ",\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
        if (e.phase == 'X')
            os << ",\"dur\":" << e.dur;
        if (e.phase == 'i')
            os << ",\"s\":\"t\"";
        os << ',';
        writeArgs(os, e);
        os << '}';
    }
    os << "\n]}\n";
}

void
Tracer::writeTextSummary(std::ostream &os) const
{
    struct NameStats
    {
        std::uint64_t count = 0;
        std::uint64_t totalTicks = 0;
        std::uint64_t minTicks = 0;
        std::uint64_t maxTicks = 0;
    };
    std::map<std::string, NameStats> byName;
    for (const TraceEvent &e : events_) {
        if (e.phase != 'X' && e.phase != 'i')
            continue;
        NameStats &s = byName[e.name];
        if (s.count == 0) {
            s.minTicks = e.dur;
            s.maxTicks = e.dur;
        } else {
            s.minTicks = std::min(s.minTicks, e.dur);
            s.maxTicks = std::max(s.maxTicks, e.dur);
        }
        s.count += 1;
        s.totalTicks += e.dur;
    }
    os << "# " << events_.size() << " trace events, fingerprint "
       << fingerprint() << "\n";
    for (const auto &[name, s] : byName) {
        os << name << " count=" << s.count << " total=" << s.totalTicks
           << " min=" << s.minTicks << " max=" << s.maxTicks << "\n";
    }
}

} // namespace vboost::obs
