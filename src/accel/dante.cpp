#include "accel/dante.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"

namespace vboost::accel {

Hertz
DanteConfig::frequencyAt(Volt v) const
{
    if (v < vMin || v > vMax)
        fatal("DanteConfig: supply ", v.value(), " V outside [",
              vMin.value(), ", ", vMax.value(), "] V");
    const Volt knee{0.5};
    if (v <= knee)
        return freqLow;
    // Linear interpolation between the 0.5 V and 0.8 V anchors.
    const double t = (v.value() - knee.value()) /
                     (vMax.value() - knee.value());
    return Hertz(freqLow.value() +
                 t * (freqHigh.value() - freqLow.value()));
}

DanteChip::DanteChip(DanteConfig cfg, circuit::TechnologyParams tech,
                     sram::FailureRateParams failure)
    : cfg_(cfg), tech_(tech), energy_(tech), failureModel_(failure),
      weightMem_("weight_mem", cfg.weightBanks,
                 circuit::BoosterDesign::uniform(
                     cfg.boostLevels, 64, Farad(40.0e-12 / cfg.boostLevels)),
                 tech, failureModel_, 0),
      inputMem_("input_mem", cfg.inputBanks,
                circuit::BoosterDesign::uniform(
                    cfg.boostLevels, 64, Farad(40.0e-12 / cfg.boostLevels)),
                tech, failureModel_,
                static_cast<std::uint64_t>(cfg.weightBanks) *
                    sram::SramBank::kBits)
{
}

void
DanteChip::setBoostConfig(int bank, std::uint32_t bits)
{
    weightMem_.setBoostConfig(bank, bits);
    ++counters_.setBoostConfigInstrs;
}

void
DanteChip::setWeightBoostLevel(int level)
{
    const std::uint32_t bits =
        level == 0 ? 0u : ((1u << level) - 1u);
    for (int b = 0; b < weightMem_.banks(); ++b)
        setBoostConfig(b, bits);
}

void
DanteChip::setInputBoostLevel(int level)
{
    for (int b = 0; b < inputMem_.banks(); ++b) {
        inputMem_.setBoostLevel(b, level);
        ++counters_.setBoostConfigInstrs;
    }
}

namespace {

/**
 * Stage a buffer of int16 words through a banked memory chunk by
 * chunk: write, read back through the faulty path, and return the
 * corrupted copy. Chunks reuse the memory from element 0, exactly as
 * an accelerator staging a layer larger than its local SRAM would.
 */
std::vector<std::int16_t>
stageThroughMemory(sram::BankedMemory &mem,
                   const std::vector<std::int16_t> &words, Volt vdd,
                   const sram::VulnerabilityMap &map, Rng &rng)
{
    const std::uint32_t capacity = mem.words() * 4; // int16 elements
    std::vector<std::int16_t> out;
    out.reserve(words.size());
    std::size_t pos = 0;
    while (pos < words.size()) {
        const auto n = static_cast<std::uint32_t>(
            std::min<std::size_t>(capacity, words.size() - pos));
        std::vector<std::int16_t> chunk(words.begin() +
                                            static_cast<long>(pos),
                                        words.begin() +
                                            static_cast<long>(pos + n));
        mem.writeWords16(0, chunk, vdd);
        auto read_back = mem.readWords16(0, n, vdd, map, rng);
        out.insert(out.end(), read_back.begin(), read_back.end());
        pos += n;
    }
    return out;
}

} // namespace

dnn::Tensor
DanteChip::runFcInference(dnn::Network &net, const dnn::Tensor &x,
                          Volt vdd,
                          const std::vector<int> &layer_boost_levels,
                          int input_boost_level,
                          const sram::VulnerabilityMap &map, Rng &rng)
{
    // Collect the Dense layers; other layer types (ReLU) are PE-side.
    std::vector<dnn::Dense *> dense;
    for (std::size_t i = 0; i < net.size(); ++i) {
        if (auto *d = dynamic_cast<dnn::Dense *>(&net.layer(i)))
            dense.push_back(d);
    }
    if (dense.empty())
        fatal("DanteChip::runFcInference: network has no Dense layers");
    if (layer_boost_levels.size() != dense.size())
        fatal("DanteChip::runFcInference: expected ", dense.size(),
              " boost levels, got ", layer_boost_levels.size());

    setInputBoostLevel(input_boost_level);

    // Inputs and intermediate activations round-trip the input memory.
    auto roundtrip_acts = [&](const dnn::Tensor &acts) {
        auto q = dnn::quantize(acts);
        q.words = stageThroughMemory(inputMem_, q.words, vdd, map, rng);
        return dnn::dequantize(q);
    };

    dnn::Tensor a = roundtrip_acts(x);
    const int batch = x.dim(0);

    for (std::size_t l = 0; l < dense.size(); ++l) {
        dnn::Dense &layer = *dense[l];
        // Per-layer uniform boost for all weight banks (paper Sec. 4:
        // "memory accesses within the same layer are boosted
        // uniformly").
        setWeightBoostLevel(layer_boost_levels[l]);

        auto qw = dnn::quantize(layer.weight());
        qw.words = stageThroughMemory(weightMem_, qw.words, vdd, map, rng);
        const dnn::Tensor w = dnn::dequantize(qw);

        const int in = layer.inFeatures(), out = layer.outFeatures();
        dnn::Tensor y({batch, out});
        dnn::gemm(a.data(), w.data(), y.data(), batch, in, out);
        for (int i = 0; i < batch; ++i)
            for (int j = 0; j < out; ++j)
                y.at(i, j) += layer.bias()[static_cast<std::size_t>(j)];

        const auto macs = static_cast<std::uint64_t>(batch) *
                          static_cast<std::uint64_t>(in) *
                          static_cast<std::uint64_t>(out);
        counters_.macOps += macs;
        // vblint: assoc-ok(layers accumulate in fixed network order)
        counters_.peEnergy += energy_.peOpEnergy(vdd) *
                              static_cast<double>(macs);

        if (l + 1 < dense.size()) {
            for (std::size_t e = 0; e < y.numel(); ++e)
                y[e] = std::max(y[e], 0.0f);
            counters_.activations += y.numel();
            y = roundtrip_acts(y);
        }
        a = y;
    }
    return a;
}

dnn::Tensor
DanteChip::runInference(dnn::Network &net, dnn::Network &scratch,
                        const dnn::Tensor &x, Volt vdd,
                        const std::vector<int> &weight_levels,
                        int input_boost_level,
                        const sram::VulnerabilityMap &map, Rng &rng)
{
    if (net.size() != scratch.size())
        fatal("DanteChip::runInference: net/scratch structure mismatch");
    scratch.copyParamsFrom(net);

    // Count weight layers and validate the level vector.
    std::size_t num_weight_layers = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        if (!net.layer(i).params().empty())
            ++num_weight_layers;
    }
    if (weight_levels.size() != num_weight_layers)
        fatal("DanteChip::runInference: expected ", num_weight_layers,
              " boost levels, got ", weight_levels.size());

    setInputBoostLevel(input_boost_level);

    auto roundtrip_acts = [&](const dnn::Tensor &acts) {
        auto q = dnn::quantize(acts);
        q.words = stageThroughMemory(inputMem_, q.words, vdd, map, rng);
        return dnn::dequantize(q);
    };

    dnn::Tensor a = roundtrip_acts(x);
    const auto batch = static_cast<std::uint64_t>(x.dim(0));

    std::size_t weight_idx = 0;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
        dnn::Layer &layer = scratch.layer(i);
        auto params = layer.params();
        if (!params.empty()) {
            // Activations produced since the previous trainable layer
            // live in the input memory; they round-trip it (faultily)
            // as this layer fetches its operands. The very first
            // trainable layer consumes the already-staged input batch.
            if (weight_idx > 0) {
                counters_.activations += a.numel();
                a = roundtrip_acts(a);
            }
            // Stage this layer's weights through the boosted memory.
            setWeightBoostLevel(weight_levels[weight_idx]);
            for (auto &p : params) {
                if (!p.isWeight)
                    continue; // biases are PE-resident registers
                auto q = dnn::quantize(*p.value);
                q.words =
                    stageThroughMemory(weightMem_, q.words, vdd, map,
                                       rng);
                *p.value = dnn::dequantize(q);
            }
            ++weight_idx;
        }

        const dnn::Tensor out = layer.forward(a, /*train=*/false);

        // MAC accounting for the trainable layers.
        std::uint64_t macs = 0;
        if (auto *d = dynamic_cast<dnn::Dense *>(&layer)) {
            macs = batch * static_cast<std::uint64_t>(d->inFeatures()) *
                   static_cast<std::uint64_t>(d->outFeatures());
        } else if (auto *c = dynamic_cast<dnn::Conv2d *>(&layer)) {
            macs = batch *
                   static_cast<std::uint64_t>(c->weight().numel()) *
                   static_cast<std::uint64_t>(out.dim(2)) *
                   static_cast<std::uint64_t>(out.dim(3));
        }
        if (macs > 0) {
            counters_.macOps += macs;
            // vblint: assoc-ok(layers accumulate in fixed network order)
            counters_.peEnergy +=
                energy_.peOpEnergy(vdd) * static_cast<double>(macs);
        }
        a = out;
    }
    return a;
}

void
DanteChip::resetCounters()
{
    counters_.reset();
    weightMem_.resetCounters();
    inputMem_.resetCounters();
}

Joule
DanteChip::dynamicEnergy() const
{
    const auto w = weightMem_.totalCounters();
    const auto i = inputMem_.totalCounters();
    return w.accessEnergy + w.boostEnergy + i.accessEnergy +
           i.boostEnergy + counters_.peEnergy;
}

Watt
DanteChip::leakagePower(Volt vdd) const
{
    return weightMem_.leakagePower(vdd) + inputMem_.leakagePower(vdd) +
           energy_.peLeakage(vdd);
}

Area
DanteChip::boosterArea() const
{
    return weightMem_.boosterArea() + inputMem_.boosterArea();
}

} // namespace vboost::accel
