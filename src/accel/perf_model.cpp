#include "accel/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace vboost::accel {

PerformanceModel::PerformanceModel(const core::SimContext &ctx,
                                   int num_banks, PerfConfig cfg)
    : supply_(ctx.tech, ctx.design, num_banks), latency_(ctx.tech),
      cfg_(cfg), numBanks_(num_banks)
{
    if (cfg_.numPes < 1 || cfg_.memPorts < 1)
        fatal("PerformanceModel: resources must be positive");
}

Hertz
PerformanceModel::logicFrequency(Volt v) const
{
    const Volt knee{0.5};
    const Volt vmax{0.8};
    if (v <= knee)
        return cfg_.logicFreqLow;
    const double t =
        std::min(1.0, (v.value() - knee.value()) /
                          (vmax.value() - knee.value()));
    return Hertz(cfg_.logicFreqLow.value() +
                 t * (cfg_.logicFreqAtNominal.value() -
                      cfg_.logicFreqLow.value()));
}

Hertz
PerformanceModel::maxClock(Volt vdd, int level, SupplyMode mode) const
{
    // Logic runs at vdd in Boosted/Dual mode; in Single mode the
    // shared rail is at the boosted target voltage.
    const Volt vddv = supply_.boostedVoltage(vdd, level);
    const Volt logic_v = mode == SupplyMode::Single ? vddv : vdd;
    const Hertz logic_f = logicFrequency(logic_v);

    // The SRAM must complete an access within a cycle. In Boosted and
    // Dual modes the array runs at vddv; the periphery stays at the
    // logic rail for array-level boosting.
    Second access{0.0};
    switch (mode) {
      case SupplyMode::Single:
        access = latency_.accessTime(vddv);
        break;
      case SupplyMode::Boosted:
        access = latency_.accessTime(vddv, logic_v);
        break;
      case SupplyMode::Dual:
        access = latency_.accessTime(vddv, vddv);
        break;
    }
    const Hertz mem_f(1.0 / access.value());
    return mem_f < logic_f ? mem_f : logic_f;
}

PerfResult
PerformanceModel::evaluate(const LayerActivity &activity, Volt vdd,
                           int level, SupplyMode mode) const
{
    return evaluate(activity, vdd, level, mode, RetryOverhead::none());
}

PerfResult
PerformanceModel::evaluate(const LayerActivity &activity, Volt vdd,
                           int level, SupplyMode mode,
                           const RetryOverhead &overhead) const
{
    return evaluate(activity, vdd, level, mode, overhead,
                    TimingOverhead::none());
}

PerfResult
PerformanceModel::evaluate(const LayerActivity &activity, Volt vdd,
                           int level, SupplyMode mode,
                           const RetryOverhead &overhead,
                           const TimingOverhead &timing) const
{
    if (level < 0 || level > supply_.levels())
        fatal("PerformanceModel::evaluate: level out of range");
    if (activity.macs == 0)
        fatal("PerformanceModel::evaluate: empty workload");
    if (overhead.retryRate < 0.0)
        fatal("PerformanceModel::evaluate: negative retry rate");
    if (overhead.escalatedFraction < 0.0 ||
        overhead.escalatedFraction > 1.0)
        fatal("PerformanceModel::evaluate: escalated fraction must be "
              "in [0,1]");
    if (overhead.escalatedLevel < 0 ||
        overhead.escalatedLevel > supply_.levels())
        fatal("PerformanceModel::evaluate: escalated level out of range");
    if (timing.replayRate < 0.0 || timing.bubbleRate < 0.0)
        fatal("PerformanceModel::evaluate: negative timing overhead");
    if (timing.clockStretch < 1.0)
        fatal("PerformanceModel::evaluate: clockStretch must be >= 1");
    if (timing.vLogic.value() != 0.0 && mode != SupplyMode::Boosted)
        fatal("PerformanceModel::evaluate: a separate logic rail "
              "requires Boosted mode");

    // Retries are extra real accesses on the same ports. The rate is
    // clamped to the pipeline's attempt ceiling (kMaxAttempts - 1
    // retries per access).
    const double retry_rate =
        std::min(overhead.retryRate, RetryOverhead::kMaxRetryRate);
    const auto issued = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(activity.totalAccesses()) *
        (1.0 + retry_rate)));
    // Replays are extra real PE issues; bubbles occupy PE slots
    // without issuing a MAC (flush/refill after a detection).
    const double replay_rate =
        std::min(timing.replayRate, TimingOverhead::kMaxReplayRate);
    const auto macs_issued = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(activity.macs) * (1.0 + replay_rate)));
    const auto pe_slots = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(activity.macs) *
        (1.0 + replay_rate + timing.bubbleRate)));

    PerfResult r;
    const Volt vddv = supply_.boostedVoltage(vdd, level);
    const Hertz logic_f = logicFrequency(
        mode == SupplyMode::Single ? vddv : vdd);
    const Hertz unstretched = maxClock(vdd, level, mode);
    r.memoryLimited = unstretched < logic_f;
    r.clock = Hertz(unstretched.value() / timing.clockStretch);

    // Cycles: PEs and memory ports operate concurrently; the slower
    // stream dominates.
    const std::uint64_t compute_cycles =
        (pe_slots + static_cast<std::uint64_t>(cfg_.numPes) - 1) /
        static_cast<std::uint64_t>(cfg_.numPes);
    const std::uint64_t memory_cycles =
        (issued + static_cast<std::uint64_t>(cfg_.memPorts) - 1) /
        static_cast<std::uint64_t>(cfg_.memPorts);
    r.cycles = std::max(compute_cycles, memory_cycles);
    r.runtime = Second(static_cast<double>(r.cycles) / r.clock.value());

    const energy::Workload w{issued, macs_issued};
    Joule leak_per_cycle{0.0};
    switch (mode) {
      case SupplyMode::Single:
        r.dynamicEnergy = supply_.singleSupplyDynamic(w, vddv).total();
        leak_per_cycle =
            supply_.singleSupplyLeakagePerCycle(vddv, r.clock);
        break;
      case SupplyMode::Boosted: {
        // Split the stream: the escalated slice pays its higher level.
        auto escalated = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(issued) * overhead.escalatedFraction));
        escalated = std::min(escalated, issued);
        std::vector<std::pair<std::uint64_t, int>> slices;
        slices.emplace_back(issued - escalated, level);
        if (escalated > 0)
            slices.emplace_back(escalated, overhead.escalatedLevel);
        if (timing.vLogic.value() > 0.0) {
            // The MAC datapath runs on its own underscaled rail:
            // charge PE issues there instead of at vdd.
            r.dynamicEnergy =
                supply_.boostedDynamicMulti(slices, 0, vdd).total() +
                supply_.energyModel().peOpEnergy(timing.vLogic) *
                    static_cast<double>(macs_issued);
        } else {
            r.dynamicEnergy =
                supply_.boostedDynamicMulti(slices, macs_issued, vdd)
                    .total();
        }
        leak_per_cycle = supply_.boostedLeakagePerCycle(vdd, r.clock);
        break;
      }
      case SupplyMode::Dual:
        r.dynamicEnergy =
            supply_.dualSupplyDynamic(w, vddv, vdd).total();
        leak_per_cycle =
            supply_.dualSupplyLeakagePerCycle(vddv, vdd, r.clock);
        break;
    }
    r.leakageEnergy = leak_per_cycle * static_cast<double>(r.cycles);
    r.totalEnergy = r.dynamicEnergy + r.leakageEnergy;
    r.power = power(r.totalEnergy, r.runtime);
    r.gmacsPerSecond = static_cast<double>(activity.macs) /
                       r.runtime.value() / 1e9;
    r.gopsPerWatt = 2.0 * static_cast<double>(activity.macs) /
                    r.totalEnergy.value() / 1e9;
    return r;
}

PerfResult
PerformanceModel::evaluate(const LayerActivity &activity, Volt vdd,
                           int level, SupplyMode mode,
                           const RetryOverhead &overhead,
                           const TimingOverhead &timing,
                           const RecoveryOverhead &recovery) const
{
    if (recovery.computeOverhead < 0.0 || recovery.accessOverhead < 0.0)
        fatal("PerformanceModel::evaluate: negative recovery overhead");

    // The recovery path's extra work inflates the nominal streams
    // before retries/replays apply: it executes on the same PEs and
    // ports as the base model and faults the same way.
    const double cov = std::min(recovery.computeOverhead,
                                RecoveryOverhead::kMaxOverhead);
    const double aov = std::min(recovery.accessOverhead,
                                RecoveryOverhead::kMaxOverhead);
    auto scale = [](std::uint64_t n, double factor) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(n) * factor));
    };
    LayerActivity inflated = activity;
    inflated.macs = scale(activity.macs, 1.0 + cov);
    inflated.weightAccesses = scale(activity.weightAccesses, 1.0 + aov);
    inflated.inputAccesses = scale(activity.inputAccesses, 1.0 + aov);
    inflated.psumAccesses = scale(activity.psumAccesses, 1.0 + aov);

    PerfResult r = evaluate(inflated, vdd, level, mode, overhead,
                            timing);
    // Throughput and efficiency stay per useful base-model MAC: the
    // recovery ops are overhead, not delivered work.
    r.gmacsPerSecond = static_cast<double>(activity.macs) /
                       r.runtime.value() / 1e9;
    r.gopsPerWatt = 2.0 * static_cast<double>(activity.macs) /
                    r.totalEnergy.value() / 1e9;
    return r;
}

} // namespace vboost::accel
