#include "accel/dataflow.hpp"

#include "common/logging.hpp"

namespace vboost::accel {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

double
LayerActivity::accessRatio() const
{
    if (macs == 0)
        return 0.0;
    return static_cast<double>(totalAccesses()) / static_cast<double>(macs);
}

LayerActivity &
LayerActivity::operator+=(const LayerActivity &o)
{
    macs += o.macs;
    weightAccesses += o.weightAccesses;
    inputAccesses += o.inputAccesses;
    psumAccesses += o.psumAccesses;
    return *this;
}

DanaFcModel::DanaFcModel(int elems_per_access)
    : elemsPerAccess_(elems_per_access)
{
    if (elems_per_access < 1)
        fatal("DanaFcModel: elems_per_access must be >= 1");
}

LayerActivity
DanaFcModel::layerActivity(int in_features, int out_features) const
{
    if (in_features <= 0 || out_features <= 0)
        fatal("DanaFcModel: layer dimensions must be positive");
    const auto in = static_cast<std::uint64_t>(in_features);
    const auto out = static_cast<std::uint64_t>(out_features);
    const auto e = static_cast<std::uint64_t>(elemsPerAccess_);

    LayerActivity a;
    a.macs = in * out;
    // Weights stream once per inference, packed e elements per access.
    a.weightAccesses = ceilDiv(in * out, e);
    // Each input element is fetched and broadcast to the e-wide PE
    // group once per output group (no cross-group input reuse in the
    // DANA dataflow).
    a.inputAccesses = in * ceilDiv(out, e);
    // Partial sums spill/restore once per e MACs (one packed psum
    // access per accumulation step of the e-wide group).
    a.psumAccesses = ceilDiv(in * out, e);
    return a;
}

std::vector<LayerActivity>
DanaFcModel::networkActivity(const std::vector<int> &layer_sizes) const
{
    if (layer_sizes.size() < 2)
        fatal("DanaFcModel: at least two layer sizes required");
    std::vector<LayerActivity> out;
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
        out.push_back(layerActivity(layer_sizes[i], layer_sizes[i + 1]));
    return out;
}

EyerissRsModel::EyerissRsModel(RsArrayConfig cfg) : cfg_(cfg)
{
    if (cfg_.peCols < 1 || cfg_.outChannelsPerPass < 1 ||
        cfg_.inChannelsPerPass < 1) {
        fatal("EyerissRsModel: array geometry must be positive");
    }
}

LayerActivity
EyerissRsModel::layerActivity(const dnn::ConvLayerDims &dims) const
{
    LayerActivity a;
    a.macs = dims.macs();

    // Pass structure of the RS dataflow:
    //  - p_oc: passes over output channels; the whole ifmap is re-read
    //    from the global buffer once per pass.
    const auto p_oc = ceilDiv(static_cast<std::uint64_t>(dims.outChannels),
                              static_cast<std::uint64_t>(
                                  cfg_.outChannelsPerPass));
    //  - p_h: ofmap-row strips per layer; filters are re-read from the
    //    global buffer once per strip.
    const auto p_h = ceilDiv(static_cast<std::uint64_t>(dims.outHeight),
                             static_cast<std::uint64_t>(cfg_.peCols));
    //  - p_ic: input-channel tiles; psums spill to the global buffer
    //    and are read back between consecutive tiles.
    const auto p_ic = ceilDiv(static_cast<std::uint64_t>(dims.inChannels),
                              static_cast<std::uint64_t>(
                                  cfg_.inChannelsPerPass));

    a.inputAccesses = dims.inputs() * p_oc;
    a.weightAccesses = dims.weights() * p_h;
    // Write once per tile, read back for all but the first tile.
    a.psumAccesses = dims.outputs() * (2 * p_ic - 1);
    return a;
}

std::vector<LayerActivity>
EyerissRsModel::networkActivity(
    const std::vector<dnn::ConvLayerDims> &layers) const
{
    std::vector<LayerActivity> out;
    out.reserve(layers.size());
    for (const auto &l : layers)
        out.push_back(layerActivity(l));
    return out;
}

LayerActivity
totalActivity(const std::vector<LayerActivity> &layers)
{
    LayerActivity total;
    for (const auto &l : layers)
        total += l;
    return total;
}

} // namespace vboost::accel
