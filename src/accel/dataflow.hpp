/**
 * @file
 * Dataflow activity models: the SRAM-access and MAC counts that feed
 * the paper's energy equations (Sec. 5.2, Table 3).
 *
 * - DanaFcModel: the DANA fully connected dataflow (paper ref [14]).
 *   Operands stream through the 64-bit SRAM ports at 4 int16 elements
 *   per access with no cross-output reuse of fetched weights; weights,
 *   inputs and partial sums each contribute ~0.25 accesses per MAC,
 *   reproducing the Table-3 SRAMAcc/MAC ratio of 75% for the MNIST
 *   FC-DNN.
 *
 * - EyerissRsModel: the Eyeriss Row-Stationary dataflow (paper refs
 *   [17, 18]). Global-buffer traffic is computed from the RS pass
 *   structure (output-channel passes, ofmap-row strips, input-channel
 *   tiles); with the default array geometry the AlexNet conv stack
 *   lands at the Table-3 ratio of ~1.67%.
 */

#ifndef VBOOST_ACCEL_DATAFLOW_HPP
#define VBOOST_ACCEL_DATAFLOW_HPP

#include <cstdint>
#include <vector>

#include "dnn/zoo.hpp"

namespace vboost::accel {

/** Activity of one layer under some dataflow. */
struct LayerActivity
{
    /** Multiply-accumulate operations. */
    std::uint64_t macs = 0;
    /** On-chip SRAM accesses for weights (reads). */
    std::uint64_t weightAccesses = 0;
    /** On-chip SRAM accesses for input activations. */
    std::uint64_t inputAccesses = 0;
    /** On-chip SRAM accesses for partial sums / outputs. */
    std::uint64_t psumAccesses = 0;

    /** Total SRAM accesses. */
    std::uint64_t totalAccesses() const
    { return weightAccesses + inputAccesses + psumAccesses; }

    /** SRAMAcc / MAC ratio (Table 3). */
    double accessRatio() const;

    LayerActivity &operator+=(const LayerActivity &o);
};

/** DANA-style fully connected dataflow activity model. */
class DanaFcModel
{
  public:
    /** @param elems_per_access int16 elements per 64-bit SRAM access. */
    explicit DanaFcModel(int elems_per_access = 4);

    /** Activity of one FC layer [in x out] for a single inference. */
    LayerActivity layerActivity(int in_features, int out_features) const;

    /** Activity of a full FC network given its layer sizes
     *  (e.g. {784, 256, 256, 256, 32}). */
    std::vector<LayerActivity>
    networkActivity(const std::vector<int> &layer_sizes) const;

  private:
    int elemsPerAccess_;
};

/** Geometry of the Row-Stationary PE array / tiling. */
struct RsArrayConfig
{
    /** PE columns: ofmap rows computed per strip pass. */
    int peCols = 14;
    /** Output channels computed per pass over the ifmap. */
    int outChannelsPerPass = 32;
    /** Input channels accumulated in the PE array per psum pass. */
    int inChannelsPerPass = 16;
};

/** Eyeriss Row-Stationary global-buffer activity model. */
class EyerissRsModel
{
  public:
    explicit EyerissRsModel(RsArrayConfig cfg = {});

    /** Global-buffer activity of one conv layer, single inference. */
    LayerActivity layerActivity(const dnn::ConvLayerDims &dims) const;

    /** Per-layer activity for a conv stack. */
    std::vector<LayerActivity>
    networkActivity(const std::vector<dnn::ConvLayerDims> &layers) const;

    const RsArrayConfig &config() const { return cfg_; }

  private:
    RsArrayConfig cfg_;
};

/** Sum a per-layer activity vector. */
LayerActivity totalActivity(const std::vector<LayerActivity> &layers);

} // namespace vboost::accel

#endif // VBOOST_ACCEL_DATAFLOW_HPP
