/**
 * @file
 * Throughput / energy-efficiency model: the "operations per second
 * per watt" view the paper's introduction motivates. Combines the
 * dataflow activity counts, the supply-configuration energy equations,
 * the leakage model and the latency model into end-to-end runtime,
 * power and GOPS/W for a workload at an operating point — including
 * the SRAM-latency clock ceiling of Sec. 3.3.2 (at high voltages the
 * unboosted SRAM access limits single-cycle operation; boosting the
 * array raises the achievable clock).
 */

#ifndef VBOOST_ACCEL_PERF_MODEL_HPP
#define VBOOST_ACCEL_PERF_MODEL_HPP

#include "accel/dataflow.hpp"
#include "circuit/latency.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"

namespace vboost::accel {

/** How the chip's rails are provisioned. */
enum class SupplyMode
{
    /** One rail for logic and SRAM (at the memory-reliable voltage). */
    Single,
    /** Logic at Vdd, SRAM boosted per access (this paper). */
    Boosted,
    /** SRAM rail at Vddv, logic rail LDO-derived at Vdd. */
    Dual,
};

/** Execution-resource description. */
struct PerfConfig
{
    /** Parallel multiply-accumulate units. */
    int numPes = 8;
    /** Concurrent SRAM ports (accesses per cycle). */
    int memPorts = 2;
    /** Logic frequency at the nominal 0.8 V point. */
    Hertz logicFreqAtNominal{330e6};
    /** Logic frequency at and below 0.5 V (Table 1). */
    Hertz logicFreqLow{50e6};
};

/** One evaluated operating point. */
struct PerfResult
{
    /** Clock actually used (logic limit vs SRAM-access limit). */
    Hertz clock{0.0};
    /** True when the SRAM access time, not the logic, set the clock. */
    bool memoryLimited = false;
    /** Total cycles for the workload. */
    std::uint64_t cycles = 0;
    /** Wall-clock runtime. */
    Second runtime{0.0};
    /** Dynamic energy (paper Eqs. 2/3/6). */
    Joule dynamicEnergy{0.0};
    /** Leakage energy over the runtime (Eqs. 4/7 x cycles). */
    Joule leakageEnergy{0.0};
    /** Total energy. */
    Joule totalEnergy{0.0};
    /** Average power. */
    Watt power{0.0};
    /** Throughput in giga-MACs per second. */
    double gmacsPerSecond = 0.0;
    /** Energy efficiency in GOPS/W (2 ops per MAC). */
    double gopsPerWatt = 0.0;
};

/**
 * Perturbation of the access stream by the closed-loop resilient
 * pipeline (DESIGN.md §8): retries inflate the number of SRAM accesses
 * and a fraction of them are issued at an escalated boost level.
 * Derived from measured ResilienceStats: retryRate = retries / reads,
 * escalatedFraction = escalations / (reads + retries).
 */
struct RetryOverhead
{
    /** Extra read attempts per nominal access (>= 0). Values above
     *  kMaxRetryRate are clamped by evaluate(). */
    double retryRate = 0.0;
    /** Fraction of all issued accesses at the escalated level. */
    double escalatedFraction = 0.0;
    /** Boost level of the escalated accesses. */
    int escalatedLevel = 0;

    /**
     * Physical ceiling on the retry rate: the resilient pipeline
     * issues at most ResiliencePolicy::kMaxAttempts (16) attempts per
     * access, i.e. 15 retries. A measured rate above this is a
     * counter bug upstream; evaluate() clamps rather than letting the
     * access stream grow without bound.
     */
    static constexpr double kMaxRetryRate = 15.0;

    /** No perturbation (open loop / fault-free). */
    static RetryOverhead none() { return {}; }
};

/**
 * Perturbation of the compute stream by the timing-speculative
 * datapath (DESIGN.md §13): replays inflate the number of PE issues,
 * detection bubbles occupy PE slots without issuing MACs, and the
 * datapath may run on a separate underscaled logic rail. Derived from
 * measured timing::TimingStats: replayRate = replays / ops,
 * bubbleRate = bubbleCycles / ops.
 */
struct TimingOverhead
{
    /** Extra PE issues per nominal MAC (>= 0). Values above
     *  kMaxReplayRate are clamped by evaluate(). */
    double replayRate = 0.0;
    /** Pipeline flush/refill bubble cycles per nominal MAC. */
    double bubbleRate = 0.0;
    /** Underscaled datapath rail; 0 = logic at the mode's rail.
     *  Only meaningful in Boosted mode (the paper's configuration):
     *  SRAM boosted per access, periphery at vdd, MAC datapath on its
     *  own Razor-protected rail. */
    Volt vLogic{0.0};
    /** Effective-period stretch of a worst-case-clocked datapath
     *  (>= 1; 1 for a speculative design at the target clock). */
    double clockStretch = 1.0;

    /** Physical ceiling on the replay rate: the datapath issues at
     *  most timing::ReplayPolicy::kMaxIssues (8) times per op, i.e.
     *  7 replays. */
    static constexpr double kMaxReplayRate = 7.0;

    /** No perturbation (worst-case-clocked at the mode rail). */
    static TimingOverhead none() { return {}; }
};

/**
 * Perturbation of both streams by an accuracy-recovery mechanism
 * (DESIGN.md §15): a learned input transform (or other pre/post
 * processing) adds MACs and operand traffic to every inference.
 * Derived from a recovery::PlannedRecovery's per-inference overheads:
 * computeOverhead = extraComputeOps / macs, accessOverhead =
 * extraAccesses / totalAccesses.
 */
struct RecoveryOverhead
{
    /** Extra MACs per nominal MAC (>= 0). Values above kMaxOverhead
     *  are clamped by evaluate(). */
    double computeOverhead = 0.0;
    /** Extra SRAM accesses per nominal access (>= 0). Values above
     *  kMaxOverhead are clamped by evaluate(). */
    double accessOverhead = 0.0;

    /**
     * Sanity ceiling: a recovery path costing more than 4x the base
     * network defeats its purpose (NeuralFuse-class transforms cost a
     * few percent); a larger measured ratio is a sizing bug upstream,
     * so evaluate() clamps rather than letting the streams grow
     * without bound.
     */
    static constexpr double kMaxOverhead = 4.0;

    /** No perturbation (RecoveryMode::None / MapAware-only, which
     *  changes weights, not work). */
    static RecoveryOverhead none() { return {}; }
};

/** End-to-end performance/efficiency evaluator. */
class PerformanceModel
{
  public:
    /**
     * @param ctx shared study configuration.
     * @param num_banks banks in the on-chip memory.
     * @param cfg execution resources.
     */
    PerformanceModel(const core::SimContext &ctx, int num_banks,
                     PerfConfig cfg = {});

    /**
     * Evaluate a workload at an operating point.
     *
     * @param activity total activity (MACs + SRAM accesses).
     * @param vdd logic supply (Single mode: the shared rail).
     * @param level boost level (Boosted mode) or the level whose Vddv
     *        sets the SRAM rail (Single/Dual modes); level 0 means
     *        everything at vdd.
     * @param mode supply provisioning.
     */
    PerfResult evaluate(const LayerActivity &activity, Volt vdd,
                        int level, SupplyMode mode) const;

    /**
     * Evaluate with the access stream perturbed by retry/escalation
     * overhead: memory cycles and SRAM dynamic energy grow with the
     * retry rate, and (in Boosted mode) the escalated slice of
     * accesses pays the higher boost level. The clock still follows
     * the standing level — escalated retries stretch occupancy, not
     * the cycle time.
     */
    PerfResult evaluate(const LayerActivity &activity, Volt vdd,
                        int level, SupplyMode mode,
                        const RetryOverhead &overhead) const;

    /**
     * Evaluate with both the retry-perturbed access stream and the
     * replay-perturbed compute stream: replays and bubbles inflate
     * compute cycles, replayed MACs pay PE energy, and (in Boosted
     * mode) the PE energy moves to the underscaled `timing.vLogic`
     * rail when one is set. A worst-case-clocked datapath divides the
     * clock by `timing.clockStretch`. Logic leakage stays at the mode
     * rail (the control plane does not underscale), which is slightly
     * conservative for the datapath's share.
     */
    PerfResult evaluate(const LayerActivity &activity, Volt vdd,
                        int level, SupplyMode mode,
                        const RetryOverhead &overhead,
                        const TimingOverhead &timing) const;

    /**
     * Evaluate with a recovery mechanism's extra work on top of the
     * retry- and replay-perturbed streams: the recovery MACs and
     * accesses inflate the nominal streams (and are themselves subject
     * to retries/replays — they run on the same datapath and ports),
     * while throughput and GOPS/W remain per *useful* base-model MAC,
     * so "lower Vdd + transform" competes against "higher boost" on
     * delivered work.
     */
    PerfResult evaluate(const LayerActivity &activity, Volt vdd,
                        int level, SupplyMode mode,
                        const RetryOverhead &overhead,
                        const TimingOverhead &timing,
                        const RecoveryOverhead &recovery) const;

    /**
     * Maximum clock at an operating point: the logic frequency curve
     * capped by the (possibly boosted) SRAM access time. Boosting
     * raises this ceiling at high voltages (Sec. 3.3.2).
     */
    Hertz maxClock(Volt vdd, int level, SupplyMode mode) const;

    const energy::SupplyConfigurator &supply() const { return supply_; }

  private:
    /** Logic frequency scaling (Table-1 anchors, linear between). */
    Hertz logicFrequency(Volt v) const;

    energy::SupplyConfigurator supply_;
    circuit::LatencyModel latency_;
    PerfConfig cfg_;
    int numBanks_;
};

} // namespace vboost::accel

#endif // VBOOST_ACCEL_PERF_MODEL_HPP
