/**
 * @file
 * *Dante*: the paper's DNN accelerator chip with voltage-boosted SRAMs
 * (Sec. 4, Table 1, Fig. 10). 144 KB of on-chip SRAM built from 36
 * 4 KB macros — a 128 KB weight memory (16 banks) and a 16 KB input
 * memory (2 banks) — each bank with its own booster column and Boost
 * Input Control block. The accelerator programs per-bank boost levels
 * with a set_boost_config instruction and runs fully connected
 * inference by staging each layer's int16 weights through the faulty
 * weight memory.
 */

#ifndef VBOOST_ACCEL_DANTE_HPP
#define VBOOST_ACCEL_DANTE_HPP

#include <cstdint>
#include <vector>

#include "circuit/energy_model.hpp"
#include "dnn/network.hpp"
#include "sram/banked_memory.hpp"

namespace vboost::accel {

/** Chip configuration (paper Table 1). */
struct DanteConfig
{
    /** 64 Kbit banks in the 128 KB weight memory. */
    int weightBanks = 16;
    /** 64 Kbit banks in the 16 KB input memory. */
    int inputBanks = 2;
    /** Programmable boost levels per bank. */
    int boostLevels = 4;
    /** Target frequency at nominal voltage (0.8 V). */
    Hertz freqHigh{330e6};
    /** Target frequency at and below 0.5 V. */
    Hertz freqLow{50e6};
    /** Minimum target supply. */
    Volt vMin{0.34};
    /** Maximum target supply. */
    Volt vMax{0.8};
    /** Chip dimensions: 2.05 mm x 1.13 mm. */
    Area chipArea{2.05e3 * 1.13e3};

    /** The taped-out configuration of Table 1. */
    static DanteConfig fromTable1() { return DanteConfig{}; }

    /** Total on-chip SRAM macros (36 for Table 1). */
    int totalMacros() const { return 2 * (weightBanks + inputBanks); }

    /** Weight memory capacity in bytes. */
    std::uint64_t weightBytes() const
    { return static_cast<std::uint64_t>(weightBanks) * 8192; }

    /** Input memory capacity in bytes. */
    std::uint64_t inputBytes() const
    { return static_cast<std::uint64_t>(inputBanks) * 8192; }

    /** Operating frequency at supply v (Table 1: 330 MHz at 0.8 V,
     *  50 MHz at and below 0.5 V; linear in between). */
    Hertz frequencyAt(Volt v) const;
};

/** Execution counters for one chip run. */
struct ChipCounters
{
    std::uint64_t macOps = 0;
    std::uint64_t activations = 0;
    std::uint64_t setBoostConfigInstrs = 0;
    /** Dynamic energy spent in the PEs. */
    Joule peEnergy{0.0};

    void reset() { *this = ChipCounters{}; }
};

/**
 * Behavioural + energy model of the Dante chip. Owns the two boosted
 * banked memories and a PE-array energy account; runs FC inference
 * end-to-end through the faulty SRAM read path.
 */
class DanteChip
{
  public:
    DanteChip(DanteConfig cfg, circuit::TechnologyParams tech,
              sram::FailureRateParams failure);

    /** The 128 KB weight memory. */
    sram::BankedMemory &weightMemory() { return weightMem_; }
    const sram::BankedMemory &weightMemory() const { return weightMem_; }

    /** The 16 KB input memory. */
    sram::BankedMemory &inputMemory() { return inputMem_; }
    const sram::BankedMemory &inputMemory() const { return inputMem_; }

    /**
     * set_boost_config: program one weight-memory bank's configuration
     * bits. Counts one instruction (paper Sec. 3.2.1).
     */
    void setBoostConfig(int bank, std::uint32_t bits);

    /** set_boost_config applied to every weight-memory bank. */
    void setWeightBoostLevel(int level);

    /** set_boost_config applied to every input-memory bank. */
    void setInputBoostLevel(int level);

    /**
     * Run one batch of FC inference through the chip: every Dense
     * layer's weights are quantized to int16, staged tile-by-tile
     * through the (faulty) weight memory at the layer's boost level,
     * and the batch's activations round-trip the input memory between
     * layers. ReLU is applied between hidden layers as in the float
     * network.
     *
     * @param net trained float network (read-only; a corrupted copy of
     *        each layer's weights is used for compute).
     * @param x input batch [B, features].
     * @param vdd chip supply voltage.
     * @param layer_boost_levels boost level per Dense layer (must match
     *        the number of Dense layers in `net`).
     * @param input_boost_level boost level for the input memory.
     * @param map vulnerability map (Monte-Carlo instance).
     * @param rng per-read flip randomness.
     * @return logits [B, classes] computed with corrupted operands.
     */
    dnn::Tensor runFcInference(dnn::Network &net, const dnn::Tensor &x,
                               Volt vdd,
                               const std::vector<int> &layer_boost_levels,
                               int input_boost_level,
                               const sram::VulnerabilityMap &map, Rng &rng);

    /**
     * Generic inference through the chip: works for any layer stack
     * (Dense, Conv2d, MaxPool2d, Relu, Flatten). Every weight tensor
     * is staged tile-by-tile through the faulty weight memory at its
     * layer's boost level; activations round-trip the input memory
     * between trainable layers; stateless layers execute in the PEs.
     *
     * @param net trained float network (read-only).
     * @param scratch structurally identical network that receives the
     *        corrupted weights (build with the same zoo function).
     * @param x input batch (shape per the network's first layer).
     * @param vdd chip supply voltage.
     * @param weight_levels boost level per *weight layer* (Dense or
     *        Conv2d), in layer order.
     * @param input_boost_level boost level for the input memory.
     * @param map vulnerability map.
     * @param rng per-read flip randomness.
     * @return logits computed with corrupted operands.
     */
    dnn::Tensor runInference(dnn::Network &net, dnn::Network &scratch,
                             const dnn::Tensor &x, Volt vdd,
                             const std::vector<int> &weight_levels,
                             int input_boost_level,
                             const sram::VulnerabilityMap &map, Rng &rng);

    /** Execution counters (PE side). */
    const ChipCounters &counters() const { return counters_; }

    /** Reset chip + memory counters. */
    void resetCounters();

    /** Total dynamic energy so far: memories + boosters + PEs. */
    Joule dynamicEnergy() const;

    /** Total chip leakage power at supply v (memories idle at v,
     *  boosters, PE/control logic). */
    Watt leakagePower(Volt vdd) const;

    /** Total booster + BIC silicon area on the chip. */
    Area boosterArea() const;

    const DanteConfig &config() const { return cfg_; }

  private:
    DanteConfig cfg_;
    circuit::TechnologyParams tech_;
    circuit::EnergyModel energy_;
    sram::FailureRateModel failureModel_;
    sram::BankedMemory weightMem_;
    sram::BankedMemory inputMem_;
    ChipCounters counters_;
};

} // namespace vboost::accel

#endif // VBOOST_ACCEL_DANTE_HPP
