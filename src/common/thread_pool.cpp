#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"

namespace vboost {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMu_);
        stop_.store(true, std::memory_order_release);
    }
    sleepCv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    // vblint: allow(VB004, shared worker-pool singleton; §7 discipline keeps results thread-count invariant)
    static ThreadPool pool;
    return pool;
}

unsigned
ThreadPool::resolveThreads(int requested)
{
    if (requested < 0)
        fatal("ThreadPool: negative thread count ", requested);
    if (requested == 0)
        return std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(requested);
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    const std::size_t victim =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    // pending_ rises before the task becomes visible so a concurrent
    // pop can never drive it below zero, and the sleep mutex is taken
    // so a worker between its predicate check and wait cannot miss
    // the notify.
    {
        std::lock_guard<std::mutex> sleep_lk(sleepMu_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    {
        std::lock_guard<std::mutex> lk(queues_[victim]->mu);
        queues_[victim]->tasks.push_back(std::move(task));
    }
    sleepCv_.notify_one();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto promise = std::make_shared<std::promise<void>>();
    auto future = promise->get_future();
    enqueue([promise, task = std::move(task)]() mutable {
        try {
            task();
            promise->set_value();
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    });
    return future;
}

bool
ThreadPool::tryAcquireTask(unsigned self, std::function<void()> &out)
{
    // Own queue first, newest task (LIFO keeps nested forks hot).
    {
        auto &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal oldest task from another worker (FIFO spreads big jobs).
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        auto &q = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOneTask()
{
    for (auto &qptr : queues_) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lk(qptr->mu);
            if (qptr->tasks.empty())
                continue;
            task = std::move(qptr->tasks.front());
            qptr->tasks.pop_front();
        }
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        task();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned index)
{
    for (;;) {
        std::function<void()> task;
        if (tryAcquireTask(index, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMu_);
        sleepCv_.wait(lk, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
ThreadPool::parallelFor(
    std::size_t n, const std::function<void(std::size_t, unsigned)> &body,
    unsigned max_participants)
{
    if (n == 0)
        return;
    if (max_participants == 0)
        max_participants = workerCount() + 1;
    const unsigned participants = static_cast<unsigned>(
        std::min<std::size_t>(n, max_participants));

    if (participants <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }

    // Shared region state: a dynamic index race plus first-exception
    // capture. Helpers may outlive this stack frame only until join
    // completes, so everything lives in a shared_ptr.
    struct Region
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> abort{false};
        std::atomic<unsigned> remaining{0};
        std::mutex mu;
        std::condition_variable done;
        std::exception_ptr error;
    };
    auto region = std::make_shared<Region>();
    region->remaining.store(participants - 1, std::memory_order_relaxed);

    auto participate = [region, &body, n](unsigned slot) {
        while (!region->abort.load(std::memory_order_acquire)) {
            const std::size_t i =
                region->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i, slot);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(region->mu);
                    if (!region->error)
                        region->error = std::current_exception();
                }
                region->abort.store(true, std::memory_order_release);
            }
        }
    };

    for (unsigned slot = 1; slot < participants; ++slot) {
        // Helpers must reference body only while the region is alive;
        // the joiner below cannot return before remaining hits 0, so
        // the captured reference stays valid.
        enqueue([region, participate, slot] {
            participate(slot);
            if (region->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lk(region->mu);
                region->done.notify_all();
            }
        });
    }

    participate(0);

    // Join: help drain the pool instead of blocking, so nested
    // parallelFor regions queued behind us still make progress.
    while (region->remaining.load(std::memory_order_acquire) > 0) {
        if (!tryRunOneTask()) {
            std::unique_lock<std::mutex> lk(region->mu);
            region->done.wait_for(
                lk, std::chrono::microseconds(200), [&region] {
                    return region->remaining.load(
                               std::memory_order_acquire) == 0;
                });
        }
    }

    if (region->error)
        std::rethrow_exception(region->error);
}

void
parallelFor(std::size_t n, int num_threads,
            const std::function<void(std::size_t, unsigned)> &body)
{
    const unsigned resolved = ThreadPool::resolveThreads(num_threads);
    if (resolved <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }
    ThreadPool::global().parallelFor(n, body, resolved);
}

} // namespace vboost
