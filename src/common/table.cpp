#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace vboost {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: at least one column required");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("Table::addRow: expected ", headers_.size(), " cells, got ",
              cells.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::sci(double v, int precision)
{
    std::ostringstream oss;
    oss << std::scientific << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << fraction * 100.0
        << "%";
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? " |" : " | ");
        }
        os << '\n';
    };

    auto print_rule = [&]() {
        os << '+';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-');
            os << '+';
        }
        os << '\n';
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto &row : rows_)
        print_row(row);
    print_rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            // Quote cells containing separators.
            if (row[c].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << row[c];
            }
            os << (c + 1 == row.size() ? "\n" : ",");
        }
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace vboost
