/**
 * @file
 * Status and error reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * non-fatal conditions. All functions accept a stream of arguments that
 * are formatted with operator<<.
 */

#ifndef VBOOST_COMMON_LOGGING_HPP
#define VBOOST_COMMON_LOGGING_HPP

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vboost {

/** Exception thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a pack of arguments using ostream formatting. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit a tagged message on stderr. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation. Something that should never
 * happen regardless of user input. Throws PanicError so tests can assert
 * on misuse of the library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/**
 * Report a condition that prevents continuing and is the caller's fault
 * (bad configuration, out-of-range request). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool isQuiet();

} // namespace vboost

#endif // VBOOST_COMMON_LOGGING_HPP
