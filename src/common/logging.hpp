/**
 * @file
 * Status and error reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * non-fatal conditions. All functions accept a stream of arguments that
 * are formatted with operator<<.
 */

#ifndef VBOOST_COMMON_LOGGING_HPP
#define VBOOST_COMMON_LOGGING_HPP

#include <cstdint>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vboost {

/** Exception thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a pack of arguments using ostream formatting. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit a tagged message on stderr. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation. Something that should never
 * happen regardless of user input. Throws PanicError so tests can assert
 * on misuse of the library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/**
 * Report a condition that prevents continuing and is the caller's fault
 * (bad configuration, out-of-range request). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool isQuiet();

/**
 * Classic token bucket: `tokens_per_sec` tokens refill continuously up
 * to a cap of `burst`; allow() spends one token when available. Thread
 * safe. The clock starts on the first allow() call, so a freshly built
 * bucket always grants its full burst.
 */
class TokenBucket
{
  public:
    /**
     * @param tokens_per_sec steady-state refill rate (> 0).
     * @param burst token cap; also the initial balance (>= 1).
     */
    TokenBucket(double tokens_per_sec, double burst);

    /** Spend a token against the wall clock. */
    bool allow();

    /**
     * Spend a token at an explicit timestamp (monotone seconds).
     * Deterministic variant for tests; time never moves backwards
     * (earlier timestamps are treated as "no time elapsed").
     */
    bool allow(double now_sec);

  private:
    double rate_;
    double burst_;
    double tokens_;
    double last_ = 0.0;
    bool started_ = false;
    std::mutex mutex_;
};

namespace detail {

/** Rate-limit gate of warnRateLimited(): on true, `suppressed` holds
 *  the number of messages dropped since the last one that passed. */
bool allowRateLimitedWarn(std::uint64_t &suppressed);

} // namespace detail

/**
 * warn() behind a global token bucket (default 5 msgs/sec, burst 10):
 * high-frequency event streams — per-access escalation or quarantine
 * reports — stay visible without flooding stderr. The first message
 * after a suppressed stretch reports how many were dropped.
 */
template <typename... Args>
void
warnRateLimited(Args &&...args)
{
    std::uint64_t suppressed = 0;
    if (!detail::allowRateLimitedWarn(suppressed))
        return;
    std::string msg = detail::concat(std::forward<Args>(args)...);
    if (suppressed > 0) {
        msg += detail::concat(" [", suppressed,
                              " similar messages suppressed]");
    }
    detail::emit("warn", msg);
}

/** Reconfigure the warnRateLimited() bucket (also resets its state,
 *  including the cumulative totals below). */
void setWarnRateLimit(double tokens_per_sec, double burst);

/** Cumulative warnRateLimited() traffic since start (or the last
 *  setWarnRateLimit()). The observability layer publishes these as
 *  unfingerprinted metrics so dropped warnings stay visible. */
struct RateLimitedWarnStats
{
    /** Messages that passed the rate limiter and were emitted. */
    std::uint64_t emitted = 0;
    /** Messages dropped by the rate limiter. */
    std::uint64_t suppressed = 0;
};

/** @return a snapshot of the cumulative warnRateLimited() totals. */
RateLimitedWarnStats rateLimitedWarnStats();

} // namespace vboost

#endif // VBOOST_COMMON_LOGGING_HPP
