/**
 * @file
 * Strongly-typed SI quantities for the circuit and energy models. Each
 * quantity is a tagged double; cross-unit products that the models need
 * (E = C V^2, P = E / t, Q = C V) are provided as free functions so
 * dimension errors are caught at compile time.
 *
 * Values are stored in base SI units (volts, joules, farads, seconds,
 * watts, hertz). User-defined literals give the natural magnitudes used
 * throughout the paper: 0.4_V, 10.0_pF, 50.0_MHz, 1.2_pJ.
 */

#ifndef VBOOST_COMMON_UNITS_HPP
#define VBOOST_COMMON_UNITS_HPP

#include <compare>

namespace vboost {

/** Tagged scalar quantity. Tag types are empty structs, one per unit. */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() : value_(0.0) {}
    constexpr explicit Quantity(double v) : value_(v) {}

    /** Magnitude in base SI units. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator+(Quantity o) const
    { return Quantity(value_ + o.value_); }
    constexpr Quantity operator-(Quantity o) const
    { return Quantity(value_ - o.value_); }
    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator*(double s) const
    { return Quantity(value_ * s); }
    constexpr Quantity operator/(double s) const
    { return Quantity(value_ / s); }

    /** Ratio of like quantities is dimensionless. */
    constexpr double operator/(Quantity o) const { return value_ / o.value_; }

    constexpr Quantity &operator+=(Quantity o)
    { value_ += o.value_; return *this; }
    constexpr Quantity &operator-=(Quantity o)
    { value_ -= o.value_; return *this; }
    constexpr Quantity &operator*=(double s) { value_ *= s; return *this; }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double s, Quantity<Tag> q)
{
    return q * s;
}

namespace unit_tags {
struct VoltTag {};
struct JouleTag {};
struct FaradTag {};
struct SecondTag {};
struct WattTag {};
struct HertzTag {};
struct CoulombTag {};
struct SquareMicronTag {};
} // namespace unit_tags

using Volt = Quantity<unit_tags::VoltTag>;
using Joule = Quantity<unit_tags::JouleTag>;
using Farad = Quantity<unit_tags::FaradTag>;
using Second = Quantity<unit_tags::SecondTag>;
using Watt = Quantity<unit_tags::WattTag>;
using Hertz = Quantity<unit_tags::HertzTag>;
using Coulomb = Quantity<unit_tags::CoulombTag>;
/** Silicon area, stored in square microns (the only non-SI base here). */
using Area = Quantity<unit_tags::SquareMicronTag>;

/** Switching energy of capacitance c across voltage v: E = c v^2. */
constexpr Joule
switchingEnergy(Farad c, Volt v)
{
    return Joule(c.value() * v.value() * v.value());
}

/** Charge on capacitance c at voltage v: Q = c v. */
constexpr Coulomb
charge(Farad c, Volt v)
{
    return Coulomb(c.value() * v.value());
}

/** Average power from energy per period: P = E / t. */
constexpr Watt
power(Joule e, Second t)
{
    return Watt(e.value() / t.value());
}

/** Energy from power over a duration: E = P t. */
constexpr Joule
energyFromPower(Watt p, Second t)
{
    return Joule(p.value() * t.value());
}

/** Clock period of a frequency. */
constexpr Second
period(Hertz f)
{
    return Second(1.0 / f.value());
}

inline namespace literals {

constexpr Volt operator""_V(long double v)
{ return Volt(static_cast<double>(v)); }
constexpr Volt operator""_mV(long double v)
{ return Volt(static_cast<double>(v) * 1e-3); }
constexpr Joule operator""_J(long double v)
{ return Joule(static_cast<double>(v)); }
constexpr Joule operator""_pJ(long double v)
{ return Joule(static_cast<double>(v) * 1e-12); }
constexpr Joule operator""_fJ(long double v)
{ return Joule(static_cast<double>(v) * 1e-15); }
constexpr Farad operator""_F(long double v)
{ return Farad(static_cast<double>(v)); }
constexpr Farad operator""_pF(long double v)
{ return Farad(static_cast<double>(v) * 1e-12); }
constexpr Farad operator""_fF(long double v)
{ return Farad(static_cast<double>(v) * 1e-15); }
constexpr Second operator""_s(long double v)
{ return Second(static_cast<double>(v)); }
constexpr Second operator""_ns(long double v)
{ return Second(static_cast<double>(v) * 1e-9); }
constexpr Second operator""_ps(long double v)
{ return Second(static_cast<double>(v) * 1e-12); }
constexpr Watt operator""_W(long double v)
{ return Watt(static_cast<double>(v)); }
constexpr Watt operator""_uW(long double v)
{ return Watt(static_cast<double>(v) * 1e-6); }
constexpr Watt operator""_nW(long double v)
{ return Watt(static_cast<double>(v) * 1e-9); }
constexpr Hertz operator""_Hz(long double v)
{ return Hertz(static_cast<double>(v)); }
constexpr Hertz operator""_MHz(long double v)
{ return Hertz(static_cast<double>(v) * 1e6); }
constexpr Hertz operator""_GHz(long double v)
{ return Hertz(static_cast<double>(v) * 1e9); }
constexpr Area operator""_um2(long double v)
{ return Area(static_cast<double>(v)); }
constexpr Area operator""_mm2(long double v)
{ return Area(static_cast<double>(v) * 1e6); }

} // namespace literals

} // namespace vboost

#endif // VBOOST_COMMON_UNITS_HPP
