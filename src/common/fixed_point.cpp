#include "common/fixed_point.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost {

FixedPointCodec::FixedPointCodec(int frac_bits) : fracBits_(frac_bits)
{
    if (frac_bits < 0 || frac_bits > 15)
        fatal("FixedPointCodec: fracBits must be in [0,15], got ", frac_bits);
    scale_ = std::ldexp(1.0f, frac_bits);
}

std::int16_t
FixedPointCodec::encode(float x) const
{
    const float scaled = std::nearbyint(x * scale_);
    if (scaled >= 32767.0f)
        return 32767;
    if (scaled <= -32768.0f)
        return -32768;
    return static_cast<std::int16_t>(scaled);
}

float
FixedPointCodec::decode(std::int16_t raw) const
{
    return static_cast<float>(raw) / scale_;
}

float
FixedPointCodec::maxValue() const
{
    return 32767.0f / scale_;
}

float
FixedPointCodec::minValue() const
{
    return -32768.0f / scale_;
}

std::int16_t
FixedPointCodec::flipBit(std::int16_t raw, int bit)
{
    if (bit < 0 || bit > 15)
        panic("FixedPointCodec::flipBit: bit ", bit, " out of range");
    const auto u = static_cast<std::uint16_t>(raw);
    return static_cast<std::int16_t>(u ^ (1u << bit));
}

} // namespace vboost
