#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost {

namespace {

/** SplitMix64 step, used to expand a 64-bit seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0, 1] so log() is finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split(std::uint64_t stream) const
{
    // Mix seed and stream index through SplitMix64 for decorrelation.
    std::uint64_t x = seed_;
    std::uint64_t mixed = splitMix64(x) ^ (stream * 0xd1342543de82ef95ull);
    return Rng(splitMix64(mixed));
}

double
inverseNormalCdf(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal("inverseNormalCdf: p must be in (0,1), got ", p);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    const double phigh = 1 - plow;

    double q, r;
    if (p < plow) {
        q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p > phigh) {
        q = std::sqrt(-2 * std::log(1 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

} // namespace vboost
