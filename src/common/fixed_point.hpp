/**
 * @file
 * Q-format fixed-point codec used to model how the accelerator stores
 * weights and activations in SRAM. The fault model flips bits of these
 * 16-bit words; the inference engine dequantizes the (possibly
 * corrupted) words back to float. Two's-complement with saturation on
 * encode, exactly as a hardware quantizer behaves.
 */

#ifndef VBOOST_COMMON_FIXED_POINT_HPP
#define VBOOST_COMMON_FIXED_POINT_HPP

#include <cstdint>

namespace vboost {

/**
 * 16-bit two's-complement Q-format codec with a configurable number of
 * fractional bits. For fracBits = f the representable range is
 * [-2^(15-f), 2^(15-f) - 2^-f] with resolution 2^-f.
 */
class FixedPointCodec
{
  public:
    /** @param frac_bits fractional bits, in [0, 15]. */
    explicit FixedPointCodec(int frac_bits);

    /** Encode with round-to-nearest and saturation. */
    std::int16_t encode(float x) const;

    /** Decode a raw word back to float. */
    float decode(std::int16_t raw) const;

    /** Largest representable value. */
    float maxValue() const;

    /** Smallest (most negative) representable value. */
    float minValue() const;

    /** Quantization step 2^-fracBits. */
    float resolution() const { return 1.0f / scale_; }

    /** Number of fractional bits. */
    int fracBits() const { return fracBits_; }

    /**
     * Flip bit `bit` (0 = LSB, 15 = sign) of a raw word. This is the
     * primitive the SRAM fault model applies on a faulty read.
     */
    static std::int16_t flipBit(std::int16_t raw, int bit);

  private:
    int fracBits_;
    float scale_;
};

} // namespace vboost

#endif // VBOOST_COMMON_FIXED_POINT_HPP
