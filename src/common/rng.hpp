/**
 * @file
 * Deterministic random number generation for Monte-Carlo fault-map
 * construction: xoshiro256++ core generator, SplitMix64 seeding, and the
 * distributions the fault model needs (uniform, standard normal,
 * Bernoulli). Also provides the inverse standard-normal CDF used to map
 * a bit-failure probability to a vulnerability threshold (paper Sec. 5.1).
 */

#ifndef VBOOST_COMMON_RNG_HPP
#define VBOOST_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace vboost {

/**
 * xoshiro256++ pseudo-random generator. Fast, high-quality, and with a
 * tiny state so each Monte-Carlo fault map can own an independent,
 * reproducible stream derived from (seed, map index).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal N(0, 1) via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream. Mixes the parent's seed with
     * the stream index, so fault map i is reproducible regardless of how
     * much randomness earlier maps consumed.
     */
    Rng split(std::uint64_t stream) const;

  private:
    std::array<std::uint64_t, 4> state_;
    std::uint64_t seed_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * Inverse standard-normal CDF (quantile function), Acklam's rational
 * approximation (relative error < 1.15e-9).
 *
 * Used by the fault model: a bitcell with vulnerability draw x ~ N(0,1)
 * is faulty at voltage v iff x >= inverseNormalCdf(1 - F(v)).
 *
 * @param p probability in (0, 1).
 * @return z such that P(N(0,1) <= z) = p.
 */
double inverseNormalCdf(double p);

/** Standard normal CDF Phi(z) (via std::erfc). */
double normalCdf(double z);

} // namespace vboost

#endif // VBOOST_COMMON_RNG_HPP
