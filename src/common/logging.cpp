#include "common/logging.hpp"

#include <atomic>

namespace vboost {

namespace {

std::atomic<bool> quietFlag{false};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    // panic/fatal always print; warn/inform respect the quiet flag.
    const bool is_error =
        std::string_view(tag) == "panic" || std::string_view(tag) == "fatal";
    if (!is_error && isQuiet())
        return;
    std::cerr << tag << ": " << msg << std::endl;
}

} // namespace detail
} // namespace vboost
