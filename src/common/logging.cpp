#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

namespace vboost {

namespace {

// vblint: allow(VB004, process-wide log verbosity flag; atomic and never feeds model results)
std::atomic<bool> quietFlag{false};

double
wallClockSeconds()
{
    // vblint: allow(VB001, wall clock feeds only the warn rate limiter and log volume, never model results)
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

TokenBucket::TokenBucket(double tokens_per_sec, double burst)
    : rate_(tokens_per_sec), burst_(burst), tokens_(burst)
{
    if (tokens_per_sec <= 0.0)
        fatal("TokenBucket: refill rate must be positive, got ",
              tokens_per_sec);
    if (burst < 1.0)
        fatal("TokenBucket: burst must be at least 1, got ", burst);
}

bool
TokenBucket::allow()
{
    return allow(wallClockSeconds());
}

bool
TokenBucket::allow(double now_sec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
        started_ = true;
        last_ = now_sec;
    }
    const double elapsed = std::max(0.0, now_sec - last_);
    last_ = std::max(last_, now_sec);
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    return false;
}

namespace {

// The rate-limited warn path is deliberately process-global: it guards
// log volume, is mutex-serialized, and never feeds model results.
// vblint: allow(VB004, lock guarding the process-wide warn rate limiter)
std::mutex warnLimiterMutex;
// vblint: allow(VB004, process-wide warn rate limiter; log volume only)
std::unique_ptr<TokenBucket> warnLimiter;
// vblint: allow(VB004, suppressed-warning counter; log volume only)
std::uint64_t warnSuppressed = 0;
// vblint: allow(VB004, cumulative emitted-warning counter; log volume only)
std::uint64_t warnEmittedTotal = 0;
// vblint: allow(VB004, cumulative suppressed-warning counter; log volume only)
std::uint64_t warnSuppressedTotal = 0;

constexpr double kWarnRate = 5.0;
constexpr double kWarnBurst = 10.0;

} // namespace

void
setWarnRateLimit(double tokens_per_sec, double burst)
{
    auto fresh = std::make_unique<TokenBucket>(tokens_per_sec, burst);
    std::lock_guard<std::mutex> lock(warnLimiterMutex);
    warnLimiter = std::move(fresh);
    warnSuppressed = 0;
    warnEmittedTotal = 0;
    warnSuppressedTotal = 0;
}

RateLimitedWarnStats
rateLimitedWarnStats()
{
    std::lock_guard<std::mutex> lock(warnLimiterMutex);
    return {warnEmittedTotal, warnSuppressedTotal};
}

namespace detail {

bool
allowRateLimitedWarn(std::uint64_t &suppressed)
{
    std::lock_guard<std::mutex> lock(warnLimiterMutex);
    if (!warnLimiter)
        warnLimiter = std::make_unique<TokenBucket>(kWarnRate, kWarnBurst);
    if (warnLimiter->allow()) {
        suppressed = warnSuppressed;
        warnSuppressed = 0;
        ++warnEmittedTotal;
        return true;
    }
    ++warnSuppressed;
    ++warnSuppressedTotal;
    return false;
}

void
emit(const char *tag, const std::string &msg)
{
    // panic/fatal always print; warn/inform respect the quiet flag.
    const bool is_error =
        std::string_view(tag) == "panic" || std::string_view(tag) == "fatal";
    if (!is_error && isQuiet())
        return;
    std::cerr << tag << ": " << msg << std::endl;
}

} // namespace detail
} // namespace vboost
