/**
 * @file
 * Result presentation for the bench harness: an ASCII table with
 * aligned columns (what the benches print to the terminal) and a CSV
 * writer (what they optionally dump for plotting). Both take rows of
 * heterogeneous cells that are formatted up front.
 */

#ifndef VBOOST_COMMON_TABLE_HPP
#define VBOOST_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace vboost {

/** Column-aligned ASCII table builder. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 4);

    /** Format a double in scientific notation. */
    static std::string sci(double v, int precision = 3);

    /** Format a percentage (value 0.17 -> "17.0%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vboost

#endif // VBOOST_COMMON_TABLE_HPP
