/**
 * @file
 * Small statistics toolkit for Monte-Carlo experiments: numerically
 * stable running moments (Welford), percentile summaries, and a
 * fixed-bin histogram used to report fault-map and accuracy spreads.
 */

#ifndef VBOOST_COMMON_STATS_HPP
#define VBOOST_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace vboost {

/** Streaming mean / variance / extrema via Welford's algorithm. */
class RunningStats
{
  public:
    /** Accumulate one sample. */
    void add(double x);

    /** Number of samples accumulated. */
    std::size_t count() const { return n_; }

    /** Sample mean. @pre count() > 0. */
    double mean() const;

    /** Unbiased sample variance. Returns 0 when count() < 2. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample. @pre count() > 0. */
    double min() const;

    /** Largest sample. @pre count() > 0. */
    double max() const;

    /** Standard error of the mean (stddev / sqrt(n)). */
    double stderrOfMean() const;

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a sample set using linear interpolation between order
 * statistics. The input is copied and sorted.
 *
 * @param samples sample values (non-empty).
 * @param p percentile in [0, 100].
 */
double percentile(std::vector<double> samples, double p);

/** Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    /** @pre bins > 0 and hi > lo. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Accumulate one sample (clamped into the range). */
    void add(double x);

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const;

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total samples accumulated. */
    std::size_t total() const { return total_; }

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace vboost

#endif // VBOOST_COMMON_STATS_HPP
