/**
 * @file
 * Work-stealing thread pool for the Monte-Carlo experiment engine.
 *
 * Each worker owns a deque: the owner pushes and pops at the back
 * (LIFO, cache-friendly for nested forks) while idle workers steal
 * from the front (FIFO, oldest-first). External submissions are
 * distributed round-robin across the worker deques.
 *
 * parallelFor() is the primitive the fault-injection runner builds on:
 * the calling thread *participates* (it never just blocks), helper
 * tasks are enqueued for the remaining participants, and a blocked
 * joiner steals unrelated pool work while it waits. Because every
 * participant — including nested ones spawned from inside a pool
 * worker — makes progress on its own region, nested parallelFor calls
 * cannot deadlock even when every pool thread is busy.
 *
 * Scheduling is dynamic (participants race on an atomic index), so
 * callers that need determinism must make each index's work
 * self-contained and reduce results by index afterwards; see
 * fi::FaultInjectionRunner for the canonical pattern.
 */

#ifndef VBOOST_COMMON_THREAD_POOL_HPP
#define VBOOST_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vboost {

/** Work-stealing pool of long-lived worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads worker thread count; 0 = hardware_concurrency.
     *        A machine reporting 0/1 hardware threads still gets one
     *        worker so submit() always makes progress.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned workerCount() const
    { return static_cast<unsigned>(workers_.size()); }

    /**
     * Process-wide shared pool (hardware_concurrency workers),
     * constructed on first use. All Monte-Carlo engines share it so
     * nested experiments cannot oversubscribe the machine.
     */
    static ThreadPool &global();

    /**
     * Resolve a user-facing thread-count knob: 0 = all hardware
     * threads, otherwise the requested count (minimum 1).
     */
    static unsigned resolveThreads(int requested);

    /**
     * Enqueue one task. The future carries any exception the task
     * throws.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i, slot) for every i in [0, n), using up to
     * max_participants concurrent participants (calling thread
     * included; 0 = one per worker plus the caller). Each concurrently
     * executing participant has a distinct slot in
     * [0, max_participants), so callers can hand each one exclusive
     * scratch state. Iterations are claimed dynamically; the first
     * exception is rethrown on the caller after all participants
     * drain.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, unsigned)> &body,
                     unsigned max_participants = 0);

  private:
    /** One worker's deque; owner pops back, thieves pop front. */
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    /** Worker main loop. */
    void workerLoop(unsigned index);

    /** Pop from own back, else steal from another front. */
    bool tryAcquireTask(unsigned self, std::function<void()> &out);

    /** Steal-and-run one queued task from any worker (joiner help). */
    bool tryRunOneTask();

    void enqueue(std::function<void()> task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<std::size_t> pending_{0};
    std::atomic<bool> stop_{false};
    std::mutex sleepMu_;
    std::condition_variable sleepCv_;
};

/**
 * Convenience wrapper over ThreadPool::global(): run body(i, slot)
 * for i in [0, n) on num_threads participants (0 = all hardware
 * threads). num_threads == 1 runs inline with no pool involvement.
 */
void parallelFor(std::size_t n, int num_threads,
                 const std::function<void(std::size_t, unsigned)> &body);

} // namespace vboost

#endif // VBOOST_COMMON_THREAD_POOL_HPP
