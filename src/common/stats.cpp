#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    if (n_ == 0)
        panic("RunningStats::mean on empty accumulator");
    return mean_;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    if (n_ == 0)
        panic("RunningStats::min on empty accumulator");
    return min_;
}

double
RunningStats::max() const
{
    if (n_ == 0)
        panic("RunningStats::max on empty accumulator");
    return max_;
}

double
RunningStats::stderrOfMean() const
{
    if (n_ == 0)
        panic("RunningStats::stderrOfMean on empty accumulator");
    return stddev() / std::sqrt(static_cast<double>(n_));
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel combination of moments.
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        fatal("percentile: empty sample set");
    if (p < 0.0 || p > 100.0)
        fatal("percentile: p must be in [0,100], got ", p);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        fatal("Histogram: bins must be > 0");
    if (!(hi > lo))
        fatal("Histogram: hi must exceed lo");
}

void
Histogram::add(double x)
{
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binCount: bin ", i, " out of range");
    return counts_[i];
}

double
Histogram::binLow(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binLow: bin ", i, " out of range");
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

} // namespace vboost
