#include "resilience/spare_table.hpp"

#include "common/logging.hpp"

namespace vboost::resilience {

SpareRowTable::SpareRowTable(int capacity) : capacity_(capacity)
{
    if (capacity < 0)
        fatal("SpareRowTable: negative capacity ", capacity);
    rows_.reserve(static_cast<std::size_t>(capacity));
}

int
SpareRowTable::find(std::uint32_t addr) const
{
    for (std::size_t s = 0; s < rows_.size(); ++s) {
        if (rows_[s].addr == addr)
            return static_cast<int>(s);
    }
    return -1;
}

const SpareRow &
SpareRowTable::row(int slot) const
{
    if (slot < 0 || slot >= used())
        panic("SpareRowTable: slot ", slot, " out of range");
    return rows_[static_cast<std::size_t>(slot)];
}

SpareRow &
SpareRowTable::row(int slot)
{
    if (slot < 0 || slot >= used())
        panic("SpareRowTable: slot ", slot, " out of range");
    return rows_[static_cast<std::size_t>(slot)];
}

int
SpareRowTable::remap(std::uint32_t addr, std::uint64_t data,
                     std::uint8_t check)
{
    if (full() || find(addr) >= 0)
        return -1;
    rows_.push_back(SpareRow{addr, data, check});
    return used() - 1;
}

std::uint64_t
SpareRowTable::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    for (const auto &r : rows_) {
        h = (h ^ r.addr) * kPrime;
        h = (h ^ r.data) * kPrime;
        h = (h ^ r.check) * kPrime;
    }
    return h;
}

} // namespace vboost::resilience
