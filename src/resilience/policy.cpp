#include "resilience/policy.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vboost::resilience {

int
ResiliencePolicy::attemptLevel(int standing, int attempt,
                               int max_level) const
{
    if (attempt <= 0 || mode == AccessPolicyMode::OpenLoop)
        return standing;
    switch (escalation) {
      case EscalationPolicy::Hold:
        return standing;
      case EscalationPolicy::StepUp:
        return std::min(standing + attempt, max_level);
      case EscalationPolicy::MaxOut:
        return max_level;
    }
    panic("ResiliencePolicy::attemptLevel: bad escalation policy");
}

void
ResiliencePolicy::validate(int max_level) const
{
    if (retryBudget < 0 || retryBudget >= kMaxAttempts)
        fatal("ResiliencePolicy: retry budget must be in [0,",
              kMaxAttempts - 1, "], got ", retryBudget);
    if (startLevel < 0 || startLevel > max_level)
        fatal("ResiliencePolicy: start level ", startLevel,
              " out of [0,", max_level, "]");
    if (spareRows < 0)
        fatal("ResiliencePolicy: negative spare row count ", spareRows);
    if (ewmaAlpha <= 0.0 || ewmaAlpha > 1.0)
        fatal("ResiliencePolicy: EWMA alpha must be in (0,1], got ",
              ewmaAlpha);
    if (raiseThreshold <= 0.0 || raiseThreshold > 1.0)
        fatal("ResiliencePolicy: raise threshold must be in (0,1], got ",
              raiseThreshold);
    if (quarantineThreshold < 1)
        fatal("ResiliencePolicy: quarantine threshold must be >= 1, got ",
              quarantineThreshold);
}

ResiliencePolicy
ResiliencePolicy::openLoop(int level)
{
    ResiliencePolicy p;
    p.mode = AccessPolicyMode::OpenLoop;
    p.retryBudget = 0;
    p.spareRows = 0;
    p.startLevel = level;
    return p;
}

ResiliencePolicy
ResiliencePolicy::closedLoop(int retry_budget, EscalationPolicy esc,
                             int spare_rows)
{
    ResiliencePolicy p;
    p.mode = AccessPolicyMode::ClosedLoop;
    p.retryBudget = retry_budget;
    p.escalation = esc;
    p.spareRows = spare_rows;
    return p;
}

std::string
ResiliencePolicy::name() const
{
    if (mode == AccessPolicyMode::OpenLoop)
        return "open/L" + std::to_string(startLevel);
    return std::string("closed/r") + std::to_string(retryBudget) + "/" +
           toString(escalation) + "/s" + std::to_string(spareRows);
}

const char *
toString(AccessPolicyMode mode)
{
    return mode == AccessPolicyMode::OpenLoop ? "open" : "closed";
}

const char *
toString(EscalationPolicy esc)
{
    switch (esc) {
      case EscalationPolicy::Hold:
        return "hold";
      case EscalationPolicy::StepUp:
        return "stepup";
      case EscalationPolicy::MaxOut:
        return "maxout";
    }
    return "?";
}

} // namespace vboost::resilience
