/**
 * @file
 * Per-bank error-rate monitor: an exponentially weighted moving
 * average of ECC error events per access, one accumulator per bank.
 * When a bank's EWMA crosses the raise threshold, the monitor signals
 * a standing boost-level raise (the closed-loop analog of the canary
 * controller's one-shot decision — see DESIGN.md §8). The EWMA resets
 * after a raise so the bank is re-observed at its new level instead of
 * being dragged up by stale history.
 */

#ifndef VBOOST_RESILIENCE_MONITOR_HPP
#define VBOOST_RESILIENCE_MONITOR_HPP

#include <cstdint>
#include <vector>

namespace vboost::resilience {

/** EWMA error-rate tracker with a raise trigger, one slot per bank. */
class BankErrorMonitor
{
  public:
    /**
     * @param num_banks banks tracked.
     * @param alpha EWMA smoothing factor in (0, 1].
     * @param raise_threshold EWMA value that triggers a raise.
     */
    BankErrorMonitor(int num_banks, double alpha, double raise_threshold);

    /**
     * Record one access. @return true when this observation pushes the
     * bank's EWMA over the raise threshold (the EWMA is then reset so
     * the next raise needs fresh evidence at the new level).
     */
    bool recordAccess(int bank, bool error);

    /** Current EWMA error rate of a bank. */
    double rate(int bank) const;

    /** Raises signalled so far (across all banks). */
    std::uint64_t raises() const { return raises_; }

    /** Accesses recorded so far (across all banks). */
    std::uint64_t accesses() const { return accesses_; }

    /** Forget all history (fresh Monte-Carlo map). */
    void reset();

  private:
    double alpha_;
    double threshold_;
    std::vector<double> ewma_;
    std::uint64_t raises_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace vboost::resilience

#endif // VBOOST_RESILIENCE_MONITOR_HPP
