#include "resilience/monitor.hpp"

#include "common/logging.hpp"

namespace vboost::resilience {

BankErrorMonitor::BankErrorMonitor(int num_banks, double alpha,
                                   double raise_threshold)
    : alpha_(alpha), threshold_(raise_threshold),
      ewma_(static_cast<std::size_t>(num_banks), 0.0)
{
    if (num_banks < 1)
        fatal("BankErrorMonitor: at least one bank required");
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("BankErrorMonitor: alpha must be in (0,1], got ", alpha);
    if (raise_threshold <= 0.0)
        fatal("BankErrorMonitor: raise threshold must be positive");
}

bool
BankErrorMonitor::recordAccess(int bank, bool error)
{
    if (bank < 0 || bank >= static_cast<int>(ewma_.size()))
        panic("BankErrorMonitor: bank ", bank, " out of range");
    ++accesses_;
    double &e = ewma_[static_cast<std::size_t>(bank)];
    e = (1.0 - alpha_) * e + (error ? alpha_ : 0.0);
    if (e > threshold_) {
        e = 0.0;
        ++raises_;
        return true;
    }
    return false;
}

double
BankErrorMonitor::rate(int bank) const
{
    if (bank < 0 || bank >= static_cast<int>(ewma_.size()))
        panic("BankErrorMonitor: bank ", bank, " out of range");
    return ewma_[static_cast<std::size_t>(bank)];
}

void
BankErrorMonitor::reset()
{
    for (double &e : ewma_)
        e = 0.0;
    raises_ = 0;
    accesses_ = 0;
}

} // namespace vboost::resilience
