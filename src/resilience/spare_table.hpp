/**
 * @file
 * Spare-row remap table: a small set of reserve rows a memory can
 * quarantine persistently failing rows into (the row-redundancy
 * mechanism of the paper's related work [36], here deployed *at
 * runtime* by the closed-loop pipeline instead of at test time).
 * Sparing works because a quarantined row is a known-bad outlier
 * under the current fault map while a spare row is a statistically
 * typical one: the remap trades a row with specific faulty cells for
 * a fresh draw from the same cell population.
 */

#ifndef VBOOST_RESILIENCE_SPARE_TABLE_HPP
#define VBOOST_RESILIENCE_SPARE_TABLE_HPP

#include <cstdint>
#include <vector>

namespace vboost::resilience {

/** One quarantined row: its original address and the spare's image. */
struct SpareRow
{
    /** Flat word address the spare replaces. */
    std::uint32_t addr = 0;
    /** 64-bit data image copied into the spare at quarantine time. */
    std::uint64_t data = 0;
    /** SECDED check bits of the image. */
    std::uint8_t check = 0;
};

/** Fixed-capacity address-to-spare remap table. */
class SpareRowTable
{
  public:
    /** @param capacity spare rows available (may be 0). */
    explicit SpareRowTable(int capacity);

    int capacity() const { return capacity_; }
    int used() const { return static_cast<int>(rows_.size()); }
    bool full() const { return used() >= capacity_; }

    /** Spare slot serving `addr`, or -1 when not remapped. */
    int find(std::uint32_t addr) const;

    /** Slot-indexed access. @pre 0 <= slot < used(). */
    const SpareRow &row(int slot) const;
    SpareRow &row(int slot);

    /**
     * Quarantine `addr` into the next free spare.
     * @return the allocated slot, or -1 when the table is full or the
     *         address is already remapped.
     */
    int remap(std::uint32_t addr, std::uint64_t data, std::uint8_t check);

    /**
     * Order-sensitive FNV-1a digest of the remap contents (addresses
     * and images in slot order): bitwise-identical tables produce
     * identical digests, which the determinism tests compare across
     * thread counts.
     */
    std::uint64_t digest() const;

  private:
    int capacity_;
    std::vector<SpareRow> rows_; // slot order == quarantine order
};

} // namespace vboost::resilience

#endif // VBOOST_RESILIENCE_SPARE_TABLE_HPP
