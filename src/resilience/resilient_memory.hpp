/**
 * @file
 * Closed-loop resilient SRAM access pipeline (DESIGN.md §8): a wrapper
 * that turns a boost-enabled BankedMemory into a self-protecting store.
 * Every 64-bit word is written with Hamming(72,64) SECDED check bits
 * (stored in their own, equally faulty, cell region); every read runs
 * through ECC decode and is classified clean / corrected /
 * detected-uncorrectable. Under the closed-loop policy a detection
 * triggers a bounded retry loop with per-attempt boost escalation —
 * each retry is a real bank access that pays access + boost energy and
 * an access-time latency penalty — while a per-bank EWMA error monitor
 * raises standing boost levels (re-deciding through the canary
 * controller) and persistent offender rows are quarantined into a
 * small spare-row remap table. When spares run out the pipeline
 * degrades gracefully to report-and-continue.
 *
 * Determinism: the flip randomness of access k, attempt a is drawn
 * from `base.split(k * kMaxAttempts + a)` — a pure function of the
 * per-map base stream and per-access counters, never of thread
 * scheduling (the same discipline as the Monte-Carlo engine, §7).
 */

#ifndef VBOOST_RESILIENCE_RESILIENT_MEMORY_HPP
#define VBOOST_RESILIENCE_RESILIENT_MEMORY_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/latency.hpp"
#include "core/canary.hpp"
#include "core/context.hpp"
#include "energy/supply_config.hpp"
#include "obs/metrics.hpp"
#include "resilience/monitor.hpp"
#include "resilience/policy.hpp"
#include "resilience/spare_table.hpp"
#include "sram/banked_memory.hpp"
#include "sram/ecc.hpp"

namespace vboost::resilience {

/** Counters of everything the resilience pipeline did and cost. */
struct ResilienceStats
{
    std::uint64_t reads = 0;
    std::uint64_t cleanReads = 0;
    std::uint64_t correctedReads = 0;
    /** Reads that needed at least one retry. */
    std::uint64_t retriedReads = 0;
    /** Total extra read attempts issued. */
    std::uint64_t retries = 0;
    /** Retries issued at a level above the bank's standing level. */
    std::uint64_t escalations = 0;
    /** Standing boost-level raises applied by the monitor. */
    std::uint64_t standingRaises = 0;
    /** Rows quarantined into spares. */
    std::uint64_t quarantines = 0;
    /** Reads served from a spare row. */
    std::uint64_t spareReads = 0;
    /** Quarantine requests dropped because spares ran out. */
    std::uint64_t spareExhausted = 0;
    /** Reads that exhausted the retry budget and returned detected-
     *  uncorrectable data (graceful degradation). */
    std::uint64_t uncorrected = 0;

    /** Energy of the retry attempts (also charged in the bank
     *  counters; tracked here to attribute the cost of resilience). */
    Joule retryEnergy{0.0};
    /** Energy of spare-row accesses (NOT in the bank counters). */
    Joule spareEnergy{0.0};
    /** Access-time latency added by retry attempts. */
    Second retryLatency{0.0};

    /** Digest of the spare-row table (see SpareRowTable::digest). */
    std::uint64_t spareTableDigest = 0;

    /** Combine another accumulator (map-order Monte-Carlo reduction;
     *  digests chain order-sensitively). */
    void merge(const ResilienceStats &other);
};

/** What one resilient read observed and returned. */
struct ReadOutcome
{
    /** Data handed to the consumer (corrected when possible). */
    std::uint64_t data = 0;
    /** Final ECC classification after retries. */
    sram::EccOutcome outcome = sram::EccOutcome::Clean;
    /** Attempts made (1 = first try sufficed). */
    int attempts = 1;
    /** Boost level of the final attempt. */
    int level = 0;
    /** Whether the read was served from a spare row. */
    bool fromSpare = false;
    /** Retry budget exhausted; `data` is the uncorrected word. */
    bool gaveUp = false;
};

/** ECC-protected, self-escalating, row-sparing memory wrapper. */
class ResilientMemory
{
  public:
    /**
     * @param mem underlying banked memory (must outlive the wrapper;
     *        its current boost levels are overwritten with
     *        policy.startLevel).
     * @param ctx study configuration (tech + failure + booster design,
     *        shared with the canary controller).
     * @param policy reaction policy (validated against mem's levels).
     */
    ResilientMemory(sram::BankedMemory &mem, const core::SimContext &ctx,
                    ResiliencePolicy policy);

    /**
     * Rebase the per-access randomness on a fresh stream (one per
     * Monte-Carlo map) and reset the access counter.
     */
    void reseed(const Rng &base);

    /** Write a word: data to the array, check bits to the side store.
     *  A quarantined row's spare image is kept coherent. */
    void writeWord(std::uint32_t addr, std::uint64_t data, Volt vdd);

    /** Read a word through the full resilient pipeline. */
    ReadOutcome readWord(std::uint32_t addr, Volt vdd,
                         const sram::VulnerabilityMap &map);

    /** Stage a buffer of int16 values (4 per word), as the accelerator
     *  writes a weight tile. Partial edge words read-modify-write. */
    void writeWords16(std::uint32_t elem16,
                      const std::vector<std::int16_t> &values, Volt vdd);

    /** Read `count` int16 values back through the resilient pipeline. */
    std::vector<std::int16_t> readWords16(std::uint32_t elem16,
                                          std::uint32_t count, Volt vdd,
                                          const sram::VulnerabilityMap &map);

    /** Standing boost level of a bank (raises move it up). */
    int standingLevel(int bank) const;

    /** Counter snapshot with the spare-table digest filled in. */
    ResilienceStats snapshot() const;

    /** Reset counters, monitors, spares and standing levels (fresh
     *  Monte-Carlo map over the same memory). */
    void resetRuntimeState();

    /** The wrapped memory (bank counters hold the access energy). */
    sram::BankedMemory &memory() { return mem_; }
    const sram::BankedMemory &memory() const { return mem_; }

    const ResiliencePolicy &policy() const { return policy_; }
    const SpareRowTable &spares() const { return spares_; }
    const BankErrorMonitor &monitor() const { return monitor_; }

    /** Total SRAM energy including resilience: bank access + boost
     *  energy plus spare-row access energy. */
    Joule totalAccessEnergy() const;

    /**
     * Publish the pipeline's current state into a metrics registry
     * (DESIGN.md §11): retry/escalation/quarantine counters, retry and
     * spare energy sums, per-bank standing-level gauges and a per-bank
     * boost-energy histogram. `labels` is merged into every metric so
     * callers can scope the export (e.g. {{"mem","weight"}}). Call on
     * a serial path; values come from the deterministic counters, so
     * the export is thread-count invariant (§7).
     */
    void exportMetrics(obs::MetricsRegistry &reg,
                       const obs::Labels &labels = {}) const;

  private:
    /** One read attempt; primary rows go through the real bank read
     *  path, spare rows manifest faults on the spare cell region. */
    sram::EccDecodeResult attemptRead(std::uint32_t addr, int spare_slot,
                                      int level, Volt vdd,
                                      const sram::VulnerabilityMap &map,
                                      Rng &rng);

    /** Corrupt a check byte through the parity cell region. */
    std::uint8_t corruptCheck(std::uint8_t check, std::uint64_t base_cell,
                              double fail_prob,
                              const sram::VulnerabilityMap &map, Rng &rng);

    /** Raise a bank's standing level (canary-floored). */
    void raiseStandingLevel(int bank, Volt vdd,
                            const sram::VulnerabilityMap &map);

    /** Record a row error; quarantine past the threshold. */
    void recordRowError(std::uint32_t addr, int spare_slot);

    sram::BankedMemory &mem_;
    ResiliencePolicy policy_;
    energy::SupplyConfigurator supply_;
    sram::FailureRateModel failure_;
    circuit::LatencyModel latency_;
    core::CanaryController canary_;
    int maxLevel_;

    /** Check-bit side store, one byte per word. */
    std::vector<std::uint8_t> check_;
    /** Standing boost level per bank (mirrors mem_'s BIC state). */
    std::vector<int> standing_;
    /** First cell of the check-bit region in the global cell space. */
    std::uint64_t parityBase_;
    /** First cell of the spare-row region. */
    std::uint64_t spareBase_;

    BankErrorMonitor monitor_;
    SpareRowTable spares_;
    /** Uncorrectable-event count per offending row. Ordered map by
     *  design (VB002 hygiene): today only keyed lookups touch it, but
     *  any future iteration (debug dumps, digests) must not inherit
     *  hash-table order. The table is tiny (offender rows only), so
     *  the tree overhead is noise. */
    std::map<std::uint32_t, int> rowErrors_;

    Rng base_;
    std::uint64_t accessCounter_ = 0;
    ResilienceStats stats_;
};

} // namespace vboost::resilience

#endif // VBOOST_RESILIENCE_RESILIENT_MEMORY_HPP
