#include "resilience/resilient_memory.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vboost::resilience {

namespace {

/**
 * Cell-space layout: data cells occupy each memory's own region
 * starting at its cellBase(); the regions below are disjoint from all
 * data regions (which end far below 2^38) and from the canary region
 * at 2^40 (core/canary.cpp). Offsetting by cellBase() keeps multiple
 * wrapped memories disjoint from each other too.
 */
constexpr std::uint64_t kParityRegionBase = 1ull << 38;
constexpr std::uint64_t kSpareRegionBase = 1ull << 39;

/** Codeword bits one spare row occupies (64 data + 8 check). */
constexpr std::uint64_t kSpareRowBits = 72;

} // namespace

void
ResilienceStats::merge(const ResilienceStats &other)
{
    reads += other.reads;
    cleanReads += other.cleanReads;
    correctedReads += other.correctedReads;
    retriedReads += other.retriedReads;
    retries += other.retries;
    escalations += other.escalations;
    standingRaises += other.standingRaises;
    quarantines += other.quarantines;
    spareReads += other.spareReads;
    spareExhausted += other.spareExhausted;
    uncorrected += other.uncorrected;
    retryEnergy += other.retryEnergy;
    spareEnergy += other.spareEnergy;
    retryLatency += other.retryLatency;
    // Order-sensitive chain: merging in map order yields a digest that
    // is a pure function of the per-map tables.
    spareTableDigest =
        (spareTableDigest * 0x100000001b3ull) ^ other.spareTableDigest;
}

ResilientMemory::ResilientMemory(sram::BankedMemory &mem,
                                 const core::SimContext &ctx,
                                 ResiliencePolicy policy)
    : mem_(mem), policy_(policy),
      supply_(ctx.tech, ctx.design, mem.banks()), failure_(ctx.failure),
      latency_(ctx.tech), canary_(ctx, mem.banks()),
      maxLevel_(mem.bank(0).levels()), check_(mem.words(), 0),
      standing_(static_cast<std::size_t>(mem.banks()), policy.startLevel),
      parityBase_(kParityRegionBase + mem.cellBase()),
      spareBase_(kSpareRegionBase + mem.cellBase()),
      monitor_(mem.banks(), policy.ewmaAlpha, policy.raiseThreshold),
      spares_(policy.spareRows), base_(0)
{
    policy_.validate(maxLevel_);
    mem_.setAllBoostLevels(policy_.startLevel);
}

void
ResilientMemory::reseed(const Rng &base)
{
    base_ = base;
    accessCounter_ = 0;
}

void
ResilientMemory::writeWord(std::uint32_t addr, std::uint64_t data,
                           Volt vdd)
{
    mem_.write(addr, data, vdd);
    check_[addr] = sram::SecdedCodec::encode(data);
    // A quarantined row's spare image shadows the primary row; keep it
    // coherent (hardware rewrites both on a store to a spared address).
    const int slot = spares_.find(addr);
    if (slot >= 0) {
        spares_.row(slot).data = data;
        spares_.row(slot).check = check_[addr];
    }
}

std::uint8_t
ResilientMemory::corruptCheck(std::uint8_t check, std::uint64_t base_cell,
                              double fail_prob,
                              const sram::VulnerabilityMap &map, Rng &rng)
{
    if (fail_prob <= 0.0)
        return check;
    const double flip = mem_.bank(0).flipProb();
    for (int b = 0; b < sram::SecdedCodec::kCheckBits; ++b) {
        if (map.isFaulty(base_cell + static_cast<std::uint64_t>(b),
                         fail_prob) &&
            rng.bernoulli(flip)) {
            check = static_cast<std::uint8_t>(check ^ (1u << b));
        }
    }
    return check;
}

sram::EccDecodeResult
ResilientMemory::attemptRead(std::uint32_t addr, int spare_slot, int level,
                             Volt vdd, const sram::VulnerabilityMap &map,
                             Rng &rng)
{
    const int bank = mem_.bankOf(addr);
    if (spare_slot < 0) {
        // Primary row: a real bank access (charges access + boost
        // energy in the bank counters at the attempt's level).
        if (mem_.boostLevel(bank) != level)
            mem_.setBoostLevel(bank, level);
        const std::uint64_t data = mem_.read(addr, vdd, map, rng);
        const double fail = mem_.bank(bank).failProbAt(vdd);
        const std::uint8_t check = corruptCheck(
            check_[addr], parityBase_ + static_cast<std::uint64_t>(addr) * 8,
            fail, map, rng);
        return sram::SecdedCodec::decode(data, check);
    }

    // Spare row: same bank conditions, fresh cells in the spare region.
    const Volt vddv = supply_.boostedVoltage(vdd, level);
    const double fail = failure_.rate(vddv);
    const double flip = mem_.bank(bank).flipProb();
    const SpareRow &row =
        spares_.row(spare_slot); // image is golden; faults manifest here
    std::uint64_t data = row.data;
    const std::uint64_t base =
        spareBase_ + static_cast<std::uint64_t>(spare_slot) * kSpareRowBits;
    if (fail > 0.0) {
        for (int b = 0; b < 64; ++b) {
            if (map.isFaulty(base + static_cast<std::uint64_t>(b), fail) &&
                rng.bernoulli(flip))
                data ^= 1ull << b;
        }
    }
    const std::uint8_t check = corruptCheck(row.check, base + 64, fail,
                                            map, rng);
    stats_.spareEnergy +=
        supply_.energyModel().sramAccessEnergy(vddv, mem_.banks());
    if (level > 0)
        stats_.spareEnergy += supply_.booster().boostEventEnergy(vdd, level);
    return sram::SecdedCodec::decode(data, check);
}

ReadOutcome
ResilientMemory::readWord(std::uint32_t addr, Volt vdd,
                          const sram::VulnerabilityMap &map)
{
    const int bank = mem_.bankOf(addr);
    const int slot = spares_.find(addr);
    const std::uint64_t access = accessCounter_++;
    ++stats_.reads;
    if (slot >= 0)
        ++stats_.spareReads;

    const int budget =
        policy_.mode == AccessPolicyMode::ClosedLoop ? policy_.retryBudget
                                                     : 0;
    sram::EccDecodeResult dec;
    ReadOutcome out;
    bool first_error = false;
    int attempt = 0;
    for (;; ++attempt) {
        const int level =
            policy_.attemptLevel(standing_[static_cast<std::size_t>(bank)],
                                 attempt, maxLevel_);
        // Per-access counter-based stream: independent of thread
        // scheduling and of how much randomness other reads consumed.
        Rng rng = base_.split(access * ResiliencePolicy::kMaxAttempts +
                              static_cast<std::uint64_t>(attempt));
        dec = attemptRead(addr, slot, level, vdd, map, rng);
        out.level = level;
        if (attempt == 0) {
            first_error = dec.outcome != sram::EccOutcome::Clean;
        } else {
            ++stats_.retries;
            if (level > standing_[static_cast<std::size_t>(bank)])
                ++stats_.escalations;
            const Volt vddv = supply_.boostedVoltage(vdd, level);
            // Retry accounting accumulates in attempt order, which is
            // fixed per access by the counter-derived RNG streams (§7).
            // vblint: assoc-ok(attempt-order accumulation, fixed per access)
            stats_.retryEnergy +=
                supply_.energyModel().sramAccessEnergy(vddv, mem_.banks());
            if (level > 0)
                // vblint: assoc-ok(attempt-order accumulation, fixed per access)
                stats_.retryEnergy +=
                    supply_.booster().boostEventEnergy(vdd, level);
            // vblint: assoc-ok(attempt-order accumulation, fixed per access)
            stats_.retryLatency += latency_.accessTime(vddv, vdd);
        }
        if (dec.outcome != sram::EccOutcome::DetectedUncorrectable ||
            attempt >= budget)
            break;
    }
    // Escalated attempts may have overridden the BIC; restore.
    if (mem_.boostLevel(bank) != standing_[static_cast<std::size_t>(bank)])
        mem_.setBoostLevel(bank, standing_[static_cast<std::size_t>(bank)]);

    out.data = dec.data;
    out.outcome = dec.outcome;
    out.attempts = attempt + 1;
    out.fromSpare = slot >= 0;
    if (attempt > 0)
        ++stats_.retriedReads;
    switch (dec.outcome) {
      case sram::EccOutcome::Clean:
        ++stats_.cleanReads;
        break;
      case sram::EccOutcome::Corrected:
        ++stats_.correctedReads;
        break;
      case sram::EccOutcome::DetectedUncorrectable:
        out.gaveUp = true;
        ++stats_.uncorrected;
        break;
    }

    if (policy_.mode == AccessPolicyMode::ClosedLoop) {
        // The monitor sees raw first-attempt health: retry success must
        // not mask a degrading bank.
        if (monitor_.recordAccess(bank, first_error))
            raiseStandingLevel(bank, vdd, map);
        if (out.gaveUp)
            recordRowError(addr, slot);
    }
    return out;
}

void
ResilientMemory::raiseStandingLevel(int bank, Volt vdd,
                                    const sram::VulnerabilityMap &map)
{
    const int standing = standing_[static_cast<std::size_t>(bank)];
    if (standing >= maxLevel_)
        return; // already at the top: report-and-continue
    // Re-decide through the canary controller (the margin-calibrated
    // floor), but always move at least one level up.
    int target = standing + 1;
    if (const auto canary = canary_.chooseLevel(vdd, map))
        target = std::max(target, *canary);
    target = std::min(target, maxLevel_);
    standing_[static_cast<std::size_t>(bank)] = target;
    mem_.setBoostLevel(bank, target);
    ++stats_.standingRaises;
    warnRateLimited("resilience: ", mem_.name(), " bank ", bank,
                    " standing boost level ", standing, " -> ", target,
                    " (EWMA error rate over ", policy_.raiseThreshold, ")");
}

void
ResilientMemory::recordRowError(std::uint32_t addr, int spare_slot)
{
    if (spare_slot >= 0)
        return; // already on a spare; no spare-of-spare chaining
    if (policy_.spareRows == 0)
        return;
    int &n = rowErrors_[addr];
    if (++n < policy_.quarantineThreshold)
        return;
    if (spares_.full()) {
        ++stats_.spareExhausted;
        return;
    }
    // Writes are reliable in this model, so the stored image is golden;
    // hardware would restage the row from the ECC-scrubbed source.
    spares_.remap(addr, mem_.peek(addr), check_[addr]);
    rowErrors_.erase(addr);
    ++stats_.quarantines;
    warnRateLimited("resilience: ", mem_.name(), " quarantined row ", addr,
                    " into spare ", spares_.used() - 1, " (",
                    spares_.capacity() - spares_.used(),
                    " spares left)");
}

void
ResilientMemory::writeWords16(std::uint32_t elem16,
                              const std::vector<std::int16_t> &values,
                              Volt vdd)
{
    std::uint32_t i = 0;
    while (i < values.size()) {
        const std::uint32_t addr = (elem16 + i) / 4;
        std::uint64_t word = mem_.peek(addr);
        while (i < values.size() && (elem16 + i) / 4 == addr) {
            const std::uint32_t lane = (elem16 + i) % 4;
            const std::uint64_t mask = 0xffffull << (16 * lane);
            const auto v = static_cast<std::uint64_t>(
                static_cast<std::uint16_t>(values[i]));
            word = (word & ~mask) | (v << (16 * lane));
            ++i;
        }
        writeWord(addr, word, vdd);
    }
}

std::vector<std::int16_t>
ResilientMemory::readWords16(std::uint32_t elem16, std::uint32_t count,
                             Volt vdd, const sram::VulnerabilityMap &map)
{
    std::vector<std::int16_t> out;
    out.reserve(count);
    std::uint32_t i = 0;
    while (i < count) {
        const std::uint32_t addr = (elem16 + i) / 4;
        const std::uint64_t word = readWord(addr, vdd, map).data;
        while (i < count && (elem16 + i) / 4 == addr) {
            const std::uint32_t lane = (elem16 + i) % 4;
            out.push_back(static_cast<std::int16_t>(
                static_cast<std::uint16_t>(word >> (16 * lane))));
            ++i;
        }
    }
    return out;
}

int
ResilientMemory::standingLevel(int bank) const
{
    if (bank < 0 || bank >= mem_.banks())
        fatal("ResilientMemory: bank ", bank, " out of range");
    return standing_[static_cast<std::size_t>(bank)];
}

ResilienceStats
ResilientMemory::snapshot() const
{
    ResilienceStats s = stats_;
    s.spareTableDigest = spares_.digest();
    return s;
}

void
ResilientMemory::resetRuntimeState()
{
    stats_ = ResilienceStats{};
    monitor_.reset();
    spares_ = SpareRowTable(policy_.spareRows);
    rowErrors_.clear();
    std::fill(standing_.begin(), standing_.end(), policy_.startLevel);
    mem_.setAllBoostLevels(policy_.startLevel);
    accessCounter_ = 0;
}

Joule
ResilientMemory::totalAccessEnergy() const
{
    const auto c = mem_.totalCounters();
    return c.accessEnergy + c.boostEnergy + stats_.spareEnergy;
}

void
ResilientMemory::exportMetrics(obs::MetricsRegistry &reg,
                               const obs::Labels &labels) const
{
    const ResilienceStats s = snapshot();
    reg.counter("resil.reads", labels).add(s.reads);
    reg.counter("resil.reads.clean", labels).add(s.cleanReads);
    reg.counter("resil.reads.corrected", labels).add(s.correctedReads);
    reg.counter("resil.reads.retried", labels).add(s.retriedReads);
    reg.counter("resil.retry.count", labels).add(s.retries);
    reg.counter("resil.escalation.count", labels).add(s.escalations);
    reg.counter("resil.standing_raise.count", labels).add(s.standingRaises);
    reg.counter("resil.quarantine.count", labels).add(s.quarantines);
    reg.counter("resil.spare.reads", labels).add(s.spareReads);
    reg.counter("resil.spare.exhausted", labels).add(s.spareExhausted);
    reg.counter("resil.uncorrected.count", labels).add(s.uncorrected);
    reg.sum("resil.retry.energy_j", labels).add(s.retryEnergy.value());
    reg.sum("resil.spare.energy_j", labels).add(s.spareEnergy.value());
    reg.sum("resil.retry.latency_s", labels).add(s.retryLatency.value());

    // Per-bank attribution: where the boost (and thus resilience)
    // energy actually went, plus the standing level each bank settled
    // at. Femtojoule floor to microjoule ceiling covers a single boost
    // event up to a heavily escalated bank.
    obs::Histogram boost_hist = reg.histogram(
        "resil.bank.boost_energy_j", obs::exponentialBounds(1e-15, 10.0, 10),
        labels);
    for (int b = 0; b < mem_.banks(); ++b) {
        const sram::BankCounters &c = mem_.bankCounters(b);
        boost_hist.observe(c.boostEnergy.value());
        obs::Labels bank_labels = labels;
        bank_labels["bank"] = std::to_string(b);
        reg.gauge("resil.bank.standing_level", bank_labels)
            .set(static_cast<double>(standingLevel(b)));
        reg.counter("resil.bank.boost_events", bank_labels)
            .add(c.boostEvents);
    }
}

} // namespace vboost::resilience
