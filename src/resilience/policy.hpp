/**
 * @file
 * Runtime resilience policy: how the SRAM access pipeline reacts to
 * ECC decode outcomes. The paper's premise (Sec. 1, Sec. 3) is that
 * low-voltage SRAM faults are survivable when the system *reacts* —
 * boosting per bank, per access — instead of letting flipped words
 * flow into inference. A ResiliencePolicy selects between the
 * fire-and-forget open loop (read, decode once, take what you get)
 * and the closed loop (detected-uncorrectable words are retried with
 * per-attempt boost escalation under a bounded budget, persistent
 * offenders raise their bank's standing level, and failing rows are
 * quarantined into spares).
 */

#ifndef VBOOST_RESILIENCE_POLICY_HPP
#define VBOOST_RESILIENCE_POLICY_HPP

#include <string>

namespace vboost::resilience {

/** Does the read path react to ECC outcomes at all? */
enum class AccessPolicyMode
{
    /** Fire-and-forget: one read, one decode, no reaction. */
    OpenLoop,
    /** Detect-and-react: bounded retry with boost escalation,
     *  standing-level raises and row sparing. */
    ClosedLoop,
};

/** How retry attempts pick their boost level. */
enum class EscalationPolicy
{
    /** Retry at the bank's standing level (re-reads alone can clear a
     *  transient flip, since faulty cells flip per read with p). */
    Hold,
    /** Raise the boost level by one per retry attempt. */
    StepUp,
    /** Jump straight to the top boost level on the first retry. */
    MaxOut,
};

/** Tunable knobs of the closed-loop SRAM access pipeline. */
struct ResiliencePolicy
{
    AccessPolicyMode mode = AccessPolicyMode::ClosedLoop;

    /** Extra read attempts after the first (0 = no retry). */
    int retryBudget = 3;

    /** Boost-level ladder the retry attempts climb. */
    EscalationPolicy escalation = EscalationPolicy::StepUp;

    /** Standing boost level every bank starts at. */
    int startLevel = 0;

    /** Spare rows available for quarantining persistent offenders
     *  (0 = sparing disabled). */
    int spareRows = 8;

    /** EWMA smoothing factor of the per-bank error-rate monitor. */
    double ewmaAlpha = 0.05;

    /** EWMA error rate above which a bank's standing level is raised.
     *  Calibrated well above the per-word first-error rate of moderate
     *  BER (mean ~0.1, sigma ~0.05 at 0.46 V with the default alpha),
     *  so random EWMA excursions don't move the standing level and the
     *  retry path absorbs the correctable trickle for free — while a
     *  chronically failing bank (error rate ~0.9 at 0.42 V) still
     *  crosses within ~10 accesses. */
    double raiseThreshold = 0.35;

    /** Uncorrectable events on one row before it is quarantined. */
    int quarantineThreshold = 2;

    /** Upper bound on attempts per access (first try + retries);
     *  keeps the per-access RNG stream layout fixed. */
    static constexpr int kMaxAttempts = 16;

    /**
     * Boost level of attempt `attempt` (0 = first try) when the bank's
     * standing level is `standing` and the top level is `max_level`.
     * Open-loop policies never escalate.
     */
    int attemptLevel(int standing, int attempt, int max_level) const;

    /** Throw FatalError unless the policy is self-consistent and fits
     *  a memory with `max_level` boost levels. */
    void validate(int max_level) const;

    /** Fire-and-forget baseline at a fixed standing level. */
    static ResiliencePolicy openLoop(int level = 0);

    /** The standard closed loop (retry 3, step-up, 8 spares). */
    static ResiliencePolicy closedLoop(int retry_budget = 3,
                                       EscalationPolicy esc =
                                           EscalationPolicy::StepUp,
                                       int spare_rows = 8);

    /** Short human-readable tag, e.g. "closed/r3/stepup/s8". */
    std::string name() const;
};

/** Display name of an access-policy mode ("open" / "closed"). */
const char *toString(AccessPolicyMode mode);

/** Display name of an escalation policy ("hold"/"stepup"/"maxout"). */
const char *toString(EscalationPolicy esc);

} // namespace vboost::resilience

#endif // VBOOST_RESILIENCE_POLICY_HPP
