/**
 * @file
 * Deterministic consistent-hash ring for tenant -> shard routing
 * (DESIGN.md §14). Each node projects a bounded number of virtual
 * nodes onto a 64-bit ring via FNV-1a ("node#k"), and a tenant key
 * routes to the first virtual node clockwise from its own hash. The
 * ring is an ordered std::map, so construction, lookup and the
 * successor walk are pure functions of the node set — never of
 * insertion order or hash-table internals (§7). Adding or removing a
 * node remaps only the key ranges adjacent to its virtual nodes
 * (consistent-hashing monotonicity, tested in test_cluster.cpp).
 */

#ifndef VBOOST_CLUSTER_HASH_RING_HPP
#define VBOOST_CLUSTER_HASH_RING_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vboost::cluster {

/** Ring construction knobs. */
struct HashRingConfig
{
    /** Virtual nodes per physical node. More points smooth the load
     *  balance (expected per-node share deviation shrinks like
     *  1/sqrt(virtualNodes)) at O(nodes * virtualNodes) ring size;
     *  bounded so a 16-shard ring stays a few KiB. */
    int virtualNodes = 64;
};

/**
 * Consistent-hash ring over named nodes. Deterministic by
 * construction: equal node sets produce bitwise-equal rings no matter
 * the add/remove history.
 */
class HashRing
{
  public:
    explicit HashRing(HashRingConfig cfg = {});

    /** Add a node (fatal on duplicate or empty name). */
    void addNode(const std::string &node);

    /** Remove a node (fatal when absent). */
    void removeNode(const std::string &node);

    /** True when `node` is on the ring. */
    bool hasNode(const std::string &node) const;

    /** Physical nodes on the ring, name-ordered. */
    std::vector<std::string> nodes() const;

    /** Number of physical nodes. */
    std::size_t size() const { return members_.size(); }

    bool empty() const { return members_.empty(); }

    /** Owning node of `key`: first virtual node clockwise from
     *  hash(key). Fatal on an empty ring. */
    const std::string &nodeFor(const std::string &key) const;

    /**
     * The replica group of `key`: the owner followed by the next
     * distinct nodes clockwise, up to `replicas` entries (bounded by
     * the node count). The spill/failover candidates of the admission
     * tier, in preference order.
     */
    std::vector<std::string> replicasFor(const std::string &key,
                                         std::size_t replicas) const;

    /** Virtual-node points on the ring (diagnostics / balance test). */
    std::size_t pointCount() const { return ring_.size(); }

    /**
     * FNV-1a digest over every (point, node) ring entry in ring order
     * plus the config. Equal fingerprints mean bitwise-identical
     * routing tables — the ring-construction determinism check.
     */
    std::uint64_t fingerprint() const;

    const HashRingConfig &config() const { return cfg_; }

    /** The ring position a key hashes to (exposed for tests). */
    static std::uint64_t hashKey(const std::string &key);

  private:
    HashRingConfig cfg_;
    /** ring position -> owning physical node. */
    std::map<std::uint64_t, std::string> ring_;
    std::set<std::string> members_;
};

} // namespace vboost::cluster

#endif // VBOOST_CLUSTER_HASH_RING_HPP
