/**
 * @file
 * Node-granularity health tracking and the drain/rejoin state machine
 * of the serving cluster (DESIGN.md §14). The NodeHealthMonitor is the
 * resilience discipline proven at bank granularity (§8's
 * BankErrorMonitor EWMA + escalation ladder) lifted one level up: each
 * node's measured word-error rate feeds an EWMA, and crossing the
 * degradation threshold drains the node instead of raising a boost
 * level. States move Active -> Draining -> Down -> Rejoining ->
 * Active, stepped once per routing epoch on a serial path in node
 * index order, so every transition is a pure function of the epoch
 * error-rate sequence (§7).
 */

#ifndef VBOOST_CLUSTER_FAILOVER_HPP
#define VBOOST_CLUSTER_FAILOVER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace vboost::cluster {

/** Lifecycle state of one node. */
enum class NodeState
{
    /** Serving primary and spill traffic. */
    Active = 0,
    /** Unhealthy: takes no new traffic while in-flight work finishes;
     *  enters Down after drainEpochs. */
    Draining = 1,
    /** Out of rotation (drained or lost); rejoins after downEpochs. */
    Down = 2,
    /** Probation: serving again, but one bad epoch sends it straight
     *  back Down; promoted to Active after rejoinEpochs clean ones. */
    Rejoining = 3,
};

/** Display name of a node state ("active"/"draining"/"down"/"rejoining"). */
const char *toString(NodeState state);

/** Why a node left the Active state. */
enum class FailoverCause
{
    /** EWMA error rate crossed the degradation threshold. */
    EwmaDegraded = 0,
    /** Injected node-loss event (crash / power loss model). */
    InjectedLoss = 1,
    /** Scheduled lifecycle step (drain elapsed, cooldown elapsed,
     *  probation passed). */
    Lifecycle = 2,
};

/** Display name of a failover cause. */
const char *toString(FailoverCause cause);

/** One recorded state transition (the cluster's failover log). */
struct NodeTransition
{
    std::uint64_t epoch = 0;
    int node = 0;
    NodeState from = NodeState::Active;
    NodeState to = NodeState::Active;
    FailoverCause cause = FailoverCause::Lifecycle;
    /** Node EWMA at the transition instant. */
    double ewma = 0.0;

    friend bool operator==(const NodeTransition &,
                           const NodeTransition &) = default;
};

/** Health-tracking knobs. */
struct FailoverConfig
{
    /** EWMA smoothing factor in (0, 1] (§8 discipline, node scale). */
    double ewmaAlpha = 0.3;
    /** EWMA error rate above which an Active node drains. Calibrated
     *  like §8's raiseThreshold: well above the quiet-node epoch error
     *  rate so routine ECC traffic never drains a node, while a
     *  chronically degraded node crosses within a few epochs. */
    double drainThreshold = 0.35;
    /** Epochs a Draining node keeps finishing in-flight work before it
     *  is Down. */
    int drainEpochs = 1;
    /** Epochs a Down node stays out of rotation before probation. */
    int downEpochs = 2;
    /** Clean probation epochs before a Rejoining node is Active. */
    int rejoinEpochs = 1;

    /** Throw FatalError unless the knobs are self-consistent. */
    void validate() const;
};

/**
 * Per-node EWMA + state machine. All mutation happens through
 * observeEpoch(), called once per node per epoch in node index order
 * (the §7 serial-feedback contract, same as the planner's
 * observeErrorRate).
 */
class NodeHealthMonitor
{
  public:
    NodeHealthMonitor(int num_nodes, FailoverConfig cfg = {});

    /**
     * Feed one node's epoch-mean word error rate (served == false
     * means the node ran nothing this epoch: the EWMA is left alone
     * and only lifecycle timers advance). Appends any transition to
     * the log. The EWMA resets on every state change, so each state
     * re-observes the node fresh (§8 reset-after-raise discipline).
     */
    void observeEpoch(std::uint64_t epoch, int node, double error_rate,
                      bool served);

    /** Force a node Down at `epoch` (injected loss). No-op when the
     *  node is already Down. */
    void injectLoss(std::uint64_t epoch, int node);

    NodeState state(int node) const;

    /** Current EWMA error rate of a node. */
    double ewma(int node) const;

    /** True when the node may take new traffic. */
    bool accepting(int node) const
    {
        const NodeState s = state(node);
        return s == NodeState::Active || s == NodeState::Rejoining;
    }

    /** Number of nodes tracked. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** All transitions so far, in (epoch, node) observation order. */
    const std::vector<NodeTransition> &transitions() const
    { return log_; }

    const FailoverConfig &config() const { return cfg_; }

  private:
    struct Node
    {
        NodeState state = NodeState::Active;
        double ewma = 0.0;
        bool seeded = false;
        /** Epochs spent in the current non-Active state. */
        int epochsInState = 0;
    };

    void transition(std::uint64_t epoch, int node, NodeState to,
                    FailoverCause cause);

    FailoverConfig cfg_;
    std::vector<Node> nodes_;
    std::vector<NodeTransition> log_;
};

} // namespace vboost::cluster

#endif // VBOOST_CLUSTER_FAILOVER_HPP
