#include "cluster/failover.hpp"

#include "common/logging.hpp"

namespace vboost::cluster {

const char *
toString(NodeState state)
{
    switch (state) {
      case NodeState::Active:
        return "active";
      case NodeState::Draining:
        return "draining";
      case NodeState::Down:
        return "down";
      case NodeState::Rejoining:
        return "rejoining";
    }
    return "?";
}

const char *
toString(FailoverCause cause)
{
    switch (cause) {
      case FailoverCause::EwmaDegraded:
        return "ewma_degraded";
      case FailoverCause::InjectedLoss:
        return "injected_loss";
      case FailoverCause::Lifecycle:
        return "lifecycle";
    }
    return "?";
}

void
FailoverConfig::validate() const
{
    if (!(ewmaAlpha > 0.0) || ewmaAlpha > 1.0)
        fatal("FailoverConfig: ewmaAlpha must be in (0, 1], got ",
              ewmaAlpha);
    if (!(drainThreshold > 0.0))
        fatal("FailoverConfig: drainThreshold must be > 0, got ",
              drainThreshold);
    if (drainEpochs < 1)
        fatal("FailoverConfig: drainEpochs must be >= 1, got ",
              drainEpochs);
    if (downEpochs < 1)
        fatal("FailoverConfig: downEpochs must be >= 1, got ",
              downEpochs);
    if (rejoinEpochs < 1)
        fatal("FailoverConfig: rejoinEpochs must be >= 1, got ",
              rejoinEpochs);
}

NodeHealthMonitor::NodeHealthMonitor(int num_nodes, FailoverConfig cfg)
    : cfg_(cfg)
{
    cfg_.validate();
    if (num_nodes < 1)
        fatal("NodeHealthMonitor: num_nodes must be >= 1, got ",
              num_nodes);
    nodes_.resize(static_cast<std::size_t>(num_nodes));
}

NodeState
NodeHealthMonitor::state(int node) const
{
    return nodes_.at(static_cast<std::size_t>(node)).state;
}

double
NodeHealthMonitor::ewma(int node) const
{
    return nodes_.at(static_cast<std::size_t>(node)).ewma;
}

void
NodeHealthMonitor::transition(std::uint64_t epoch, int node, NodeState to,
                              FailoverCause cause)
{
    Node &n = nodes_.at(static_cast<std::size_t>(node));
    log_.push_back({epoch, node, n.state, to, cause, n.ewma});
    n.state = to;
    n.epochsInState = 0;
    // Re-observe the node fresh in its new state (§8 reset-after-raise
    // at node granularity).
    n.ewma = 0.0;
    n.seeded = false;
}

void
NodeHealthMonitor::injectLoss(std::uint64_t epoch, int node)
{
    Node &n = nodes_.at(static_cast<std::size_t>(node));
    if (n.state == NodeState::Down)
        return;
    transition(epoch, node, NodeState::Down, FailoverCause::InjectedLoss);
}

void
NodeHealthMonitor::observeEpoch(std::uint64_t epoch, int node,
                                double error_rate, bool served)
{
    if (node < 0 || node >= size())
        fatal("NodeHealthMonitor::observeEpoch: node ", node,
              " outside [0, ", size(), ")");
    if (!(error_rate >= 0.0))
        fatal("NodeHealthMonitor::observeEpoch: error_rate must be "
              ">= 0, got ", error_rate);
    Node &n = nodes_.at(static_cast<std::size_t>(node));
    if (served) {
        if (!n.seeded) {
            n.ewma = error_rate;
            n.seeded = true;
        } else {
            n.ewma = cfg_.ewmaAlpha * error_rate +
                     (1.0 - cfg_.ewmaAlpha) * n.ewma;
        }
    }
    switch (n.state) {
      case NodeState::Active:
        if (served && n.ewma > cfg_.drainThreshold)
            transition(epoch, node, NodeState::Draining,
                       FailoverCause::EwmaDegraded);
        break;
      case NodeState::Draining:
        if (++n.epochsInState >= cfg_.drainEpochs)
            transition(epoch, node, NodeState::Down,
                       FailoverCause::Lifecycle);
        break;
      case NodeState::Down:
        if (++n.epochsInState >= cfg_.downEpochs)
            transition(epoch, node, NodeState::Rejoining,
                       FailoverCause::Lifecycle);
        break;
      case NodeState::Rejoining:
        if (served && n.ewma > cfg_.drainThreshold) {
            // One bad probation epoch sends the node straight back.
            transition(epoch, node, NodeState::Down,
                       FailoverCause::EwmaDegraded);
        } else if (++n.epochsInState >= cfg_.rejoinEpochs) {
            transition(epoch, node, NodeState::Active,
                       FailoverCause::Lifecycle);
        }
        break;
    }
}

} // namespace vboost::cluster
